#!/usr/bin/env python
"""Conjugate gradient on the simulated SCC — SpMV in its natural habitat.

Solves a 2-D Poisson-like system (5-point stencil, made SPD) with the
distributed CG of :mod:`repro.apps.cg` across UE counts, reporting the
simulated time per iteration and the communication share.  The answer
is verified against a sequential NumPy solve.

Run:  python examples/cg_solver.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_spd, parallel_cg
from repro.sparse import stencil_2d

GRID = 48  # 48x48 grid -> 2304 unknowns


def main() -> None:
    a = make_spd(stencil_2d(GRID, GRID, seed=11))
    rng = np.random.default_rng(4)
    x_true = rng.uniform(size=a.n_rows)
    b = a.to_scipy() @ x_true
    print(f"system: {GRID}x{GRID} stencil, n={a.n_rows}, nnz={a.nnz}\n")

    print(f"{'UEs':>4s} {'iters':>6s} {'residual':>11s} {'sim time':>10s} "
          f"{'ms/iter':>8s} {'speedup':>8s}")
    t1 = None
    for n_ues in (1, 2, 4, 8, 16, 32):
        res = parallel_cg(a, b, n_ues=n_ues, tol=1e-10)
        assert res.converged
        err = np.abs(res.x - x_true).max()
        assert err < 1e-6, f"solution mismatch: {err}"
        t1 = t1 or res.makespan
        print(f"{n_ues:4d} {res.iterations:6d} {res.residual_norm:11.2e} "
              f"{res.makespan * 1e3:8.2f}ms "
              f"{res.makespan * 1e3 / res.iterations:8.3f} "
              f"{t1 / res.makespan:8.2f}")

    print("\nCG is allreduce-heavy: past ~8 UEs the collectives eat the "
          "speedup on a problem this small — exactly the communication/"
          "computation balance message-passing programmers fight on the SCC.")


if __name__ == "__main__":
    main()
