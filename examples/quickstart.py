#!/usr/bin/env python
"""Quickstart: run one SpMV experiment on the modeled SCC.

Builds a Table I stand-in matrix, runs the paper's CSR SpMV on 24
simulated cores under the default chip configuration, verifies the
numerical result against SciPy, and prints the performance and power
figures the paper reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SpMVExperiment
from repro.scc import CONF0
from repro.sparse import build_matrix, entry_by_id

def main() -> None:
    # Matrix 12 is the crystk03 stand-in: a block-structured FEM matrix.
    entry = entry_by_id(12)
    a = build_matrix(entry.mid, scale=0.25)
    print(f"matrix {entry.name}: {a.n_rows} rows, {a.nnz} nonzeros, "
          f"{a.nnz_per_row:.1f} nnz/row")

    exp = SpMVExperiment(a, name=entry.name)

    # Run 16 SpMV iterations on 24 cores with the paper's
    # distance-reduction mapping, verifying the product numerically.
    x = np.random.default_rng(0).uniform(size=a.n_cols)
    result = exp.run(
        n_cores=24,
        config=CONF0,
        mapping="distance_reduction",
        iterations=16,
        verify=True,
        x=x,
    )

    expected = a.to_scipy() @ x
    assert np.allclose(result.y, expected, rtol=1e-9), "product mismatch!"
    print("numerical check vs SciPy: OK")

    print(f"\nsimulated execution on the SCC ({result.config_name}):")
    print(f"  cores:        {result.n_cores} ({result.mapping} mapping)")
    print(f"  makespan:     {result.makespan * 1e3:.3f} ms "
          f"({result.iterations} iterations)")
    print(f"  throughput:   {result.mflops:.1f} MFLOPS/s")
    print(f"  chip power:   {result.power_watts:.1f} W")
    print(f"  efficiency:   {result.mflops_per_watt:.2f} MFLOPS/s per watt")

    slowest = max(result.per_core, key=lambda t: t.time)
    print(f"  slowest core: core {slowest.core} "
          f"({100 * slowest.mem_stall_fraction:.0f}% memory stalls)")


if __name__ == "__main__":
    main()
