#!/usr/bin/env python
"""Cross-architecture SpMV comparison from a single campaign spec.

The machine zoo (``repro.machine``) models three many-core targets
behind one interface: the Intel SCC the paper measured, the Xeon Phi
(Saule, Kaya & Catalyurek, arXiv:1302.1078) and the Phytium FT-2000+
(arXiv:1911.08779).  One :class:`~repro.core.Campaign` grid pins each
point to a machine via the ``machines=`` dimension, every machine runs
the same matrices at its full core count, and
:func:`~repro.core.figures.machine_comparison_data` folds the records
into a Fig-10-style table: suite-average GFLOPS/s and MFLOPS/W per
architecture.

Run:  python examples/machine_comparison.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.core import Campaign
from repro.core.figures import machine_comparison_data
from repro.machine import get_machine, list_machines

IDS = [7, 24, 30]                 # sme3Dc, pdb1HYS, Na5
SCALE = 0.2
ITERATIONS = 8


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_machines_"))

    # One campaign spec: every registered machine, full chip, same suite.
    points = []
    for machine_id in list_machines():
        full_chip = get_machine(machine_id).topology.n_cores
        points += Campaign.grid(IDS, [full_chip], machines=[machine_id])
    print(f"grid: {len(points)} points over {len(list_machines())} machines "
          f"-> {workdir}/machines.jsonl\n")

    campaign = Campaign(
        "machines", workdir, scale=SCALE, iterations=ITERATIONS, mode="model"
    )
    ran, skipped = campaign.run(points)
    print(f"ran {ran}, skipped {skipped} (resume-safe like any campaign)\n")

    rows = machine_comparison_data(campaign.load())
    print(f"{'machine':14s} {'label':10s} {'cores':>5s} "
          f"{'GFLOPS/s':>9s} {'watts':>7s} {'MFLOPS/W':>9s}")
    for row in rows:
        print(f"{row['machine']:14s} {row['label']:10s} {row['n_cores']:5d} "
              f"{row['gflops']:9.3f} {row['watts']:7.1f} "
              f"{row['mflops_per_watt']:9.2f}")

    out = workdir / "machine_comparison.json"
    out.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
    print(f"\ncomparison table written to {out}")


if __name__ == "__main__":
    main()
