#!/usr/bin/env python
"""PageRank on the simulated SCC — the power-law gather workload.

Builds a scale-free web-graph transition matrix, runs distributed
damped power iteration on the model, verifies against networkx, and
contrasts the gather locality of this workload with a FEM matrix of
the same size — the two ends of the spectrum the paper's testbed spans.

Run:  python examples/pagerank_graph.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.apps import graph_matrix, parallel_pagerank
from repro.core import SpMVExperiment
from repro.sparse import banded

N = 4000


def main() -> None:
    p = graph_matrix(N, 4, seed=12)
    print(f"Barabasi-Albert graph: n={N}, nnz={p.nnz} "
          f"(max degree {int(p.row_lengths().max())})\n")

    res = parallel_pagerank(p, n_ues=16, tol=1e-12)
    assert res.converged
    g = nx.barabasi_albert_graph(N, 4, seed=12)
    ref = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
    ref_arr = np.array([ref[i] for i in range(N)])
    err = np.abs(res.ranks - ref_arr).max()
    assert err < 1e-8
    print(f"converged in {res.iterations} sweeps, "
          f"{res.makespan * 1e3:.2f} ms simulated on 16 cores")
    print(f"max |rank - networkx|: {err:.2e}")
    top = np.argsort(res.ranks)[::-1][:5]
    print("top-5 nodes:", ", ".join(f"{i} ({res.ranks[i]:.4f})" for i in top))

    # Gather locality: the graph's SpMV vs an equally sized FEM matrix.
    fem = banded(N, p.nnz_per_row, max(int(N**0.5), 2), seed=12)
    graph_run = SpMVExperiment(p, name="graph").run(n_cores=16)
    fem_run = SpMVExperiment(fem, name="fem").run(n_cores=16)
    print(f"\nSpMV on 16 simulated cores:")
    print(f"  scale-free graph : {graph_run.mflops:7.1f} MFLOPS/s")
    print(f"  banded FEM       : {fem_run.mflops:7.1f} MFLOPS/s")
    print(f"  locality penalty : {fem_run.mflops / graph_run.mflops:.2f}x "
          "(the Sec. IV-C story, on a graph workload)")


if __name__ == "__main__":
    main()
