#!/usr/bin/env python
"""Programming the simulated SCC directly with the RCCE-style API.

Everything in the other examples goes through SpMVExperiment; this one
writes an RCCE program by hand — the way the paper's C code uses the
real library — implementing a parallel CSR SpMV with an explicit
row-block partition, a manual allgather of the result, and RCCE_wtime
timing, then cross-checks the answer against SciPy.

Run:  python examples/rcce_programming.py
"""

from __future__ import annotations

import numpy as np

from repro.core import distance_reduction_mapping
from repro.rcce import RCCERuntime
from repro.scc import CONF0
from repro.sparse import build_matrix, partition_rows_balanced, spmv_row_range

N_UES = 8


def spmv_program(comm, a, x, partition, results):
    """One UE of a hand-written RCCE SpMV (generator = RCCE program)."""
    t0 = comm.wtime()

    # Everybody computes its own row block (really, with NumPy).
    lo, hi = partition.part(comm.ue)
    block = spmv_row_range(a, x, lo, hi)

    # Model the kernel's execution time crudely: pretend 25 cycles/nnz
    # at 533 MHz (the calibrated model in repro.core does this properly).
    nnz_mine = int(a.ptr[hi] - a.ptr[lo])
    yield from comm.compute(25e-9 * nnz_mine * (533 / 533))

    # Ring allgather of the blocks: UE k sends its block around so every
    # UE ends with the full vector — a classic RCCE exercise.
    blocks = {comm.ue: block}
    right = (comm.ue + 1) % comm.num_ues
    left = (comm.ue - 1) % comm.num_ues
    current = block
    for _step in range(comm.num_ues - 1):
        if comm.ue % 2 == 0:  # break send/recv symmetry to avoid deadlock
            yield from comm.send(current, right)
            current = yield from comm.recv(left)
        else:
            incoming = yield from comm.recv(left)
            yield from comm.send(current, right)
            current = incoming
        owner = (comm.ue - 1 - _step) % comm.num_ues
        blocks[owner] = current

    yield from comm.barrier()
    elapsed = comm.wtime() - t0

    y = np.concatenate([blocks[k] for k in range(comm.num_ues)])
    results[comm.ue] = y
    return elapsed


def main() -> None:
    a = build_matrix(30, scale=0.5)  # Na5 stand-in
    x = np.random.default_rng(1).uniform(size=a.n_cols)
    partition = partition_rows_balanced(a, N_UES)

    core_map = distance_reduction_mapping(N_UES)
    print(f"running {N_UES} UEs on cores {core_map} "
          f"(matrix: {a.n_rows} rows, {a.nnz} nnz)")

    runtime = RCCERuntime(core_map, config=CONF0)
    results: dict[int, np.ndarray] = {}
    ue_results = runtime.run(spmv_program, a, x, partition, results)

    expected = a.to_scipy() @ x
    for ue in range(N_UES):
        assert np.allclose(results[ue], expected, rtol=1e-9), f"UE {ue} wrong!"
    print("all UEs hold the correct full product: OK")

    times = [r.value for r in ue_results]
    print(f"per-UE RCCE_wtime: min {min(times) * 1e3:.3f} ms, "
          f"max {max(times) * 1e3:.3f} ms")
    print(f"simulated makespan: {runtime.makespan(ue_results) * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
