#!/usr/bin/env python
"""Frequency and power study (Sec. IV-D) plus a custom configuration.

Runs a working-set-diverse trio of matrices under the three paper
configurations and under a user-defined asymmetric configuration
(half the tiles fast, half slow) to show the per-tile frequency domains
the SCC exposes.

Run:  python examples/frequency_power_study.py
"""

from __future__ import annotations

from repro.core import SpMVExperiment
from repro.core.metrics import average_gflops
from repro.scc import CONF0, CONF1, CONF2, SCCConfig
from repro.sparse import build_matrix, entry_by_id

MATRICES = [7, 25, 30]  # memory-bound, short-row, L2-resident


def main() -> None:
    experiments = []
    for mid in MATRICES:
        e = entry_by_id(mid)
        experiments.append(SpMVExperiment(build_matrix(mid, scale=0.5), name=e.name))

    # A custom config: quadrants 0/1 tiles at 800 MHz, the rest at 320 MHz.
    half_fast = SCCConfig(
        "half-fast",
        tile_mhz=tuple(800.0 if t % 6 < 3 else 320.0 for t in range(24)),
        mesh_mhz=1600,
        mem_mhz=800,
    )

    print(f"{'config':12s} {'cores/mesh/mem MHz':>22s} {'avg MFLOPS/s':>14s} "
          f"{'watts':>8s} {'MFLOPS/W':>10s}")
    for cfg in (CONF0, CONF1, CONF2, half_fast):
        results = [exp.run(n_cores=48, config=cfg) for exp in experiments]
        mflops = average_gflops(results) * 1000
        watts = cfg.full_chip_power()
        freqs = (
            f"{cfg.tile_mhz[0]:.0f}/{cfg.mesh_mhz:.0f}/{cfg.mem_mhz:.0f}"
            if cfg.is_uniform
            else f"mixed/{cfg.mesh_mhz:.0f}/{cfg.mem_mhz:.0f}"
        )
        print(f"{cfg.name:12s} {freqs:>22s} {mflops:14.1f} {watts:8.1f} "
              f"{mflops / watts:10.2f}")

    print("\nper-matrix speedup of conf1 over conf0 at 48 cores:")
    for exp in experiments:
        r0 = exp.run(n_cores=48, config=CONF0)
        r1 = exp.run(n_cores=48, config=CONF1)
        regime = "L2-resident" if r0.ws_per_core_bytes <= 256 * 1024 else "streaming"
        print(f"  {exp.name:10s} ({regime:11s}): {r0.makespan / r1.makespan:.2f}x")
    print("\n(compute-bound matrices track the 1.5x core clock; memory-bound "
          "ones track the 1.33x memory clock — the paper's 'up to 1.45'.)")


if __name__ == "__main__":
    main()
