#!/usr/bin/env python
"""Power-aware SpMV with the RCCE power-management API.

The paper's Sec. IV-D studies boot-time frequency configurations; the
SCC's real power API also works at *run time*.  This example runs a
deliberately imbalanced SpMV (uniform row split on a matrix with dense
rows) and compares two policies:

- ``race``: every island stays at 533 MHz; early finishers idle at the
  barrier at full speed and voltage;
- ``downshift``: a UE that finishes its block clocks its island down to
  100 MHz while it waits (a cheap transition: lowering voltage does not
  block on the SCC).

The makespan is identical — the critical path UE never downshifts —
while the chip burns less power during the wait.  With the SCC's large
static floor (~61 W) the saving is a few percent of energy: an honest
illustration of why race-to-idle wins on this chip unless islands can
be power-gated.

Run:  python examples/power_aware_spmv.py
"""

from __future__ import annotations

import numpy as np

from repro.core import distance_reduction_mapping
from repro.rcce import RCCERuntime
from repro.scc import CONF0
from repro.sparse import build_matrix, partition_rows_uniform, spmv_row_range

N_UES = 8
CYCLES_PER_NNZ = 25.0


def spmv_job(comm, a, x, partition, downshift, power_log):
    lo, hi = partition.part(comm.ue)
    nnz_mine = int(a.ptr[hi] - a.ptr[lo])
    _block = spmv_row_range(a, x, lo, hi)  # the real numerics
    yield from comm.compute_cycles(CYCLES_PER_NNZ * nnz_mine)
    finish = comm.wtime()
    if downshift:
        yield from comm.set_power(100)
        power_log.append((comm.wtime(), comm._rt.power.chip_power()))
    yield from comm.barrier()
    return (finish, comm.wtime())


def run_policy(a, x, partition, downshift: bool):
    rt = RCCERuntime(distance_reduction_mapping(N_UES), config=CONF0)
    power_log = [(0.0, rt.power.chip_power())]
    results = rt.run(spmv_job, a, x, partition, downshift, power_log)
    finishes = [r.value[0] for r in results]
    makespan = max(r.value[1] for r in results)  # barrier exit
    # Integrate the piecewise-constant chip power over [0, makespan].
    steps = sorted(power_log) + [(makespan, 0.0)]
    energy = sum(
        w * max(min(t1, makespan) - t0, 0.0)
        for (t0, w), (t1, _) in zip(steps, steps[1:])
    )
    return makespan, energy, finishes


def main() -> None:
    a = build_matrix(21, scale=0.4)  # 'fp': dense rows -> imbalance
    x = np.random.default_rng(3).uniform(size=a.n_cols)
    partition = partition_rows_uniform(a, N_UES)  # deliberately naive
    nnz = partition.part_nnz(a)
    print(f"matrix fp: {a.n_rows} rows, {a.nnz} nnz; uniform row split")
    print(f"per-UE nnz: min {nnz.min()}, max {nnz.max()} "
          f"(imbalance {nnz.max() / nnz.mean():.2f})\n")

    t_race, e_race, finishes = run_policy(a, x, partition, downshift=False)
    t_down, e_down, _ = run_policy(a, x, partition, downshift=True)

    slack = t_race - min(finishes)
    print(f"makespan, race      : {t_race * 1e3:.3f} ms")
    print(f"makespan, downshift : {t_down * 1e3:.3f} ms")
    print(f"earliest UE finish  : {min(finishes) * 1e3:.3f} ms "
          f"({slack / t_race * 100:.0f}% of the run is barrier wait)")
    print(f"energy, race        : {e_race * 1e3:.3f} mJ")
    print(f"energy, downshift   : {e_down * 1e3:.3f} mJ "
          f"({100 * (1 - e_down / e_race):.1f}% saved)")
    assert abs(t_down - t_race) / t_race < 0.02, "downshift must not stretch the critical path"
    assert e_down < e_race, "downshifting idle islands must save energy"
    print("\n(the static floor dominates SCC power, so run-time DVFS on idle "
          "islands trims only a few percent — the paper's boot-time choice "
          "of conf1 is the bigger lever)")


if __name__ == "__main__":
    main()
