#!/usr/bin/env python
"""Mapping study: why core placement matters on the SCC.

Reproduces the Sec. IV-A experiment interactively on one memory-bound
matrix: the per-hop latency penalty (Fig. 3) and the standard vs
distance-reduction mapping comparison (Fig. 5), then shows *where* each
mapping puts the UEs on the chip with an ASCII floorplan.

Run:  python examples/mapping_study.py
"""

from __future__ import annotations

from repro.core import (
    SpMVExperiment,
    distance_reduction_mapping,
    single_core_at_distance,
    standard_mapping,
)
from repro.scc import GRID_X, GRID_Y, SCCTopology
from repro.sparse import build_matrix, entry_by_id


def floorplan(core_map: list[int], topology: SCCTopology) -> str:
    """ASCII map of the chip; '##' marks tiles with active cores."""
    active = {topology.tile_of_core(c).tile_id for c in core_map}
    rows = []
    for y in reversed(range(GRID_Y)):
        cells = []
        for x in range(GRID_X):
            t = topology.tile_at(x, y)
            cells.append(f"{t.tile_id:02d}" if t.tile_id in active else "..")
        marker = " <MC" if (0, y) in topology.mc_coords or (GRID_X - 1, y) in topology.mc_coords else ""
        rows.append(" ".join(cells) + marker)
    return "\n".join(rows)


def main() -> None:
    topology = SCCTopology()
    entry = entry_by_id(7)  # sme3Dc: large working set, memory-bound
    a = build_matrix(entry.mid, scale=0.5)
    exp = SpMVExperiment(a, name=entry.name)
    print(f"matrix {entry.name}: {a.n_rows} rows, {a.nnz} nonzeros\n")

    print("-- Fig. 3: one core at increasing distance from its memory controller --")
    base = None
    for hops in range(4):
        r = exp.run(n_cores=1, mapping=single_core_at_distance(hops, topology))
        base = base or r.mflops
        print(f"  {hops} hops: {r.mflops:6.1f} MFLOPS/s "
              f"({100 * (1 - r.mflops / base):+.1f}%)")

    print("\n-- Fig. 5: standard vs distance-reduction mapping --")
    for n in (4, 8, 16, 24, 32, 48):
        std = exp.run(n_cores=n, mapping="standard")
        dr = exp.run(n_cores=n, mapping="distance_reduction")
        print(f"  {n:2d} cores: standard {std.mflops:7.1f}  "
              f"distance-reduction {dr.mflops:7.1f}  "
              f"speedup {std.makespan / dr.makespan:.3f}")

    print("\n-- where 8 UEs land (active tiles marked, MC rows tagged) --")
    print("standard mapping (cores 0-7 cram into one quadrant):")
    print(floorplan(standard_mapping(8), topology))
    print("\ndistance-reduction mapping (2 UEs next to each controller):")
    print(floorplan(distance_reduction_mapping(8, topology), topology))


if __name__ == "__main__":
    main()
