#!/usr/bin/env python
"""Recovering gather locality with reverse Cuthill-McKee.

Sec. IV-C of the paper blames the SCC's SpMV shortfall on the irregular
x gather.  This example shows the classic fix for matrices that *have*
latent structure: take a banded FEM matrix, scramble its numbering (as
unstructured mesh generators do), watch the gather misses explode on
the SCC model, then reorder with RCM and watch them come back.

Run:  python examples/reordering_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SpMVExperiment
from repro.sparse import (
    bandwidth,
    build_matrix,
    gather_locality_gain,
    mean_column_distance,
    permute_symmetric,
    reverse_cuthill_mckee,
)


def report(tag: str, a, n_cores: int = 8) -> float:
    exp = SpMVExperiment(a, name=tag)
    r = exp.run(n_cores=n_cores)
    print(f"  {tag:22s} bandwidth {bandwidth(a):6d}  "
          f"mean |i-j| {mean_column_distance(a):8.1f}  "
          f"SpMV {r.mflops:7.1f} MFLOPS/s")
    return r.makespan


def main() -> None:
    a = build_matrix(20, scale=0.5)  # sme3Da: banded FEM stand-in
    print(f"matrix sme3Da: {a.n_rows} rows, {a.nnz} nonzeros, 8 cores, conf0\n")

    rng = np.random.default_rng(99)
    scrambled = permute_symmetric(a, rng.permutation(a.n_rows))
    perm = reverse_cuthill_mckee(scrambled)
    restored = permute_symmetric(scrambled, perm)

    t_orig = report("original (banded)", a)
    t_scram = report("scrambled numbering", scrambled)
    t_rcm = report("after RCM", restored)

    # Evaluate at an L1-share capacity (256 lines = 8 KB): the band fits
    # an L1 window, the scrambled gather does not.
    before, after = gather_locality_gain(scrambled, restored, cache_lines=256)
    print(f"\npredicted x-gather misses per pass: {before} -> {after} "
          f"({100 * (1 - after / max(before, 1)):.0f}% fewer)")
    print(f"scrambling cost  : {t_scram / t_orig:.2f}x slowdown")
    print(f"RCM recovery     : {t_scram / t_rcm:.2f}x speedup over scrambled")
    print(f"residual vs orig : {t_rcm / t_orig:.2f}x "
          "(RCM cannot beat the native FEM numbering, only approach it)")


if __name__ == "__main__":
    main()
