#!/usr/bin/env python
"""Resumable experiment campaigns: sweep, interrupt, resume, analyze.

Research sweeps die halfway through; the Campaign API persists each
completed grid point to a JSONL file so a rerun picks up where the
last one stopped.  This example sweeps three matrices across core
counts and both mappings, 'interrupts' itself after the first half,
resumes, and then summarizes the records — all against the SCC model.

Run:  python examples/campaign_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import Campaign

IDS = [7, 25, 30]                 # sme3Dc, ncvxbqp1, Na5
CORE_COUNTS = [4, 16, 48]
MAPPINGS = ["standard", "distance_reduction"]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_campaign_"))
    grid = Campaign.grid(IDS, CORE_COUNTS, mappings=MAPPINGS)
    print(f"grid: {len(grid)} points -> {workdir}/sweep.jsonl\n")

    # First session: run only half the grid, then 'crash'.
    first = Campaign("sweep", workdir, scale=0.3, iterations=8)
    ran, skipped = first.run(grid[: len(grid) // 2])
    print(f"session 1: ran {ran}, skipped {skipped} (then interrupted)")

    # Second session: same grid; completed points are skipped.
    second = Campaign("sweep", workdir, scale=0.3, iterations=8)
    ran, skipped = second.run(grid)
    print(f"session 2: ran {ran}, skipped {skipped} (resume worked)\n")

    records = second.load()
    assert len(records) == len(grid)

    print("mean MFLOPS/s by core count (all matrices, both mappings):")
    for cores, mflops in second.summarize(group_by="n_cores").items():
        print(f"  {cores:2d} cores: {mflops:8.1f}")

    print("\nmean MFLOPS/s by mapping:")
    for mapping, mflops in second.summarize(group_by="mapping").items():
        print(f"  {mapping:18s}: {mflops:8.1f}")

    by_matrix = second.summarize(group_by="matrix")
    print("\nmean MFLOPS/s by matrix:")
    for name, mflops in by_matrix.items():
        print(f"  {name:10s}: {mflops:8.1f}")

    print(f"\nrecords persisted at {second.path} — rerun this script and "
          "every point will be skipped.")


if __name__ == "__main__":
    main()
