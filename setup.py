"""Setuptools shim.

The canonical build configuration lives in pyproject.toml; this file
exists so that environments without the `wheel` package (no PEP-660
editable support) can still `pip install -e . --no-use-pep517`.
"""

from setuptools import setup

setup()
