"""Extension E2 — register blocking (BCSR) traffic analysis.

The paper's Sec. V discusses Williams et al.'s register/cache blocking
as the canonical SpMV optimization.  On a bandwidth-starved chip like
the SCC the win is *traffic*: one block index per r x c block instead
of one per nonzero, bought with fill-in.  This benchmark evaluates the
trade on the testbed's block-structured vs scattered matrices and
checks the kernel's numerics.
"""

from __future__ import annotations

import numpy as np

from repro.core import SpMVExperiment, banner, format_table
from repro.core.blocked import run_bcsr_timing
from repro.sparse import build_matrix, entry_by_id
from repro.sparse.bcsr import BCSRMatrix, bcsr_traffic_bytes, csr_traffic_bytes

from conftest import bench_iterations, bench_scale

BLOCKY_IDS = [6, 12, 30]      # nd3k, crystk03, Na5: dense substructure
SCATTERED_IDS = [14, 25]      # sparsine, ncvxbqp1: no block structure
SHAPES = [(2, 2), (4, 4)]


def bcsr_data(scale: float):
    rows = []
    for mid in BLOCKY_IDS + SCATTERED_IDS:
        e = entry_by_id(mid)
        a = build_matrix(mid, scale=min(scale, 0.3))
        csr_bytes = csr_traffic_bytes(a.nnz, a.n_rows)
        row = {"id": mid, "name": e.name, "csr KB": csr_bytes / 1024}
        for r, c in SHAPES:
            b = BCSRMatrix.from_csr(a, r, c)
            row[f"fill {r}x{c}"] = b.fill_ratio()
            row[f"traffic {r}x{c}"] = bcsr_traffic_bytes(b) / csr_bytes
        rows.append(row)
    return rows


def test_ext_bcsr_traffic(benchmark, capsys, scale):
    rows = benchmark.pedantic(lambda: bcsr_data(scale), rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Extension E2: BCSR register blocking — traffic ratio vs CSR"))
        cols = ["id", "name", "csr KB"]
        for r, c in SHAPES:
            cols += [f"fill {r}x{c}", f"traffic {r}x{c}"]
        print(
            format_table(
                rows,
                cols,
                caption="traffic ratio < 1 means blocking saves memory traffic",
            )
        )
    by_id = {r["id"]: r for r in rows}
    # Block-structured matrices: some shape must save traffic.
    for mid in BLOCKY_IDS:
        assert min(by_id[mid][f"traffic {r}x{c}"] for r, c in SHAPES) < 1.0
    # Scattered matrices: blocking always loses.
    for mid in SCATTERED_IDS:
        assert all(by_id[mid][f"traffic {r}x{c}"] > 1.0 for r, c in SHAPES)


def simulated_bcsr_data(scale: float, iterations: int):
    rows = []
    for mid in BLOCKY_IDS + SCATTERED_IDS:
        e = entry_by_id(mid)
        a = build_matrix(mid, scale=min(scale, 0.5))
        csr = SpMVExperiment(a, name=e.name).run(n_cores=24, iterations=iterations)
        row = {"id": mid, "name": e.name, "CSR MFLOPS": csr.mflops}
        for r, c in SHAPES:
            b = BCSRMatrix.from_csr(a, r, c)
            res = run_bcsr_timing(b, n_cores=24, iterations=iterations)
            row[f"BCSR {r}x{c} MFLOPS"] = res.mflops
        rows.append(row)
    return rows


def test_ext_bcsr_simulated_performance(benchmark, capsys, scale):
    """Would register blocking have paid on the SCC?  Yes for the
    block-structured families, catastrophically not for scattered ones."""
    rows = benchmark.pedantic(
        lambda: simulated_bcsr_data(scale, bench_iterations()), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner("Extension E2b: simulated CSR vs BCSR SpMV on 24 SCC cores"))
        cols = ["id", "name", "CSR MFLOPS"] + [f"BCSR {r}x{c} MFLOPS" for r, c in SHAPES]
        print(format_table(rows, cols, floatfmt=".1f"))
    by_id = {r["id"]: r for r in rows}
    for mid in BLOCKY_IDS:
        best = max(by_id[mid][f"BCSR {r}x{c} MFLOPS"] for r, c in SHAPES)
        assert best > by_id[mid]["CSR MFLOPS"]
    for mid in SCATTERED_IDS:
        worst = min(by_id[mid][f"BCSR {r}x{c} MFLOPS"] for r, c in SHAPES)
        assert worst < by_id[mid]["CSR MFLOPS"]


def test_ext_bcsr_kernel_correctness(benchmark, scale):
    """The blocked kernel's numerics under benchmark timing."""
    a = build_matrix(12, scale=min(scale, 0.2))
    b = BCSRMatrix.from_csr(a, 4, 4)
    x = np.random.default_rng(0).uniform(size=a.n_cols)
    y = benchmark(b.spmv, x)
    np.testing.assert_allclose(y, a.to_scipy() @ x, rtol=1e-9)
