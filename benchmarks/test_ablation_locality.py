"""Ablation A2 — the locality model against the exact cache simulator.

Validates the footprint-based gather-miss prediction against the exact
4-way pseudo-LRU simulator on real suite x-streams (small scale), and
sweeps the ``x_capacity_fraction`` modeling constant to show the Fig. 8
conclusion is insensitive to it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import banner, format_table
from repro.core.experiment import SpMVExperiment
from repro.scc import Cache, miss_ratio_curve
from repro.sparse import build_matrix

VALIDATION_IDS = [24, 30, 32]  # small stand-ins: exact sim is feasible
SCALE = 0.05


def locality_validation():
    rows = []
    for mid in VALIDATION_IDS:
        a = build_matrix(mid, scale=SCALE)
        x_lines = a.index // 4  # 4 doubles per 32 B line
        capacity_lines = 256  # 8 KB worth of 32 B lines
        cache = Cache(size_bytes=capacity_lines * 32, assoc=4, line_bytes=32)
        exact = cache.access_trace(x_lines.astype(np.int64) * 32)
        model = miss_ratio_curve(x_lines).misses(capacity_lines)
        rows.append(
            {
                "id": mid,
                "accesses": int(x_lines.size),
                "exact misses": exact,
                "model misses": model,
                "rel err %": 100 * abs(model - exact) / max(exact, 1),
            }
        )
    return rows


def test_ablation_locality_model_vs_exact(benchmark, capsys):
    rows = benchmark.pedantic(locality_validation, rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Ablation A2a: footprint model vs exact 4-way pseudo-LRU"))
        print(
            format_table(
                rows,
                ["id", "accesses", "exact misses", "model misses", "rel err %"],
                caption="x-gather line streams of small suite matrices",
                floatfmt=".1f",
            )
        )
    for r in rows:
        assert r["rel err %"] < 20.0, f"matrix {r['id']}: model diverged from exact sim"


@pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
def test_ablation_x_capacity_fraction(benchmark, capsys, fraction):
    """The short-row no-x-miss speedup (Fig. 8's headline) survives any
    reasonable choice of the cache-sharing constant."""
    a = build_matrix(25, scale=0.3)  # ncvxbqp1: scattered short rows

    def speedup():
        exp = SpMVExperiment(a, name="ncvxbqp1", x_capacity_fraction=fraction)
        base = exp.run(n_cores=8)
        nox = exp.run(n_cores=8, kernel="no_x_miss")
        return base.makespan / nox.makespan

    s = benchmark.pedantic(speedup, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"A2b: x_capacity_fraction={fraction}: "
            f"no-x-miss speedup on ncvxbqp1 = {s:.2f}"
        )
    assert s > 1.3
