"""Figure 5 — standard vs distance-reduction mapping across core counts.

Regenerates the suite-average performance of both mappings for 1..48
cores plus the speedup series.  Paper findings: the distance-reduction
mapping wins at every intermediate core count (up to ~1.23x on the
suite average), the two mappings coincide at 1-2 cores and use the same
core set at 48.
"""

from __future__ import annotations

from repro.core import banner, format_series
from repro.core.figures import FIG5_CORE_COUNTS, fig5_data

from conftest import bench_iterations, suite_experiments


def test_fig5_mapping_comparison(benchmark, capsys, scale):
    std_avg, dr_avg = benchmark.pedantic(
        lambda: fig5_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )
    speedup = [d / s for d, s in zip(dr_avg, std_avg)]
    with capsys.disabled():
        print(banner(f"Fig. 5: mapping configurations (scale={scale})"))
        print(
            format_series(
                "cores",
                FIG5_CORE_COUNTS,
                {
                    "standard MFLOPS/s": std_avg,
                    "dist-reduction MFLOPS/s": dr_avg,
                    "speedup": speedup,
                },
                caption="suite-average, conf0 (paper: speedups up to 1.23)",
            )
        )
    # 1-2 cores: identical core sets -> identical performance.
    assert speedup[0] == 1.0 and abs(speedup[1] - 1.0) < 1e-9
    # Distance reduction never loses and wins somewhere in the middle.
    assert all(s >= 0.98 for s in speedup)
    assert max(speedup[2:7]) > 1.05
