"""Extension E3 — RCCE collective cost curves on the modeled mesh.

The RCCE paper (ref. [3]) characterizes the library by point-to-point
latency/bandwidth and collective scaling; this benchmark produces the
same curves for the model: message time vs size (MPB chunking visible
as a slope change), and barrier/allreduce latency vs UE count under
both mesh clocks.
"""

from __future__ import annotations

import numpy as np

from repro.core import banner, format_series
from repro.core.mapping import distance_reduction_mapping
from repro.rcce import MPB_BYTES_PER_CORE, RCCERuntime
from repro.scc import CONF0, CONF1

SIZES = [64, 1024, MPB_BYTES_PER_CORE, 8 * MPB_BYTES_PER_CORE, 64 * MPB_BYTES_PER_CORE]
UE_COUNTS = [2, 4, 8, 16, 32, 48]


def p2p_curve(config):
    times = []
    for size in SIZES:
        def fn(comm, size=size):
            if comm.ue == 0:
                yield from comm.send(np.zeros(size // 8), dest=1)
            else:
                yield from comm.recv(source=0)

        rt = RCCERuntime([0, 47], config=config)
        rt.run(fn)
        times.append(rt.sim.now * 1e6)
    return times


def collective_curve(config):
    barrier_us, allreduce_us = [], []
    for n in UE_COUNTS:
        def barrier_fn(comm):
            yield from comm.barrier()

        def allreduce_fn(comm):
            yield from comm.allreduce(np.ones(128))

        rt = RCCERuntime(distance_reduction_mapping(n), config=config)
        rt.run(barrier_fn)
        barrier_us.append(rt.sim.now * 1e6)
        rt2 = RCCERuntime(distance_reduction_mapping(n), config=config)
        rt2.run(allreduce_fn)
        allreduce_us.append(rt2.sim.now * 1e6)
    return barrier_us, allreduce_us


def test_ext_p2p_message_cost(benchmark, capsys):
    slow = p2p_curve(CONF0)
    fast = benchmark.pedantic(lambda: p2p_curve(CONF1), rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Extension E3a: corner-to-corner message time vs size"))
        print(
            format_series(
                "bytes",
                SIZES,
                {"mesh 800MHz (us)": slow, "mesh 1.6GHz (us)": fast},
                caption="core 0 -> core 47; MPB chunking kicks in past 8 KB",
            )
        )
    # Cost grows with size; the fast mesh is strictly faster.
    assert slow == sorted(slow)
    assert all(f < s for f, s in zip(fast, slow))
    # Chunked transfers pay per-chunk headers: past the MPB size the
    # per-byte cost stops improving.
    per_byte_small = slow[1] / SIZES[1]
    per_byte_large = slow[-1] / SIZES[-1]
    assert per_byte_large >= per_byte_small * 0.5


def test_ext_collective_scaling(benchmark, capsys):
    barrier_us, allreduce_us = benchmark.pedantic(
        lambda: collective_curve(CONF0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner("Extension E3b: collective latency vs UE count (conf0)"))
        print(
            format_series(
                "UEs",
                UE_COUNTS,
                {"barrier (us)": barrier_us, "allreduce 1KB (us)": allreduce_us},
                caption="binomial trees: ~log2(n) growth",
            )
        )
    # Logarithmic round count, but each round's messages also travel
    # farther as the job spreads over the mesh: sub-linear overall
    # (a flat linear algorithm over the same spread would cost ~24x
    # the rounds alone; we allow amply less than rounds x distance).
    assert barrier_us[-1] > barrier_us[0]
    assert barrier_us[-1] < 32 * barrier_us[0]
    assert barrier_us[-1] < 2.0  # microseconds: sane absolute scale
    assert all(a >= b for a, b in zip(allreduce_us, barrier_us))
