"""Table I — the matrix benchmark suite.

Regenerates the testbed table: id, name, rows, nonzeros, nnz/n and
working set, at the configured scale.  The benchmark times suite
construction (generator + CSR assembly throughput).
"""

from __future__ import annotations

from repro.core import banner, format_table
from repro.core.figures import table1_data
from repro.sparse import build_matrix

from conftest import bench_ids, suite_experiments


def test_table1_matrix_suite(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: table1_data(suite_experiments()),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print(banner(f"Table I: matrix benchmark suite (scale={scale})"))
        print(
            format_table(
                rows,
                ["id", "name", "n", "nnz", "nnz_per_row", "ws_mbytes", "family"],
                caption="32 square sparse matrices (synthetic stand-ins for the UFL set)",
            )
        )
    assert len(rows) == (32 if bench_ids() is None else len(bench_ids()))
    per_core24 = [r["ws_mbytes"] * 1024 / 24 for r in rows]
    # The suite must straddle the 256 KB L2 boundary for Fig. 6 to exist.
    assert any(ws < 256 for ws in per_core24)
    assert any(ws > 256 for ws in per_core24)


def test_matrix_generation_throughput(benchmark, scale):
    """Construction speed of a mid-size suite matrix (crystk03)."""

    def build_fresh():
        build_matrix.cache_clear()  # time real construction, not memoization
        return build_matrix(12, scale=min(scale, 0.2))

    result = benchmark(build_fresh)
    assert result.nnz > 0
