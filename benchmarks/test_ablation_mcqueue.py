"""Ablation A3 — closed-form MC equilibrium vs event-driven queueing.

Every figure in this harness leans on the timing solver's closed-form
bandwidth-sharing equilibrium.  This benchmark replays representative
controller workloads through an actual FIFO queue simulation
(:mod:`repro.scc.mcqueue`) and reports the disagreement — the error bar
on everything else.
"""

from __future__ import annotations

from repro.core import banner, format_table
from repro.core.timing import _controller_line_time
from repro.scc.mcqueue import CoreWorkload, simulate_controller
from repro.scc.params import MC_BANDWIDTH_BYTES_PER_SEC_AT_800

CAPACITY = MC_BANDWIDTH_BYTES_PER_SEC_AT_800 / 32  # lines/sec at conf0

#: (label, cores on the controller, compute seconds, lines each)
SCENARIOS = [
    ("1 core, light", 1, 0.010, 50_000),
    ("4 cores, mild", 4, 0.010, 50_000),
    ("12 cores, mild", 12, 0.010, 50_000),
    ("12 cores, heavy", 12, 0.002, 120_000),
    ("12 cores, memory-only", 12, 0.0005, 150_000),
]

LATENCY = 132.5e-9  # Eq. 1 at conf0, 0 hops


def mcqueue_data():
    rows = []
    for label, n, compute, lines in SCENARIOS:
        wl = CoreWorkload(compute_time=compute, n_lines=lines, latency=LATENCY)
        event = max(simulate_controller([wl] * n, CAPACITY))
        t_star = _controller_line_time(
            [compute] * n, [float(lines)] * n, [LATENCY] * n, CAPACITY
        )
        closed = compute + lines * max(t_star, LATENCY)
        rows.append(
            {
                "scenario": label,
                "event-driven ms": event * 1e3,
                "closed-form ms": closed * 1e3,
                "error %": 100 * abs(closed - event) / event,
            }
        )
    return rows


def test_ablation_mcqueue_agreement(benchmark, capsys):
    rows = benchmark.pedantic(mcqueue_data, rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Ablation A3: closed-form MC equilibrium vs event-driven queue"))
        print(
            format_table(
                rows,
                ["scenario", "event-driven ms", "closed-form ms", "error %"],
                caption="per-controller makespan at conf0 capacity",
                floatfmt=".2f",
            )
        )
    for r in rows:
        assert r["error %"] < 10.0, f"{r['scenario']}: closed form diverged"
