"""Extension E5 — why the paper partitions by nonzeros, not rows.

Sec. IV states the partitioning scheme "splits the matrix row-wise in
such a way that the same amount of nonzeros would be assigned to each
unit of execution".  This benchmark quantifies the alternative: an
equal-row split on the suite's skewed matrices (dense-row families)
leaves one UE holding most of the work, and the barrier makes everyone
wait for it.
"""

from __future__ import annotations

import numpy as np

from repro.core import SpMVExperiment, banner, format_table
from repro.sparse import COOMatrix, build_matrix, entry_by_id

from conftest import bench_iterations

SKEWED_IDS = [21]        # fp: dense rows concentrated enough to skew
UNIFORM_IDS = [7, 14]    # sme3Dc, sparsine: even row lengths
N_CORES = 24
SCALE_CAP = 0.4


def arrowhead(n: int, dense_rows: int, seed: int = 5):
    """Textbook imbalance case: the last rows are nearly dense."""
    rng = np.random.default_rng(seed)
    diag = np.arange(n, dtype=np.int64)
    rows = [diag]
    cols = [diag]
    for k in range(dense_rows):
        r = n - 1 - k
        c = rng.choice(n, size=n // 2, replace=False)
        rows.append(np.full(c.size, r, dtype=np.int64))
        cols.append(c.astype(np.int64))
    rr = np.concatenate(rows)
    cc = np.concatenate(cols)
    return COOMatrix(n, n, rr, cc, rng.uniform(0.5, 1.5, rr.size)).to_csr()


def matrices():
    for mid in SKEWED_IDS + UNIFORM_IDS:
        e = entry_by_id(mid)
        yield mid, e.name, build_matrix(mid, scale=SCALE_CAP)
    yield 0, "arrowhead", arrowhead(20_000, 60)


def partitioning_data(iterations: int):
    rows = []
    for mid, name, a in matrices():
        balanced = SpMVExperiment(a, name=name, partitioner="balanced")
        uniform = SpMVExperiment(a, name=name, partitioner="uniform")
        rb = balanced.run(n_cores=N_CORES, iterations=iterations)
        ru = uniform.run(n_cores=N_CORES, iterations=iterations)
        rows.append(
            {
                "id": mid,
                "name": name,
                "imbalance uniform": uniform.partition(N_CORES).imbalance(a),
                "imbalance balanced": balanced.partition(N_CORES).imbalance(a),
                "MFLOPS uniform": ru.mflops,
                "MFLOPS balanced": rb.mflops,
                "speedup": ru.makespan / rb.makespan,
            }
        )
    return rows


def test_ext_partitioning(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: partitioning_data(bench_iterations()), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner("Extension E5: balanced-nnz vs equal-rows partitioning"))
        print(
            format_table(
                rows,
                [
                    "id", "name",
                    "imbalance uniform", "imbalance balanced",
                    "MFLOPS uniform", "MFLOPS balanced", "speedup",
                ],
                caption=f"{N_CORES} cores, conf0 (speedup = balanced over uniform)",
                floatfmt=".2f",
            )
        )
    by_id = {r["id"]: r for r in rows}
    for mid in SKEWED_IDS + [0]:
        r = by_id[mid]
        assert r["imbalance uniform"] > 1.5
        assert r["imbalance balanced"] < 1.2
        assert r["speedup"] > 1.2  # the paper's scheme matters here
    for mid in UNIFORM_IDS:
        # Even-row-length matrices barely care.
        assert 0.9 < by_id[mid]["speedup"] < 1.3
