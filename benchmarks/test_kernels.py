"""Micro-benchmarks of the library's hot paths (pytest-benchmark).

Not a paper figure: these track the real-machine throughput of the
kernels and analyses everything else is built on, so regressions in the
vectorized code paths are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import characterize_partition
from repro.scc import miss_ratio_curve
from repro.sparse import build_matrix, partition_rows_balanced, spmv, spmv_no_x_miss


@pytest.fixture(scope="module")
def matrix():
    return build_matrix(12, scale=0.3)  # crystk03 stand-in, ~500k nnz


@pytest.fixture(scope="module")
def x(matrix):
    return np.random.default_rng(0).uniform(size=matrix.n_cols)


def test_bench_spmv_vectorized(benchmark, matrix, x):
    y = benchmark(spmv, matrix, x)
    np.testing.assert_allclose(y, matrix.to_scipy() @ x, rtol=1e-9)


def test_bench_spmv_scipy_reference(benchmark, matrix, x):
    """SciPy's C implementation: the speed-of-light reference point."""
    sp = matrix.to_scipy()
    benchmark(lambda: sp @ x)


def test_bench_spmv_no_x_miss(benchmark, matrix, x):
    benchmark(spmv_no_x_miss, matrix, x)


def test_bench_partitioning(benchmark, matrix):
    p = benchmark(partition_rows_balanced, matrix, 48)
    assert p.n_parts == 48


def test_bench_locality_analysis(benchmark, matrix):
    """Reuse + footprint + MRC over the full x-gather stream."""
    lines = (matrix.index // 4).astype(np.int64)
    mrc = benchmark(miss_ratio_curve, lines)
    assert mrc.profile.n_accesses == matrix.nnz


def test_bench_characterize_partition(benchmark, matrix):
    part = partition_rows_balanced(matrix, 48)
    traces = benchmark.pedantic(
        characterize_partition, args=(matrix, part), rounds=2, iterations=1
    )
    assert len(traces) == 48
