"""Robustness R1 — conclusions must not depend on the generator seed.

The testbed is synthetic; if a headline finding flipped under a
different random draw of the same pattern family, it would be an
artifact of the stand-ins rather than of the architecture.  This
benchmark re-derives three key effects under three seeds each.
"""

from __future__ import annotations

from repro.core import SpMVExperiment, banner, format_table, single_core_at_distance
from repro.sparse.suite import build_matrix, entry_by_id

from conftest import bench_iterations

SEEDS = [20120101, 4242, 777]
SCALE = 0.3


def seed_data(iterations: int):
    rows = []
    for seed in SEEDS:
        # Fresh matrices per seed (bypass the lru_cache key via seed arg).
        sme3dc = SpMVExperiment(build_matrix(7, SCALE, seed), name="sme3Dc")
        ncvx = SpMVExperiment(build_matrix(25, SCALE, seed), name="ncvxbqp1")
        na5 = SpMVExperiment(build_matrix(30, SCALE, seed), name="Na5")

        hop0 = sme3dc.run(n_cores=1, mapping=single_core_at_distance(0), iterations=iterations)
        hop3 = sme3dc.run(n_cores=1, mapping=single_core_at_distance(3), iterations=iterations)
        base = ncvx.run(n_cores=8, iterations=iterations)
        nox = ncvx.run(n_cores=8, kernel="no_x_miss", iterations=iterations)
        std = sme3dc.run(n_cores=16, mapping="standard", iterations=iterations)
        dr = sme3dc.run(n_cores=16, mapping="distance_reduction", iterations=iterations)
        resident = na5.run(n_cores=24, iterations=iterations)

        rows.append(
            {
                "seed": seed,
                "hop3 deg %": 100 * (1 - hop3.mflops / hop0.mflops),
                "no-x speedup": base.makespan / nox.makespan,
                "mapping speedup": std.makespan / dr.makespan,
                "resident MFLOPS": resident.mflops,
            }
        )
    return rows


def test_robustness_across_seeds(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: seed_data(bench_iterations()), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner("Robustness R1: key effects under three generator seeds"))
        print(
            format_table(
                rows,
                ["seed", "hop3 deg %", "no-x speedup", "mapping speedup", "resident MFLOPS"],
                caption="each effect must hold for every seed",
                floatfmt=".2f",
            )
        )
    for r in rows:
        assert 5.0 < r["hop3 deg %"] < 25.0          # Fig. 3 effect
        assert r["no-x speedup"] > 1.3               # Fig. 8 short-row effect
        assert r["mapping speedup"] > 1.05           # Fig. 5 effect
        assert r["resident MFLOPS"] > 600            # Fig. 6 boost
    # And the effects are quantitatively stable (spread < 15%).
    for key in ("hop3 deg %", "no-x speedup", "mapping speedup"):
        vals = [r[key] for r in rows]
        assert max(vals) / min(vals) < 1.15
