"""Ablation A4 — calibration sensitivity of the headline effects.

Perturbs each calibrated P54C constant by ±25 % and re-derives the
four headline effects.  Every effect must keep its direction (and stay
within a factor-of-two band of its nominal size) across the sweep —
otherwise the reproduction would be reporting its own tuning.
"""

from __future__ import annotations

from repro.core import banner, format_table
from repro.core.sensitivity import measure_effects, sensitivity_sweep
from repro.sparse import build_matrix

from conftest import bench_iterations

SCALE = 0.4


def sweep():
    streaming = build_matrix(7, scale=SCALE)   # sme3Dc: memory-bound
    short_row = build_matrix(25, scale=SCALE)  # ncvxbqp1: short rows
    nominal = measure_effects(streaming, short_row, iterations=bench_iterations())
    rows = sensitivity_sweep(streaming, short_row, iterations=bench_iterations())
    return nominal, rows


def test_ablation_sensitivity(benchmark, capsys):
    nominal, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Ablation A4: +/-25% perturbation of calibrated constants"))
        print(
            format_table(
                rows,
                ["param", "factor", "hop3 deg", "mapping speedup", "no-x speedup", "conf1 speedup"],
                caption=f"nominal effects: {', '.join(f'{k}={v:.3f}' for k, v in nominal.as_dict().items())}",
            )
        )
    for r in rows:
        # Directions must survive every perturbation.
        assert r["hop3 deg"] > 0.04
        assert r["mapping speedup"] > 1.05
        assert r["no-x speedup"] > 1.2
        assert r["conf1 speedup"] > 1.1
        # Magnitudes stay within a factor of ~2 of nominal.
        for key, nom in nominal.as_dict().items():
            span = (r[key] - 1) / (nom - 1) if nom != 1 else 1.0
            if key == "hop3 deg":
                span = r[key] / nominal.hop3_degradation
            assert 0.5 < span < 2.0, f"{r['param']} x{r['factor']}: {key} moved {span:.2f}x"
