"""Figure 8 — impact of the irregular accesses on vector x.

Compares the CSR kernel against the 'no x misses' variant (every gather
reads x[0]) per matrix and core count.  Paper findings: speedup >1.1 on
more than half the suite; the short-row matrices 24/25 exceed 2x; the
best speedups belong to the matrices that perform worst originally.
"""

from __future__ import annotations

import numpy as np

from repro.core import banner, format_table
from repro.core.figures import FIG6_CORE_COUNTS as CORE_COUNTS
from repro.core.figures import fig8_data

from conftest import bench_iterations, suite_experiments


def test_fig8_irregular_accesses(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: fig8_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print(banner(f"Fig. 8: no-x-miss kernel speedup (scale={scale})"))
        cols = ["id", "name"] + [f"speedup@{n}" for n in CORE_COUNTS]
        print(
            format_table(
                rows,
                cols,
                caption="SpMV vs SpMV-with-no-x-misses (paper: >1.1 on >50% "
                "of the suite; >2 for matrices 24 and 25)",
            )
        )

    # No kernel gets slower by dropping gather misses.
    all_speedups = [r[f"speedup@{n}"] for r in rows for n in CORE_COUNTS]
    assert min(all_speedups) >= 0.999

    # A substantial share of the suite is gather-bound somewhere.
    frac_above = np.mean([max(r[f"speedup@{n}"] for n in CORE_COUNTS) > 1.1 for r in rows])
    assert frac_above >= 0.4

    # The short-row matrices show the largest speedups.
    by_id = {r["id"]: r for r in rows}
    if 24 in by_id and 25 in by_id:
        others = [
            np.mean([r[f"speedup@{n}"] for n in CORE_COUNTS])
            for r in rows
            if r["id"] not in (24, 25)
        ]
        for mid in (24, 25):
            mine = np.mean([by_id[mid][f"speedup@{n}"] for n in CORE_COUNTS])
            assert mine > np.mean(others)

    # Speedup correlates with poor baseline performance (paper Sec. IV-C).
    base = np.array([r["MFLOPS@24"] for r in rows])
    spd = np.array([r["speedup@24"] for r in rows])
    if len(rows) > 5:
        corr = np.corrcoef(base, spd)[0, 1]
        assert corr < 0.2  # negative-or-flat relationship
