"""Figure 10 — architectural comparison.

Suite-average SpMV throughput and MFLOPS/W of the modeled SCC (conf0
and conf1) against roofline models of Itanium2 Montvale, Xeon X5570,
Opteron 6174, Tesla C1060 and Tesla M2050.  Paper findings: the SCC
beats only the Itanium2 on both axes; the M2050 leads with
7.9 GFLOPS/s (7.6x SCC conf0) and ~35 MFLOPS/W.
"""

from __future__ import annotations

from repro.core import banner, format_table
from repro.core.figures import fig10_data

from conftest import bench_iterations, suite_experiments


def test_fig10_architectural_comparison(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: fig10_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )
    rows_sorted = sorted(rows, key=lambda r: r["gflops"])
    with capsys.disabled():
        print(banner(f"Fig. 10: architectural comparison (scale={scale})"))
        print(
            format_table(
                rows_sorted,
                ["system", "gflops", "watts", "mflops_per_watt", "source"],
                caption="suite-average SpMV (paper: SCC beats only the "
                "Itanium2; Tesla M2050 leads at 7.9 GFLOPS/s, 35 MFLOPS/W)",
            )
        )

    perf = {r["system"]: r["gflops"] for r in rows}
    eff = {r["system"]: r["mflops_per_watt"] for r in rows}

    # SCC sits between the Itanium2 and everything else (performance).
    assert perf["Itanium2 Montvale"] < perf["SCC conf0"]
    for other in ("Xeon X5570", "Opteron 6174", "Tesla C1060", "Tesla M2050"):
        assert perf[other] > perf["SCC conf1"]

    # M2050 dominance on both axes.
    assert perf["Tesla M2050"] == max(perf.values())
    assert eff["Tesla M2050"] == max(eff.values())
    assert 30 <= eff["Tesla M2050"] <= 40  # paper: ~35 MFLOPS/W

    # GPU-vs-CPU ratios from the paper's text.
    assert perf["Tesla C1060"] / perf["Xeon X5570"] > 2.0
    assert perf["Tesla C1060"] / perf["Opteron 6174"] > 1.4

    # Efficiency: SCC beats the Itanium2, by a wider margin than in
    # raw performance (paper Sec. IV-E).
    assert eff["SCC conf0"] > eff["Itanium2 Montvale"]
    perf_ratio = perf["SCC conf0"] / perf["Itanium2 Montvale"]
    eff_ratio = eff["SCC conf0"] / eff["Itanium2 Montvale"]
    assert eff_ratio > perf_ratio
