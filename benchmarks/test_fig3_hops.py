"""Figure 3 — single-core SpMV performance vs distance to the memory
controller.

The paper maps one UE onto cores 0, 1, 2 and 3 hops from their MC and
reports the suite-average performance: monotone degradation, ~12 %
at 3 hops.
"""

from __future__ import annotations

from repro.core import banner, format_series
from repro.core.figures import FIG3_HOPS, fig3_data

from conftest import bench_iterations, suite_experiments


def test_fig3_single_core_hop_distance(benchmark, capsys, scale):
    avg_mflops = benchmark.pedantic(
        lambda: fig3_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )
    series = [avg_mflops[h] for h in FIG3_HOPS]
    rel = [100 * (1 - v / series[0]) for v in series]
    with capsys.disabled():
        print(banner(f"Fig. 3: single-core performance vs hops to MC (scale={scale})"))
        print(
            format_series(
                "hops",
                FIG3_HOPS,
                {"avg MFLOPS/s": series, "degradation %": rel},
                caption="suite-average, conf0 (paper: ~12% at 3 hops)",
            )
        )
    # Monotone degradation, in the paper's neighbourhood at 3 hops.
    assert series == sorted(series, reverse=True)
    assert 5.0 <= rel[3] <= 25.0
