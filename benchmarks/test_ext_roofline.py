"""Extension E4 — the SCC's own roofline and where the suite sits.

Locates every testbed matrix against the chip's compute and bandwidth
ceilings (the analysis Williams et al. apply to the multicores the
paper compares against).  The simulated performance must respect the
roofline, and the memory-bound majority explains the paper's
'~1% of peak' framing for SpMV.
"""

from __future__ import annotations

import numpy as np

from repro.core import banner, format_table
from repro.core.roofline import SCCRoofline, locate_matrix

from conftest import bench_iterations, suite_experiments


def roofline_data(iterations: int):
    roof = SCCRoofline()
    rows = []
    for mid, exp in suite_experiments():
        pt = locate_matrix(exp.name, exp.traces(48), roof, iterations=iterations)
        r = exp.run(n_cores=48, iterations=iterations)
        rows.append(
            {
                "id": mid,
                "name": exp.name,
                "AI flop/B": pt.arithmetic_intensity,
                "roofline MFLOPS": pt.attainable_gflops * 1000,
                "simulated MFLOPS": r.mflops,
                "bound": pt.bound,
            }
        )
    return roof, rows


def test_ext_scc_roofline(benchmark, capsys, scale):
    roof, rows = benchmark.pedantic(
        lambda: roofline_data(bench_iterations()), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner(f"Extension E4: SCC roofline, 48 cores conf0 (scale={scale})"))
        print(
            f"compute ceiling {roof.peak_gflops:.2f} GFLOPS/s, "
            f"bandwidth ceiling {roof.bandwidth_gbs:.2f} GB/s, "
            f"ridge at {roof.ridge_point:.2f} flop/byte"
        )
        print(
            format_table(
                rows,
                ["id", "name", "AI flop/B", "roofline MFLOPS", "simulated MFLOPS", "bound"],
                floatfmt=".1f",
            )
        )
    finite = [r for r in rows if np.isfinite(r["AI flop/B"])]
    # The simulator never exceeds the roofline (5% slack for barriers
    # vs ceiling bookkeeping).
    for r in finite:
        assert r["simulated MFLOPS"] <= r["roofline MFLOPS"] * 1.05
    # SpMV on this chip is mostly a memory-bound story — at paper
    # scale; shrunken suites become L2-resident, so only assert there.
    frac_memory = np.mean([r["bound"] == "memory" for r in rows])
    if scale >= 0.8:
        assert frac_memory > 0.5
