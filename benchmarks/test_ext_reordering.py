"""Extension E1 — locality reordering on the SCC model.

Not a paper figure: the paper's Sec. IV-C attributes the SCC's SpMV
pain to the irregular x gather, and its Sec. V cites the authors' own
locality-optimization line of work.  This benchmark closes that loop.

Real applications often present FEM matrices with scrambled node
numbering; reverse Cuthill-McKee recovers the band and with it the
gather locality.  We scramble two banded testbed entries (simulating
bad mesh numbering), reorder them back, and measure the SpMV change on
the simulated chip.  A structureless matrix (sparsine) rides along as a
negative control: RCM cannot invent locality that is not there.
"""

from __future__ import annotations

import numpy as np

from repro.core import SpMVExperiment, banner, format_table
from repro.sparse import (
    build_matrix,
    entry_by_id,
    mean_column_distance,
    permute_symmetric,
    reverse_cuthill_mckee,
)

from conftest import bench_iterations

SCRAMBLED_IDS = [7, 20]   # sme3Dc, sme3Da: banded structure to recover
CONTROL_ID = 14           # sparsine: genuinely unstructured
N_CORES = 8
SCALE_CAP = 0.5


def reordering_data(iterations: int):
    rows = []
    rng = np.random.default_rng(2012)
    for mid in SCRAMBLED_IDS + [CONTROL_ID]:
        e = entry_by_id(mid)
        a = build_matrix(mid, scale=SCALE_CAP)
        if mid != CONTROL_ID:
            a = permute_symmetric(a, rng.permutation(a.n_rows))  # scramble
        perm = reverse_cuthill_mckee(a)
        b = permute_symmetric(a, perm)
        base = SpMVExperiment(a, name=e.name).run(n_cores=N_CORES, iterations=iterations)
        rcm = SpMVExperiment(b, name=e.name).run(n_cores=N_CORES, iterations=iterations)
        rows.append(
            {
                "id": mid,
                "name": e.name + ("" if mid == CONTROL_ID else " (scrambled)"),
                "dist before": mean_column_distance(a),
                "dist after": mean_column_distance(b),
                "MFLOPS before": base.mflops,
                "MFLOPS after": rcm.mflops,
                "speedup": base.makespan / rcm.makespan,
            }
        )
    return rows


def test_ext_rcm_reordering(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: reordering_data(bench_iterations()), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner("Extension E1: reverse Cuthill-McKee reordering"))
        print(
            format_table(
                rows,
                ["id", "name", "dist before", "dist after", "MFLOPS before", "MFLOPS after", "speedup"],
                caption=f"{N_CORES} cores, conf0 — scrambled FEM matrices recover "
                "their band; the unstructured control does not",
                floatfmt=".2f",
            )
        )
    by_id = {r["id"]: r for r in rows}
    for mid in SCRAMBLED_IDS:
        r = by_id[mid]
        # RCM restores the band (order-of-magnitude column compaction)
        # and buys real simulated performance.
        assert r["dist after"] < r["dist before"] / 3
        assert r["speedup"] > 1.10
    # The control may move a little but cannot gain much: no structure.
    control = by_id[CONTROL_ID]
    assert control["speedup"] < min(by_id[m]["speedup"] for m in SCRAMBLED_IDS)
