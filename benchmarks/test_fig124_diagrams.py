"""Figures 1, 2 and 4 — the paper's structural diagrams.

These figures carry no measurements; we regenerate them from the live
model objects and assert the structural facts the paper states about
each (Sec. II for Fig. 1/2, Sec. IV-A for Fig. 4).
"""

from __future__ import annotations

import numpy as np

from repro.core import banner, distance_reduction_mapping, standard_mapping
from repro.core.diagrams import FIG2_DENSE, chip_diagram, csr_example, mapping_diagram
from repro.sparse import CSRMatrix, spmv


def test_fig1_chip_overview(benchmark, capsys):
    text = benchmark.pedantic(chip_diagram, rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Fig. 1(a): SCC overview — 24 dual-core tiles, 4 MCs"))
        print(text)
    lines = [l for l in text.splitlines() if l.count("[") >= 6]  # tile rows only
    assert len(lines) == 4                      # 4 tile rows
    assert sum(l.count("[") for l in lines) == 24
    assert text.count("MC") == 4                # four controller markers
    # Core 0/1 sit bottom-left next to an MC (paper's numbering).
    assert "MC> [ 0, 1]" in text


def test_fig2_csr_example(benchmark, capsys):
    text = benchmark.pedantic(csr_example, rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Fig. 2: CSR storage of the 5x5 example + kernel"))
        print(text)
    # The arrays in the figure are produced by the real encoder; verify
    # them and the kernel semantics they describe.
    a = CSRMatrix.from_dense(FIG2_DENSE)
    assert f"ptr   = {a.ptr.tolist()}" in text
    assert a.ptr.tolist() == [0, 2, 3, 6, 7, 9]
    x = np.arange(1.0, 6.0)
    np.testing.assert_allclose(spmv(a, x), FIG2_DENSE @ x)


def test_fig4_mapping_diagrams(benchmark, capsys):
    std = mapping_diagram(standard_mapping(8))
    dr = benchmark.pedantic(
        lambda: mapping_diagram(distance_reduction_mapping(8)), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(banner("Fig. 4(a): standard mapping, 8 UEs"))
        print(std)
        print(banner("Fig. 4(b): distance-reduction mapping, 8 UEs"))
        print(dr)
    # Standard: all 8 UEs inside one quadrant (4 tiles on the bottom rows).
    std_rows = [l for l in std.splitlines() if "[" in l]
    assert sum(c.isdigit() for c in std_rows[-1]) > 0  # bottom row populated
    assert all(not any(ch.isdigit() for ch in l) for l in std_rows[:2])
    # Distance reduction: one tile next to each of the 4 controllers.
    dr_rows = [l for l in dr.splitlines() if "[" in l]
    mc_rows = [l for l in dr_rows if "MC" in l]
    assert len(mc_rows) == 2
    for l in mc_rows:
        assert any(ch.isdigit() for ch in l)
