"""Ablation A1 — which model terms carry which paper effects.

Two controlled knock-outs:

* zeroing the mesh-hop term of Eq. 1 must flatten the Fig. 3 hop
  degradation (the effect is *caused* by the distance term, not an
  artifact of the rest of the model);
* inflating the MC bandwidth by 100x must collapse the Fig. 5
  standard-vs-distance-reduction gap at intermediate core counts (the
  mapping win is a memory-contention effect).
"""

from __future__ import annotations

import pytest

import repro.scc.memory as scc_memory
from repro.core import banner, format_series, single_core_at_distance
from repro.core.experiment import SpMVExperiment
from repro.sparse import build_matrix

from conftest import bench_scale

HOPS = [0, 1, 2, 3]


@pytest.fixture()
def exp(scale):
    a = build_matrix(7, scale=min(scale, 0.5))  # sme3Dc: memory-bound
    e = SpMVExperiment(a, name="sme3Dc")
    e.traces(1)
    e.traces(16)
    return e


def hop_series(exp):
    return [
        exp.run(n_cores=1, mapping=single_core_at_distance(h)).mflops for h in HOPS
    ]


def test_ablation_hop_term(benchmark, capsys, exp, monkeypatch):
    baseline = hop_series(exp)
    monkeypatch.setattr(scc_memory, "LAT_MESH_CYCLES_PER_HOP", 0)
    ablated = benchmark.pedantic(lambda: hop_series(exp), rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Ablation A1a: Eq. 1 without the mesh-hop term"))
        print(
            format_series(
                "hops",
                HOPS,
                {"full model MFLOPS/s": baseline, "no hop term MFLOPS/s": ablated},
                caption="single core, sme3Dc (hop degradation must vanish)",
                floatfmt=".2f",
            )
        )
    full_degradation = 1 - baseline[3] / baseline[0]
    ablated_degradation = 1 - ablated[3] / ablated[0]
    assert full_degradation > 0.05
    assert abs(ablated_degradation) < 0.01


def mapping_gap(exp, n_cores=16):
    std = exp.run(n_cores=n_cores, mapping="standard")
    dr = exp.run(n_cores=n_cores, mapping="distance_reduction")
    return std.makespan / dr.makespan


def test_ablation_mc_bandwidth(benchmark, capsys, exp, monkeypatch):
    baseline_gap = mapping_gap(exp)
    monkeypatch.setattr(
        scc_memory,
        "MC_BANDWIDTH_BYTES_PER_SEC_AT_800",
        scc_memory.MC_BANDWIDTH_BYTES_PER_SEC_AT_800 * 100,
    )
    ablated_gap = benchmark.pedantic(lambda: mapping_gap(exp), rounds=1, iterations=1)
    with capsys.disabled():
        print(banner("Ablation A1b: 100x memory-controller bandwidth"))
        print(
            f"mapping speedup at 16 cores: full model {baseline_gap:.3f}, "
            f"unconstrained MCs {ablated_gap:.3f}"
        )
        print("(the distance-reduction win must collapse toward the pure-latency gap)")
    assert baseline_gap > 1.05
    assert ablated_gap < baseline_gap - 0.03
