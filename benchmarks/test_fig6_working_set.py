"""Figure 6 — per-matrix performance vs working-set size at 8/24/48 cores.

The paper's scatter plots show: at 8 cores no matrix fits the L2 and
performance is flat in ws; at 24/48 cores the matrices whose per-core
working set fits the 256 KB L2 jump (up to ~1 GFLOPS/s at 24 cores)
while the large ones stay in a 400-500 MFLOPS/s band — except the
short-row matrices 24/25, which miss the boost.
"""

from __future__ import annotations

import numpy as np

from repro.core import banner, format_table
from repro.core.figures import FIG6_CORE_COUNTS, fig6_data
from repro.scc.params import L2_BYTES

from conftest import bench_iterations, suite_experiments


def test_fig6_working_set(benchmark, capsys, scale):
    rows = benchmark.pedantic(
        lambda: fig6_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print(banner(f"Fig. 6: performance vs working set (scale={scale})"))
        cols = ["id", "name"]
        for n in FIG6_CORE_COUNTS:
            cols += [f"wsKB/core@{n}", f"MFLOPS@{n}"]
        print(
            format_table(
                rows,
                cols,
                caption="per-matrix SpMV performance, conf0, distance-reduction "
                "(paper: L2-resident matrices boost at 24/48 cores)",
                floatfmt=".1f",
            )
        )

    for n in (24, 48):
        resident = [
            r[f"MFLOPS@{n}"]
            for r in rows
            if r[f"wsKB/core@{n}"] * 1024 <= L2_BYTES and r["id"] not in (24, 25)
        ]
        streaming = [
            r[f"MFLOPS@{n}"] for r in rows if r[f"wsKB/core@{n}"] * 1024 > L2_BYTES
        ]
        if resident and streaming:
            assert np.mean(resident) > 1.4 * np.mean(streaming), (
                f"L2-resident matrices should outperform streaming ones at {n} cores"
            )

    # Short-row matrices 24/25 miss the boost even when resident.
    by_id = {r["id"]: r for r in rows}
    if 24 in by_id and 25 in by_id:
        resident_24c = [
            r["MFLOPS@24"]
            for r in rows
            if r["wsKB/core@24"] * 1024 <= L2_BYTES and r["id"] not in (24, 25)
        ]
        if resident_24c:
            for mid in (24, 25):
                assert by_id[mid]["MFLOPS@24"] < np.mean(resident_24c)
