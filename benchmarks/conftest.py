"""Shared infrastructure for the figure/table benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation
section and prints it in tabular form.  Configuration by environment:

``REPRO_SCALE``
    Global matrix-size scale (default 1.0 = the published UFL sizes;
    smaller values shrink n and nnz together, preserving nnz/n, for
    quick runs — e.g. REPRO_SCALE=0.2 finishes in ~1 minute).  The shapes of all figures are scale-robust; the
    ws-axis of Fig. 6 shifts with the scale (recorded in the output).
``REPRO_IDS``
    Comma-separated matrix ids to restrict the suite (default: all 32).
``REPRO_ITERATIONS``
    SpMV repetitions per timed run (default 16).

Experiments are memoized per (matrix, scale) for the whole pytest
session, so figures sharing core counts reuse trace analyses.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core import SpMVExperiment
from repro.sparse import SUITE, build_matrix

__all__ = ["bench_scale", "bench_ids", "bench_iterations", "suite_experiments"]


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def bench_ids() -> Optional[List[int]]:
    raw = os.environ.get("REPRO_IDS", "").strip()
    if not raw:
        return None
    return [int(tok) for tok in raw.split(",")]


def bench_iterations() -> int:
    return int(os.environ.get("REPRO_ITERATIONS", "16"))


_EXPERIMENTS: Dict[Tuple[int, float], SpMVExperiment] = {}


def experiment_for(mid: int, scale: float) -> SpMVExperiment:
    key = (mid, scale)
    if key not in _EXPERIMENTS:
        entry = next(e for e in SUITE if e.mid == mid)
        _EXPERIMENTS[key] = SpMVExperiment(
            build_matrix(mid, scale=scale), name=entry.name
        )
    return _EXPERIMENTS[key]


def suite_experiments(
    scale: Optional[float] = None,
    ids: Optional[List[int]] = None,
) -> List[Tuple[int, SpMVExperiment]]:
    """(matrix id, experiment) pairs for the configured suite subset,
    memoized for the whole session (same shape as
    :func:`repro.core.figures.suite_experiments`)."""
    scale = bench_scale() if scale is None else scale
    ids = bench_ids() if ids is None else ids
    out = []
    for e in SUITE:
        if ids is not None and e.mid not in ids:
            continue
        out.append((e.mid, experiment_for(e.mid, scale)))
    return out


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def iterations() -> int:
    return bench_iterations()
