"""Figure 9 — chip configurations: performance and power efficiency.

conf0 = 533/800/800 MHz (cores/mesh/memory), conf1 = 800/1600/1066,
conf2 = 800/1600/800.  Paper findings: conf1 speedup up to 1.45 and the
best MFLOPS/W despite 83.3 W -> 107.4 W; conf2 gains ~1.2 with
efficiency on par with conf0; the conf1-conf2 gap is the memory clock.
"""

from __future__ import annotations

from repro.core import banner, format_series, format_table
from repro.core.figures import FIG9_CORE_COUNTS as CORE_COUNTS
from repro.core.figures import fig9_data, fig9_summary
from repro.scc import CONF0, CONF1, CONF2

from conftest import bench_iterations, suite_experiments

CONFIGS = [CONF0, CONF1, CONF2]


def test_fig9_configurations(benchmark, capsys, scale):
    results = benchmark.pedantic(
        lambda: fig9_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )

    perf, eff = fig9_summary(results)
    speedup1 = [f / b for f, b in zip(perf["conf1"], perf["conf0"])]
    speedup2 = [f / b for f, b in zip(perf["conf2"], perf["conf0"])]
    watts = {cfg.name: cfg.full_chip_power() for cfg in CONFIGS}

    with capsys.disabled():
        print(banner(f"Fig. 9(a): performance per configuration (scale={scale})"))
        print(
            format_series(
                "cores",
                CORE_COUNTS,
                {
                    "conf0 MFLOPS/s": perf["conf0"],
                    "conf1 MFLOPS/s": perf["conf1"],
                    "conf2 MFLOPS/s": perf["conf2"],
                    "speedup conf1": speedup1,
                    "speedup conf2": speedup2,
                },
                caption="suite-average (paper: conf1 up to 1.45x, conf2 ~1.2x)",
                floatfmt=".2f",
            )
        )
        print(banner("Fig. 9(b): full-system power efficiency"))
        print(
            format_table(
                [
                    {
                        "config": name,
                        "watts": watts[name],
                        "MFLOPS/W": eff[name],
                    }
                    for name in ("conf0", "conf1", "conf2")
                ],
                ["config", "watts", "MFLOPS/W"],
                caption="48 cores (paper: 83.3 W conf0, 107.4 W conf1; conf1 "
                "most efficient, conf2 ~ conf0)",
                floatfmt=".2f",
            )
        )

    # Performance ordering and magnitudes.
    assert all(s > 1.0 for s in speedup1)
    assert all(s >= 0.999 for s in speedup2)
    assert all(s1 >= s2 - 1e-9 for s1, s2 in zip(speedup1, speedup2))
    assert 1.2 <= max(speedup1) <= 1.6   # paper: up to 1.45
    # Power anchors.
    assert abs(watts["conf0"] - 83.3) < 0.5
    assert abs(watts["conf1"] - 107.4) < 0.5
    # conf1 is the most power-efficient configuration.
    assert eff["conf1"] >= eff["conf0"]
    assert eff["conf1"] >= eff["conf2"]
    # conf2's efficiency is in conf0's neighbourhood (paper: 'practically
    # the same').
    assert abs(eff["conf2"] - eff["conf0"]) / eff["conf0"] < 0.25
