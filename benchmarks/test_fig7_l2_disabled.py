"""Figure 7 — SpMV performance with L2 caches disabled.

The SCC can boot with L2 off; the paper reports growing degradation
with core count (~30 % at 48 cores) and the disappearance of the
working-set effect of Fig. 6.
"""

from __future__ import annotations

import numpy as np

from repro.core import banner, format_series
from repro.core.figures import FIG7_CORE_COUNTS, fig7_data
from repro.core.metrics import average_gflops
from repro.scc.params import L2_BYTES

from conftest import bench_iterations, suite_experiments


def test_fig7_l2_disabled(benchmark, capsys, scale):
    with_l2, without_l2 = benchmark.pedantic(
        lambda: fig7_data(suite_experiments(), bench_iterations()),
        rounds=1,
        iterations=1,
    )
    on = [average_gflops(with_l2[n]) * 1000 for n in FIG7_CORE_COUNTS]
    off = [average_gflops(without_l2[n]) * 1000 for n in FIG7_CORE_COUNTS]
    loss = [100 * (1 - o / w) for o, w in zip(off, on)]
    with capsys.disabled():
        print(banner(f"Fig. 7: L2 caches disabled (scale={scale})"))
        print(
            format_series(
                "cores",
                FIG7_CORE_COUNTS,
                {"with L2 MFLOPS/s": on, "without L2 MFLOPS/s": off, "loss %": loss},
                caption="suite-average (paper: ~30% degradation at 48 cores)",
                floatfmt=".1f",
            )
        )

    # L2 always helps, and the penalty grows with core count.
    assert all(l > 0 for l in loss[1:])
    assert loss[-1] > loss[1]
    # Paper reports ~30%; the model overestimates the penalty because its
    # L2-resident boost is stronger than the real chip's (see
    # EXPERIMENTS.md), so accept a wider band while requiring the shape.
    assert 10.0 <= loss[-1] <= 75.0

    # Without L2 the Fig. 6 working-set split vanishes: resident and
    # streaming matrices perform comparably (ratio near 1).
    rows_on, rows_off = [], []
    for (mid, _exp), r_on, r_off in zip(
        suite_experiments(), with_l2[48], without_l2[48]
    ):
        resident = r_on.ws_per_core_bytes <= L2_BYTES and mid not in (24, 25)
        rows_on.append((resident, r_on.mflops))
        rows_off.append((resident, r_off.mflops))

    def split_ratio(rows):
        res = [v for flag, v in rows if flag]
        stream = [v for flag, v in rows if not flag]
        if not res or not stream:
            return 1.0
        return np.mean(res) / np.mean(stream)

    assert split_ratio(rows_off) < split_ratio(rows_on)
