"""Tests for the ELL/HYB format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import banded, random_uniform, with_dense_rows
from repro.sparse.ell import ELLMatrix, PAD, ell_efficiency


@pytest.fixture(scope="module")
def even():
    return banded(300, 6.0, 8, seed=51)


@pytest.fixture(scope="module")
def skewed():
    base = random_uniform(300, 3.0, seed=52)
    return with_dense_rows(base, 4, 0.6, seed=53)


class TestConstruction:
    def test_pure_ell_roundtrip(self, even):
        e = ELLMatrix.from_csr(even)
        assert not e.is_hybrid
        assert e.to_csr().allclose(even)
        assert e.nnz == even.nnz

    def test_hybrid_roundtrip(self, skewed):
        e = ELLMatrix.from_csr(skewed, k=4)
        assert e.is_hybrid
        assert e.to_csr().allclose(skewed)
        assert e.nnz == skewed.nnz

    def test_k_zero_all_tail(self, skewed):
        e = ELLMatrix.from_csr(skewed, k=0)
        assert e.tail.nnz == skewed.nnz
        assert e.to_csr().allclose(skewed)

    def test_negative_k_rejected(self, even):
        with pytest.raises(ValueError):
            ELLMatrix.from_csr(even, k=-1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ELLMatrix(2, 2, 3, np.zeros((2, 2), np.int32), np.zeros((2, 3)), None)

    def test_padding_accounting(self, even):
        e = ELLMatrix.from_csr(even)
        assert e.padded_slots == e.n_rows * e.k - even.nnz


class TestSpMV:
    def test_matches_csr_pure_ell(self, even, rng):
        e = ELLMatrix.from_csr(even)
        x = rng.uniform(size=even.n_cols)
        np.testing.assert_allclose(e.spmv(x), even.to_scipy() @ x, rtol=1e-10)

    def test_matches_csr_hybrid(self, skewed, rng):
        e = ELLMatrix.from_csr(skewed, k=3)
        x = rng.uniform(size=skewed.n_cols)
        np.testing.assert_allclose(e.spmv(x), skewed.to_scipy() @ x, rtol=1e-10)

    def test_padding_is_numerically_inert(self, even):
        """x values at padded slots' sentinel column must not leak in."""
        e = ELLMatrix.from_csr(even)
        x = np.zeros(even.n_cols)
        x[0] = 1e30  # PAD maps to column 0 internally; mask must kill it
        y_csr = even.to_scipy() @ x
        np.testing.assert_allclose(e.spmv(x), y_csr, rtol=1e-10)

    def test_bad_x_shape(self, even):
        e = ELLMatrix.from_csr(even)
        with pytest.raises(ValueError):
            e.spmv(np.ones(even.n_cols + 1))


class TestEfficiency:
    def test_uniform_rows_efficient(self, even):
        util, spilled = ell_efficiency(even)
        assert util > 0.6
        assert spilled == 0

    def test_skewed_rows_wasteful(self, skewed):
        util, spilled = ell_efficiency(skewed)
        assert util < 0.1  # the dense rows blow up k for everyone
        assert spilled == 0

    def test_hyb_split_recovers_utilization(self, skewed):
        util_pure, _ = ell_efficiency(skewed)
        util_hyb, spilled = ell_efficiency(skewed, k=3)
        assert util_hyb > 5 * util_pure
        assert spilled > 0

    def test_negative_k(self, even):
        with pytest.raises(ValueError):
            ell_efficiency(even, k=-2)

    def test_matches_matrix_accounting(self, skewed):
        k = 5
        util, spilled = ell_efficiency(skewed, k=k)
        e = ELLMatrix.from_csr(skewed, k=k)
        assert spilled == (e.tail.nnz if e.tail else 0)
        stored = e.nnz - spilled
        assert util == pytest.approx(stored / (e.n_rows * k))
