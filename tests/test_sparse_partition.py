"""Tests for balanced-nnz row partitioning (the paper's scheme)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    RowPartition,
    partition_rows_balanced,
    partition_rows_uniform,
    with_dense_rows,
    random_uniform,
)


class TestRowPartition:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            RowPartition(10, (0, 5))  # doesn't end at n_rows
        with pytest.raises(ValueError):
            RowPartition(10, (1, 10))  # doesn't start at 0
        with pytest.raises(ValueError):
            RowPartition(10, (0, 7, 3, 10))  # not monotone

    def test_parts_and_ranges(self):
        p = RowPartition(10, (0, 3, 7, 10))
        assert p.n_parts == 3
        assert p.part(1) == (3, 7)
        assert p.ranges() == [(0, 3), (3, 7), (7, 10)]
        with pytest.raises(IndexError):
            p.part(3)

    def test_part_nnz(self, tiny_csr):
        p = RowPartition(5, (0, 2, 5))
        assert list(p.part_nnz(tiny_csr)) == [3, 6]


class TestBalancedPartition:
    def test_covers_all_rows(self, small_banded):
        p = partition_rows_balanced(small_banded, 7)
        assert p.bounds[0] == 0 and p.bounds[-1] == small_banded.n_rows
        assert p.n_parts == 7

    def test_single_part(self, small_banded):
        p = partition_rows_balanced(small_banded, 1)
        assert p.ranges() == [(0, small_banded.n_rows)]

    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_balance_on_uniform_matrix(self, k):
        a = random_uniform(1000, 10.0, seed=3)
        p = partition_rows_balanced(a, k)
        assert p.imbalance(a) < 1.05

    def test_beats_uniform_split_on_skewed_matrix(self):
        """Dense rows wreck equal-row splits; balanced-nnz absorbs them."""
        base = random_uniform(2000, 3.0, seed=5)
        a = with_dense_rows(base, 10, 0.5, seed=6)
        balanced = partition_rows_balanced(a, 8).imbalance(a)
        uniform = partition_rows_uniform(a, 8).imbalance(a)
        assert balanced < uniform

    def test_nnz_sums_preserved(self, small_random):
        p = partition_rows_balanced(small_random, 6)
        assert p.part_nnz(small_random).sum() == small_random.nnz

    def test_too_many_parts_rejected(self, tiny_csr):
        with pytest.raises(ValueError):
            partition_rows_balanced(tiny_csr, 6)

    def test_invalid_count_rejected(self, tiny_csr):
        with pytest.raises(ValueError):
            partition_rows_balanced(tiny_csr, 0)

    def test_deterministic(self, small_banded):
        p1 = partition_rows_balanced(small_banded, 5)
        p2 = partition_rows_balanced(small_banded, 5)
        assert p1.bounds == p2.bounds

    def test_matrix_with_empty_rows(self):
        dense = np.zeros((20, 20))
        dense[::4, 1] = 1.0  # only every 4th row has an entry
        a = CSRMatrix.from_dense(dense)
        p = partition_rows_balanced(a, 3)
        assert p.part_nnz(a).sum() == a.nnz


class TestUniformPartition:
    def test_equal_row_counts(self):
        a = random_uniform(100, 5.0, seed=1)
        p = partition_rows_uniform(a, 4)
        sizes = [hi - lo for lo, hi in p.ranges()]
        assert sizes == [25, 25, 25, 25]

    def test_rounding_spread(self):
        a = random_uniform(10, 2.0, seed=1)
        p = partition_rows_uniform(a, 3)
        sizes = [hi - lo for lo, hi in p.ranges()]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_count(self, tiny_csr):
        with pytest.raises(ValueError):
            partition_rows_uniform(tiny_csr, 0)
        with pytest.raises(ValueError):
            partition_rows_uniform(tiny_csr, 99)
