"""Shared fixtures: small deterministic matrices and model objects."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Dynamic runtime checkers (repro.analysis) are on by default under test so
# any protocol regression in the suite surfaces as a recorded finding.
os.environ.setdefault("REPRO_CHECKS", "1")

from repro.scc import SCCTopology
from repro.sparse import CSRMatrix, banded, power_law, random_uniform


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the content store at a per-test directory.

    Keeps every test hermetic: no dedup hits leak between tests (or in
    from the developer's real ~/.cache/repro), which the serve suites'
    exact simulation counts depend on.  Tests that need a shared or
    disabled store still win by monkeypatching over this.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(autouse=True)
def _clear_predictor_state():
    """Reset the predict tier's process-level memos between tests.

    The artifact cache keys on (machine cache key, tag), which does not
    change when the store directory moves — without this reset, a
    predictor trained by one test would be served to the next even
    though its store is empty.  The warn-once set and the feature memos
    reset for the same hermeticity reason.
    """
    from repro.predict.artifact import clear_predictor_cache
    from repro.sparse import features

    clear_predictor_cache()
    features._MF_MEMO.clear()
    features._PF_MEMO.clear()
    yield
    clear_predictor_cache()
    features._MF_MEMO.clear()
    features._PF_MEMO.clear()


@pytest.fixture(scope="session")
def topology() -> SCCTopology:
    return SCCTopology()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def tiny_csr() -> CSRMatrix:
    """The paper's Fig. 2 example shape: 5x5 with a mixed pattern."""
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0, 0.0],
            [0.0, 3.0, 0.0, 0.0, 0.0],
            [4.0, 0.0, 5.0, 6.0, 0.0],
            [0.0, 0.0, 0.0, 7.0, 0.0],
            [0.0, 8.0, 0.0, 0.0, 9.0],
        ]
    )
    return CSRMatrix.from_dense(dense)


@pytest.fixture(scope="session")
def small_banded() -> CSRMatrix:
    return banded(400, 8.0, 12, seed=7)


@pytest.fixture(scope="session")
def small_random() -> CSRMatrix:
    return random_uniform(400, 8.0, seed=11)


@pytest.fixture(scope="session")
def small_powerlaw() -> CSRMatrix:
    return power_law(400, 6.0, alpha=1.0, seed=13)
