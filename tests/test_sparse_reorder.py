"""Tests for Cuthill-McKee reordering and locality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix, banded, random_uniform, stencil_2d
from repro.sparse.reorder import (
    bandwidth,
    cuthill_mckee,
    gather_locality_gain,
    mean_column_distance,
    permute_symmetric,
    reverse_cuthill_mckee,
)


def shuffled_band(n=400, seed=3):
    """A band matrix hidden under a random symmetric permutation."""
    a = banded(n, 6.0, 4, seed=seed)
    rng = np.random.default_rng(seed + 1)
    perm = rng.permutation(n)
    return a, permute_symmetric(a, perm)


class TestMetrics:
    def test_bandwidth_of_diagonal(self):
        assert bandwidth(CSRMatrix.from_dense(np.eye(5))) == 0

    def test_bandwidth_of_tridiagonal(self):
        d = np.eye(6) + np.eye(6, k=1) + np.eye(6, k=-1)
        assert bandwidth(CSRMatrix.from_dense(d)) == 1

    def test_empty_matrix(self):
        m = CSRMatrix(np.zeros(4, np.int64), np.empty(0, np.int32), np.empty(0), n_cols=3)
        assert bandwidth(m) == 0
        assert mean_column_distance(m) == 0.0

    def test_mean_distance_band_vs_random(self):
        assert mean_column_distance(banded(500, 6.0, 5, seed=1)) < mean_column_distance(
            random_uniform(500, 6.0, seed=1)
        )


class TestPermutation:
    def test_identity_permutation(self, small_banded):
        n = small_banded.n_rows
        assert permute_symmetric(small_banded, np.arange(n)).allclose(small_banded)

    def test_permutation_preserves_spectrum_values(self, small_banded):
        """P A P^T has the same multiset of values and nnz."""
        rng = np.random.default_rng(2)
        p = rng.permutation(small_banded.n_rows)
        b = permute_symmetric(small_banded, p)
        assert b.nnz == small_banded.nnz
        np.testing.assert_allclose(np.sort(b.da), np.sort(small_banded.da))

    def test_permutation_is_similarity_transform(self):
        a = banded(50, 4.0, 3, seed=9)
        rng = np.random.default_rng(10)
        p = rng.permutation(50)
        b = permute_symmetric(a, p)
        da, db = a.to_dense(), b.to_dense()
        # db[inv[i], inv[j]] == da[i, j]
        inv = np.empty(50, dtype=np.int64)
        inv[p] = np.arange(50)
        np.testing.assert_allclose(db[np.ix_(inv, inv)], da)

    def test_invalid_permutation_rejected(self, small_banded):
        with pytest.raises(ValueError):
            permute_symmetric(small_banded, np.zeros(small_banded.n_rows, dtype=int))

    def test_non_square_rejected(self):
        m = CSRMatrix(np.array([0, 1]), np.array([2], np.int32), np.array([1.0]), n_cols=5)
        with pytest.raises(ValueError):
            permute_symmetric(m, np.array([0]))


class TestCuthillMcKee:
    def test_returns_permutation(self, small_banded):
        p = cuthill_mckee(small_banded)
        assert sorted(p.tolist()) == list(range(small_banded.n_rows))

    def test_rcm_is_reverse(self, small_banded):
        cm = cuthill_mckee(small_banded)
        rcm = reverse_cuthill_mckee(small_banded)
        np.testing.assert_array_equal(rcm, cm[::-1])

    def test_recovers_band_structure(self):
        """RCM on a permuted band matrix restores a narrow band."""
        original, scrambled = shuffled_band()
        assert bandwidth(scrambled) > 5 * bandwidth(original)
        perm = reverse_cuthill_mckee(scrambled)
        restored = permute_symmetric(scrambled, perm)
        assert bandwidth(restored) < bandwidth(scrambled) / 3

    def test_reduces_bandwidth_on_stencil(self):
        a = stencil_2d(20, 20, seed=7)
        rng = np.random.default_rng(8)
        scrambled = permute_symmetric(a, rng.permutation(a.n_rows))
        restored = permute_symmetric(scrambled, reverse_cuthill_mckee(scrambled))
        assert bandwidth(restored) < bandwidth(scrambled) / 2

    def test_explicit_start_vertex(self, small_banded):
        p = cuthill_mckee(small_banded, start=5)
        assert p[0] == 5
        assert sorted(p.tolist()) == list(range(small_banded.n_rows))

    def test_bad_start_rejected(self, small_banded):
        with pytest.raises(ValueError):
            cuthill_mckee(small_banded, start=10**6)

    def test_disconnected_components_all_visited(self):
        d = np.zeros((8, 8))
        d[0, 1] = d[1, 0] = 1.0  # component {0,1}
        d[5, 6] = d[6, 5] = 1.0  # component {5,6}
        for i in range(8):
            d[i, i] = 1.0
        p = cuthill_mckee(CSRMatrix.from_dense(d))
        assert sorted(p.tolist()) == list(range(8))

    def test_deterministic(self, small_banded):
        np.testing.assert_array_equal(
            cuthill_mckee(small_banded), cuthill_mckee(small_banded)
        )

    def test_empty_matrix(self):
        m = CSRMatrix(np.zeros(1, np.int64), np.empty(0, np.int32), np.empty(0), n_cols=0)
        assert cuthill_mckee(m).size == 0


class TestLocalityGain:
    def test_rcm_improves_gather_misses(self):
        _, scrambled = shuffled_band(n=3000)
        restored = permute_symmetric(scrambled, reverse_cuthill_mckee(scrambled))
        before, after = gather_locality_gain(scrambled, restored, cache_lines=64)
        assert after < before

    def test_same_matrix_no_gain(self, small_banded):
        b, a = gather_locality_gain(small_banded, small_banded)
        assert b == a

    def test_nnz_mismatch_rejected(self, small_banded, small_random):
        with pytest.raises(ValueError):
            gather_locality_gain(small_banded, small_random)
