"""Finding span round-trips and SARIF 2.1.0 export conformance."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.dataflow import analyze_file
from repro.analysis.findings import (
    Finding,
    Severity,
    findings_from_json,
    findings_to_json,
    sort_findings,
)
from repro.analysis.lint import lint_file
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    findings_to_sarif,
    sarif_to_json,
    validate_sarif,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPANNED = Finding(
    rule="DF501",
    severity=Severity.ERROR,
    message="rendezvous wait-for cycle",
    path="prog.py",
    line=27,
    hint="stagger the ring",
    col=16,
    end_line=27,
    end_col=55,
)
RUNTIME_ONLY = Finding(
    rule="RT801",
    severity=Severity.ERROR,
    message="deadlock at t=1.5",
)


class TestFindingSpans:
    def test_location_renders_column(self):
        assert SPANNED.location == "prog.py:27:16"
        assert Finding(rule="X", severity=Severity.INFO, message="m",
                       path="a.py", line=3).location == "a.py:3"
        assert RUNTIME_ONLY.location == "<runtime>"

    def test_has_span(self):
        assert SPANNED.has_span and not RUNTIME_ONLY.has_span

    def test_str_includes_column(self):
        assert str(SPANNED).startswith("prog.py:27:16: error: DF501:")

    def test_lint_findings_carry_spans(self):
        findings = lint_file(os.path.join(FIXTURES, "lint_bad_rcce110.py"))
        assert findings
        for f in findings:
            assert f.line > 0 and f.col > 0
            assert f.end_line >= f.line
            assert f.end_col > 0

    def test_dataflow_findings_carry_spans(self):
        findings = analyze_file(
            os.path.join(FIXTURES, "df_deadlock_ring.py"), min_ues=2, max_ues=3
        )
        (f,) = findings
        assert f.col > 0 and f.end_line == f.line and f.end_col > f.col

    def test_sort_orders_by_span(self):
        a = Finding(rule="B", severity=Severity.INFO, message="m", path="p", line=1, col=9)
        b = Finding(rule="A", severity=Severity.INFO, message="m", path="p", line=1, col=2)
        assert sort_findings([a, b]) == [b, a]


class TestJsonRoundTrip:
    def test_round_trip_exact(self):
        text = findings_to_json([SPANNED, RUNTIME_ONLY])
        back = findings_from_json(text)
        assert back == sort_findings([SPANNED, RUNTIME_ONLY])

    def test_dict_round_trip(self):
        d = SPANNED.to_dict()
        assert d["severity"] == "error" and d["col"] == 16 and d["end_col"] == 55
        assert Finding.from_dict(d) == SPANNED

    def test_from_dict_rejects_unknown_keys(self):
        bad = SPANNED.to_dict()
        bad["bogus"] = 1
        with pytest.raises(ValueError):
            Finding.from_dict(bad)

    def test_from_json_rejects_non_list(self):
        with pytest.raises(ValueError):
            findings_from_json("{}")


class TestSarifExport:
    def test_envelope(self):
        doc = findings_to_sarif([SPANNED])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analyze"

    def test_result_region_and_rule_index(self):
        doc = findings_to_sarif([SPANNED, RUNTIME_ONLY])
        (run,) = doc["runs"]
        ids = [d["id"] for d in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        spanned = next(r for r in run["results"] if r["ruleId"] == "DF501")
        region = spanned["locations"][0]["physicalLocation"]["region"]
        assert region == {
            "startLine": 27,
            "startColumn": 16,
            "endLine": 27,
            "endColumn": 55,
        }

    def test_runtime_findings_have_no_location(self):
        doc = findings_to_sarif([RUNTIME_ONLY])
        (result,) = doc["runs"][0]["results"]
        assert "locations" not in result

    def test_severity_levels(self):
        warn = Finding(rule="DF503", severity=Severity.WARNING, message="m",
                       path="p.py", line=1)
        note = Finding(rule="DF500", severity=Severity.INFO, message="m",
                       path="p.py", line=1)
        results = findings_to_sarif([SPANNED, warn, note])["runs"][0]["results"]
        levels = {r["ruleId"]: r["level"] for r in results}
        assert levels == {"DF501": "error", "DF503": "warning", "DF500": "note"}

    def test_known_rules_get_catalogue_descriptors(self):
        doc = findings_to_sarif([SPANNED])
        (desc,) = doc["runs"][0]["tool"]["driver"]["rules"]
        assert desc["name"] == "static-deadlock"
        assert desc["defaultConfiguration"]["level"] == "error"
        assert "shortDescription" in desc and "help" in desc

    def test_serialized_form_is_json(self):
        doc = json.loads(sarif_to_json([SPANNED]))
        assert doc["version"] == "2.1.0"

    def test_validates_structurally(self):
        assert validate_sarif(findings_to_sarif([SPANNED, RUNTIME_ONLY])) == []
        assert validate_sarif(findings_to_sarif([])) == []

    def test_real_analyzer_output_validates(self):
        findings = analyze_file(
            os.path.join(FIXTURES, "df_deadlock_ring.py"), min_ues=2, max_ues=4
        )
        assert validate_sarif(findings_to_sarif(findings)) == []

    def test_validator_catches_breakage(self):
        doc = findings_to_sarif([SPANNED])
        doc["version"] = "1.0.0"
        assert any("version" in e for e in validate_sarif(doc))
        doc2 = findings_to_sarif([SPANNED])
        doc2["runs"][0]["results"][0]["ruleIndex"] = 99
        assert any("ruleIndex" in e for e in validate_sarif(doc2))
        doc3 = findings_to_sarif([SPANNED])
        del doc3["runs"][0]["results"][0]["message"]
        assert any("message" in e for e in validate_sarif(doc3))
        doc4 = findings_to_sarif([SPANNED])
        doc4["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] = 0
        assert any("startLine" in e for e in validate_sarif(doc4))

    def test_against_official_schema_if_available(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema_path = os.environ.get("SARIF_SCHEMA_PATH", "")
        if not schema_path or not os.path.exists(schema_path):
            pytest.skip("official SARIF schema not available (CI downloads it)")
        with open(schema_path, encoding="utf-8") as fh:
            schema = json.load(fh)
        findings = analyze_file(
            os.path.join(FIXTURES, "df_deadlock_ring.py"), min_ues=2, max_ues=4
        )
        jsonschema.validate(findings_to_sarif(findings), schema)
