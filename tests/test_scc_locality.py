"""Tests for the vectorized locality model (reuse, footprint, MRC).

Includes brute-force validation of Xiang's footprint formula and
cross-validation of the miss-ratio model against exact LRU stack
distances and the exact cache simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scc import (
    Cache,
    footprint_curve,
    lines_of_addresses,
    miss_ratio_curve,
    reuse_profile,
    reuse_times,
)


def brute_force_footprint(lines: np.ndarray, w: int) -> float:
    """Average distinct elements over every window of w accesses."""
    n = len(lines)
    vals = [len(set(lines[i : i + w])) for i in range(n - w + 1)]
    return float(np.mean(vals))


def exact_lru_misses(lines: np.ndarray, capacity: int) -> int:
    """Fully-associative true-LRU miss count (reference implementation)."""
    stack: list = []
    misses = 0
    for line in lines:
        if line in stack:
            stack.remove(line)
        else:
            misses += 1
            if len(stack) >= capacity:
                stack.pop()
        stack.insert(0, line)
    return misses


class TestReuseTimes:
    def test_empty(self):
        rt, first = reuse_times(np.array([], dtype=np.int64))
        assert rt.size == 0 and first.size == 0

    def test_all_distinct(self):
        rt, first = reuse_times(np.array([1, 2, 3, 4]))
        assert first.all()
        assert (rt == 0).all()

    def test_immediate_reuse(self):
        rt, first = reuse_times(np.array([5, 5, 5]))
        assert list(first) == [True, False, False]
        assert list(rt) == [0, 1, 1]

    def test_interleaved(self):
        rt, first = reuse_times(np.array([1, 2, 1, 2]))
        assert list(first) == [True, True, False, False]
        assert list(rt) == [0, 0, 2, 2]

    def test_mixed_pattern(self):
        rt, first = reuse_times(np.array([7, 3, 7, 9, 3, 7]))
        assert list(first) == [True, True, False, True, False, False]
        assert rt[2] == 2 and rt[4] == 3 and rt[5] == 3


class TestReuseProfile:
    def test_counts(self):
        p = reuse_profile(np.array([1, 2, 1, 3, 2, 1]))
        assert p.n_accesses == 6
        assert p.n_lines == 3
        assert p.cold_misses == 3
        assert p.reuse_hist.sum() == 3  # three reuses

    def test_first_last_times_one_based(self):
        p = reuse_profile(np.array([10, 20, 10]))
        assert sorted(p.first_times.tolist()) == [1, 2]
        assert sorted(p.last_times.tolist()) == [2, 3]

    def test_empty_profile(self):
        p = reuse_profile(np.array([], dtype=np.int64))
        assert p.n_accesses == 0 and p.n_lines == 0


class TestFootprint:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("universe", [4, 16, 64])
    def test_matches_brute_force(self, seed, universe):
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, universe, size=200)
        fp = footprint_curve(reuse_profile(lines))
        for w in (1, 2, 3, 5, 10, 50, 100, 200):
            assert fp.values[w] == pytest.approx(brute_force_footprint(lines, w), abs=1e-9)

    def test_sequential_stream(self):
        lines = np.arange(50)
        fp = footprint_curve(reuse_profile(lines))
        # Every window of w distinct lines has footprint exactly w.
        for w in (1, 5, 25, 50):
            assert fp.values[w] == pytest.approx(w)

    def test_monotone_nondecreasing(self, rng):
        lines = rng.integers(0, 30, size=500)
        fp = footprint_curve(reuse_profile(lines))
        assert (np.diff(fp.values) >= -1e-12).all()

    def test_bounds(self, rng):
        lines = rng.integers(0, 30, size=500)
        fp = footprint_curve(reuse_profile(lines))
        assert fp.values[0] == 0.0
        assert fp.values[-1] == pytest.approx(len(set(lines.tolist())))
        assert (fp.values <= fp.n_lines + 1e-9).all()

    def test_callable_clips(self, rng):
        lines = rng.integers(0, 10, size=100)
        fp = footprint_curve(reuse_profile(lines))
        assert fp(10**9) == fp.values[-1]
        assert fp(0) == 0.0

    def test_window_for_capacity(self, rng):
        lines = rng.integers(0, 100, size=1000)
        fp = footprint_curve(reuse_profile(lines))
        w = fp.window_for_capacity(10.0)
        assert fp.values[w] <= 10.0
        if w + 1 <= fp.n_accesses:
            assert fp.values[w + 1] > 10.0


class TestMissRatioCurve:
    def test_infinite_cache_only_cold_misses(self, rng):
        lines = rng.integers(0, 50, size=400)
        mrc = miss_ratio_curve(lines)
        assert mrc.misses(10**9) == len(set(lines.tolist()))

    def test_zero_capacity_all_miss(self, rng):
        lines = rng.integers(0, 50, size=400)
        mrc = miss_ratio_curve(lines)
        assert mrc.misses(0) == 400

    def test_monotone_in_capacity(self, rng):
        lines = rng.integers(0, 200, size=2000)
        mrc = miss_ratio_curve(lines)
        caps = [1, 2, 4, 8, 16, 32, 64, 128, 256]
        ratios = mrc.curve(np.array(caps))
        assert (np.diff(ratios) <= 1e-12).all()

    def test_loop_fits_exactly(self):
        """A cyclic loop over K lines hits fully once capacity >= K."""
        lines = np.tile(np.arange(8), 50)
        mrc = miss_ratio_curve(lines)
        assert mrc.misses(8) == 8  # cold only
        # LRU worst case: cyclic pattern with capacity < K misses always.
        assert mrc.misses(7) == 400

    @pytest.mark.parametrize("universe,capacity", [(30, 8), (30, 16), (100, 32), (15, 4)])
    def test_close_to_exact_lru_on_random_traces(self, universe, capacity):
        rng = np.random.default_rng(99)
        lines = rng.integers(0, universe, size=3000)
        model = miss_ratio_curve(lines).misses(capacity)
        exact = exact_lru_misses(lines, capacity)
        # The average-footprint conversion is a tight approximation on
        # homogeneous traces: allow 12% relative error.
        assert model == pytest.approx(exact, rel=0.12)

    def test_close_to_exact_setassoc_cache(self):
        """Model vs the exact 4-way pseudo-LRU simulator on a gather trace."""
        rng = np.random.default_rng(3)
        # Zipf-ish gather: mixture of hot and cold lines.
        hot = rng.integers(0, 16, size=2000)
        cold = rng.integers(0, 512, size=2000)
        lines = np.where(rng.uniform(size=2000) < 0.6, hot, cold)
        cache = Cache(size_bytes=64 * 32, assoc=4, line_bytes=32)  # 64 lines
        exact = cache.access_trace(lines * 32)
        model = miss_ratio_curve(lines).misses(64)
        assert model == pytest.approx(exact, rel=0.15)

    def test_miss_ratio_empty_stream(self):
        mrc = miss_ratio_curve(np.array([], dtype=np.int64))
        assert mrc.miss_ratio(16) == 0.0
        assert mrc.misses(16) == 0


class TestLinesOfAddresses:
    def test_basic(self):
        addrs = np.array([0, 31, 32, 95, 96])
        assert list(lines_of_addresses(addrs, 32)) == [0, 0, 1, 2, 3]

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            lines_of_addresses(np.array([0]), 0)
