"""Tests for repro.obs: the Tracer and the MetricsRegistry."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.obs.metrics import DEFAULT_BUCKETS, metric_key


class TestTracer:
    def test_records_span_pairs(self):
        tr = Tracer()
        tr.begin("work", tid=3, cat="rcce", bytes=64)
        tr.end("work", tid=3, cat="rcce")
        assert [e.ph for e in tr.events] == ["B", "E"]
        assert tr.events[0].args == {"bytes": 64}
        assert tr.events[0].tid == 3

    def test_span_context_manager_closes_on_error(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("risky", tid=1):
                raise RuntimeError("boom")
        assert [e.ph for e in tr.events] == ["B", "E"]

    def test_clock_binding(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0])
        tr.instant("a")
        t[0] = 2.5
        tr.instant("b")
        assert [e.ts for e in tr.events] == [0.0, 2.5]
        tr.bind_clock(lambda: 9.0)
        tr.instant("c")
        assert tr.events[-1].ts == 9.0

    def test_category_filter(self):
        tr = Tracer(categories=("fault",))
        tr.instant("kept", cat="fault")
        tr.instant("dropped", cat="rcce")
        tr.counter("also-dropped", 1)
        assert [e.name for e in tr.events] == ["kept"]
        assert tr.wants("fault") and not tr.wants("rcce")

    def test_counter_event(self):
        tr = Tracer()
        tr.counter("depth", 7, tid=2)
        ev = tr.events[0]
        assert ev.ph == "C" and ev.args == {"value": 7}

    def test_truthiness_contract(self):
        assert Tracer()
        assert not NullTracer()
        assert not NULL_TRACER
        assert not None  # the other disabled spelling components accept

    def test_null_tracer_records_nothing(self):
        nt = NullTracer()
        nt.begin("x")
        nt.instant("y")
        nt.counter("z", 1)
        assert nt.events == []

    def test_clear_keeps_metrics(self):
        tr = Tracer()
        tr.instant("a")
        tr.metrics.counter("kept").inc()
        tr.clear()
        assert tr.events == []
        assert tr.metrics.counter("kept").value == 1


class TestMetrics:
    def test_counter_monotone(self):
        c = Counter("c", ())
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_high_water(self):
        g = Gauge("g", ())
        g.set(4)
        g.set(2)
        assert g.value == 2 and g.high_water == 4

    def test_histogram_buckets_and_summary(self):
        h = Histogram("h", (), bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]  # <=1, <=10, overflow
        s = h.summary()
        assert s["count"] == 3 and s["min"] == 0.5 and s["max"] == 50.0
        assert h.mean == pytest.approx(55.5 / 3)

    def test_empty_histogram_summary(self):
        assert Histogram("h", ()).summary() == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
        }

    def test_default_buckets_are_decades(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-9)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(1e3)

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("n", core=1) is reg.counter("n", core=1)
        assert reg.counter("n", core=1) is not reg.counter("n", core=2)
        assert len(reg) == 2

    def test_registry_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_metric_key_sorts_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("m", b=2, a=1)
        assert metric_key(c.name, c.labels) == "m{a=1,b=2}"

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", core=0).inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"c{core=0}": 3}
        assert snap["gauges"]["g"] == {"value": 1.5, "high_water": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_flat_summary(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1.0)
        flat = reg.flat_summary()
        assert flat["c"] == 1 and flat["g"] == 2
        assert flat["h"]["count"] == 1
