"""Black-box end-to-end tests of the campaign server.

Everything here talks to a real :class:`repro.serve.CampaignServer`
bound to an ephemeral port over real HTTP — the exact surface a user
hits — and asserts the two service contracts of ``docs/SERVING.md``:

1. **correctness**: served records are bitwise-identical (canonical
   JSON) to a direct serial :meth:`Campaign.run` of the same grid, on
   every zoo machine;
2. **dedup**: resubmitting an identical spec answers entirely from the
   content store — the simulation count is zero.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import Campaign
from repro.core.parallel import fork_context
from repro.serve import CampaignServer, CampaignSpec, ServeClient, ServeError, SpecError

pytestmark = pytest.mark.skipif(
    fork_context() is None,
    reason="the campaign server's supervised pool needs the fork start method",
)

SCALE = 0.05
ITERATIONS = 2


@pytest.fixture()
def server(tmp_path):
    srv = CampaignServer(tmp_path / "serve-data", workers=2)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


def _spec(machine="scc-48", **overrides):
    kwargs = dict(
        ids=(24,),
        core_counts=(1, 4),
        machine=machine,
        scale=SCALE,
        iterations=ITERATIONS,
        mode="model",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def _serial_records(tmp_path, spec: CampaignSpec):
    """The ground truth: a direct serial campaign over the same grid."""
    campaign = Campaign(
        "baseline",
        output_dir=tmp_path / "baseline",
        scale=spec.scale,
        iterations=spec.iterations,
        mode=spec.mode,
        machine=spec.machine,
    )
    campaign.run(spec.points(), workers=1)
    return campaign.load()


def _canon(rec: dict) -> str:
    return json.dumps(rec, sort_keys=True)


@pytest.mark.parametrize("machine", ["scc-48", "xeonphi-61"])
def test_served_records_bitwise_identical_to_serial_campaign(
    tmp_path, server, client, machine
):
    spec = _spec(machine=machine)
    summary = client.submit(spec)
    result = client.wait(str(summary["job_id"]), timeout=300.0)

    baseline = _serial_records(tmp_path, spec)
    assert len(result["records"]) == len(baseline) == len(spec.points())
    assert [_canon(r) for r in result["records"]] == [_canon(r) for r in baseline]
    assert all(r["status"] == "ok" for r in result["records"])
    assert result["simulated"] == len(spec.points())
    assert result["dedup_hits"] == 0


@pytest.mark.parametrize("machine", ["scc-48", "xeonphi-61"])
def test_resubmission_answers_entirely_from_store(server, client, machine):
    spec = _spec(machine=machine)
    first = client.wait(str(client.submit(spec)["job_id"]), timeout=300.0)
    assert first["simulated"] == len(spec.points())

    second = client.wait(str(client.submit(spec)["job_id"]), timeout=60.0)
    assert second["simulated"] == 0
    assert second["dedup_hits"] == len(spec.points())
    assert all(origin == "store" for origin in second["origins"])
    assert [_canon(r) for r in second["records"]] == [
        _canon(r) for r in first["records"]
    ]
    # The server-side counter agrees: no new simulations happened.
    serve_metrics = client.metrics()["serve"]
    assert serve_metrics["simulations"] == len(spec.points())
    assert serve_metrics["dedup_hits"] == len(spec.points())


def test_dedup_is_keyed_by_machine(server, client):
    """The same grid on two machines must not share store entries."""
    first = client.wait(
        str(client.submit(_spec(machine="scc-48"))["job_id"]), timeout=300.0
    )
    second = client.wait(
        str(client.submit(_spec(machine="xeonphi-61"))["job_id"]), timeout=300.0
    )
    assert first["simulated"] == second["simulated"] == 2
    assert second["dedup_hits"] == 0
    assert [_canon(r) for r in first["records"]] != [
        _canon(r) for r in second["records"]
    ]


def test_submitting_a_bad_spec_is_a_400(client):
    with pytest.raises(ServeError) as excinfo:
        client._ok("POST", "/api/v1/jobs", {"spec": {"ids": [24]}})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client._ok(
            "POST",
            "/api/v1/jobs",
            {"spec": {"ids": [24], "core_counts": [4], "mode": "warp-drive"}},
        )
    assert excinfo.value.status == 400
    assert "mode" in str(excinfo.value)


def test_spec_validation_rejects_impossible_grids():
    with pytest.raises(SpecError):
        CampaignSpec(ids=(24,), core_counts=(64,), machine="scc-48")  # > 48 cores
    with pytest.raises(SpecError):
        CampaignSpec(ids=(24,), core_counts=(4,), machine="xeonphi-61", mode="sim")
    with pytest.raises(SpecError):
        CampaignSpec(ids=(24,), core_counts=(4,), configs=("conf9",))
    with pytest.raises(SpecError):
        CampaignSpec(ids=(9999,), core_counts=(4,))


def test_unknown_job_and_path_are_404(client):
    with pytest.raises(ServeError) as excinfo:
        client.status("job-999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client._ok("GET", "/api/v1/nope")
    assert excinfo.value.status == 404


def test_result_of_an_unfinished_job_is_409(server, client):
    # A job whose id doesn't exist yet distinguishes 404 from 409; an
    # in-flight one is racy to catch, so assert the mapping directly on
    # a job that's done (200) and a missing one (404) plus the running
    # case via the wait() loop which tolerates only 409s in between.
    spec = _spec()
    job_id = str(client.submit(spec)["job_id"])
    result = client.wait(job_id, timeout=300.0)  # only 409s tolerated inside
    assert result["state"] == "done"


def test_journal_recovery_restores_jobs_from_the_store(tmp_path):
    """A restarted server resumes journaled jobs as pure store hits."""
    data_dir = tmp_path / "serve-data"
    spec = _spec()

    first_srv = CampaignServer(data_dir, workers=2)
    first_srv.start()
    try:
        client = ServeClient(first_srv.url)
        job_id = str(client.submit(spec)["job_id"])
        first = client.wait(job_id, timeout=300.0)
    finally:
        first_srv.stop()

    second_srv = CampaignServer(data_dir, workers=2)
    second_srv.start()
    try:
        client = ServeClient(second_srv.url)
        recovered = client.wait(job_id, timeout=60.0)
        assert [_canon(r) for r in recovered["records"]] == [
            _canon(r) for r in first["records"]
        ]
        # Recovery replayed the journal against the store: no simulation.
        assert client.metrics()["serve"]["simulations"] == 0.0
    finally:
        second_srv.stop()


def test_health_and_metrics_endpoints(server, client):
    health = client.healthz()
    assert health["ok"] is True
    assert health["workers"] == 2
    spec = _spec()
    client.wait(str(client.submit(spec)["job_id"]), timeout=300.0)
    health = client.healthz()
    assert health["jobs"] == 1
    assert health["jobs_done"] == 1
    assert health["store_entries"] == len(spec.points())
    metrics = client.metrics()
    assert metrics["serve"]["jobs_done"] == 1.0
    assert metrics["supervise"]["tasks"] == len(spec.points())
    assert metrics["worker_health"]["batches"] >= 1
    assert metrics["worker_health"]["quarantined"] == 0
