"""Tests for the one-sided MPB layer (put/get/flags)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rcce import MPB_BYTES_PER_CORE, FLAG_CLEAR, FLAG_SET, MPBWindow, OneSided, RCCERuntime


class TestMPBWindow:
    def test_write_read(self):
        w = MPBWindow(owner=0)
        w.write(64, np.arange(10.0))
        np.testing.assert_array_equal(w.read(64), np.arange(10.0))

    def test_capacity_enforced(self):
        w = MPBWindow(owner=0)
        with pytest.raises(ValueError):
            w.write(0, np.zeros(MPB_BYTES_PER_CORE))  # 8x too big
        with pytest.raises(ValueError):
            w.write(MPB_BYTES_PER_CORE - 8, np.zeros(10))  # overflows the end

    def test_offset_bounds(self):
        w = MPBWindow(owner=0)
        with pytest.raises(ValueError):
            w.write(-1, 1.0)
        with pytest.raises(ValueError):
            w.write(MPB_BYTES_PER_CORE, 1.0)

    def test_missing_read(self):
        w = MPBWindow(owner=0)
        with pytest.raises(KeyError):
            w.read(0)

    def test_flags_default_clear(self):
        w = MPBWindow(owner=0)
        assert w.flag(3) == FLAG_CLEAR
        w.set_flag(3, FLAG_SET)
        assert w.flag(3) == FLAG_SET

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MPBWindow(owner=0, size=0)


class TestOneSided:
    def test_put_get_roundtrip(self):
        rt = RCCERuntime([0, 47])
        osided = OneSided(rt)

        def fn(comm):
            if comm.ue == 0:
                yield from osided.put(0, 1, 0, np.arange(16.0))
                yield from osided.set_flag(0, 1, flag_id=0)
                return None
            yield from osided.wait_flag(1, flag_id=0)
            data = yield from osided.get(1, 1, 0)
            return data.sum()

        res = rt.run(fn)
        assert res[1].value == pytest.approx(120.0)

    def test_flag_polling_costs_time(self):
        rt = RCCERuntime([0, 1])
        osided = OneSided(rt)

        def fn(comm):
            if comm.ue == 0:
                yield from comm.compute(1e-4)  # make the peer wait
                yield from osided.set_flag(0, 1, flag_id=7)
            else:
                yield from osided.wait_flag(1, flag_id=7, poll_interval=1e-6)
                return comm.wtime()

        res = rt.run(fn)
        # The poller wakes on a poll boundary at/after the set.
        assert res[1].value >= 1e-4

    def test_wait_flag_timeout(self):
        rt = RCCERuntime([0])
        osided = OneSided(rt)

        def fn(comm):
            yield from osided.wait_flag(0, flag_id=1, timeout=1e-5)

        with pytest.raises(Exception):  # TimeoutError via ProcessFailure
            rt.run(fn)

    def test_invalid_poll_interval(self):
        rt = RCCERuntime([0])
        osided = OneSided(rt)

        def fn(comm):
            yield from osided.wait_flag(0, flag_id=0, poll_interval=0.0)

        with pytest.raises(Exception):
            rt.run(fn)

    def test_put_time_grows_with_distance(self):
        def transfer(cores):
            rt = RCCERuntime(cores)
            osided = OneSided(rt)

            def fn(comm):
                if comm.ue == 0:
                    yield from osided.put(0, 1, 0, np.zeros(512))
                else:
                    yield from comm.compute(0.0)

            rt.run(fn)
            return rt.sim.now

        assert transfer([0, 47]) > transfer([0, 1])

    def test_send_recv_rebuilt_from_primitives(self):
        """The classic exercise: two-sided messaging from one-sided ops."""
        rt = RCCERuntime([0, 10])
        osided = OneSided(rt)
        DATA, READY, ACK = 0, 0, 1

        def fn(comm):
            if comm.ue == 0:
                payload = np.linspace(0, 1, 64)
                yield from osided.put(0, 1, DATA, payload)
                yield from osided.set_flag(0, 1, READY)
                yield from osided.wait_flag(0, ACK)  # consumer done
                return "sent"
            yield from osided.wait_flag(1, READY)
            data = yield from osided.get(1, 1, DATA)
            yield from osided.set_flag(1, 0, ACK)
            return float(data[-1])

        res = rt.run(fn)
        assert res[0].value == "sent"
        assert res[1].value == pytest.approx(1.0)

    def test_double_buffering_pipeline(self):
        """Producer/consumer with two MPB slots overlapping transfers."""
        rt = RCCERuntime([0, 1])
        osided = OneSided(rt)
        CHUNKS = 6

        def fn(comm):
            if comm.ue == 0:
                for k in range(CHUNKS):
                    slot = k % 2
                    if k >= 2:  # wait until the consumer drained slot
                        yield from osided.wait_flag(0, flag_id=10 + slot)
                        osided.windows[0].set_flag(10 + slot, FLAG_CLEAR)
                    yield from osided.put(0, 1, slot * 1024, np.full(64, float(k)))
                    yield from osided.set_flag(0, 1, flag_id=slot)
                return None
            total = 0.0
            for k in range(CHUNKS):
                slot = k % 2
                yield from osided.wait_flag(1, flag_id=slot)
                osided.windows[1].set_flag(slot, FLAG_CLEAR)
                chunk = yield from osided.get(1, 1, slot * 1024)
                total += chunk.sum()
                yield from osided.set_flag(1, 0, flag_id=10 + slot)
            return total

        res = rt.run(fn)
        assert res[1].value == pytest.approx(64 * sum(range(CHUNKS)))
