"""Tests for SpMV access-stream characterization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import access_summary, characterize_partition
from repro.core.trace import UETrace
from repro.scc.params import L2_BYTES
from repro.sparse import banded, partition_rows_balanced, random_uniform


def trace_of(a, n_ues=1, **kw):
    return characterize_partition(a, partition_rows_balanced(a, n_ues), **kw)


class TestCharacterizePartition:
    def test_one_trace_per_ue(self, small_banded):
        traces = trace_of(small_banded, 4)
        assert len(traces) == 4
        assert [t.ue for t in traces] == [0, 1, 2, 3]

    def test_nnz_and_rows_partition(self, small_banded):
        traces = trace_of(small_banded, 4)
        assert sum(t.nnz for t in traces) == small_banded.nnz
        assert sum(t.rows for t in traces) == small_banded.n_rows

    def test_stream_lines_scale_with_nnz(self, small_banded):
        [t] = trace_of(small_banded)
        # da(8B) + index(4B) per nnz plus ptr/y per row, 32B lines.
        expected = (
            8 * t.nnz // 32 + 4 * t.nnz // 32 + 4 * t.rows // 32 + 8 * t.rows // 32
        )
        assert t.stream_lines == pytest.approx(expected, rel=0.02, abs=6)

    def test_x_locality_banded_beats_random_at_l1(self):
        a = banded(3000, 8.0, 8, seed=1)
        b = random_uniform(3000, 8.0, seed=1)
        ta = trace_of(a)[0]
        tb = trace_of(b)[0]
        assert ta.x_l1_misses < tb.x_l1_misses
        # Both footprints (750 lines) fit the L2 share: only colds remain.
        assert ta.x_l2_misses <= tb.x_l2_misses

    def test_x_locality_banded_beats_random_at_l2(self):
        # Footprint must exceed the L2 x-share (4096 lines = 16k cols).
        a = banded(40_000, 8.0, 8, seed=1)
        b = random_uniform(40_000, 8.0, seed=1)
        assert trace_of(a)[0].x_l2_misses < trace_of(b)[0].x_l2_misses

    def test_x_distinct_lines_bounded_by_columns(self, small_random):
        [t] = trace_of(small_random)
        assert t.x_distinct_lines <= (small_random.n_cols * 8) // 32 + 1

    def test_ws_bytes_accounting(self, small_banded):
        [t] = trace_of(small_banded)
        assert t.ws_bytes >= 12 * t.nnz
        assert t.ws_bytes >= t.x_distinct_lines * 32

    def test_more_ues_shrink_per_ue_ws(self, small_banded):
        t1 = trace_of(small_banded, 1)[0]
        t4 = max(trace_of(small_banded, 4), key=lambda t: t.ws_bytes)
        assert t4.ws_bytes < t1.ws_bytes

    def test_x_capacity_fraction_validated(self, small_banded):
        with pytest.raises(ValueError):
            trace_of(small_banded, 1, x_capacity_fraction=0.0)
        with pytest.raises(ValueError):
            trace_of(small_banded, 1, x_capacity_fraction=1.5)

    def test_larger_x_fraction_fewer_misses(self, small_random):
        few = trace_of(small_random, 1, x_capacity_fraction=0.9)[0]
        many = trace_of(small_random, 1, x_capacity_fraction=0.1)[0]
        assert few.x_l2_misses <= many.x_l2_misses

    def test_empty_ue_block(self):
        """A UE that receives zero rows produces a zero trace."""
        a = banded(64, 4.0, 4, seed=2)
        traces = characterize_partition(a, partition_rows_balanced(a, 64))
        empties = [t for t in traces if t.nnz == 0]
        for t in empties:
            assert t.x_l1_misses == 0 and t.stream_lines <= 2


def make_trace(**kw):
    defaults = dict(
        ue=0, nnz=10_000, rows=1_000, stream_lines=4_000, distinct_lines=5_000,
        x_l1_misses=2_000.0, x_l2_misses=500.0, x_distinct_lines=1_000,
        ws_bytes=100 * 1024,
    )
    defaults.update(kw)
    return UETrace(**defaults)


class TestAccessSummary:
    def test_resident_regime_cold_misses_once(self):
        t = make_trace(ws_bytes=L2_BYTES // 2)
        s = access_summary(t, iterations=10)
        assert s.l2_misses == t.distinct_lines  # cold only
        per_iter_l1 = t.stream_lines + t.x_l1_misses
        assert s.l2_hits == pytest.approx(per_iter_l1 * 10 - t.distinct_lines)

    def test_streaming_regime_misses_every_iteration(self):
        t = make_trace(ws_bytes=4 * L2_BYTES)
        s = access_summary(t, iterations=10)
        assert s.l2_misses == pytest.approx((t.stream_lines + t.x_l2_misses) * 10)
        assert s.l2_hits == pytest.approx((t.x_l1_misses - t.x_l2_misses) * 10)

    def test_l2_disabled_regime(self):
        t = make_trace(ws_bytes=L2_BYTES // 2)  # would fit, but L2 is off
        s = access_summary(t, iterations=5, l2_enabled=False)
        assert s.l2_hits == 0
        assert s.l2_misses == pytest.approx((t.stream_lines + t.x_l1_misses) * 5)

    def test_no_x_miss_removes_gather_misses(self):
        t = make_trace(ws_bytes=4 * L2_BYTES)
        s = access_summary(t, iterations=2, no_x_miss=True)
        assert s.l2_misses == pytest.approx(t.stream_lines * 2)
        assert s.l2_hits == 0.0

    def test_no_x_miss_in_resident_regime(self):
        t = make_trace(ws_bytes=L2_BYTES // 2)
        s = access_summary(t, iterations=3, no_x_miss=True)
        assert s.l2_misses == t.stream_lines  # x colds gone too

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            access_summary(make_trace(), iterations=0)

    def test_flops_follow_iterations(self):
        s = access_summary(make_trace(), iterations=7)
        assert s.flops == 2 * 10_000 * 7

    def test_boundary_exactly_at_l2(self):
        t = make_trace(ws_bytes=L2_BYTES)
        s = access_summary(t, iterations=2)
        # <= L2 counts as resident.
        assert s.l2_misses == t.distinct_lines
