"""Tests for the MPB model and matched mailboxes."""

from __future__ import annotations

import pytest

from repro.rcce import MPB_BYTES_PER_CORE, Envelope, Mailbox, chunked_transfer_time, payload_bytes
from repro.scc import MeshNetwork
from repro.sim import Simulator

import numpy as np


class TestChunkedTransfer:
    def setup_method(self):
        self.mesh = MeshNetwork(mesh_mhz=800)

    def test_zero_bytes_costs_header(self):
        t = chunked_transfer_time(self.mesh, 0, 47, 0)
        assert t == self.mesh.core_message_time(0, 47, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chunked_transfer_time(self.mesh, 0, 1, -1)

    def test_small_message_single_chunk(self):
        t = chunked_transfer_time(self.mesh, 0, 47, 100)
        assert t == pytest.approx(self.mesh.core_message_time(0, 47, 100))

    def test_exact_multiple_of_mpb(self):
        n = 3 * MPB_BYTES_PER_CORE
        t = chunked_transfer_time(self.mesh, 0, 47, n)
        assert t == pytest.approx(3 * self.mesh.core_message_time(0, 47, MPB_BYTES_PER_CORE))

    def test_remainder_chunk(self):
        n = MPB_BYTES_PER_CORE + 10
        t = chunked_transfer_time(self.mesh, 0, 47, n)
        expected = self.mesh.core_message_time(0, 47, MPB_BYTES_PER_CORE) + self.mesh.core_message_time(0, 47, 10)
        assert t == pytest.approx(expected)

    def test_chunking_slower_than_hypothetical_single_shot(self):
        """Per-chunk headers make big transfers strictly slower."""
        n = 10 * MPB_BYTES_PER_CORE
        chunked = chunked_transfer_time(self.mesh, 0, 47, n)
        single = self.mesh.core_message_time(0, 47, n)
        assert chunked > single


class TestPayloadBytes:
    def test_ndarray(self):
        assert payload_bytes(np.zeros(100)) == 800
        assert payload_bytes(np.zeros(100, dtype=np.int32)) == 400

    def test_scalars(self):
        assert payload_bytes(3) == 8
        assert payload_bytes(2.5) == 8
        assert payload_bytes(np.float64(1.0)) == 8

    def test_bytes(self):
        assert payload_bytes(b"abcd") == 4

    def test_sequences_sum(self):
        assert payload_bytes([1, 2.0, np.zeros(10)]) == 8 + 8 + 80

    def test_opaque_object_flat_cost(self):
        assert payload_bytes({"k": 1}) == 64


class TestMailbox:
    def setup_method(self):
        self.sim = Simulator()
        self.box = Mailbox(self.sim, owner=0)

    def env(self, source=1, tag=0, payload="data"):
        return Envelope(source, tag, payload, self.sim.event("ack"))

    def test_deliver_then_receive(self):
        e = self.env()
        self.box.deliver(e)
        ev = self.box.receive()
        assert ev.triggered and ev.value is e

    def test_receive_then_deliver(self):
        ev = self.box.receive()
        assert not ev.triggered
        e = self.env()
        self.box.deliver(e)
        assert ev.triggered and ev.value is e

    def test_match_by_source(self):
        ev = self.box.receive(source=2)
        self.box.deliver(self.env(source=1))
        assert not ev.triggered
        self.box.deliver(self.env(source=2))
        assert ev.triggered
        assert self.box.pending_count == 1  # source-1 message still queued

    def test_match_by_tag(self):
        ev = self.box.receive(tag=7)
        self.box.deliver(self.env(tag=3))
        assert not ev.triggered
        self.box.deliver(self.env(tag=7))
        assert ev.triggered

    def test_wildcard_receives_in_fifo_order(self):
        a, b = self.env(payload="a"), self.env(payload="b")
        self.box.deliver(a)
        self.box.deliver(b)
        assert self.box.receive().value is a
        assert self.box.receive().value is b

    def test_multiple_waiters_matched_independently(self):
        ev1 = self.box.receive(source=1)
        ev2 = self.box.receive(source=2)
        self.box.deliver(self.env(source=2))
        assert ev2.triggered and not ev1.triggered
