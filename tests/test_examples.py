"""Smoke tests: the runnable examples must stay green.

Only the fast examples run here (each asserts its own correctness
internally); the long ones are exercised manually / by CI at leisure.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "rcce_programming.py",
    "power_aware_spmv.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "mapping_study.py",
        "frequency_power_study.py",
        "rcce_programming.py",
        "reordering_study.py",
        "power_aware_spmv.py",
        "cg_solver.py",
        "pagerank_graph.py",
        "campaign_sweep.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present
