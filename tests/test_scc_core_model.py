"""Tests for the P54C timing composition."""

from __future__ import annotations

import pytest

from repro.scc import AccessSummary, DEFAULT_TIMING, P54CTimingParams, core_flops, core_time


def summary(nnz=1000, rows=100, iters=1, l2_hits=0.0, l2_misses=0.0):
    return AccessSummary(nnz=nnz, rows=rows, iterations=iters, l2_hits=l2_hits, l2_misses=l2_misses)


class TestAccessSummary:
    def test_flops_is_2nnz_per_iteration(self):
        assert summary(nnz=500, iters=3).flops == 3000

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            AccessSummary(nnz=-1, rows=0, iterations=1, l2_hits=0, l2_misses=0)
        with pytest.raises(ValueError):
            AccessSummary(nnz=1, rows=0, iterations=1, l2_hits=-1, l2_misses=0)
        with pytest.raises(ValueError):
            AccessSummary(nnz=1, rows=0, iterations=1, l2_hits=0, l2_misses=-2)


class TestCoreTime:
    def test_pure_compute_scales_with_frequency(self):
        s = summary()
        t533 = core_time(s, 533, 0.0)
        t800 = core_time(s, 800, 0.0)
        assert t533 / t800 == pytest.approx(800 / 533)

    def test_compute_cycles_composition(self):
        tp = P54CTimingParams(
            base_cycles_per_nnz=10,
            row_overhead_cycles=20,
            l2_hit_cycles=15,
            call_overhead_cycles=100,
        )
        s = summary(nnz=1000, rows=50, iters=2, l2_hits=30)
        cycles = 10 * 1000 * 2 + 20 * 50 * 2 + 100 * 2 + 15 * 30
        assert core_time(s, 100, 0.0, tp) == pytest.approx(cycles / 100e6)

    def test_memory_term_additive(self):
        s = summary(l2_misses=1000)
        t0 = core_time(s, 533, 0.0)
        t1 = core_time(s, 533, 100e-9)
        assert t1 - t0 == pytest.approx(1000 * 100e-9)

    def test_memory_term_independent_of_core_clock(self):
        s = summary(nnz=0, rows=0, l2_misses=500)
        tp = P54CTimingParams(call_overhead_cycles=0.0)
        assert core_time(s, 100, 1e-7, tp) == pytest.approx(core_time(s, 800, 1e-7, tp))

    def test_invalid_inputs(self):
        s = summary()
        with pytest.raises(ValueError):
            core_time(s, 0, 0.0)
        with pytest.raises(ValueError):
            core_time(s, 533, -1e-9)

    def test_row_overhead_hurts_short_rows(self):
        """Same nnz split over 10x more rows runs slower (paper Sec. IV-B)."""
        long_rows = summary(nnz=10000, rows=100)
        short_rows = summary(nnz=10000, rows=5000)
        assert core_time(short_rows, 533, 0.0) > core_time(long_rows, 533, 0.0)


class TestCoreFlops:
    def test_flops_per_second(self):
        s = summary(nnz=1000, iters=4)
        assert core_flops(s, 2.0) == pytest.approx(4000.0)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            core_flops(summary(), 0.0)


class TestDefaultCalibration:
    def test_l2_resident_per_core_rate_near_anchor(self):
        """Calibration anchor: ~42 MFLOPS/s per core when L2-resident.

        (24 cores x ~42 MF/s ~= the paper's 'up to 1 GFLOPS/s' for
        matrices that fit in L2, Sec. IV-B.)
        """
        nnz, rows = 100_000, 5_000
        # Streaming L1 misses that hit L2: ~0.42 lines per nnz.
        s = summary(nnz=nnz, rows=rows, iters=1, l2_hits=0.42 * nnz)
        t = core_time(s, 533, 0.0, DEFAULT_TIMING)
        mflops = 2 * nnz / t / 1e6
        assert 35 <= mflops <= 50

    def test_single_core_memory_bound_rate_near_anchor(self):
        """~20-27 MFLOPS/s for one core streaming from memory."""
        nnz, rows = 100_000, 5_000
        s = summary(nnz=nnz, rows=rows, iters=1, l2_misses=0.42 * nnz)
        t = core_time(s, 533, 132.5e-9, DEFAULT_TIMING)
        mflops = 2 * nnz / t / 1e6
        assert 18 <= mflops <= 30
