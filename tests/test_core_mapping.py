"""Tests for UE-to-core mapping policies."""

from __future__ import annotations

import pytest

from repro.core import (
    MAPPINGS,
    distance_reduction_mapping,
    get_mapping,
    single_core_at_distance,
    standard_mapping,
)


class TestStandardMapping:
    def test_identity(self):
        assert standard_mapping(4) == [0, 1, 2, 3]
        assert standard_mapping(48) == list(range(48))

    def test_bounds(self):
        with pytest.raises(ValueError):
            standard_mapping(0)
        with pytest.raises(ValueError):
            standard_mapping(49)


class TestDistanceReduction:
    def test_paper_four_ue_example(self, topology):
        """Paper Sec. IV-A: 4 UEs land on cores 0, 1, 10, 11."""
        assert distance_reduction_mapping(4, topology) == [0, 1, 10, 11]

    def test_first_two_match_standard(self, topology):
        """Paper: no difference in selected cores for 1 and 2 cores."""
        for n in (1, 2):
            assert distance_reduction_mapping(n, topology) == standard_mapping(n)

    def test_48_uses_every_core(self, topology):
        assert sorted(distance_reduction_mapping(48, topology)) == list(range(48))

    def test_prefix_property(self, topology):
        """Smaller jobs use a prefix of larger jobs' core sets."""
        m24 = distance_reduction_mapping(24, topology)
        m8 = distance_reduction_mapping(8, topology)
        assert m24[:8] == m8

    def test_hops_nondecreasing(self, topology):
        cores = distance_reduction_mapping(48, topology)
        hops = [topology.hops_to_mc(c) for c in cores]
        assert hops == sorted(hops)

    def test_spreads_across_controllers(self, topology):
        """The first 8 cores split 2-per-quadrant (all hop-0 tiles)."""
        cores = distance_reduction_mapping(8, topology)
        quads = [topology.quadrant_of_core(c) for c in cores]
        assert sorted(quads) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_bounds(self):
        with pytest.raises(ValueError):
            distance_reduction_mapping(0)


class TestSingleCoreAtDistance:
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_returns_core_at_requested_distance(self, topology, hops):
        [core] = single_core_at_distance(hops, topology)
        assert topology.hops_to_mc(core) == hops

    def test_impossible_distance_raises(self, topology):
        with pytest.raises(ValueError):
            single_core_at_distance(4, topology)


class TestRegistry:
    def test_known_mappings(self):
        assert set(MAPPINGS) == {"standard", "distance_reduction"}
        assert get_mapping("standard") is standard_mapping

    def test_unknown_mapping(self):
        with pytest.raises(KeyError):
            get_mapping("zigzag")
