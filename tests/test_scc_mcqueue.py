"""Tests for the event-driven MC queue and its agreement with the
closed-form equilibrium used by the timing solver."""

from __future__ import annotations

import pytest

from repro.core.timing import _controller_line_time
from repro.scc.mcqueue import CoreWorkload, simulate_controller


class TestValidation:
    def test_empty_and_invalid(self):
        with pytest.raises(ValueError):
            simulate_controller([], 1e6)
        with pytest.raises(ValueError):
            simulate_controller([CoreWorkload(1.0, 10, 1e-7)], 0.0)
        with pytest.raises(ValueError):
            CoreWorkload(-1.0, 10, 1e-7)
        with pytest.raises(ValueError):
            CoreWorkload(1.0, 10, 0.0)


class TestSingleCore:
    def test_unsaturated_time_is_compute_plus_latency(self):
        wl = CoreWorkload(compute_time=1.0, n_lines=1000, latency=100e-9)
        [t] = simulate_controller([wl], capacity_lines_per_sec=1e12)
        assert t == pytest.approx(1.0 + 1000 * 100e-9, rel=1e-6)

    def test_zero_lines_pure_compute(self):
        wl = CoreWorkload(compute_time=0.5, n_lines=0, latency=1e-7)
        [t] = simulate_controller([wl], 1e6)
        assert t == pytest.approx(0.0)  # no requests -> process ends at 0

    def test_slow_server_bounds_single_core(self):
        # Service 1 ms/line dominates the 100 ns latency.
        wl = CoreWorkload(compute_time=0.0, n_lines=100, latency=100e-9)
        [t] = simulate_controller([wl], capacity_lines_per_sec=1000.0)
        assert t == pytest.approx(100 * 1e-3, rel=1e-3)


class TestContention:
    def test_two_cores_share_fairly(self):
        wl = CoreWorkload(compute_time=0.0, n_lines=1000, latency=1e-7)
        times = simulate_controller([wl, wl], capacity_lines_per_sec=1e6)
        # 2000 lines through a 1e6 lines/s server: ~2 ms for both.
        for t in times:
            assert t == pytest.approx(2e-3, rel=0.02)

    def test_light_core_unharmed_by_heavy_neighbour(self):
        light = CoreWorkload(compute_time=1.0, n_lines=10, latency=1e-7)
        heavy = CoreWorkload(compute_time=0.0, n_lines=100_000, latency=1e-7)
        t_alone = simulate_controller([light], 1e6)[0]
        t_shared = simulate_controller([light, heavy], 1e6)[0]
        # The light core's requests queue behind at most one in-flight
        # line each: bounded slowdown.
        assert t_shared < t_alone * 1.05


class TestAgreementWithClosedForm:
    def closed_form_times(self, workloads, capacity):
        base = [w.compute_time for w in workloads]
        lines = [float(w.n_lines) for w in workloads]
        lats = [w.latency for w in workloads]
        t_star = _controller_line_time(base, lines, lats, capacity)
        return [
            b + m * max(t_star, l) for b, m, l in zip(base, lines, lats)
        ]

    @pytest.mark.parametrize(
        "n_cores,capacity",
        [(1, 1e7), (4, 1e7), (12, 1e7), (12, 1e5), (4, 1e4)],
        ids=["1-unsat", "4-mild", "12-mild", "12-saturated", "4-very-saturated"],
    )
    def test_symmetric_workloads(self, n_cores, capacity):
        wl = CoreWorkload(compute_time=0.01, n_lines=2000, latency=150e-9)
        event = simulate_controller([wl] * n_cores, capacity)
        closed = self.closed_form_times([wl] * n_cores, capacity)
        for te, tc in zip(event, closed):
            assert te == pytest.approx(tc, rel=0.10)

    def test_asymmetric_workloads(self):
        workloads = [
            CoreWorkload(compute_time=0.02, n_lines=1000, latency=150e-9),
            CoreWorkload(compute_time=0.005, n_lines=4000, latency=150e-9),
            CoreWorkload(compute_time=0.01, n_lines=2000, latency=180e-9),
        ]
        capacity = 2e5  # saturating
        event = simulate_controller(workloads, capacity)
        closed = self.closed_form_times(workloads, capacity)
        # Asymmetric equilibria agree on the makespan within ~15%.
        assert max(event) == pytest.approx(max(closed), rel=0.15)

    def test_unsaturated_exact_agreement(self):
        workloads = [
            CoreWorkload(compute_time=0.01, n_lines=500, latency=140e-9),
            CoreWorkload(compute_time=0.02, n_lines=300, latency=160e-9),
        ]
        event = simulate_controller(workloads, capacity_lines_per_sec=1e12)
        closed = self.closed_form_times(workloads, 1e12)
        for te, tc in zip(event, closed):
            assert te == pytest.approx(tc, rel=1e-3)
