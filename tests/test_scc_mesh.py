"""Tests for the mesh network model (XY routing, loads, timing)."""

from __future__ import annotations

import pytest

from repro.scc import MeshNetwork, SCCTopology, xy_route
from repro.scc.mesh import LINK_BYTES_PER_CYCLE, ROUTER_CYCLES


class TestXYRoute:
    def test_straight_x(self):
        assert xy_route((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_straight_y(self):
        assert xy_route((2, 0), (2, 3)) == [(2, 0), (2, 1), (2, 2), (2, 3)]

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_negative_directions(self):
        path = xy_route((3, 2), (1, 0))
        assert path == [(3, 2), (2, 2), (1, 2), (1, 1), (1, 0)]

    def test_self_route(self):
        assert xy_route((4, 1), (4, 1)) == [(4, 1)]

    def test_route_length_is_manhattan_plus_one(self):
        topo = SCCTopology()
        for src in ((0, 0), (5, 3), (2, 1)):
            for dst in ((0, 0), (5, 0), (3, 3)):
                assert len(xy_route(src, dst)) == topo.hops_between(src, dst) + 1

    def test_out_of_mesh_raises(self):
        with pytest.raises(ValueError):
            xy_route((0, 0), (6, 0))
        with pytest.raises(ValueError):
            xy_route((-1, 0), (0, 0))


class TestMeshNetwork:
    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            MeshNetwork(mesh_mhz=0)

    def test_link_bandwidth_scales_with_clock(self):
        slow = MeshNetwork(mesh_mhz=800)
        fast = MeshNetwork(mesh_mhz=1600)
        assert fast.link_bandwidth == pytest.approx(2 * slow.link_bandwidth)
        assert slow.link_bandwidth == LINK_BYTES_PER_CYCLE * 800e6

    def test_message_time_header_only(self):
        mesh = MeshNetwork(mesh_mhz=800)
        t = mesh.message_time((0, 0), (3, 0), 0)
        assert t == pytest.approx(3 * ROUTER_CYCLES / 800e6)

    def test_message_time_grows_with_size(self):
        mesh = MeshNetwork(mesh_mhz=800)
        t1 = mesh.message_time((0, 0), (1, 0), 64)
        t2 = mesh.message_time((0, 0), (1, 0), 6400)
        assert t2 > t1

    def test_message_time_grows_with_distance(self):
        mesh = MeshNetwork(mesh_mhz=800)
        near = mesh.message_time((0, 0), (1, 0), 256)
        far = mesh.message_time((0, 0), (5, 3), 256)
        assert far > near

    def test_local_message_pays_one_router(self):
        mesh = MeshNetwork(mesh_mhz=800)
        t = mesh.message_time((2, 2), (2, 2), 0)
        assert t == pytest.approx(ROUTER_CYCLES / 800e6)

    def test_negative_size_raises(self):
        mesh = MeshNetwork()
        with pytest.raises(ValueError):
            mesh.message_time((0, 0), (1, 0), -1)

    def test_core_message_time_uses_tiles(self):
        mesh = MeshNetwork()
        # cores 0 and 1 share tile (0,0): local message
        assert mesh.core_message_time(0, 1, 0) == pytest.approx(ROUTER_CYCLES / 800e6)
        # core 47 sits at tile (5,3): 8 hops from tile (0,0)
        t = mesh.core_message_time(0, 47, 0)
        assert t == pytest.approx(8 * ROUTER_CYCLES / 800e6)

    def test_faster_mesh_is_faster(self):
        slow = MeshNetwork(mesh_mhz=800)
        fast = MeshNetwork(mesh_mhz=1600)
        assert fast.message_time((0, 0), (3, 2), 1024) < slow.message_time((0, 0), (3, 2), 1024)


class TestLinkLoads:
    def test_record_transfer_accumulates(self):
        mesh = MeshNetwork()
        links = mesh.record_transfer((0, 0), (2, 0), 100)
        assert len(links) == 2
        loads = mesh.link_loads()
        assert loads[((0, 0), (1, 0))] == 100
        mesh.record_transfer((0, 0), (2, 0), 50)
        assert mesh.link_loads()[((0, 0), (1, 0))] == 150

    def test_max_link_load(self):
        mesh = MeshNetwork()
        assert mesh.max_link_load() == 0
        mesh.record_transfer((0, 0), (3, 0), 10)
        mesh.record_transfer((1, 0), (2, 0), 5)
        assert mesh.max_link_load() == 15  # the (1,0)->(2,0) link carries both

    def test_reset_loads(self):
        mesh = MeshNetwork()
        mesh.record_transfer((0, 0), (1, 0), 10)
        mesh.reset_loads()
        assert mesh.link_loads() == {}

    def test_routes_through(self):
        mesh = MeshNetwork()
        pairs = [((0, 0), (2, 0)), ((0, 1), (0, 3)), ((5, 3), (5, 0))]
        assert mesh.routes_through((1, 0), pairs) == 1
        assert mesh.routes_through((0, 2), pairs) == 1
        assert mesh.routes_through((3, 3), pairs) == 0
