"""Tests for exact SpMV address-trace generation and replay.

The final classes cross-validate the analytical stream characterization
(:mod:`repro.core.trace`) against trace-exact cache simulation — the
soundness check for the fast model the benchmarks rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import access_summary, characterize_partition
from repro.scc import CacheHierarchy
from repro.scc.tracegen import (
    DEFAULT_LAYOUT,
    REPLAY_ENGINES,
    TraceLayout,
    replay_trace,
    spmv_address_trace,
    spmv_address_trace_chunks,
)
from repro.scc.vecreplay import VectorCacheHierarchy
from repro.sparse import banded, partition_rows_balanced, random_uniform


class TestLayout:
    def test_default_layout_disjoint(self):
        assert DEFAULT_LAYOUT.ptr_base < DEFAULT_LAYOUT.index_base

    def test_overlapping_bases_rejected(self):
        with pytest.raises(ValueError):
            TraceLayout(ptr_base=0x1000, index_base=0x2000)


class TestTraceStructure:
    def test_access_count(self, tiny_csr):
        addrs, writes = spmv_address_trace(tiny_csr)
        assert addrs.size == 3 * tiny_csr.n_rows + 3 * tiny_csr.nnz
        assert writes.sum() == tiny_csr.n_rows  # one y store per row

    def test_program_order_of_first_row(self, tiny_csr):
        """Row 0 has entries (0,1.0) and (2,2.0): the trace must open
        with ptr[0], ptr[1], index[0], da[0], x[0], index[1], da[1],
        x[2], y[0]."""
        L = DEFAULT_LAYOUT
        addrs, writes = spmv_address_trace(tiny_csr)
        expected = [
            L.ptr_base + 0,
            L.ptr_base + 4,
            L.index_base + 0,
            L.da_base + 0,
            L.x_base + 0,
            L.index_base + 4,
            L.da_base + 8,
            L.x_base + 16,
            L.y_base + 0,
        ]
        assert addrs[:9].tolist() == expected
        assert writes[:9].tolist() == [False] * 8 + [True]

    def test_row_range(self, tiny_csr):
        addrs, _ = spmv_address_trace(tiny_csr, 2, 4)
        nnz = int(tiny_csr.ptr[4] - tiny_csr.ptr[2])
        assert addrs.size == 3 * 2 + 3 * nnz
        assert addrs[0] == DEFAULT_LAYOUT.ptr_base + 4 * 2

    def test_empty_range(self, tiny_csr):
        addrs, writes = spmv_address_trace(tiny_csr, 1, 1)
        assert addrs.size == 0 and writes.size == 0

    def test_bad_range(self, tiny_csr):
        with pytest.raises(ValueError):
            spmv_address_trace(tiny_csr, 4, 2)

    def test_no_x_miss_pins_gathers(self, tiny_csr):
        L = DEFAULT_LAYOUT
        addrs, _ = spmv_address_trace(tiny_csr, no_x_miss=True)
        x_accesses = addrs[(addrs >= L.x_base) & (addrs < L.y_base)]
        assert (x_accesses == L.x_base).all()
        assert x_accesses.size == tiny_csr.nnz

    def test_x_addresses_follow_column_indices(self, small_banded):
        L = DEFAULT_LAYOUT
        addrs, _ = spmv_address_trace(small_banded)
        x_accesses = addrs[(addrs >= L.x_base) & (addrs < L.y_base)]
        cols = (x_accesses - L.x_base) // 8
        np.testing.assert_array_equal(np.sort(cols), np.sort(small_banded.index))

    def test_matrix_with_empty_rows(self):
        from repro.sparse import CSRMatrix

        dense = np.zeros((5, 5))
        dense[0, 0] = dense[4, 4] = 1.0
        m = CSRMatrix.from_dense(dense)
        addrs, writes = spmv_address_trace(m)
        assert addrs.size == 3 * 5 + 3 * 2
        assert writes.sum() == 5


class TestReplay:
    def test_counts_add_up(self, small_banded):
        counts = replay_trace(small_banded)
        addrs, _ = spmv_address_trace(small_banded)
        assert counts.accesses == addrs.size

    def test_second_iteration_warms(self):
        """A matrix whose working set fits L2 only cold-misses once."""
        a = banded(300, 6.0, 8, seed=3)  # ws << 256 KB
        one = replay_trace(a, iterations=1)
        two = replay_trace(a, iterations=2)
        assert two.mem_misses == one.mem_misses  # no new memory traffic
        assert two.l1_hits + two.l2_hits > 2 * one.l1_hits

    def test_l2_disabled(self, small_banded):
        on = replay_trace(small_banded, l2_enabled=True)
        off = replay_trace(small_banded, l2_enabled=False)
        assert off.l2_hits == 0
        assert off.mem_misses >= on.mem_misses

    def test_no_x_miss_reduces_misses(self):
        a = random_uniform(4000, 8.0, seed=4)
        base = replay_trace(a)
        nox = replay_trace(a, no_x_miss=True)
        assert nox.mem_misses < base.mem_misses

    def test_iterations_validated(self, small_banded):
        with pytest.raises(ValueError):
            replay_trace(small_banded, iterations=0)

    def test_external_hierarchy_accumulates(self, small_banded):
        h = CacheHierarchy()
        replay_trace(small_banded, hierarchy=h)
        warm = replay_trace(small_banded, hierarchy=h)
        assert warm.mem_misses <= small_banded.nnz  # mostly warm now


class TestChunkedTraceGeneration:
    def test_concatenated_chunks_equal_full_trace(self, small_banded):
        full_addrs, full_writes = spmv_address_trace(small_banded)
        parts = list(spmv_address_trace_chunks(small_banded, max_accesses=97))
        assert len(parts) > 1  # the bound actually forced chunking
        np.testing.assert_array_equal(
            np.concatenate([a for a, _ in parts]), full_addrs
        )
        np.testing.assert_array_equal(
            np.concatenate([w for _, w in parts]), full_writes
        )

    def test_chunks_respect_bound_except_single_rows(self, small_banded):
        bound = 97
        for addrs, writes in spmv_address_trace_chunks(
            small_banded, max_accesses=bound
        ):
            # One y store per row: an over-bound chunk must be a single
            # row that could not be split.
            assert addrs.size <= bound or int(writes.sum()) == 1

    def test_oversized_single_row_emitted_alone(self):
        from repro.sparse import CSRMatrix

        dense = np.zeros((3, 50))
        dense[1, :] = 1.0  # one row with 50 nonzeros: 153 accesses alone
        m = CSRMatrix.from_dense(dense)
        parts = list(spmv_address_trace_chunks(m, max_accesses=10))
        sizes = [a.size for a, _ in parts]
        assert sum(sizes) == 3 * 3 + 3 * 50
        assert max(sizes) > 10  # the fat row could not be split

    def test_row_range_subsets(self, small_banded):
        sub_addrs, _ = spmv_address_trace(small_banded, 5, 50)
        parts = list(
            spmv_address_trace_chunks(small_banded, 5, 50, max_accesses=64)
        )
        np.testing.assert_array_equal(
            np.concatenate([a for a, _ in parts]), sub_addrs
        )

    def test_bad_arguments(self, small_banded):
        with pytest.raises(ValueError):
            list(spmv_address_trace_chunks(small_banded, 4, 2))
        with pytest.raises(ValueError):
            spmv_address_trace_chunks(small_banded, max_accesses=0)


class TestVectorizedEngine:
    """``engine='vectorized'`` must be bitwise-identical to the scalar."""

    @pytest.mark.parametrize("iterations", [1, 3])
    @pytest.mark.parametrize("no_x_miss", [False, True])
    def test_counts_match_scalar(self, small_banded, iterations, no_x_miss):
        scalar = replay_trace(
            small_banded, iterations=iterations, no_x_miss=no_x_miss
        )
        vec = replay_trace(
            small_banded,
            iterations=iterations,
            no_x_miss=no_x_miss,
            engine="vectorized",
            use_disk_cache=False,
        )
        assert vec == scalar

    def test_l2_disabled_matches_scalar(self, small_banded):
        scalar = replay_trace(small_banded, l2_enabled=False)
        vec = replay_trace(
            small_banded, l2_enabled=False, engine="vectorized",
            use_disk_cache=False,
        )
        assert vec == scalar

    def test_chunked_replay_matches_single_chunk(self, small_banded):
        whole = replay_trace(
            small_banded, iterations=2, engine="vectorized", use_disk_cache=False
        )
        chunked = replay_trace(
            small_banded,
            iterations=2,
            engine="vectorized",
            chunk_accesses=101,
            use_disk_cache=False,
        )
        assert chunked == whole

    def test_iteration_fast_forward_is_exact(self):
        # Small working set: the hierarchy state cycles after warmup and
        # the remaining iterations are fast-forwarded — counts must stay
        # identical to simulating every pass (the scalar oracle does).
        a = banded(300, 6.0, 8, seed=3)
        iters = 12
        scalar = replay_trace(a, iterations=iters)
        vec = replay_trace(
            a, iterations=iters, engine="vectorized", use_disk_cache=False
        )
        assert vec == scalar

    def test_external_vector_hierarchy_accumulates(self, small_banded):
        h = VectorCacheHierarchy()
        replay_trace(small_banded, hierarchy=h, engine="vectorized")
        warm = replay_trace(small_banded, hierarchy=h, engine="vectorized")
        assert warm.mem_misses <= small_banded.nnz

    def test_scalar_hierarchy_rejected(self, small_banded):
        with pytest.raises(TypeError):
            replay_trace(
                small_banded, hierarchy=CacheHierarchy(), engine="vectorized"
            )

    def test_unknown_engine_rejected(self, small_banded):
        assert "vectorized" in REPLAY_ENGINES
        with pytest.raises(ValueError):
            replay_trace(small_banded, engine="warp-speed")


class TestReplayDiskCache:
    def test_round_trip_and_counters(self, small_banded, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
        from repro.obs.tracer import Tracer

        t1 = Tracer()
        cold = replay_trace(
            small_banded, iterations=2, engine="vectorized", tracer=t1
        )
        t2 = Tracer()
        warm = replay_trace(
            small_banded, iterations=2, engine="vectorized", tracer=t2
        )
        assert warm == cold
        assert t1.metrics.counter("replay.disk.misses").value == 1
        assert t2.metrics.counter("replay.disk.hits").value == 1
        # The cached result still matches the scalar oracle.
        assert cold == replay_trace(small_banded, iterations=2)

    def test_warm_hierarchy_never_memoized(self, small_banded, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
        h = VectorCacheHierarchy()
        replay_trace(small_banded, hierarchy=h, engine="vectorized")
        warm = replay_trace(small_banded, hierarchy=h, engine="vectorized")
        cold = replay_trace(
            small_banded, engine="vectorized", use_disk_cache=False
        )
        # The warm result differs — proving it was computed, not read
        # back from a cold-keyed disk entry.
        assert warm != cold

    def test_disable_via_env(self, small_banded, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        replay_trace(small_banded, engine="vectorized")
        assert not any(tmp_path.rglob("*.json"))


class TestModelValidation:
    """The analytical model must track trace-exact memory misses."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: banded(3000, 10.0, 15, seed=11),
            lambda: random_uniform(3000, 10.0, seed=12),
        ],
        ids=["banded", "random"],
    )
    def test_streaming_regime_memory_misses(self, maker):
        a = maker()
        part = partition_rows_balanced(a, 1)
        [trace] = characterize_partition(a, part)
        # Single pass, cold caches: the model's cold+capacity prediction.
        summary = access_summary(trace, iterations=1)
        exact = replay_trace(a, iterations=1)
        assert summary.l2_misses == pytest.approx(exact.mem_misses, rel=0.30)

    def test_resident_regime_warm_iterations(self):
        a = banded(500, 8.0, 10, seed=13)  # fits L2
        part = partition_rows_balanced(a, 1)
        [trace] = characterize_partition(a, part)
        iters = 8
        summary = access_summary(trace, iterations=iters)
        exact = replay_trace(a, iterations=iters)
        # Memory misses: cold set only, both in model and exact replay.
        assert summary.l2_misses == pytest.approx(exact.mem_misses, rel=0.30)

    def test_no_x_miss_regime(self):
        a = random_uniform(3000, 10.0, seed=14)
        part = partition_rows_balanced(a, 1)
        [trace] = characterize_partition(a, part)
        summary = access_summary(trace, iterations=1, no_x_miss=True)
        exact = replay_trace(a, iterations=1, no_x_miss=True)
        assert summary.l2_misses == pytest.approx(exact.mem_misses, rel=0.30)
