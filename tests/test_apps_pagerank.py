"""Tests for the distributed PageRank application."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.apps import graph_matrix, parallel_pagerank
from repro.scc import CONF1
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def transition():
    return graph_matrix(500, 3, seed=7)


@pytest.fixture(scope="module")
def nx_reference():
    g = nx.barabasi_albert_graph(500, 3, seed=7)
    pr = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
    return np.array([pr[i] for i in range(500)])


class TestGraphMatrix:
    def test_column_stochastic(self, transition):
        col_sums = np.zeros(transition.n_cols)
        np.add.at(col_sums, transition.index, transition.da)
        np.testing.assert_allclose(col_sums, 1.0, rtol=1e-12)

    def test_power_law_degree_skew(self, transition):
        lengths = transition.row_lengths()
        assert lengths.max() > 8 * lengths.mean()  # hubs exist

    def test_validation(self):
        with pytest.raises(ValueError):
            graph_matrix(3, attach_m=3)

    def test_deterministic(self):
        a = graph_matrix(100, 2, seed=1)
        b = graph_matrix(100, 2, seed=1)
        assert a.allclose(b)


class TestParallelPageRank:
    def test_matches_networkx(self, transition, nx_reference):
        res = parallel_pagerank(transition, tol=1e-12, n_ues=8)
        assert res.converged
        np.testing.assert_allclose(res.ranks, nx_reference, atol=1e-8)

    def test_ranks_are_a_distribution(self, transition):
        res = parallel_pagerank(transition, n_ues=4)
        assert res.ranks.min() > 0
        assert res.ranks.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("n_ues", [1, 3, 8, 16])
    def test_ue_count_invariant(self, transition, nx_reference, n_ues):
        res = parallel_pagerank(transition, tol=1e-12, n_ues=n_ues)
        np.testing.assert_allclose(res.ranks, nx_reference, atol=1e-8)

    def test_dangling_nodes_handled(self):
        # A 3-node chain with a dangling sink: 0 -> 1 -> 2.
        p = CSRMatrix(
            np.array([0, 0, 1, 2]),
            np.array([0, 1], dtype=np.int32),
            np.array([1.0, 1.0]),
            n_cols=3,
        )
        res = parallel_pagerank(p, n_ues=2, tol=1e-12)
        assert res.converged
        assert res.ranks.sum() == pytest.approx(1.0)
        assert res.ranks[2] > res.ranks[0]  # the sink accumulates rank

    def test_hub_outranks_leaf(self, transition):
        res = parallel_pagerank(transition, n_ues=4, tol=1e-12)
        degrees = transition.row_lengths()
        hub = int(np.argmax(degrees))
        leaf = int(np.argmin(degrees))
        assert res.ranks[hub] > res.ranks[leaf]

    def test_max_iter_reports_nonconvergence(self, transition):
        res = parallel_pagerank(transition, tol=1e-15, max_iter=2, n_ues=4)
        assert not res.converged
        assert res.iterations == 2

    def test_faster_config_same_answer_less_time(self, transition):
        slow = parallel_pagerank(transition, n_ues=8)
        fast = parallel_pagerank(transition, n_ues=8, config=CONF1)
        np.testing.assert_allclose(slow.ranks, fast.ranks)
        assert fast.makespan < slow.makespan

    def test_validation(self, transition):
        with pytest.raises(ValueError):
            parallel_pagerank(transition, damping=1.0)
        with pytest.raises(ValueError):
            parallel_pagerank(transition, tol=0.0)
        with pytest.raises(ValueError):
            parallel_pagerank(transition, n_ues=0)
        non_square = CSRMatrix(
            np.array([0, 1]), np.array([1], np.int32), np.array([1.0]), n_cols=3
        )
        with pytest.raises(ValueError):
            parallel_pagerank(non_square)
