"""Tests for the static lint pass: one buggy + clean case per rule."""

from __future__ import annotations

import os

import pytest

from repro.analysis import (
    Severity,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import findings_to_json, format_findings, has_errors
from repro.analysis.rules import Rule, register_rule

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def rules_fired(findings):
    return {f.rule for f in findings}


class TestCatalogue:
    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_ids_unique_and_ordered(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError, match="R999"):
            get_rule("R999")

    def test_registry_extensible(self):
        marker = []

        def check(ctx):
            marker.append(ctx.path)
            return iter(())

        r = Rule("ZZZ999", "test-rule", Severity.WARNING, "s", "h", check)
        register_rule(r)
        try:
            lint_source("x = 1", path="<test>")
            assert marker == ["<test>"]
            with pytest.raises(ValueError, match="duplicate"):
                register_rule(r)
        finally:
            from repro.analysis.rules import _REGISTRY

            del _REGISTRY["ZZZ999"]


class TestStaticRules:
    """Each catalogued rule: fires on its fixture at the right line."""

    @pytest.mark.parametrize(
        "name, rule_id",
        [
            ("lint_bad_rcce101.py", "RCCE101"),
            ("lint_bad_rcce102.py", "RCCE102"),
            ("lint_bad_rcce103.py", "RCCE103"),
            ("lint_bad_rcce110.py", "RCCE110"),
            ("lint_bad_rcce120.py", "RCCE120"),
            ("lint_bad_det201.py", "DET201"),
            ("lint_bad_det202.py", "DET202"),
            ("lint_bad_det203.py", "DET203"),
            ("lint_bad_sim301.py", "SIM301"),
            ("lint_bad_sim302.py", "SIM302"),
        ],
    )
    def test_rule_fires_on_fixture(self, name, rule_id):
        findings = lint_file(fixture(name))
        assert rule_id in rules_fired(findings), findings
        hits = [f for f in findings if f.rule == rule_id]
        for f in hits:
            assert f.path.endswith(name)
            assert f.line > 0, "finding must carry a precise line"
            assert f.severity is Severity.ERROR
            assert f.hint

    def test_clean_fixture_has_no_findings(self):
        assert lint_file(fixture("lint_clean.py")) == []

    def test_tag_mismatch_both_directions(self):
        findings = lint_file(fixture("lint_bad_rcce101.py"))
        msgs = [f.message for f in findings if f.rule == "RCCE101"]
        assert any("tag=1" in m for m in msgs)  # orphan send
        assert any("tag=2" in m for m in msgs)  # orphan recv

    def test_wildcard_recv_matches_any_send_tag(self):
        src = (
            "def program(comm):\n"
            "    yield from comm.send(1, 1, tag=9)\n"
            "    x = yield from comm.recv()\n"
            "    return x\n"
        )
        assert "RCCE101" not in rules_fired(lint_source(src))

    def test_dynamic_tags_are_not_guessed(self):
        src = (
            "def program(comm, t):\n"
            "    yield from comm.send(1, 1, tag=t)\n"
            "    x = yield from comm.recv(tag=t + 1)\n"
            "    return x\n"
        )
        assert "RCCE101" not in rules_fired(lint_source(src))

    def test_det202_counts_all_three_rng_styles(self):
        findings = lint_file(fixture("lint_bad_det202.py"))
        assert len([f for f in findings if f.rule == "DET202"]) == 3

    def test_sim302_counts_all_three_yields(self):
        findings = lint_file(fixture("lint_bad_sim302.py"))
        assert len([f for f in findings if f.rule == "SIM302"]) == 3

    def test_rank_branch_with_p2p_only_is_clean(self):
        """The classic even/odd send/recv symmetry break must not fire."""
        src = (
            "def program(comm):\n"
            "    if comm.ue % 2 == 0:\n"
            "        yield from comm.send(1, 1, tag=0)\n"
            "    else:\n"
            "        x = yield from comm.recv(tag=0)\n"
        )
        assert "RCCE110" not in rules_fired(lint_source(src))

    def test_select_restricts_rules(self):
        findings = lint_file(fixture("lint_bad_det202.py"))
        assert findings
        only = lint_paths([fixture("lint_bad_det202.py")], select=["RCCE101"])
        assert only == []

    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == ["PARSE"]
        assert findings[0].severity is Severity.ERROR


class TestUnboundedRecvWithFaults:
    """RCCE130: unbounded recv only matters once faults are in play."""

    def test_fires_on_fixture_as_warning(self):
        findings = lint_file(fixture("lint_bad_rcce130.py"))
        hits = [f for f in findings if f.rule == "RCCE130"]
        assert len(hits) == 2, findings  # one comm.recv + one rcomm.recv
        for f in hits:
            assert f.severity is Severity.WARNING
            assert "timeout" in f.hint or "ReliableComm" in f.hint
            assert f.line > 0

    def test_bounded_recv_does_not_fire(self):
        findings = lint_file(fixture("lint_bad_rcce130.py"))
        flagged_lines = {f.line for f in findings if f.rule == "RCCE130"}
        src = open(fixture("lint_bad_rcce130.py")).read().splitlines()
        for line in flagged_lines:
            assert "timeout" not in src[line - 1]

    def test_silent_without_fault_stack_import(self):
        src = (
            "def program(comm):\n"
            "    data = yield from comm.recv(1, 0)\n"
            "    return data\n"
        )
        assert "RCCE130" not in rules_fired(lint_source(src))

    def test_plain_import_of_faults_also_arms_the_rule(self):
        src = (
            "import repro.faults\n"
            "def program(comm):\n"
            "    data = yield from comm.recv(1, 0)\n"
            "    return data\n"
        )
        assert "RCCE130" in rules_fired(lint_source(src))


class TestDriversAndFormats:
    def test_shipped_programs_are_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        findings = lint_paths(
            [os.path.join(repo, "examples"), os.path.join(repo, "src", "repro")]
        )
        assert findings == [], format_findings(findings)

    def test_lint_paths_walks_directories(self):
        findings = lint_paths([FIXTURES])
        assert len(rules_fired(findings)) >= 10

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([fixture("does_not_exist")])

    def test_json_and_text_renderings(self):
        import json

        findings = lint_file(fixture("lint_bad_sim301.py"))
        text = format_findings(findings)
        assert "SIM301" in text and "error" in text
        payload = json.loads(findings_to_json(findings))
        assert payload[0]["rule"] == "SIM301"
        assert payload[0]["severity"] == "error"
        assert has_errors(findings)
