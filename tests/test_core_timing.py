"""Tests for the contention-aware core-time solver."""

from __future__ import annotations

import pytest

from repro.core import solve_core_times
from repro.core.timing import _controller_line_time
from repro.scc import CONF0, CONF1, AccessSummary, MemorySystem, SCCTopology


def summaries(n, nnz=100_000, mem_lines=40_000.0):
    return [
        AccessSummary(nnz=nnz, rows=nnz // 10, iterations=1, l2_hits=0.0, l2_misses=mem_lines)
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def mem():
    return MemorySystem(SCCTopology(), mem_mhz=800)


class TestControllerEquilibrium:
    def test_unsaturated_returns_latency(self):
        t = _controller_line_time(
            base_times=[1.0], mem_lines=[100.0], latencies=[1e-7],
            capacity_lines_per_sec=1e9,
        )
        assert t == pytest.approx(1e-7)

    def test_saturated_meets_capacity(self):
        # 4 identical cores, each wanting ~1e7 lines/s against 1e6 cap.
        base, lines, lat = [0.0001] * 4, [10_000.0] * 4, [1e-7] * 4
        cap = 1e6
        t = _controller_line_time(base, lines, lat, cap)
        demand = sum(m / (b + m * max(t, l)) for b, m, l in zip(base, lines, lat))
        assert demand == pytest.approx(cap, rel=1e-3)
        assert t > 1e-7

    def test_zero_demand_cores_ignored(self):
        t = _controller_line_time([1.0, 1.0], [0.0, 0.0], [1e-7, 1e-7], 10.0)
        assert t == pytest.approx(1e-7)


class TestSolveCoreTimes:
    def test_length_mismatch_rejected(self, mem):
        with pytest.raises(ValueError):
            solve_core_times(summaries(2), [0], CONF0, mem)

    def test_clock_mismatch_rejected(self):
        mem1066 = MemorySystem(SCCTopology(), mem_mhz=1066)
        with pytest.raises(ValueError):
            solve_core_times(summaries(1), [0], CONF0, mem1066)

    def test_single_core_pays_latency(self, mem):
        [t] = solve_core_times(summaries(1), [0], CONF0, mem)
        lat = mem.latency_for_core(0, 533, 800)
        assert t.line_time == pytest.approx(lat)
        assert t.time > 0

    def test_distance_penalty(self, mem):
        topo = SCCTopology()
        near = topo.cores_at_distance(0)[0]
        far = topo.cores_at_distance(3)[0]
        [tn] = solve_core_times(summaries(1), [near], CONF0, mem)
        [tf] = solve_core_times(summaries(1), [far], CONF0, mem)
        assert tf.time > tn.time

    def test_contention_slows_colocated_cores(self, mem):
        topo = SCCTopology()
        quad0 = list(topo.cores_of_quadrant(0))
        spread = [topo.cores_of_quadrant(q)[0] for q in range(4)] + [
            topo.cores_of_quadrant(q)[1] for q in range(4)
        ]
        heavy = summaries(8, mem_lines=500_000.0)
        t_packed = max(t.time for t in solve_core_times(heavy, quad0[:8], CONF0, mem))
        t_spread = max(t.time for t in solve_core_times(heavy, spread, CONF0, mem))
        assert t_packed > t_spread

    def test_saturated_mc_throughput_capped(self, mem):
        """12 heavy cores on one quadrant can't beat the MC bandwidth."""
        topo = SCCTopology()
        cores = list(topo.cores_of_quadrant(0))
        heavy = summaries(12, mem_lines=1_000_000.0)
        times = solve_core_times(heavy, cores, CONF0, mem)
        total_lines = sum(t.mem_lines for t in times)
        makespan = max(t.time for t in times)
        capacity = mem.controllers[0].bandwidth / 32
        assert total_lines / makespan <= capacity * 1.01

    def test_compute_only_ignores_memory(self, mem):
        s = [AccessSummary(nnz=10_000, rows=100, iterations=1, l2_hits=0, l2_misses=0)]
        [t] = solve_core_times(s, [0], CONF0, mem)
        assert t.mem_stall_fraction == 0.0

    def test_conf1_faster(self):
        topo = SCCTopology()
        mem0 = MemorySystem(topo, mem_mhz=800)
        mem1 = MemorySystem(topo, mem_mhz=1066)
        s = summaries(1)
        [t0] = solve_core_times(s, [0], CONF0, mem0)
        [t1] = solve_core_times(s, [0], CONF1, mem1)
        assert t1.time < t0.time

    def test_deterministic(self, mem):
        s = summaries(12, mem_lines=300_000.0)
        cores = list(range(12))
        a = solve_core_times(s, cores, CONF0, mem)
        b = solve_core_times(s, cores, CONF0, mem)
        assert [x.time for x in a] == [y.time for y in b]

    def test_mem_stall_fraction_bounded(self, mem):
        s = summaries(4, mem_lines=800_000.0)
        for t in solve_core_times(s, [0, 1, 2, 3], CONF0, mem):
            assert 0.0 <= t.mem_stall_fraction <= 1.0
