"""Wiring tests: components publish trace events and metrics when given
a tracer, and the unified Result/Campaign API carries them."""

from __future__ import annotations

import pytest

from repro.core.campaign import Campaign, fault_tolerant_record, result_record
from repro.core.experiment import ResultBase, SpMVExperiment
from repro.core.metrics import parallel_efficiency
from repro.faults.plan import FaultPlan
from repro.obs import TID_SCHED, TID_SIM, Tracer
from repro.scc.cache import CacheHierarchy
from repro.sparse.suite import build_matrix, entry_by_id

MID = 24  # rajat09


@pytest.fixture(scope="module")
def experiment():
    return SpMVExperiment(build_matrix(MID, scale=0.04), name=entry_by_id(MID).name)


@pytest.fixture(scope="module")
def traced(experiment):
    tracer = Tracer()
    result = experiment.run(n_cores=4, iterations=2, tracer=tracer)
    return tracer, result


class TestExperimentWiring:
    def test_rcce_spans_per_ue(self, traced):
        tracer, _ = traced
        begins = {(e.name, e.tid) for e in tracer.events if e.ph == "B"}
        for ue in range(4):
            assert ("ue.run", ue) in begins

    def test_sim_and_sched_lanes(self, traced):
        tracer, _ = traced
        tids = {e.tid for e in tracer.events}
        assert TID_SIM in tids and TID_SCHED in tids

    def test_communication_metrics(self, traced):
        tracer, _ = traced
        flat = tracer.metrics.flat_summary()
        assert any(k.startswith("mesh.link_bytes") for k in flat)
        assert any(k.startswith("mpb.delivered") for k in flat)

    def test_model_metrics(self, traced):
        tracer, _ = traced
        flat = tracer.metrics.flat_summary()
        # keyed by physical core id (mapping-dependent), one per UE
        mem_lines = [v for k, v in flat.items() if k.startswith("model.mem_lines{")]
        core_times = [v for k, v in flat.items() if k.startswith("model.core_time_s{")]
        assert len(mem_lines) == 4 and all(v > 0 for v in mem_lines)
        assert len(core_times) == 4 and all(v > 0 for v in core_times)
        assert flat["model.mem_stall_fraction"]["count"] == 4

    def test_untraced_run_matches_traced(self, experiment, traced):
        _, with_tracer = traced
        without = experiment.run(n_cores=4, iterations=2)
        assert without.makespan == with_tracer.makespan

    def test_fault_events_recorded(self, experiment):
        tracer = Tracer()
        plan = FaultPlan(seed=7, drop_rate=0.2)
        result = experiment.run_fault_tolerant(
            n_cores=4, plan=plan, iterations=2, time_budget=60.0, tracer=tracer
        )
        assert result.verified
        names = {e.name for e in tracer.events if e.cat == "fault"}
        assert any(n.startswith("fault.") for n in names)
        flat = tracer.metrics.flat_summary()
        assert any(k.startswith("faults.injected") for k in flat)


class TestCacheWiring:
    def test_publish_metrics(self):
        hier = CacheHierarchy()
        for addr in range(0, 4096, 32):
            hier.access(addr)
        tracer = Tracer()
        hier.publish_metrics(tracer, core=3)
        snap = tracer.metrics.snapshot()["counters"]
        assert snap["cache.misses{core=3,level=L1D}"] > 0
        assert any(k.startswith("cache.hits{") for k in snap)

    def test_publish_is_noop_without_tracer(self):
        CacheHierarchy().publish_metrics(None)  # must not raise


class TestResultAPI:
    def test_result_record_alias_matches_to_record(self, traced):
        _, result = traced
        assert isinstance(result, ResultBase)
        rec = result.to_record()
        assert result_record(result) == rec
        # legacy shape: key order and content preserved
        assert list(rec)[:4] == ["status", "matrix", "n", "nnz"]
        assert rec["status"] == "ok"
        assert rec["kernel"] == "csr"
        assert rec["mflops"] == pytest.approx(result.mflops)
        assert "mflops_per_watt" in rec

    def test_fault_tolerant_record_alias(self, experiment):
        r = experiment.run_fault_tolerant(n_cores=2, plan=None, iterations=2)
        rec = fault_tolerant_record(r)
        assert rec == r.to_record()
        assert rec["kernel"] == "csr"  # filled even without a kernel field
        assert rec["verified"] is True
        assert "fault_counters" in rec


class TestCampaignMetrics:
    def test_collect_metrics_adds_metrics_key(self, tmp_path):
        camp = Campaign(
            "obswire", tmp_path, scale=0.04, iterations=2, collect_metrics=True
        )
        # 4 UEs span two tiles, so mesh links actually carry traffic
        camp.run(Campaign.grid([MID], [4]))
        (rec,) = camp.load()
        assert rec["status"] == "ok"
        assert any(k.startswith("mesh.link_bytes") for k in rec["metrics"])

    def test_default_campaign_has_no_metrics_key(self, tmp_path):
        camp = Campaign("plain", tmp_path, scale=0.04, iterations=2)
        camp.run(Campaign.grid([MID], [2]))
        (rec,) = camp.load()
        assert "metrics" not in rec


class TestSweepAndEfficiency:
    def test_sweep_cores(self, experiment):
        results = experiment.sweep_cores([1, 2, 4], iterations=2)
        assert [r.n_cores for r in results] == [1, 2, 4]
        # more cores never slows the model down on this matrix
        assert results[0].makespan >= results[-1].makespan

    def test_parallel_efficiency(self, experiment):
        results = {n: experiment.run(n_cores=n, iterations=2) for n in (1, 2, 4)}
        eff = parallel_efficiency(results)
        assert set(eff) == {1, 2, 4}
        assert eff[1] == pytest.approx(1.0)
        assert all(0 < e <= 1.5 for e in eff.values())

    def test_parallel_efficiency_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            parallel_efficiency({})

    def test_parallel_efficiency_missing_baseline(self, experiment):
        results = {2: experiment.run(n_cores=2, iterations=2)}
        with pytest.raises(ValueError, match="1-core"):
            parallel_efficiency(results)


class TestDeferredSeriesUpdates:
    """The registry's deferred series write path: reads see exactly the
    state eager updates would have produced, in call order."""

    def _registry(self):
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry()

    def test_series_update_materializes_on_read(self):
        m = self._registry()
        m.series_update("c.lines", "c.time", "core", [(0, 10, 1.5), (1, 20, 2.5)])
        flat = m.flat_summary()
        assert flat["c.lines{core=0}"] == 10.0
        assert flat["c.lines{core=1}"] == 20.0
        assert flat["c.time{core=1}"] == 2.5

    def test_updates_apply_in_call_order(self):
        m = self._registry()
        m.series_update("c", "g", "core", [(0, 1, 5.0)])
        m.series_update("c", "g", "core", [(0, 2, 3.0)])
        flat = m.flat_summary()
        assert flat["c{core=0}"] == 3.0  # counter accumulates
        assert flat["g{core=0}"] == 3.0  # gauge: last write wins
        assert m.gauge("g", core=0).high_water == 5.0

    def test_negative_increment_raises_at_the_call_site(self):
        m = self._registry()
        with pytest.raises(ValueError, match="negative increment"):
            m.series_update("c", "g", "core", [(0, -1, 0.0)])
        assert m.flat_summary() == {}  # nothing was buffered

    def test_kind_mismatch_raises_on_drain(self):
        m = self._registry()
        m.counter("g", core=0)  # claim the gauge's (name, labels) as a counter
        m.series_update("c", "g", "core", [(0, 1, 1.0)])
        with pytest.raises(TypeError, match="requested as Gauge"):
            m.snapshot()

    def test_histogram_observe_many_equals_singles(self):
        m_batch, m_single = self._registry(), self._registry()
        values = [1e-9, 0.5, 3.0, 1e6]
        m_batch.histogram_observe_many("h", values)
        h = m_single.histogram("h")
        for v in values:
            h.observe(v)
        assert m_batch.snapshot() == m_single.snapshot()

    def test_pending_cap_drains_inline(self):
        m = self._registry()
        m._PENDING_CAP = 4
        for i in range(10):
            m.series_update("c", "g", "core", [(0, 1, float(i))])
        assert len(m._pending) < 4
        assert m.flat_summary()["c{core=0}"] == 10.0
