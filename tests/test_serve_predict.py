"""Serve-layer contract of ``mode="predict"``: the admission fast path.

A predict job resolves entirely at submit time — zero simulations, all
origins ``"predicted"``, the ``serve.predictions`` counter matching the
point count — and **never** persists its records: the content store is
the model/sim tiers' ledger, so resubmitting the very same grid in
``mode="model"`` must still simulate every point (no cross-mode
poisoning, the purity rule ``docs/PREDICTOR.md`` documents).
"""

from __future__ import annotations

import pytest

from repro.core.parallel import fork_context
from repro.machine.registry import get_machine
from repro.predict import train_predictor
from repro.serve import CampaignServer, CampaignSpec, ServeClient
from repro.store import ContentStore

pytestmark = pytest.mark.skipif(
    fork_context() is None,
    reason="the campaign server's supervised pool needs the fork start method",
)

SCALE = 0.05
ITERATIONS = 2


@pytest.fixture()
def server(tmp_path):
    # Seal a real artifact for the default machine first: the server's
    # worker answers predict jobs through the standard get_predictor
    # ladder, so the artifact must exist before the job is admitted.
    train_predictor(
        get_machine("scc-48"),
        (2, 7),
        core_counts=(1, 2, 4, 8),
        scale=SCALE,
        iterations=ITERATIONS,
        n_rounds=60,
    )
    srv = CampaignServer(tmp_path / "serve-data", workers=2)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


def _spec(mode="predict"):
    return CampaignSpec(
        ids=(2, 7),
        core_counts=(1, 2, 4),
        machine="scc-48",
        scale=SCALE,
        iterations=ITERATIONS,
        mode=mode,
    )


def test_predict_job_resolves_at_admission(server, client):
    job = client.wait(str(client.submit(_spec())["job_id"]), timeout=60.0)
    assert job["state"] == "done"
    assert job["points"] == 6
    assert job["simulated"] == 0
    assert job["predicted"] == 6
    assert job["origin_predicted"] == 6
    assert job["dedup_hits"] == 0

    result = client.result(job["job_id"])
    records = result["records"]
    assert len(records) == 6
    assert all(rec.get("predicted") is True for rec in records)
    assert all(origin == "predicted" for origin in result["origins"])

    metrics = client.metrics()
    assert metrics["serve"]["predictions"] == 6
    assert metrics["serve"]["simulations"] == 0


def test_predicted_records_never_persisted_and_model_still_simulates(
    server, client
):
    predict_job = client.wait(
        str(client.submit(_spec())["job_id"]), timeout=60.0
    )
    assert predict_job["predicted"] == 6
    # Nothing landed in the serve-points namespace: the fast path does
    # not write records, and the key space is mode-disjoint anyway.
    assert ContentStore(namespace="serve-points").entry_count() == 0

    model_job = client.wait(
        str(client.submit(_spec(mode="model"))["job_id"]), timeout=300.0
    )
    assert model_job["simulated"] == 6
    assert model_job["predicted"] == 0
    assert model_job["dedup_hits"] == 0
    assert ContentStore(namespace="serve-points").entry_count() == 6

    metrics = client.metrics()
    assert metrics["serve"]["predictions"] == 6
    assert metrics["serve"]["simulations"] == 6
