"""Tests for the SpMVExperiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpMVExperiment, single_core_at_distance
from repro.scc import CONF0, CONF1
from repro.sparse import banded, random_uniform


@pytest.fixture(scope="module")
def exp():
    a = banded(2000, 12.0, 20, seed=21)
    return SpMVExperiment(a, name="bench")


class TestRunBasics:
    def test_result_fields(self, exp):
        r = exp.run(n_cores=4, iterations=4)
        assert r.matrix_name == "bench"
        assert r.n_cores == 4
        assert r.config_name == "conf0"
        assert r.kernel == "csr"
        assert r.flops == 2 * exp.a.nnz * 4
        assert r.makespan > 0
        assert r.gflops > 0
        assert len(r.per_core) == 4
        assert r.power_watts == pytest.approx(CONF0.full_chip_power())

    def test_unknown_kernel_rejected(self, exp):
        with pytest.raises(ValueError):
            exp.run(n_cores=2, kernel="magic")

    def test_explicit_mapping_length_checked(self, exp):
        with pytest.raises(ValueError):
            exp.run(n_cores=4, mapping=[0, 1])

    def test_explicit_mapping_used(self, exp):
        r = exp.run(n_cores=1, mapping=single_core_at_distance(2))
        assert r.mapping == "explicit"
        assert r.per_core[0].core in (4, 5, 16, 17, 6, 7, 14, 15, 28, 29, 40, 41, 30, 31, 38, 39)

    def test_traces_cached_per_core_count(self, exp):
        t1 = exp.traces(4)
        t2 = exp.traces(4)
        assert t1 is t2

    def test_metrics_consistency(self, exp):
        r = exp.run(n_cores=8, iterations=2)
        assert r.mflops == pytest.approx(r.gflops * 1000)
        assert r.mflops_per_watt == pytest.approx(r.mflops / r.power_watts)


class TestPaperShapes:
    def test_hop_distance_degrades_single_core(self, exp):
        perf = [
            exp.run(n_cores=1, mapping=single_core_at_distance(h)).mflops
            for h in range(4)
        ]
        assert perf[0] > perf[1] > perf[2] > perf[3]
        degradation = 1 - perf[3] / perf[0]
        assert 0.05 < degradation < 0.25  # paper: ~12%

    def test_distance_reduction_not_slower(self, exp):
        for n in (4, 8, 16):
            std = exp.run(n_cores=n, mapping="standard")
            dr = exp.run(n_cores=n, mapping="distance_reduction")
            assert dr.makespan <= std.makespan * 1.0001

    def test_mappings_equivalent_at_48(self, exp):
        """With all 48 cores in play both mappings use the same core
        set; only rank placement differs, so makespans are within noise
        (block-boundary and barrier-tree effects)."""
        std = exp.run(n_cores=48, mapping="standard")
        dr = exp.run(n_cores=48, mapping="distance_reduction")
        assert dr.makespan == pytest.approx(std.makespan, rel=0.02)
        assert sorted(t.core for t in dr.per_core) == sorted(
            t.core for t in std.per_core
        )

    def test_throughput_grows_with_cores(self, exp):
        r1 = exp.run(n_cores=1)
        r8 = exp.run(n_cores=8)
        assert r8.gflops > 2 * r1.gflops

    def test_conf1_beats_conf0(self, exp):
        r0 = exp.run(n_cores=8, config=CONF0)
        r1 = exp.run(n_cores=8, config=CONF1)
        assert r1.makespan < r0.makespan
        assert r1.power_watts > r0.power_watts

    def test_l2_disabled_slower(self, exp):
        on = exp.run(n_cores=8)
        off = exp.run(n_cores=8, config=CONF0.with_l2(False))
        assert off.makespan > on.makespan

    def test_no_x_miss_not_slower(self):
        a = random_uniform(2000, 8.0, seed=22)
        e = SpMVExperiment(a, name="scatter")
        base = e.run(n_cores=8)
        nox = e.run(n_cores=8, kernel="no_x_miss")
        assert nox.makespan < base.makespan


class TestVerification:
    def test_verified_result_matches_scipy(self, exp, rng):
        x = rng.uniform(size=exp.a.n_cols)
        r = exp.run(n_cores=6, iterations=1, verify=True, x=x)
        np.testing.assert_allclose(r.y, exp.a.to_scipy() @ x, rtol=1e-9)

    def test_verify_no_x_miss_semantics(self, exp):
        x = np.zeros(exp.a.n_cols)
        x[0] = 2.0
        r = exp.run(n_cores=4, iterations=1, verify=True, x=x, kernel="no_x_miss")
        rowsums = np.asarray(exp.a.to_scipy().sum(axis=1)).ravel()
        np.testing.assert_allclose(r.y, 2.0 * rowsums, rtol=1e-9)

    def test_no_verify_returns_none(self, exp):
        assert exp.run(n_cores=2).y is None


class TestSweep:
    def test_sweep_cores(self, exp):
        results = exp.sweep_cores([1, 2, 4])
        assert [r.n_cores for r in results] == [1, 2, 4]
