"""Tests for persistent experiment campaigns."""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import (
    Campaign,
    CampaignIntegrityError,
    CampaignPoint,
    result_record,
)
from repro.core.experiment import SpMVExperiment
from repro.faults.plan import get_plan
from repro.sparse import banded

SCALE = 0.04


@pytest.fixture()
def campaign(tmp_path):
    return Campaign("trial", tmp_path, scale=SCALE, iterations=2)


class TestRecord:
    def test_record_fields(self):
        a = banded(200, 5.0, 6, seed=1)
        r = SpMVExperiment(a, name="m").run(n_cores=2, iterations=2)
        rec = result_record(r)
        assert rec["matrix"] == "m"
        assert rec["mflops"] == pytest.approx(r.mflops)
        json.dumps(rec)  # must be JSON-serializable


class TestGrid:
    def test_cartesian_product(self):
        pts = Campaign.grid([1, 2], [4, 8], configs=("conf0", "conf1"))
        assert len(pts) == 8
        keys = {p.key() for p in pts}
        assert len(keys) == 8  # unique

    def test_point_key_stable(self):
        p = CampaignPoint(7, 8, "conf0", "standard", "csr")
        assert p.key() == "7:8:conf0:standard:csr"


class TestCampaign:
    def test_name_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign("", tmp_path)
        with pytest.raises(ValueError):
            Campaign("a/b", tmp_path)
        with pytest.raises(ValueError):
            Campaign("ok", tmp_path, iterations=0)

    def test_run_and_load(self, campaign):
        pts = Campaign.grid([30], [1, 4])
        ran, skipped = campaign.run(pts)
        assert (ran, skipped) == (2, 0)
        records = campaign.load()
        assert len(records) == 2
        assert {r["n_cores"] for r in records} == {1, 4}
        assert all(r["mflops"] > 0 for r in records)

    def test_resume_skips_completed(self, campaign):
        pts = Campaign.grid([30], [1, 4])
        campaign.run(pts)
        ran, skipped = campaign.run(pts + Campaign.grid([30], [8]))
        assert ran == 1 and skipped == 2
        assert len(campaign.load()) == 3

    def test_resume_across_instances(self, campaign, tmp_path):
        campaign.run(Campaign.grid([30], [2]))
        again = Campaign("trial", tmp_path, scale=SCALE, iterations=2)
        ran, skipped = again.run(Campaign.grid([30], [2]))
        assert ran == 0 and skipped == 1

    def test_unknown_config_rejected(self, campaign):
        with pytest.raises(ValueError):
            campaign.run([CampaignPoint(30, 4, "conf9", "standard", "csr")])

    def test_summarize(self, campaign):
        campaign.run(Campaign.grid([30, 31], [4]))
        summary = campaign.summarize(group_by="n_cores")
        assert set(summary) == {4}
        assert summary[4] > 0

    def test_records_include_scale_key(self, campaign):
        campaign.run(Campaign.grid([30], [2]))
        raw = campaign.path.read_text().strip().splitlines()
        rec = json.loads(raw[0])
        assert rec["scale"] == SCALE
        assert "_key" in rec


class TestRobustPersistence:
    def test_truncated_trailing_record_tolerated(self, campaign):
        campaign.run(Campaign.grid([30], [1, 4]))
        with open(campaign.path, "a", encoding="utf-8") as fh:
            fh.write('{"matrix": "cut-mid-wri')  # crash mid-append
        with pytest.warns(UserWarning, match="truncated trailing record"):
            records = campaign.load()
        assert len(records) == 2
        # the interrupted point simply reruns on resume
        with pytest.warns(UserWarning, match="truncated trailing record"):
            ran, skipped = campaign.run(Campaign.grid([30], [1, 4, 8]))
        assert (ran, skipped) == (1, 2)

    def test_mid_file_corruption_raises_integrity_error(self, campaign):
        campaign.run(Campaign.grid([30], [1, 4]))
        lines = campaign.path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # damage a non-final line
        campaign.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CampaignIntegrityError, match="repair"):
            campaign.load()
        with pytest.raises(CampaignIntegrityError):
            campaign.completed_keys()

    def test_repair_quarantines_and_rewrites(self, campaign):
        campaign.run(Campaign.grid([30], [1, 4]))
        lines = campaign.path.read_text().splitlines()
        lines.insert(1, "not json at all")
        lines.insert(0, '["a", "list", "not", "an", "object"]')
        campaign.path.write_text("\n".join(lines) + "\n")
        kept, quarantined = campaign.repair()
        assert (kept, quarantined) == (2, 2)
        assert len(campaign.load()) == 2  # readable again
        qpath = campaign.output_dir / "trial.quarantine.jsonl"
        qlines = qpath.read_text().strip().splitlines()
        assert qlines == ['["a", "list", "not", "an", "object"]', "not json at all"]
        # quarantine appends rather than overwriting
        campaign.path.write_text('{"x":\n' + campaign.path.read_text())
        campaign.repair()
        assert len(qpath.read_text().strip().splitlines()) == 3

    def test_repair_on_missing_file(self, tmp_path):
        assert Campaign("virgin", tmp_path).repair() == (0, 0)

    def test_point_budget_records_timeout_and_continues(self, tmp_path):
        c = Campaign("budget", tmp_path, scale=SCALE, iterations=2,
                     point_budget=1e-12)
        ran, skipped = c.run(Campaign.grid([30], [1, 4]))
        assert (ran, skipped) == (2, 0)
        records = c.load()
        assert [r["status"] for r in records] == ["timeout", "timeout"]
        assert all(r["budget_s"] == 1e-12 and r["stuck_ues"] for r in records)
        assert c.status_counts() == {"timeout": 2}
        assert c.summarize() == {}  # no throughput from timed-out points
        # deterministically-timing-out points are NOT retried on resume
        ran, skipped = c.run(Campaign.grid([30], [1, 4]))
        assert (ran, skipped) == (0, 2)

    def test_point_budget_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign("bad", tmp_path, point_budget=0.0)


class TestFaultTolerantCampaign:
    def test_ft_sweep_records_fault_counters(self, tmp_path):
        c = Campaign("ft", tmp_path, scale=SCALE, iterations=2,
                     fault_plan=get_plan("lossy"), point_budget=60.0)
        ran, _ = c.run(Campaign.grid([30], [2, 4]))
        assert ran == 2
        for rec in c.load():
            assert rec["status"] == "ok"
            assert rec["plan"] == "lossy"
            assert rec["plan_seed"] == get_plan("lossy").seed
            assert rec["verified"] is True
            assert rec["fault_counters"]["checkpoints"] == 2
            assert rec["failed_ues"] == []
        assert c.status_counts() == {"ok": 2}

    def test_ft_summarize_uses_ok_records(self, tmp_path):
        c = Campaign("ft2", tmp_path, scale=SCALE, iterations=2,
                     fault_plan=get_plan("lossy"))
        c.run(Campaign.grid([30], [4]))
        summary = c.summarize(group_by="n_cores")
        assert summary[4] > 0
