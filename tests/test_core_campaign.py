"""Tests for persistent experiment campaigns."""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import Campaign, CampaignPoint, result_record
from repro.core.experiment import SpMVExperiment
from repro.sparse import banded

SCALE = 0.04


@pytest.fixture()
def campaign(tmp_path):
    return Campaign("trial", tmp_path, scale=SCALE, iterations=2)


class TestRecord:
    def test_record_fields(self):
        a = banded(200, 5.0, 6, seed=1)
        r = SpMVExperiment(a, name="m").run(n_cores=2, iterations=2)
        rec = result_record(r)
        assert rec["matrix"] == "m"
        assert rec["mflops"] == pytest.approx(r.mflops)
        json.dumps(rec)  # must be JSON-serializable


class TestGrid:
    def test_cartesian_product(self):
        pts = Campaign.grid([1, 2], [4, 8], configs=("conf0", "conf1"))
        assert len(pts) == 8
        keys = {p.key() for p in pts}
        assert len(keys) == 8  # unique

    def test_point_key_stable(self):
        p = CampaignPoint(7, 8, "conf0", "standard", "csr")
        assert p.key() == "7:8:conf0:standard:csr"


class TestCampaign:
    def test_name_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign("", tmp_path)
        with pytest.raises(ValueError):
            Campaign("a/b", tmp_path)
        with pytest.raises(ValueError):
            Campaign("ok", tmp_path, iterations=0)

    def test_run_and_load(self, campaign):
        pts = Campaign.grid([30], [1, 4])
        ran, skipped = campaign.run(pts)
        assert (ran, skipped) == (2, 0)
        records = campaign.load()
        assert len(records) == 2
        assert {r["n_cores"] for r in records} == {1, 4}
        assert all(r["mflops"] > 0 for r in records)

    def test_resume_skips_completed(self, campaign):
        pts = Campaign.grid([30], [1, 4])
        campaign.run(pts)
        ran, skipped = campaign.run(pts + Campaign.grid([30], [8]))
        assert ran == 1 and skipped == 2
        assert len(campaign.load()) == 3

    def test_resume_across_instances(self, campaign, tmp_path):
        campaign.run(Campaign.grid([30], [2]))
        again = Campaign("trial", tmp_path, scale=SCALE, iterations=2)
        ran, skipped = again.run(Campaign.grid([30], [2]))
        assert ran == 0 and skipped == 1

    def test_unknown_config_rejected(self, campaign):
        with pytest.raises(ValueError):
            campaign.run([CampaignPoint(30, 4, "conf9", "standard", "csr")])

    def test_summarize(self, campaign):
        campaign.run(Campaign.grid([30, 31], [4]))
        summary = campaign.summarize(group_by="n_cores")
        assert set(summary) == {4}
        assert summary[4] > 0

    def test_records_include_scale_key(self, campaign):
        campaign.run(Campaign.grid([30], [2]))
        raw = campaign.path.read_text().strip().splitlines()
        rec = json.loads(raw[0])
        assert rec["scale"] == SCALE
        assert "_key" in rec
