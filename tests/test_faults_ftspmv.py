"""Property tests for the fault-tolerant SpMV driver.

The robustness contract: under any seeded fault plan (message loss,
duplication, corruption, mid-run core failures) the driver completes
and its result vector is *bitwise* equal to the fault-free computation,
and the same plan seed replays the identical schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import SpMVExperiment
from repro.faults.plan import CoreFailure, FaultPlan, get_plan
from repro.rcce.errors import RCCEBudgetExceededError
from repro.sparse import banded, partition_rows_balanced, spmv, spmv_row_range


@pytest.fixture(scope="module")
def experiment():
    a = banded(400, 6.0, 8, seed=3)
    return SpMVExperiment(a, name="ft-band")


def reference_vector(exp, n_cores, x):
    blocks = partition_rows_balanced(exp.a, n_cores).ranges()
    return np.concatenate([spmv_row_range(exp.a, x, r0, r1) for r0, r1 in blocks])


class TestFaultFree:
    def test_faultless_run_verifies(self, experiment):
        r = experiment.run_fault_tolerant(n_cores=4, plan=None, iterations=2)
        assert r.verified
        assert r.failed_ues == {}
        assert r.counters["checkpoints"] == 2
        assert r.fault_schedule == []
        assert r.mflops > 0

    def test_single_core_runs_coordinator_only(self, experiment):
        r = experiment.run_fault_tolerant(n_cores=1, plan=get_plan("lossy"), iterations=2)
        assert r.verified


class TestPropertyGrid:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("drop_rate", [0.05, 0.2])
    def test_exact_result_under_message_faults(self, experiment, seed, drop_rate):
        plan = FaultPlan(
            seed=seed,
            drop_rate=drop_rate,
            duplicate_rate=0.05,
            corrupt_rate=0.05,
        )
        x = np.linspace(0.5, 2.0, experiment.a.n_cols)
        r = experiment.run_fault_tolerant(
            n_cores=4, plan=plan, iterations=3, x=x, time_budget=60.0
        )
        assert r.verified
        assert np.array_equal(r.y, reference_vector(experiment, 4, x))
        assert np.allclose(r.y, spmv(experiment.a, x))

    @pytest.mark.parametrize("seed", [2, 9])
    def test_exact_result_with_mid_run_core_failure(self, experiment, seed):
        plan = FaultPlan(
            seed=seed,
            drop_rate=0.05,
            n_random_failures=1,
            # the whole fault-free run lasts ~1.1e-5 sim-seconds, so the
            # window must sit inside it for the death to land mid-run
            failure_window=(1e-6, 8e-6),
        )
        r = experiment.run_fault_tolerant(
            n_cores=6, plan=plan, iterations=3, time_budget=60.0
        )
        assert r.verified
        assert len(r.failed_ues) == 1
        assert 0 not in r.failed_ues  # the coordinator is protected
        assert r.counters["detected_failures"] >= 1
        assert r.counters["repartitions"] >= 1
        assert r.counters["core_failure"] == 1

    def test_explicit_victim_and_counters(self, experiment):
        plan = FaultPlan(seed=3, core_failures=(CoreFailure(2, 3e-6),))
        r = experiment.run_fault_tolerant(
            n_cores=4, plan=plan, iterations=2, time_budget=60.0
        )
        assert r.verified
        assert set(r.failed_ues) == {2}
        assert r.counters["checkpoints"] == 2

    def test_chaos_plan_survives(self, experiment):
        r = experiment.run_fault_tolerant(
            n_cores=6, plan=get_plan("chaos"), iterations=2, time_budget=60.0
        )
        assert r.verified


class TestReplayDeterminism:
    def test_same_seed_identical_schedule_and_trace(self, experiment):
        plan = get_plan("crash")
        kwargs = dict(n_cores=6, plan=plan, iterations=2, record_trace=True,
                      time_budget=60.0)
        r1 = experiment.run_fault_tolerant(**kwargs)
        r2 = experiment.run_fault_tolerant(**kwargs)
        assert r1.fault_schedule == r2.fault_schedule
        assert r1.trace == r2.trace
        assert r1.makespan == r2.makespan
        assert np.array_equal(r1.y, r2.y)
        assert r1.counters == r2.counters

    def test_different_seed_diverges(self, experiment):
        plan = get_plan("lossy")
        r1 = experiment.run_fault_tolerant(n_cores=4, plan=plan, iterations=2)
        r2 = experiment.run_fault_tolerant(
            n_cores=4, plan=plan.with_seed(4242), iterations=2
        )
        assert r1.fault_schedule != r2.fault_schedule
        assert r1.verified and r2.verified

    def test_det900_extends_to_faulty_runs(self):
        from repro.analysis.determinism import verify_program_determinism

        def program(comm):
            if comm.ue == 0:
                yield from comm.send_async(np.ones(8), 1)
            yield from comm.compute(1e-4)
            return None

        report = verify_program_determinism(
            program, n_ues=2, fault_plan=get_plan("lossy")
        )
        assert report.deterministic


class TestBudget:
    def test_budget_exceeded_raises_structured_error(self, experiment):
        with pytest.raises(RCCEBudgetExceededError) as err:
            experiment.run_fault_tolerant(
                n_cores=4, plan=get_plan("lossy"), iterations=4, time_budget=1e-6
            )
        assert err.value.budget == 1e-6
        assert err.value.running_ues

    def test_plain_run_accepts_budget(self, experiment):
        with pytest.raises(RCCEBudgetExceededError):
            experiment.run(n_cores=4, iterations=4, time_budget=1e-9)
        r = experiment.run(n_cores=4, iterations=2, time_budget=60.0)
        assert r.makespan < 60.0
