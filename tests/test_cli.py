"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import ARTIFACTS, COMMANDS, build_parser, main

FAST = ["--scale", "0.04", "--ids", "24,30", "--iterations", "2"]


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestParser:
    def test_artifact_choices(self):
        p = build_parser()
        args = p.parse_args(["run", "fig5"])
        assert args.command == "run"
        assert args.artifact == "fig5"
        with pytest.raises(SystemExit):
            p.parse_args(["run", "fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == 0.25
        assert args.iterations == 16
        assert args.ids == ""

    def test_all_commands_are_subparsers(self):
        p = build_parser()
        for cmd in COMMANDS:
            # every first-class command parses its own --help
            with pytest.raises(SystemExit) as exc:
                p.parse_args([cmd, "--help"])
            assert exc.value.code == 0


class TestLegacyShim:
    """`repro fig5` (pre-subcommand syntax) must keep working."""

    def test_bare_artifact_aliases_to_run(self):
        code, text = run_cli("table1", *FAST)
        assert code == 0
        assert "Table I" in text

    def test_bare_validate_aliases_to_run(self):
        code, text = run_cli("validate")
        assert code == 0
        assert "all checks passed" in text


class TestUnknownCommand:
    def test_unknown_command_exits_nonzero_with_hint(self, capsys):
        code = main(["frobnicate"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown command 'frobnicate'" in err
        assert "run" in err and "lint" in err and "trace" in err

    def test_no_arguments_exits_nonzero(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().err


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "0"])
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "2"])

    def test_bad_iterations(self):
        with pytest.raises(SystemExit):
            main(["table1", "--iterations", "0"])

    def test_bad_ids(self):
        with pytest.raises(SystemExit):
            main(["table1", "--ids", "a,b"])

    def test_empty_selection(self):
        with pytest.raises(SystemExit):
            main(["table1", "--ids", "99"])


class TestArtifacts:
    def test_table1(self):
        code, text = run_cli("table1", *FAST)
        assert code == 0
        assert "Table I" in text
        assert "rajat09" in text and "Na5" in text

    def test_fig3(self):
        code, text = run_cli("fig3", *FAST)
        assert code == 0
        assert "hops" in text and "degradation %" in text

    def test_fig5(self):
        code, text = run_cli("fig5", *FAST)
        assert code == 0
        assert "speedup" in text

    def test_fig6(self):
        code, text = run_cli("fig6", *FAST)
        assert code == 0
        assert "wsKB/core@24" in text

    def test_fig7(self):
        code, text = run_cli("fig7", *FAST)
        assert code == 0
        assert "without L2" in text

    def test_fig8(self):
        code, text = run_cli("fig8", *FAST)
        assert code == 0
        assert "speedup@48" in text

    def test_fig9(self):
        code, text = run_cli("fig9", *FAST)
        assert code == 0
        assert "conf1 MFLOPS/s" in text
        assert "MFLOPS/W" in text

    def test_fig10(self):
        code, text = run_cli("fig10", *FAST)
        assert code == 0
        assert "Tesla M2050" in text
        assert "SCC conf0" in text

    def test_all_renders_everything(self):
        code, text = run_cli("all", *FAST)
        assert code == 0
        for marker in ("Table I", "Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10"):
            assert marker in text

    def test_artifact_list_is_complete(self):
        assert ARTIFACTS == ("table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10")

    def test_validate_subcommand(self):
        code, text = run_cli("validate")
        assert code == 0
        assert "all checks passed" in text
        assert "FAIL" not in text

    def test_output_flag_writes_file(self, tmp_path):
        path = tmp_path / "artifact.txt"
        code = main(["table1", *FAST, "--output", str(path)])
        assert code == 0
        assert "Table I" in path.read_text()


class TestValidateExact:
    def test_parser_accepts_flag_without_artifact(self):
        args = build_parser().parse_args(["run", "--validate-exact"])
        assert args.validate_exact
        assert args.artifact is None

    def test_bare_run_without_artifact_errors(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_exact_validation_table(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli("run", "--validate-exact", *FAST)
        assert code == 0
        assert "Exact-replay validation" in text
        assert "model miss %" in text and "exact miss %" in text
        assert "mean |delta|" in text

    def test_artifact_still_renders_with_run(self):
        code, text = run_cli("run", "table1", *FAST)
        assert code == 0
        assert "Table I" in text
