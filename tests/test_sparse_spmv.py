"""Tests for the SpMV kernels (reference, vectorized, no-x-miss)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    spmv,
    spmv_no_x_miss,
    spmv_reference,
    spmv_row_range,
)


class TestReferenceKernel:
    def test_fig2_example(self, tiny_csr):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        y = spmv_reference(tiny_csr, x)
        np.testing.assert_allclose(y, tiny_csr.to_dense() @ x)

    def test_identity(self):
        m = CSRMatrix.from_dense(np.eye(6))
        x = np.arange(6.0)
        np.testing.assert_allclose(spmv_reference(m, x), x)

    def test_empty_rows_give_zero(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 5.0
        m = CSRMatrix.from_dense(dense)
        y = spmv_reference(m, np.ones(4))
        np.testing.assert_allclose(y, [0.0, 5.0, 0.0, 0.0])

    def test_wrong_x_shape(self, tiny_csr):
        with pytest.raises(ValueError):
            spmv_reference(tiny_csr, np.ones(4))


class TestVectorizedKernel:
    def test_matches_reference(self, small_banded, rng):
        x = rng.uniform(size=small_banded.n_cols)
        np.testing.assert_allclose(
            spmv(small_banded, x), spmv_reference(small_banded, x), rtol=1e-12
        )

    def test_matches_scipy(self, small_random, rng):
        x = rng.uniform(-1, 1, size=small_random.n_cols)
        np.testing.assert_allclose(
            spmv(small_random, x), small_random.to_scipy() @ x, rtol=1e-10
        )

    def test_empty_matrix(self):
        m = CSRMatrix(np.zeros(5, np.int64), np.empty(0, np.int32), np.empty(0), n_cols=3)
        np.testing.assert_allclose(spmv(m, np.ones(3)), np.zeros(4))

    def test_all_empty_rows_interleaved(self):
        dense = np.zeros((6, 6))
        dense[0, 0] = 1.0
        dense[5, 5] = 2.0
        m = CSRMatrix.from_dense(dense)
        y = spmv(m, np.ones(6))
        np.testing.assert_allclose(y, [1, 0, 0, 0, 0, 2.0])

    def test_linearity(self, small_powerlaw, rng):
        x1 = rng.uniform(size=small_powerlaw.n_cols)
        x2 = rng.uniform(size=small_powerlaw.n_cols)
        lhs = spmv(small_powerlaw, 2.0 * x1 + 3.0 * x2)
        rhs = 2.0 * spmv(small_powerlaw, x1) + 3.0 * spmv(small_powerlaw, x2)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9)


class TestRowRange:
    def test_partial_ranges_tile_the_product(self, small_banded, rng):
        x = rng.uniform(size=small_banded.n_cols)
        full = spmv(small_banded, x)
        n = small_banded.n_rows
        parts = [
            spmv_row_range(small_banded, x, 0, n // 3),
            spmv_row_range(small_banded, x, n // 3, 2 * n // 3),
            spmv_row_range(small_banded, x, 2 * n // 3, n),
        ]
        np.testing.assert_allclose(np.concatenate(parts), full, rtol=1e-12)

    def test_out_parameter_writes_in_place(self, tiny_csr):
        x = np.ones(5)
        out = np.zeros(5)
        ret = spmv_row_range(tiny_csr, x, 1, 3, out=out)
        assert ret is out
        np.testing.assert_allclose(out[1:3], (tiny_csr.to_dense() @ x)[1:3])
        assert out[0] == 0.0 and out[3] == 0.0

    def test_bad_range(self, tiny_csr):
        with pytest.raises(ValueError):
            spmv_row_range(tiny_csr, np.ones(5), 3, 2)
        with pytest.raises(ValueError):
            spmv_row_range(tiny_csr, np.ones(5), 0, 99)

    def test_bad_out_shape(self, tiny_csr):
        with pytest.raises(ValueError):
            spmv_row_range(tiny_csr, np.ones(5), 0, 2, out=np.zeros(3))

    def test_empty_range(self, tiny_csr):
        y = spmv_row_range(tiny_csr, np.ones(5), 2, 2)
        assert y.shape == (0,)


class TestNoXMissKernel:
    def test_computes_x0_times_rowsums(self, tiny_csr):
        x = np.array([2.0, 9.0, 9.0, 9.0, 9.0])
        y = spmv_no_x_miss(tiny_csr, x)
        rowsums = tiny_csr.to_dense().sum(axis=1)
        np.testing.assert_allclose(y, 2.0 * rowsums)

    def test_same_flop_count_shape(self, small_banded):
        """The diagnostic kernel does the same multiply-adds per row."""
        x = np.ones(small_banded.n_cols)
        y1 = spmv(small_banded, x)
        y2 = spmv_no_x_miss(small_banded, x)
        # With x == 1 everywhere the two kernels coincide.
        np.testing.assert_allclose(y1, y2, rtol=1e-12)

    def test_row_range_variant(self, small_banded):
        x = np.full(small_banded.n_cols, 3.0)
        n = small_banded.n_rows
        block = spmv_no_x_miss(small_banded, x, n // 2, n)
        full = spmv_no_x_miss(small_banded, x)
        np.testing.assert_allclose(block, full[n // 2 :], rtol=1e-12)

    def test_bad_range(self, tiny_csr):
        with pytest.raises(ValueError):
            spmv_no_x_miss(tiny_csr, np.ones(5), 4, 2)


class TestNumericalAccuracy:
    def test_large_cumsum_precision(self):
        """The prefix-sum row reduction stays accurate on long rows."""
        n = 200_000
        ptr = np.array([0, n], dtype=np.int64)
        index = np.arange(n, dtype=np.int32)
        da = np.full(n, 1e-3)
        m = CSRMatrix(ptr, index, da, n_cols=n)
        y = spmv(m, np.ones(n))
        assert y[0] == pytest.approx(n * 1e-3, rel=1e-9)
