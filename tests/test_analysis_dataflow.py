"""Tests for the symbolic communication-graph analyzer (DF50x rules)."""

from __future__ import annotations

import ast
import os
import textwrap

import pytest

from repro.analysis.commgraph import (
    CommEvent,
    Span,
    UETrace,
    simulate_schedule,
)
from repro.analysis.crosscheck import crosscheck_findings, crosscheck_program
from repro.analysis.dataflow import (
    DATAFLOW_RULES,
    Value,
    all_dataflow_rules,
    analyze_file,
    analyze_source,
    build_graph,
    explore_ue,
    get_dataflow_rule,
)
from repro.analysis.findings import Severity

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def analyze(code, **kw):
    return analyze_source(textwrap.dedent(code), "<test>", **kw)


def first_function(code):
    tree = ast.parse(textwrap.dedent(code))
    return next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))


class TestValueDomain:
    def test_known_int(self):
        v = Value.of(7)
        assert v.as_int() == 7 and v.truthiness() is True and v.uniform

    def test_bool_is_not_int(self):
        assert Value.of(True).as_int() is None

    def test_unknown(self):
        v = Value.unknown()
        assert v.as_int() is None and v.truthiness() is None and not v.uniform

    def test_unknown_with_nbytes(self):
        assert Value.unknown(uniform=True, nbytes=64).nbytes == 64


class TestInterpreter:
    def test_rank_arithmetic_is_concrete(self):
        fn = first_function(
            """
            def prog(comm):
                right = (comm.ue + 1) % comm.num_ues
                yield from comm.send_async(1.0, right, tag=9)
                yield from comm.recv(source=(comm.ue - 1) % comm.num_ues, tag=9)
            """
        )
        graph = build_graph(fn, 4)
        for ue in range(4):
            (trace,) = graph.traces[ue]
            send, recv = trace.events
            assert send.op == "send_async" and send.peer == (ue + 1) % 4
            assert send.tag == 9 and recv.tag == 9
            assert recv.peer == (ue - 1) % 4
            assert not trace.incomplete

    def test_concrete_rank_branch_no_fork(self):
        fn = first_function(
            """
            def prog(comm):
                if comm.ue == 0:
                    yield from comm.send(b"x", 1)
                else:
                    yield from comm.recv(source=0)
            """
        )
        graph = build_graph(fn, 2)
        assert len(graph.traces[0]) == 1 and len(graph.traces[1]) == 1
        assert graph.traces[0][0].events[0].op == "send"
        assert graph.traces[1][0].events[0].op == "recv"
        assert graph.traces[0][0].decisions == ()

    def test_unknown_branch_with_comm_forks(self):
        fn = first_function(
            """
            def prog(comm, threshold):
                x = yield from comm.allreduce(1.0)
                if x > threshold:
                    yield from comm.barrier()
            """
        )
        traces = explore_ue(fn, 0, 4)
        assert len(traces) == 2
        lengths = sorted(len(t.events) for t in traces)
        assert lengths == [1, 2]
        # the allreduce-derived condition is provably rank-uniform
        assert all(d.uniform for t in traces for d in t.decisions)

    def test_comm_free_unknown_branch_does_not_fork(self):
        fn = first_function(
            """
            def prog(comm, flag):
                x = 1
                if flag:
                    x = 2
                yield from comm.barrier()
            """
        )
        traces = explore_ue(fn, 0, 2)
        assert len(traces) == 1 and traces[0].decisions == ()

    def test_concrete_loop_unrolls_exactly(self):
        fn = first_function(
            """
            def prog(comm):
                for _ in range(comm.num_ues - 1):
                    yield from comm.barrier()
            """
        )
        graph = build_graph(fn, 5)
        assert len(graph.traces[0][0].events) == 4

    def test_module_constants_resolve(self):
        findings = analyze(
            """
            TAG = 11

            def prog(comm):
                if comm.ue == 0:
                    yield from comm.send(1.0, 1, tag=TAG)
                elif comm.ue == 1:
                    yield from comm.recv(source=0, tag=TAG)
            """,
            min_ues=2,
            max_ues=4,
        )
        assert findings == []

    def test_collective_return_none_on_non_root(self):
        # `blocks is None` must be concretely decidable per rank
        findings = analyze(
            """
            def prog(comm):
                blocks = yield from comm.gather(float(comm.ue), root=0)
                if blocks is None:
                    yield from comm.compute(1e-6)
                else:
                    yield from comm.compute(2e-6)
                yield from comm.barrier()
            """,
            min_ues=2,
            max_ues=6,
        )
        assert findings == []

    def test_uniform_while_loop_is_silent(self):
        findings = analyze(
            """
            def prog(comm):
                err = yield from comm.allreduce(1.0)
                while err > 0.5:
                    err = yield from comm.allreduce(err)
            """,
            min_ues=2,
            max_ues=4,
        )
        assert findings == []

    def test_rank_dependent_while_reports_df500(self):
        findings = analyze(
            """
            def prog(comm):
                x = yield from comm.recv(source=None)
                while x > 0:
                    yield from comm.barrier()
                    x = x - 1
            """,
            min_ues=2,
            max_ues=3,
        )
        assert [f.rule for f in findings] == ["DF500"]
        assert findings[0].severity is Severity.INFO
        assert "rank-dependent while" in findings[0].message

    def test_helper_generator_with_comm_reports_df500(self):
        findings = analyze(
            """
            def prog(comm, helper):
                yield from helper(comm)
                yield from comm.barrier()
            """,
            min_ues=2,
            max_ues=3,
        )
        assert [f.rule for f in findings] == ["DF500"]
        assert "helper generator" in findings[0].message


class TestAbstentionSoundness:
    """Incomplete analysis must never invent findings (review fixes)."""

    def test_truncated_trace_does_not_fake_congruence(self):
        # UE 0's send sits inside a match statement the interpreter
        # cannot model, truncating only UE 0's trace; the program is
        # correct, so DF502 must abstain (DF500 speaks instead).
        findings = analyze(
            """
            def prog(comm):
                if comm.ue == 0:
                    match comm.num_ues:
                        case _:
                            yield from comm.send(1.0, 1)
                    yield from comm.barrier()
                else:
                    if comm.ue == 1:
                        yield from comm.recv(source=0)
                    yield from comm.barrier()
            """,
            min_ues=2,
            max_ues=4,
        )
        assert {f.rule for f in findings} == {"DF500"}
        assert any("match" in f.message for f in findings)

    def test_rank_conditional_raise_is_crash_not_hang(self):
        # the job aborts on UE 0's exception; the other ranks' barrier
        # never hangs in reality, so DF501 must not fire
        findings = analyze(
            """
            def prog(comm):
                if comm.ue == 0:
                    raise ValueError("boom")
                yield from comm.barrier()
            """,
            min_ues=2,
            max_ues=4,
        )
        assert {f.rule for f in findings} == {"DF500"}
        assert any("raise aborts the job" in f.message for f in findings)

    def test_send_with_omitted_dest_reports_df500(self):
        # the runtime rejects send() without a dest; the simulator must
        # not silently model it as an always-completing wildcard
        findings = analyze(
            """
            def prog(comm):
                yield from comm.send(1.0)
                yield from comm.barrier()
            """,
            min_ues=2,
            max_ues=3,
        )
        assert {f.rule for f in findings} == {"DF500"}
        assert any("dest" in f.message for f in findings)

    def test_send_with_non_int_dest_reports_df500(self):
        findings = analyze(
            """
            def prog(comm):
                if comm.ue == 0:
                    yield from comm.send(1.0, "east")
                elif comm.ue == 1:
                    yield from comm.recv(source=0, timeout=1.0)
            """,
            min_ues=2,
            max_ues=3,
        )
        assert {f.rule for f in findings} == {"DF500"}
        assert any("not an integer" in f.message for f in findings)

    def test_dynamic_dest_still_reports_df500(self):
        findings = analyze(
            """
            def prog(comm, table):
                yield from comm.send(1.0, table[comm.ue])
                yield from comm.recv(timeout=1.0)
            """,
            min_ues=2,
            max_ues=3,
        )
        assert {f.rule for f in findings} == {"DF500"}
        assert any("not statically computable" in f.message for f in findings)


class TestAssignmentEnumeration:
    """Consistent-prefix backtracking replaces the filtered product."""

    UNIFORM_BRANCHES = """
        def prog(comm, a, b, c):
            if a:
                yield from comm.barrier()
            if b:
                yield from comm.barrier()
            if c:
                yield from comm.barrier()
        """

    def test_uniform_branches_enumerate_consistent_vectors_only(self):
        fn = first_function(self.UNIFORM_BRANCHES)
        graph = build_graph(fn, 6)
        combos = list(graph.assignments(cap=256))
        # 3 uniform branches -> exactly 2^3 consistent global vectors
        assert len(combos) == 8
        assert graph.enumeration_note is None
        for combo in combos:
            sigs = {tr.collective_signature() for tr in combo}
            assert len(sigs) == 1  # every rank took the same decisions

    def test_many_ues_with_uniform_branches_analyze_quickly(self):
        # regression: the filtered cross product iterated (2^3)^n combos
        # and never finished at n_ues >= 12; backtracking is linear-ish
        findings = analyze(self.UNIFORM_BRANCHES, min_ues=12, max_ues=16)
        assert findings == []

    def test_work_guard_records_enumeration_note(self):
        fn = first_function(self.UNIFORM_BRANCHES)
        graph = build_graph(fn, 4)
        assert list(graph.assignments(cap=256, work_cap=3)) == []
        assert graph.enumeration_note is not None
        assert "enumeration" in graph.enumeration_note

    def test_work_guard_surfaces_as_df500_finding(self, monkeypatch):
        import repro.analysis.commgraph as cg

        monkeypatch.setattr(cg, "ENUM_WORK_FLOOR", 2)
        findings = analyze(self.UNIFORM_BRANCHES, min_ues=4, max_ues=4)
        assert {f.rule for f in findings} == {"DF500"}
        assert any("enumeration" in f.message for f in findings)


class TestScheduleSimulator:
    def _trace(self, ue, *events):
        return UETrace(ue=ue, events=list(events))

    def test_matching_pair_completes(self):
        send = CommEvent(op="send", span=Span(), peer=1, tag=5)
        recv = CommEvent(op="recv", span=Span(), peer=0, tag=5)
        res = simulate_schedule(2, [self._trace(0, send), self._trace(1, recv)])
        assert res.completed

    def test_mutual_rendezvous_send_cycles(self):
        s01 = CommEvent(op="send", span=Span(), peer=1, tag=0)
        s10 = CommEvent(op="send", span=Span(), peer=0, tag=0)
        r0 = CommEvent(op="recv", span=Span(), peer=1, tag=0)
        r1 = CommEvent(op="recv", span=Span(), peer=0, tag=0)
        res = simulate_schedule(2, [self._trace(0, s01, r0), self._trace(1, s10, r1)])
        assert res.deadlocked and sorted(res.cycle) == [0, 1]

    def test_async_send_breaks_cycle(self):
        s01 = CommEvent(op="send_async", span=Span(), peer=1, tag=0)
        s10 = CommEvent(op="send_async", span=Span(), peer=0, tag=0)
        r0 = CommEvent(op="recv", span=Span(), peer=1, tag=0)
        r1 = CommEvent(op="recv", span=Span(), peer=0, tag=0)
        res = simulate_schedule(2, [self._trace(0, s01, r0), self._trace(1, s10, r1)])
        assert res.completed

    def test_timed_recv_never_blocks(self):
        recv = CommEvent(op="recv", span=Span(), peer=1, tag=0, bounded=True)
        res = simulate_schedule(2, [self._trace(0, recv), self._trace(1)])
        assert res.completed

    def test_self_send_is_a_crash(self):
        send = CommEvent(op="send", span=Span(), peer=0, tag=0)
        res = simulate_schedule(2, [self._trace(0, send), self._trace(1)])
        assert not res.completed and res.crashes
        assert "itself" in res.crashes[0][2]

    def test_collective_epoch_needs_all_ranks(self):
        bar = CommEvent(op="barrier", span=Span())
        res = simulate_schedule(2, [self._trace(0, bar), self._trace(1)])
        assert res.deadlocked and 0 in res.blocked
        res2 = simulate_schedule(2, [self._trace(0, bar), self._trace(1, bar)])
        assert res2.completed


class TestSeededFixturePair:
    """The acceptance-criterion pair: DF501 fires statically at every
    core count in 2..48 on the broken ring, never on the fix."""

    def test_deadlock_ring_detected_for_all_core_counts(self):
        path = os.path.join(FIXTURES, "df_deadlock_ring.py")
        findings = analyze_file(path, min_ues=2, max_ues=48)
        df501 = [f for f in findings if f.rule == "DF501"]
        assert len(df501) == 1
        f = df501[0]
        assert f.severity is Severity.ERROR
        assert "n_ues in 2..48" in f.message
        assert "wait-for cycle" in f.message
        assert f.line == 27 and f.col > 0  # the blocking send call

    def test_deadlock_ring_at_each_count_individually(self):
        path = os.path.join(FIXTURES, "df_deadlock_ring.py")
        for n in (2, 3, 17, 48):
            findings = analyze_file(path, min_ues=n, max_ues=n)
            assert any(f.rule == "DF501" for f in findings), f"missed at n={n}"

    def test_fixed_ring_is_clean_for_all_core_counts(self):
        path = os.path.join(FIXTURES, "df_ring_fixed.py")
        assert analyze_file(path, min_ues=2, max_ues=48) == []

    def test_crosscheck_agrees_on_both(self):
        bad = os.path.join(FIXTURES, "df_deadlock_ring.py") + ":ring_exchange_deadlock"
        good = os.path.join(FIXTURES, "df_ring_fixed.py") + ":ring_exchange_fixed"
        r_bad = crosscheck_program(bad, n_ues=4)
        assert r_bad.agree and r_bad.static_hangs and r_bad.runtime_hangs
        r_good = crosscheck_program(good, n_ues=4)
        assert r_good.agree and not r_good.static_hangs and not r_good.runtime_hangs
        # odd ring size exercises the staggered schedule's hard case
        r_odd = crosscheck_program(good, n_ues=5)
        assert r_odd.agree and not r_odd.runtime_hangs

    def test_crosscheck_findings_carry_both_tools(self):
        bad = os.path.join(FIXTURES, "df_deadlock_ring.py") + ":ring_exchange_deadlock"
        result = crosscheck_program(bad, n_ues=3)
        rules = {f.rule for f in crosscheck_findings(result)}
        assert "DF501" in rules and "RT801" in rules
        assert "XCHECK" not in rules  # they agree


class TestZeroFalsePositiveCorpus:
    """Every shipped correct RCCE program must analyze perfectly clean
    (no findings of any severity) over a representative core range."""

    CLEAN = (
        os.path.join(REPO, "examples", "rcce_programming.py"),
        os.path.join(REPO, "examples", "power_aware_spmv.py"),
        os.path.join(REPO, "src", "repro", "apps", "cg.py"),
        os.path.join(REPO, "src", "repro", "apps", "pagerank.py"),
        os.path.join(REPO, "src", "repro", "analysis", "check.py"),
        os.path.join(FIXTURES, "lint_clean.py"),
        os.path.join(FIXTURES, "df_ring_fixed.py"),
    )

    @pytest.mark.parametrize("path", CLEAN, ids=[os.path.basename(p) for p in CLEAN])
    def test_clean(self, path):
        findings = analyze_file(path, min_ues=2, max_ues=10)
        assert findings == [], "\n".join(str(f) for f in findings)


class TestBuggyFixtures:
    """The runtime-checker fixtures: each seeded bug is also provable
    statically (except the one-sided MPB race, which is out of model)."""

    PATH = os.path.join(FIXTURES, "buggy_programs.py")

    def _rules_for(self, function):
        findings = analyze_file(self.PATH, min_ues=2, max_ues=6, function=function)
        return {f.rule for f in findings}

    def test_tag_mismatch_deadlocks(self):
        assert "DF501" in self._rules_for("deadlock_tag_mismatch")

    def test_all_recv_deadlocks(self):
        assert "DF501" in self._rules_for("deadlock_all_recv")

    def test_collective_kind_mismatch(self):
        assert "DF502" in self._rules_for("collective_kind_mismatch")

    def test_collective_size_mismatch(self):
        rules = self._rules_for("collective_size_mismatch")
        assert "DF502" in rules

    def test_onesided_race_is_out_of_model(self):
        # one-sided MPB accesses are invisible to the comm graph: the
        # analyzer must stay silent (no false DF501), RT802 owns this bug
        assert "DF501" not in self._rules_for("mpb_overwrite_race")


class TestCapacityAndCongruence:
    def test_df503_oversized_payload(self):
        findings = analyze(
            """
            import numpy as np

            def prog(comm):
                big = np.zeros(4096)
                if comm.ue == 0:
                    yield from comm.send(big, 1)
                elif comm.ue == 1:
                    yield from comm.recv(source=0)
            """,
            min_ues=2,
            max_ues=4,
        )
        df503 = [f for f in findings if f.rule == "DF503"]
        assert len(df503) == 1
        assert df503[0].severity is Severity.WARNING
        assert "32768 B" in df503[0].message and "4 chunk" in df503[0].message

    def test_df502_divergent_root(self):
        findings = analyze(
            """
            def prog(comm):
                yield from comm.reduce(1.0, root=comm.ue % 2)
            """,
            min_ues=2,
            max_ues=4,
        )
        assert any(f.rule == "DF502" and "root" in f.message for f in findings)

    def test_df502_count_divergence(self):
        findings = analyze(
            """
            def prog(comm):
                if comm.ue == 0:
                    yield from comm.barrier()
                    yield from comm.barrier()
                else:
                    yield from comm.barrier()
            """,
            min_ues=2,
            max_ues=4,
        )
        assert any(f.rule == "DF502" and "count" in f.message for f in findings)
        assert any(f.rule == "DF501" for f in findings)  # the extra barrier hangs


class TestAnalyzeApi:
    def test_rule_catalogue(self):
        ids = [r.id for r in all_dataflow_rules()]
        assert ids == ["DF500", "DF501", "DF502", "DF503"]
        assert get_dataflow_rule("DF501").severity is Severity.ERROR
        with pytest.raises(KeyError):
            get_dataflow_rule("DF999")

    def test_select_filters_rules(self):
        path = os.path.join(FIXTURES, "df_deadlock_ring.py")
        only_503 = analyze_file(path, min_ues=2, max_ues=4, select=["DF503"])
        assert only_503 == []
        only_501 = analyze_file(path, min_ues=2, max_ues=4, select=["DF501"])
        assert [f.rule for f in only_501] == ["DF501"]

    def test_unknown_select_rejected(self):
        with pytest.raises(KeyError):
            analyze_source("def prog(comm):\n    yield from comm.barrier()\n",
                           select=["NOPE"])

    def test_unknown_function_rejected(self):
        path = os.path.join(FIXTURES, "df_ring_fixed.py")
        with pytest.raises(ValueError):
            analyze_file(path, function="nope")

    def test_syntax_error_becomes_finding(self):
        findings = analyze_source("def prog(comm:\n", "bad.py")
        assert findings and findings[0].rule == "PARSE"

    def test_non_comm_source_has_no_findings(self):
        assert analyze_source("x = 1\n") == []

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            analyze_source("def prog(comm):\n    yield from comm.barrier()\n",
                           min_ues=4, max_ues=2)

    def test_rule_table_exposes_all_rules(self):
        assert set(DATAFLOW_RULES) == {"DF500", "DF501", "DF502", "DF503"}
