"""Differential property suite for the set-parallel vectorized replay.

The scalar simulator (:mod:`repro.scc.cache`) is the oracle; every test
here enforces the bitwise contract of :mod:`repro.scc.vecreplay`:
identical hit/miss/eviction/writeback counts at every level *and*
identical final state (tags, dirty bits, pseudo-LRU trees) for the same
access stream.  The tail-width sweep pins all three execution paths —
pure vector, mixed vector+tail, pure scalar tail — and multi-pass
streams drive the engine through its full-cache fast body.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scc.cache import Cache, CacheHierarchy
from repro.scc.vecreplay import (
    TAIL_WIDTH,
    VectorCache,
    VectorCacheHierarchy,
    compile_schedule,
    fingerprints_equal,
)

#: tail-width settings covering pure-vector (0), mixed, default and
#: pure-scalar-tail (huge) execution.
TAIL_SWEEP = (0, 4, TAIL_WIDTH, 10**9)


def _stream(rng, n, n_lines, write_frac=0.3):
    """A random (addrs, writes) pair over ``n_lines`` distinct lines."""
    addrs = rng.integers(0, n_lines, size=n) * 32
    writes = rng.random(n) < write_frac
    return addrs, writes


def _scalar_stats(c):
    return (c.stats.hits, c.stats.misses, c.stats.evictions, c.stats.writebacks)


def _scalar_fingerprint(c: Cache):
    """(tags, dirty, plru) of the scalar cache, in the vector layout."""
    plru = np.array([t.bits for t in c._plru], dtype=np.int64)
    return (c._tags.copy(), c._dirty.copy(), plru)


def _run_both(addrs, writes, passes=1, size=1024, tail_width=TAIL_WIDTH):
    scalar = Cache(size_bytes=size, name="s")
    vec = VectorCache(size_bytes=size, name="v")
    vec.tail_width = tail_width
    for _ in range(passes):
        for a, w in zip(addrs.tolist(), writes.tolist()):
            scalar.access(int(a), write=bool(w))
        vec.access_trace(addrs, writes)
    return scalar, vec


class TestScheduleCompilation:
    def test_empty_stream(self):
        sched = compile_schedule(np.empty(0, dtype=np.int64), None, 32)
        assert sched.n_accesses == sched.n_kept == sched.n_steps == 0
        assert sched.bounds.tolist() == [0]

    def test_adjacent_duplicates_collapse_with_write_or(self):
        # line 5 accessed thrice in a row (read, write, read): one kept
        # access with the write flag OR-ed in.
        lines = np.array([5, 5, 5, 7], dtype=np.int64)
        writes = np.array([False, True, False, False])
        sched = compile_schedule(lines, writes, 32)
        assert sched.collapsed == 2
        assert sched.n_kept == 2
        kept_writes = {int(l): bool(w) for l, w in zip(sched.lines, sched.writes)}
        assert kept_writes == {5: True, 7: False}

    def test_step_major_invariants(self):
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 200, size=1500).astype(np.int64)
        writes = rng.random(1500) < 0.5
        n_sets = 16
        sched = compile_schedule(lines, writes, n_sets)
        widths = np.diff(sched.bounds)
        # Step widths are non-increasing (the tail cutover relies on it)
        # and every step touches each set at most once.
        assert (widths[1:] <= widths[:-1]).all()
        assert sched.bounds[-1] == sched.n_kept
        for k in range(sched.n_steps):
            s = sched.sets[sched.bounds[k] : sched.bounds[k + 1]]
            assert np.unique(s).size == s.size
        # `orig` is a permutation into the raw stream and each kept
        # access carries its own line/set.
        assert np.unique(sched.orig).size == sched.n_kept
        np.testing.assert_array_equal(lines[sched.orig], sched.lines)
        np.testing.assert_array_equal(lines[sched.orig] % n_sets, sched.sets)

    def test_per_set_program_order_preserved(self):
        # Walking steps in order must visit each set's accesses in
        # program order (after collapse) — the correctness core of the
        # lockstep transform.
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 100, size=800).astype(np.int64)
        sched = compile_schedule(lines, None, 8)
        for s in range(8):
            positions = sched.orig[sched.sets == s]
            assert (np.diff(positions) > 0).all()


class TestSingleLevelDifferential:
    @pytest.mark.parametrize("tail_width", TAIL_SWEEP)
    def test_random_stream_counts_and_state(self, tail_width):
        rng = np.random.default_rng(17)
        addrs, writes = _stream(rng, 2000, 120)
        scalar, vec = _run_both(addrs, writes, tail_width=tail_width)
        assert _scalar_stats(scalar) == _scalar_stats(vec)
        assert fingerprints_equal(
            _scalar_fingerprint(scalar), vec.state_fingerprint()
        )

    def test_multi_pass_exercises_full_cache_body(self):
        # Pass 1 fills the cache; passes 2-3 run entirely through the
        # lean full-cache body, which must stay bitwise identical.
        rng = np.random.default_rng(23)
        addrs, writes = _stream(rng, 1800, 90)
        scalar, vec = _run_both(addrs, writes, passes=3, tail_width=0)
        assert vec._full  # the fast body actually engaged
        assert _scalar_stats(scalar) == _scalar_stats(vec)
        assert fingerprints_equal(
            _scalar_fingerprint(scalar), vec.state_fingerprint()
        )

    def test_pathological_single_set_stream(self):
        # Every access lands in one set: schedule degenerates to one
        # access per step (pure tail / pure sequential vector).
        rng = np.random.default_rng(29)
        n_sets = 8
        lines = (rng.integers(0, 40, size=400) * n_sets + 3).astype(np.int64)
        for tw in (0, 10**9):
            scalar = Cache(size_bytes=n_sets * 4 * 32, name="s")
            vec = VectorCache(size_bytes=n_sets * 4 * 32, name="v")
            vec.tail_width = tw
            for l in lines.tolist():
                scalar.access(int(l) * 32)
            vec.access_trace(lines * 32)
            assert _scalar_stats(scalar) == _scalar_stats(vec)

    def test_reads_only_stream(self):
        rng = np.random.default_rng(31)
        addrs = rng.integers(0, 300, size=1000) * 32
        scalar = Cache(size_bytes=2048, name="s")
        vec = VectorCache(size_bytes=2048, name="v")
        for a in addrs.tolist():
            scalar.access(int(a))
        vec.access_trace(addrs)
        assert _scalar_stats(scalar) == _scalar_stats(vec)
        assert scalar.stats.writebacks == 0


class TestHierarchyDifferential:
    @pytest.mark.parametrize("l2_enabled", [True, False])
    def test_multi_pass_hierarchy(self, l2_enabled):
        rng = np.random.default_rng(37)
        addrs, writes = _stream(rng, 2500, 500)
        scalar = CacheHierarchy(l1_bytes=2048, l2_bytes=8192, l2_enabled=l2_enabled)
        vec = VectorCacheHierarchy(l1_bytes=2048, l2_bytes=8192, l2_enabled=l2_enabled)
        for _ in range(3):
            for a, w in zip(addrs.tolist(), writes.tolist()):
                scalar.access(int(a), write=bool(w))
            vec.access_trace(addrs, writes)
        assert _scalar_stats(scalar.l1) == _scalar_stats(vec.l1)
        if l2_enabled:
            assert _scalar_stats(scalar.l2) == _scalar_stats(vec.l2)
            assert fingerprints_equal(
                _scalar_fingerprint(scalar.l1) + _scalar_fingerprint(scalar.l2),
                vec.state_fingerprint(),
            )

    def test_level_counts_sum_to_accesses(self):
        rng = np.random.default_rng(41)
        addrs, writes = _stream(rng, 1200, 400)
        vec = VectorCacheHierarchy(l1_bytes=1024, l2_bytes=4096)
        counts = vec.access_trace(addrs, writes)
        assert counts["l1"] + counts["l2"] + counts["mem"] == addrs.size


class TestVectorCacheAPI:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            VectorCache(size_bytes=0)
        with pytest.raises(ValueError):
            VectorCache(size_bytes=1000, assoc=3, line_bytes=32)

    def test_writes_shape_mismatch(self):
        vec = VectorCache(size_bytes=1024)
        with pytest.raises(ValueError):
            vec.access_trace(np.array([0, 32]), writes=np.array([True]))
        hier = VectorCacheHierarchy(l1_bytes=128, l2_bytes=512)
        with pytest.raises(ValueError):
            hier.access_trace(np.array([0, 32]), writes=np.array([True]))

    def test_empty_trace_is_a_noop(self):
        vec = VectorCache(size_bytes=1024)
        assert vec.access_trace(np.empty(0, dtype=np.int64)) == 0
        assert _scalar_stats(vec) == (0, 0, 0, 0)

    def test_flush_writes_back_and_resets_full_flag(self):
        vec = VectorCache(size_bytes=128)  # 1 set, 4 ways
        vec.access_trace(np.arange(4) * 32 * vec.n_sets,
                         np.array([True, True, False, False]))
        for _ in range(2):  # promote to the full-cache body
            vec.access_trace(np.arange(4) * 32 * vec.n_sets)
        assert vec._full
        assert vec.flush() == 2  # two dirty lines written back
        assert not vec._full
        assert not vec.contains_line(0)

    def test_contains_line(self):
        vec = VectorCache(size_bytes=1024)
        vec.access_trace(np.array([96]))
        assert vec.contains_line(3)
        assert not vec.contains_line(4)

    def test_replay_counters_accumulate(self):
        rng = np.random.default_rng(43)
        addrs, writes = _stream(rng, 600, 80)
        vec = VectorCacheHierarchy(l1_bytes=1024, l2_bytes=4096)
        vec.access_trace(addrs, writes)
        assert vec.steps_run > 0
        assert vec.collapsed_hits >= 0
        assert vec.tail_accesses >= 0


class TestFingerprints:
    def test_equal_and_unequal(self):
        a = VectorCache(size_bytes=1024)
        b = VectorCache(size_bytes=1024)
        assert fingerprints_equal(a.state_fingerprint(), b.state_fingerprint())
        a.access_trace(np.array([0]))
        assert not fingerprints_equal(a.state_fingerprint(), b.state_fingerprint())

    def test_fingerprint_is_a_copy(self):
        vec = VectorCache(size_bytes=1024)
        fp = vec.state_fingerprint()
        vec.access_trace(np.array([0]))
        assert not fingerprints_equal(fp, vec.state_fingerprint())
