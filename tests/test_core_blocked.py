"""Tests for the BCSR timing model (repro.core.blocked)."""

from __future__ import annotations

import pytest

from repro.core import SpMVExperiment
from repro.core.blocked import BCSRTimingResult, run_bcsr_timing
from repro.scc import CONF0, CONF1
from repro.sparse import fem_blocks, random_uniform
from repro.sparse.bcsr import BCSRMatrix


@pytest.fixture(scope="module")
def blocky():
    return fem_blocks(4000, 4, 24.0, seed=17)


@pytest.fixture(scope="module")
def scattered():
    return random_uniform(4000, 24.0, seed=18)


class TestBasics:
    def test_result_fields(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 4, 4)
        r = run_bcsr_timing(b, n_cores=8, iterations=4)
        assert isinstance(r, BCSRTimingResult)
        assert r.makespan > 0
        assert r.flops == 2 * b.nnz_stored * 4
        assert r.fill_ratio >= 1.0
        assert r.mflops > 0

    def test_validation(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 2, 2)
        with pytest.raises(ValueError):
            run_bcsr_timing(b, n_cores=0)
        with pytest.raises(ValueError):
            run_bcsr_timing(b, iterations=0)
        with pytest.raises(ValueError):
            run_bcsr_timing(b, n_cores=4, mapping=[0, 1])

    def test_explicit_mapping(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 2, 2)
        r = run_bcsr_timing(b, n_cores=2, mapping=[0, 47])
        assert r.n_cores == 2

    def test_deterministic(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 2, 2)
        r1 = run_bcsr_timing(b, n_cores=8)
        r2 = run_bcsr_timing(b, n_cores=8)
        assert r1.makespan == r2.makespan


class TestModelBehaviour:
    def test_blocking_helps_dense_blocks(self, blocky):
        csr = SpMVExperiment(blocky, name="blocky").run(n_cores=8)
        b = BCSRMatrix.from_csr(blocky, 4, 4)
        assert b.fill_ratio() < 1.1  # the generator makes dense 4x4 tiles
        bcsr = run_bcsr_timing(b, n_cores=8)
        assert bcsr.mflops > csr.mflops

    def test_blocking_hurts_scattered(self, scattered):
        csr = SpMVExperiment(scattered, name="scattered").run(n_cores=8)
        b = BCSRMatrix.from_csr(scattered, 4, 4)
        assert b.fill_ratio() > 4.0
        bcsr = run_bcsr_timing(b, n_cores=8)
        assert bcsr.mflops < csr.mflops

    def test_fill_in_costs_time(self, scattered):
        small = run_bcsr_timing(BCSRMatrix.from_csr(scattered, 2, 2), n_cores=8)
        big = run_bcsr_timing(BCSRMatrix.from_csr(scattered, 4, 4), n_cores=8)
        assert big.fill_ratio > small.fill_ratio
        assert big.makespan > small.makespan

    def test_more_cores_faster(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 4, 4)
        r8 = run_bcsr_timing(b, n_cores=8)
        r24 = run_bcsr_timing(b, n_cores=24)
        assert r24.makespan < r8.makespan

    def test_conf1_faster(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 4, 4)
        r0 = run_bcsr_timing(b, n_cores=8, config=CONF0)
        r1 = run_bcsr_timing(b, n_cores=8, config=CONF1)
        assert r1.makespan < r0.makespan

    def test_1x1_blocking_close_to_csr(self, blocky):
        """1x1 BCSR is CSR with per-'block'-row overhead on every row;
        the models should land within ~25% of each other."""
        csr = SpMVExperiment(blocky, name="blocky").run(n_cores=8)
        b = BCSRMatrix.from_csr(blocky, 1, 1)
        bcsr = run_bcsr_timing(b, n_cores=8)
        assert bcsr.mflops == pytest.approx(csr.mflops, rel=0.25)
