"""Tests for barrier/bcast/reduce/allreduce/gather at many UE counts."""

from __future__ import annotations

import operator

import numpy as np
import pytest

from repro.rcce import RCCERuntime

UE_COUNTS = [1, 2, 3, 4, 5, 7, 8, 13, 16, 48]


def run(n, fn, *args):
    rt = RCCERuntime(list(range(n)))
    return rt, rt.run(fn, *args)


class TestBarrier:
    @pytest.mark.parametrize("n", UE_COUNTS)
    def test_all_pass_barrier(self, n):
        def fn(comm):
            yield from comm.barrier()
            return True

        _, res = run(n, fn)
        assert all(r.value for r in res)

    def test_barrier_synchronizes_times(self):
        """A UE that computes longer delays everyone at the barrier."""
        def fn(comm):
            yield from comm.compute(1.0 if comm.ue == 2 else 0.0)
            yield from comm.barrier()
            return comm.wtime()

        _, res = run(4, fn)
        assert all(r.value >= 1.0 for r in res)


class TestBcast:
    @pytest.mark.parametrize("n", UE_COUNTS)
    def test_everyone_gets_root_value(self, n):
        def fn(comm):
            value = f"root-data" if comm.ue == 0 else None
            got = yield from comm.bcast(value, root=0)
            return got

        _, res = run(n, fn)
        assert all(r.value == "root-data" for r in res)

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        def fn(comm):
            value = 123 if comm.ue == root else None
            got = yield from comm.bcast(value, root=root)
            return got

        _, res = run(5, fn)
        assert all(r.value == 123 for r in res)

    def test_bcast_array(self):
        def fn(comm):
            value = np.arange(100.0) if comm.ue == 0 else None
            got = yield from comm.bcast(value, root=0)
            return got.sum()

        _, res = run(6, fn)
        assert all(r.value == pytest.approx(4950.0) for r in res)

    def test_bad_root_rejected(self):
        def fn(comm):
            yield from comm.bcast(1, root=9)

        rt = RCCERuntime([0, 1])
        with pytest.raises(Exception):
            rt.run(fn)


class TestReduce:
    @pytest.mark.parametrize("n", UE_COUNTS)
    def test_sum_of_ranks(self, n):
        def fn(comm):
            return (yield from comm.reduce(comm.ue, operator.add, root=0))

        _, res = run(n, fn)
        assert res[0].value == sum(range(n))
        assert all(r.value is None for r in res[1:])

    @pytest.mark.parametrize("root", [0, 2, 4])
    def test_reduce_to_other_root(self, root):
        def fn(comm):
            return (yield from comm.reduce(comm.ue + 1, operator.mul, root=root))

        _, res = run(5, fn)
        assert res[root].value == 120
        for ue, r in enumerate(res):
            if ue != root:
                assert r.value is None

    def test_default_op_is_add(self):
        def fn(comm):
            return (yield from comm.reduce(2))

        _, res = run(4, fn)
        assert res[0].value == 8

    def test_numpy_reduce(self):
        def fn(comm):
            return (yield from comm.reduce(np.full(8, float(comm.ue)), np.add, root=0))

        _, res = run(4, fn)
        np.testing.assert_allclose(res[0].value, np.full(8, 6.0))


class TestAllreduce:
    @pytest.mark.parametrize("n", UE_COUNTS)
    def test_everyone_gets_total(self, n):
        def fn(comm):
            return (yield from comm.allreduce(comm.ue ** 2))

        _, res = run(n, fn)
        expected = sum(u * u for u in range(n))
        assert all(r.value == expected for r in res)

    def test_max_op(self):
        def fn(comm):
            return (yield from comm.allreduce(comm.ue, max))

        _, res = run(7, fn)
        assert all(r.value == 6 for r in res)


class TestGather:
    @pytest.mark.parametrize("n", UE_COUNTS)
    def test_rank_ordered_list_on_root(self, n):
        def fn(comm):
            return (yield from comm.gather(comm.ue * 2, root=0))

        _, res = run(n, fn)
        assert res[0].value == [2 * u for u in range(n)]
        assert all(r.value is None for r in res[1:])

    def test_gather_arrays_concatenable(self):
        def fn(comm):
            block = np.full(3, float(comm.ue))
            blocks = yield from comm.gather(block, root=0)
            if comm.ue == 0:
                return np.concatenate(blocks)
            return None

        _, res = run(4, fn)
        np.testing.assert_allclose(
            res[0].value, np.repeat([0.0, 1.0, 2.0, 3.0], 3)
        )


class TestCollectiveCost:
    def test_barrier_cost_grows_with_ue_count(self):
        def fn(comm):
            yield from comm.barrier()

        rt2, _ = run(2, fn)
        rt48, _ = run(48, fn)
        assert rt48.sim.now > rt2.sim.now

    def test_collectives_cost_nonzero_time(self):
        def fn(comm):
            yield from comm.allreduce(1.0)

        rt, _ = run(8, fn)
        assert rt.sim.now > 0.0
