"""Tests for the SCC chip topology."""

from __future__ import annotations

import pytest

from repro.scc import CORES_PER_TILE, GRID_X, GRID_Y, N_CORES, N_TILES, SCCTopology


class TestGeometry:
    def test_chip_dimensions(self):
        assert GRID_X == 6 and GRID_Y == 4
        assert N_TILES == 24
        assert CORES_PER_TILE == 2
        assert N_CORES == 48

    def test_tiles_enumerated_row_major(self, topology):
        t = topology.tile(7)
        assert (t.x, t.y) == (1, 1)
        assert topology.tile_at(1, 1) is t

    def test_tile_cores(self, topology):
        assert topology.tile(0).cores == (0, 1)
        assert topology.tile(5).cores == (10, 11)
        assert topology.tile(23).cores == (46, 47)

    def test_tile_of_core(self, topology):
        for core in range(N_CORES):
            t = topology.tile_of_core(core)
            assert core in t.cores

    def test_bad_indices_raise(self, topology):
        with pytest.raises(ValueError):
            topology.tile(24)
        with pytest.raises(ValueError):
            topology.tile_at(6, 0)
        with pytest.raises(ValueError):
            topology.tile_of_core(48)
        with pytest.raises(ValueError):
            topology.tile_of_core(-1)


class TestMemoryControllers:
    def test_mc_coordinates_match_paper(self, topology):
        # Paper Sec. II: routers of tiles at (0,0), (2,0), (0,5), (2,5)
        # in (y, x) notation == (x, y) of (0,0), (0,2), (5,0), (5,2).
        assert set(topology.mc_coords) == {(0, 0), (5, 0), (0, 2), (5, 2)}

    def test_four_quadrants_of_twelve_cores(self, topology):
        for q in range(4):
            assert len(topology.cores_of_quadrant(q)) == 12

    def test_paper_quadrant_example(self, topology):
        """Paper: 'the lower left quadrant contains cores 0-5 and 12-17'."""
        assert topology.cores_of_quadrant(0) == tuple(range(6)) + tuple(range(12, 18))

    def test_quadrants_partition_all_cores(self, topology):
        seen = set()
        for q in range(4):
            cores = set(topology.cores_of_quadrant(q))
            assert not (seen & cores)
            seen |= cores
        assert seen == set(range(N_CORES))

    def test_mc_of_core_is_quadrant_controller(self, topology):
        for q in range(4):
            for core in topology.cores_of_quadrant(q):
                assert topology.mc_coord_of_core(core) == topology.mc_coords[q]
                assert topology.mc_index_of_core(core) == q

    def test_bad_quadrant_raises(self, topology):
        with pytest.raises(ValueError):
            topology.cores_of_quadrant(4)


class TestDistances:
    def test_hops_between_is_manhattan(self, topology):
        assert topology.hops_between((0, 0), (5, 3)) == 8
        assert topology.hops_between((2, 1), (2, 1)) == 0

    def test_distance_histogram_matches_paper(self, topology):
        """All distances 0..3 occur (Fig. 3 covers 'all possible distances')."""
        hist = topology.distance_histogram()
        assert hist == {0: 8, 1: 16, 2: 16, 3: 8}

    def test_mc_tiles_have_zero_hops(self, topology):
        for x, y in topology.mc_coords:
            for core in topology.tile_at(x, y).cores:
                assert topology.hops_to_mc(core) == 0

    def test_paper_distance_reduction_example(self, topology):
        """Paper Sec. IV-A: with 4 UEs the nearest cores are 0, 1, 10, 11."""
        assert topology.cores_by_distance()[:4] == (0, 1, 10, 11)

    def test_cores_by_distance_is_complete_permutation(self, topology):
        order = topology.cores_by_distance()
        assert sorted(order) == list(range(N_CORES))

    def test_cores_by_distance_monotone_in_hops(self, topology):
        hops = [topology.hops_to_mc(c) for c in topology.cores_by_distance()]
        assert hops == sorted(hops)

    def test_cores_at_distance(self, topology):
        for h in range(4):
            cores = topology.cores_at_distance(h)
            assert all(topology.hops_to_mc(c) == h for c in cores)
        assert topology.cores_at_distance(9) == ()
