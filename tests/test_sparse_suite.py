"""Tests for the reconstructed Table I testbed."""

from __future__ import annotations

import pytest

from repro.sparse import SUITE, build_matrix, entry_by_id, iter_suite, suite_table
from repro.sparse.stats import working_set_mbytes

# Small scale keeps the full-suite tests fast.
SCALE = 0.02


class TestSuiteDefinition:
    def test_thirty_two_matrices(self):
        assert len(SUITE) == 32
        assert [e.mid for e in SUITE] == list(range(1, 33))

    def test_entry_lookup(self):
        assert entry_by_id(2).name == "F1"
        with pytest.raises(KeyError):
            entry_by_id(0)
        with pytest.raises(KeyError):
            entry_by_id(33)

    def test_short_row_matrices_are_24_and_25(self):
        """The paper singles out ids 24/25 for very small nnz/n."""
        short = sorted(SUITE, key=lambda e: e.nnz_per_row)[:2]
        assert {e.mid for e in short} == {24, 25}
        for e in short:
            assert e.nnz_per_row < 8

    def test_working_set_spread_covers_l2_boundary(self):
        """At 24 cores some matrices fit the 256 KB L2, some do not."""
        per_core = [e.ws_mbytes * 1024 / 24 for e in SUITE]  # KB per core
        assert any(ws < 256 for ws in per_core)
        assert any(ws > 256 for ws in per_core)

    def test_ws_matches_formula(self):
        for e in SUITE:
            assert e.ws_mbytes == pytest.approx(working_set_mbytes(e.n, e.nnz))

    def test_families_are_known(self):
        known = {"banded", "block", "random", "random_short", "powerlaw", "powerlaw_short", "dense_rows"}
        assert {e.family for e in SUITE} <= known

    def test_scaled_preserves_density(self):
        e = entry_by_id(7)
        n, npr = e.scaled(0.1)
        assert n == pytest.approx(e.n * 0.1, rel=0.01)
        assert npr == e.nnz_per_row

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            entry_by_id(1).scaled(0.0)
        with pytest.raises(ValueError):
            entry_by_id(1).scaled(1.5)


class TestBuildMatrix:
    def test_deterministic(self):
        a = build_matrix(12, scale=SCALE)
        b = build_matrix(12, scale=SCALE)
        assert a is b  # memoized

    def test_density_near_target(self):
        for mid in (7, 14, 26):
            e = entry_by_id(mid)
            a = build_matrix(mid, scale=SCALE)
            assert a.nnz_per_row == pytest.approx(e.nnz_per_row, rel=0.35)

    def test_all_entries_buildable(self):
        for e, a in iter_suite(scale=SCALE):
            assert a.n_rows == a.n_cols
            assert a.nnz > 0

    def test_dense_rows_family_hits_nnz_target(self):
        # 'fp' stand-in: the dense-row budget must deliver ~nnz/n.
        e = entry_by_id(21)
        a = build_matrix(21, scale=0.1)
        assert a.nnz_per_row == pytest.approx(e.nnz_per_row, rel=0.35)

    def test_dense_rows_family_row_length_spread(self):
        a = build_matrix(21, scale=0.1)
        lengths = a.row_lengths()
        # Bimodal: base rows ~0.3*npr, dense rows much longer.
        assert lengths.max() > 2 * lengths.mean()

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            build_matrix(99, scale=SCALE)


class TestSuiteTable:
    def test_table_has_paper_columns(self):
        rows = suite_table(scale=SCALE, ids=[1, 24])
        assert len(rows) == 2
        for r in rows:
            for col in ("id", "name", "n", "nnz", "nnz_per_row", "ws_mbytes"):
                assert col in r

    def test_ids_filter(self):
        rows = suite_table(scale=SCALE, ids=[3, 30])
        assert [r["id"] for r in rows] == [3, 30]

    def test_iter_suite_filter(self):
        got = [e.mid for e, _ in iter_suite(scale=SCALE, ids=[2, 9, 31])]
        assert got == [2, 9, 31]
