"""Tests for repro.obs exporters: Chrome trace JSON (schema + determinism,
the ISSUE acceptance criteria), the terminal timeline, and the schema
validator's negative cases."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace_json,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced_run(n_cores=4, matrix_id=24, scale=0.04, iterations=2):
    from repro.core.experiment import SpMVExperiment
    from repro.sparse.suite import build_matrix, entry_by_id

    tracer = Tracer()
    exp = SpMVExperiment(
        build_matrix(matrix_id, scale=scale), name=entry_by_id(matrix_id).name
    )
    result = exp.run(n_cores=n_cores, iterations=iterations, tracer=tracer)
    return tracer, result


class TestChromeExport:
    def test_four_core_trace_is_schema_valid(self):
        tracer, _ = _traced_run(n_cores=4)
        assert tracer.events, "traced run recorded no events"
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []

    def test_same_seed_runs_are_byte_identical(self):
        a = chrome_trace_json(_traced_run(n_cores=4)[0])
        b = chrome_trace_json(_traced_run(n_cores=4)[0])
        assert a == b

    def test_round_trips_through_json(self):
        tracer, _ = _traced_run(n_cores=2)
        parsed = json.loads(chrome_trace_json(tracer))
        assert validate_chrome_trace(parsed) == []

    def test_lane_metadata_present(self):
        tracer, _ = _traced_run(n_cores=2)
        trace = to_chrome_trace(tracer, process_name="unit-test")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {"process_name": "unit-test"}
        thread_names = {
            e["tid"]: e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert thread_names.get(0) == "ue 0"
        assert "simulator" in thread_names.values()

    def test_timestamps_are_microseconds(self):
        tr = Tracer(clock=lambda: 0.5)
        tr.instant("x")
        trace = to_chrome_trace(tr)
        inst = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert inst[0]["ts"] == 500000.0
        assert inst[0]["s"] == "t"

    def test_metrics_ride_in_other_data(self):
        tr = Tracer()
        tr.metrics.counter("c").inc(2)
        trace = to_chrome_trace(tr)
        assert trace["otherData"]["metrics"]["counters"] == {"c": 2}

    def test_write_chrome_trace(self, tmp_path):
        tracer, _ = _traced_run(n_cores=2)
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestTimeline:
    def test_nested_detail_is_visible(self):
        tracer, _ = _traced_run(n_cores=4)
        text = render_timeline(tracer)
        # communication/compute detail must overpaint the outer ue.run span
        assert "= ue.run" in text
        assert any(f"= {name}" in text for name in ("send", "recv", "compute", "barrier"))
        assert "ue 0" in text and "ue 3" in text

    def test_empty_tracer(self):
        assert render_timeline(Tracer()) == "(no spans recorded)"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline(Tracer(), width=4)


class TestSchemaValidatorNegatives:
    @staticmethod
    def _trace(events):
        return {"traceEvents": events}

    @staticmethod
    def _ev(**kw):
        base = {"name": "x", "ph": "i", "ts": 0, "pid": 0, "tid": 0}
        base.update(kw)
        return base

    def test_not_a_dict(self):
        assert validate_chrome_trace([]) != []

    def test_missing_required_field(self):
        ev = self._ev()
        del ev["ts"]
        assert any("ts" in p for p in validate_chrome_trace(self._trace([ev])))

    def test_bool_is_not_a_valid_tid(self):
        problems = validate_chrome_trace(self._trace([self._ev(tid=True)]))
        assert problems != []

    def test_unsupported_phase(self):
        assert validate_chrome_trace(self._trace([self._ev(ph="X")])) != []

    def test_negative_timestamp(self):
        assert validate_chrome_trace(self._trace([self._ev(ts=-1.0)])) != []

    def test_unclosed_span_reported(self):
        problems = validate_chrome_trace(self._trace([self._ev(ph="B")]))
        assert any("unclosed" in p for p in problems)

    def test_end_without_begin(self):
        assert validate_chrome_trace(self._trace([self._ev(ph="E")])) != []

    def test_backwards_timestamps_in_lane(self):
        events = [self._ev(ts=2.0), self._ev(ts=1.0)]
        assert validate_chrome_trace(self._trace(events)) != []

    def test_counter_needs_numeric_args(self):
        bad = self._ev(ph="C", args={"value": "high"})
        assert validate_chrome_trace(self._trace([bad])) != []

    def test_valid_minimal_trace(self):
        events = [
            self._ev(ph="B", ts=0.0),
            self._ev(ph="E", ts=1.0),
            self._ev(ph="C", ts=1.0, args={"value": 3}),
        ]
        assert validate_chrome_trace(self._trace(events)) == []
