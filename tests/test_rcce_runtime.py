"""Tests for the RCCE runtime: mapping, p2p, timing, deadlock detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rcce import RCCERuntime
from repro.scc import CONF0, CONF1


class TestConstruction:
    def test_empty_core_map_rejected(self):
        with pytest.raises(ValueError):
            RCCERuntime([])

    def test_duplicate_cores_rejected(self):
        with pytest.raises(ValueError):
            RCCERuntime([0, 0])

    def test_core_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RCCERuntime([48])

    def test_comm_identity(self):
        rt = RCCERuntime([5, 9, 33])
        assert rt.n_ues == 3
        assert rt.comms[1].ue == 1
        assert rt.comms[1].core == 9
        assert rt.comms[2].num_ues == 3


class TestPointToPoint:
    def test_send_recv_pair(self):
        def fn(comm):
            if comm.ue == 0:
                yield from comm.send(np.arange(10.0), dest=1)
                return "sent"
            data = yield from comm.recv(source=0)
            return data.sum()

        rt = RCCERuntime([0, 1])
        res = rt.run(fn)
        assert res[0].value == "sent"
        assert res[1].value == 45.0

    def test_send_to_self_rejected(self):
        def fn(comm):
            yield from comm.send(1, dest=0)

        rt = RCCERuntime([0])
        with pytest.raises(Exception):
            rt.run(fn)

    def test_tags_matched_in_order(self):
        def fn(comm):
            if comm.ue == 0:
                yield from comm.send("first", dest=1, tag=1)
                yield from comm.send("second", dest=1, tag=2)
                return None
            a = yield from comm.recv(source=0, tag=1)
            b = yield from comm.recv(source=0, tag=2)
            return (a, b)

        rt = RCCERuntime([0, 1])
        res = rt.run(fn)
        assert res[1].value == ("first", "second")

    def test_out_of_order_tags_deadlock_under_rendezvous(self):
        """RCCE sends are synchronous: receiving tags in the wrong order
        blocks the sender on its first unacknowledged message."""
        def fn(comm):
            if comm.ue == 0:
                yield from comm.send("first", dest=1, tag=1)
                yield from comm.send("second", dest=1, tag=2)
                return None
            b = yield from comm.recv(source=0, tag=2)
            a = yield from comm.recv(source=0, tag=1)
            return (a, b)

        rt = RCCERuntime([0, 1])
        with pytest.raises(RuntimeError, match="deadlock"):
            rt.run(fn)

    def test_transfer_time_grows_with_payload(self):
        def fn(comm, size):
            if comm.ue == 0:
                yield from comm.send(np.zeros(size), dest=1)
            else:
                yield from comm.recv(source=0)

        t_small = RCCERuntime([0, 47])
        t_small.run(fn, 10)
        t_big = RCCERuntime([0, 47])
        t_big.run(fn, 1_000_000)
        assert t_big.sim.now > t_small.sim.now

    def test_transfer_time_grows_with_distance(self):
        def fn(comm):
            if comm.ue == 0:
                yield from comm.send(np.zeros(10_000), dest=1)
            else:
                yield from comm.recv(source=0)

        near = RCCERuntime([0, 1])   # same tile
        near.run(fn)
        far = RCCERuntime([0, 47])   # opposite corner
        far.run(fn)
        assert far.sim.now > near.sim.now

    def test_faster_mesh_shrinks_transfers(self):
        def fn(comm):
            if comm.ue == 0:
                yield from comm.send(np.zeros(100_000), dest=1)
            else:
                yield from comm.recv(source=0)

        slow = RCCERuntime([0, 47], config=CONF0)
        slow.run(fn)
        fast = RCCERuntime([0, 47], config=CONF1)
        fast.run(fn)
        assert fast.sim.now < slow.sim.now

    def test_deadlock_detected(self):
        def fn(comm):
            # Everyone receives, nobody sends.
            yield from comm.recv()

        rt = RCCERuntime([0, 1])
        with pytest.raises(RuntimeError, match="deadlock"):
            rt.run(fn)


class TestTiming:
    def test_compute_advances_clock(self):
        def fn(comm):
            yield from comm.compute(0.25)
            return comm.wtime()

        rt = RCCERuntime([0])
        res = rt.run(fn)
        assert res[0].value == pytest.approx(0.25)

    def test_negative_compute_rejected(self):
        def fn(comm):
            yield from comm.compute(-1.0)

        rt = RCCERuntime([0])
        with pytest.raises(Exception):
            rt.run(fn)

    def test_makespan_is_slowest_ue(self):
        def fn(comm):
            yield from comm.compute(0.1 * (comm.ue + 1))

        rt = RCCERuntime([0, 1, 2])
        res = rt.run(fn)
        assert rt.makespan(res) == pytest.approx(0.3)

    def test_wtime_monotone(self):
        def fn(comm):
            t0 = comm.wtime()
            yield from comm.compute(1e-3)
            t1 = comm.wtime()
            return t1 > t0

        rt = RCCERuntime([0])
        assert rt.run(fn)[0].value is True

    def test_finish_times_recorded_per_ue(self):
        def fn(comm):
            yield from comm.compute(0.1 if comm.ue == 0 else 0.2)

        rt = RCCERuntime([0, 1])
        res = rt.run(fn)
        assert res[0].finish_time == pytest.approx(0.1)
        assert res[1].finish_time == pytest.approx(0.2)


class TestCommMetaDrift:
    """The pure metadata table in ``repro.rcce.comm_meta`` must match the
    real ``RCCEComm`` surface — the static analyzer decodes calls with
    it, so any drift silently breaks the DF50x provers."""

    def test_every_op_exists_with_declared_arg_positions(self):
        import inspect

        from repro.rcce.api import RCCEComm
        from repro.rcce.comm_meta import COMM_API, signature_table

        table = signature_table()
        for name in COMM_API:
            method = getattr(RCCEComm, name)
            params = [
                p
                for p in inspect.signature(method).parameters.values()
                if p.name != "self"
            ]
            for index, keyword in table[name]:
                assert index < len(params), f"{name}: no positional arg {index}"
                assert params[index].name == keyword, (
                    f"{name}: arg {index} is {params[index].name!r}, "
                    f"table says {keyword!r}"
                )

    def test_table_covers_every_generator_method(self):
        import inspect

        from repro.rcce.api import RCCEComm
        from repro.rcce.comm_meta import COMM_GEN_METHODS

        # p2p/local methods are written as generator functions; the
        # collectives delegate to repro.rcce.collectives generators —
        # both styles must be callable and listed in the table
        direct = {
            name
            for name, member in vars(RCCEComm).items()
            if not name.startswith("_") and inspect.isgeneratorfunction(member)
        }
        assert direct <= set(COMM_GEN_METHODS)
        for name in COMM_GEN_METHODS:
            assert callable(getattr(RCCEComm, name)), name

    def test_kinds_partition_the_api(self):
        from repro.rcce.comm_meta import (
            COLLECTIVE_METHODS,
            COMM_API,
            LOCAL_METHODS,
            P2P_METHODS,
        )

        union = COLLECTIVE_METHODS | P2P_METHODS | LOCAL_METHODS
        assert union == set(COMM_API)
        assert not (COLLECTIVE_METHODS & P2P_METHODS)
        assert not (COLLECTIVE_METHODS & LOCAL_METHODS)
        assert not (P2P_METHODS & LOCAL_METHODS)

    def test_tag_defaults_match_api(self):
        # send/send_async default to tag=0; recv defaults to wildcard
        import inspect

        from repro.rcce.api import RCCEComm

        assert inspect.signature(RCCEComm.send).parameters["tag"].default == 0
        assert inspect.signature(RCCEComm.send_async).parameters["tag"].default == 0
        assert inspect.signature(RCCEComm.recv).parameters["tag"].default is None
        assert inspect.signature(RCCEComm.recv).parameters["source"].default is None
