"""Timing semantics of the RCCE communication layer.

These tests pin the *quantitative* behaviour of the comm layer (the
other RCCE test modules pin functional behaviour): transfer times must
equal the documented MPB/mesh cost model exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rcce import MPB_BYTES_PER_CORE, RCCERuntime, chunked_transfer_time
from repro.scc import MeshNetwork


def p2p_time(cores, nbytes):
    """Simulated wall time of one send/recv pair of `nbytes` payload."""
    rt = RCCERuntime(cores)

    def fn(comm):
        if comm.ue == 0:
            yield from comm.send(np.zeros(nbytes // 8), dest=1)
        else:
            yield from comm.recv(source=0)

    rt.run(fn)
    return rt.sim.now, rt


class TestSendTiming:
    def test_send_time_equals_chunk_model(self):
        nbytes = 3 * MPB_BYTES_PER_CORE + 512
        t, rt = p2p_time([0, 47], nbytes)
        expected = chunked_transfer_time(rt.mesh, 0, 47, nbytes)
        assert t == pytest.approx(expected, rel=1e-9)

    def test_small_payload_single_chunk(self):
        t, rt = p2p_time([0, 47], 256)
        mesh = MeshNetwork(mesh_mhz=800)
        assert t == pytest.approx(mesh.core_message_time(0, 47, 256), rel=1e-9)

    def test_exact_mpb_multiple(self):
        nbytes = 2 * MPB_BYTES_PER_CORE
        t, rt = p2p_time([0, 1], nbytes)
        mesh = MeshNetwork(mesh_mhz=800)
        assert t == pytest.approx(
            2 * mesh.core_message_time(0, 1, MPB_BYTES_PER_CORE), rel=1e-9
        )

    def test_rendezvous_sender_waits_for_receiver(self):
        """A late receiver stalls the sender (synchronous semantics)."""
        rt = RCCERuntime([0, 1])

        def fn(comm):
            if comm.ue == 0:
                yield from comm.send(1.0, dest=1)
                return comm.wtime()
            yield from comm.compute(1e-3)  # receiver shows up late
            yield from comm.recv(source=0)
            return comm.wtime()

        res = rt.run(fn)
        # The sender cannot complete before the receiver arrived.
        assert res[0].value >= 1e-3

    def test_back_to_back_sends_accumulate(self):
        rt1 = RCCERuntime([0, 47])

        def one(comm):
            if comm.ue == 0:
                yield from comm.send(np.zeros(1024), dest=1)
            else:
                yield from comm.recv(source=0)

        rt1.run(one)

        rt2 = RCCERuntime([0, 47])

        def two(comm):
            if comm.ue == 0:
                for _ in range(2):
                    yield from comm.send(np.zeros(1024), dest=1)
            else:
                for _ in range(2):
                    yield from comm.recv(source=0)

        rt2.run(two)
        assert rt2.sim.now == pytest.approx(2 * rt1.sim.now, rel=1e-6)


class TestBarrierTiming:
    def test_barrier_deterministic(self):
        def fn(comm):
            yield from comm.barrier()

        times = []
        for _ in range(3):
            rt = RCCERuntime(list(range(16)))
            rt.run(fn)
            times.append(rt.sim.now)
        assert times[0] == times[1] == times[2]

    def test_two_barriers_cost_twice_one(self):
        def one(comm):
            yield from comm.barrier()

        def two(comm):
            yield from comm.barrier()
            yield from comm.barrier()

        rt1 = RCCERuntime(list(range(8)))
        rt1.run(one)
        rt2 = RCCERuntime(list(range(8)))
        rt2.run(two)
        assert rt2.sim.now == pytest.approx(2 * rt1.sim.now, rel=1e-6)

    def test_compact_mapping_barrier_cheaper_than_spread(self):
        """Barrier cost follows mesh distance: same-quadrant UEs beat
        chip-diagonal UEs."""
        def fn(comm):
            yield from comm.barrier()

        compact = RCCERuntime([0, 1, 2, 3])
        compact.run(fn)
        spread = RCCERuntime([0, 10, 36, 46])
        spread.run(fn)
        assert compact.sim.now < spread.sim.now
