"""Vectorized feature kernels vs naive references + invariance properties.

The ``mode="predict"`` extractor (:mod:`repro.sparse.stats`,
:mod:`repro.sparse.features`) replaces every per-row Python loop with
NumPy passes; these tests pin each kernel to a deliberately naive
pure-Python reference on a spread of shapes (banded, power-law,
uniform, empty-row-heavy, tiny), then check the two properties the
feature catalogue documents: the row-length histogram is invariant
under row/column permutations, while the bandwidth/profile features
*detect* reorderings — that asymmetry is what makes the vector useful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix, banded, power_law, random_uniform
from repro.sparse.features import (
    FEATURE_NAMES,
    matrix_features,
    partition_features,
    point_features,
)
from repro.sparse.partition import partition_rows_balanced
from repro.sparse.stats import (
    ROW_LENGTH_EDGES,
    bandwidth_stats,
    block_density,
    partition_spans,
    reuse_proxies,
    row_extents,
    row_length_histogram,
)


def _matrices():
    rng = np.random.default_rng(0)
    mats = [
        banded(200, 6.0, 9, seed=3),
        power_law(150, 5.0, alpha=1.2, seed=5),
        random_uniform(120, 4.0, seed=8),
    ]
    # empty-row-heavy: rows with no nonzeros stress every boundary case
    # (reduceat fills, boundary-gap dedup, histogram bucket 0).
    dense = np.zeros((60, 60))
    for r in range(0, 60, 3):
        cols = rng.choice(60, size=rng.integers(1, 6), replace=False)
        dense[r, cols] = 1.0
    mats.append(CSRMatrix.from_dense(dense))
    # single nonzero and single row
    mats.append(CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]])))
    mats.append(CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0, 3.0]])))
    return mats


@pytest.fixture(scope="module", params=range(6), ids=lambda i: f"mat{i}")
def mat(request) -> CSRMatrix:
    return _matrices()[request.param]


# -- naive references ------------------------------------------------------


def _rows_cols(a: CSRMatrix):
    out = []
    for r in range(a.n_rows):
        out.append([int(c) for c in a.index[a.ptr[r] : a.ptr[r + 1]]])
    return out


def test_row_extents_matches_reference(mat):
    row_min, row_max, lengths = row_extents(mat)
    for r, cols in enumerate(_rows_cols(mat)):
        assert lengths[r] == len(cols)
        if cols:
            assert row_min[r] == min(cols)
            assert row_max[r] == max(cols)
        else:
            assert row_min[r] == np.inf and row_max[r] == -np.inf


def test_row_length_histogram_matches_reference(mat):
    hist = row_length_histogram(mat)
    counts = [0] * (len(ROW_LENGTH_EDGES) + 1)
    for cols in _rows_cols(mat):
        counts[sum(1 for e in ROW_LENGTH_EDGES if e < len(cols))] += 1
    assert np.allclose(hist, np.asarray(counts) / mat.n_rows)
    assert hist.sum() == pytest.approx(1.0)


def test_bandwidth_stats_matches_reference(mat):
    bw = bandwidth_stats(mat)
    n = max(mat.n_cols, 1)
    dists, spans = [], []
    for r, cols in enumerate(_rows_cols(mat)):
        dists.extend(abs(c - r) for c in cols)
        if cols:
            spans.append(max(cols) - min(cols) + 1)
    if not dists:
        assert bw == {
            "mean_dist": 0.0, "max_dist": 0.0, "band_mean": 0.0, "profile_frac": 0.0
        }
        return
    assert bw["mean_dist"] == pytest.approx(np.mean(dists) / n)
    assert bw["max_dist"] == pytest.approx(max(dists) / n)
    assert bw["band_mean"] == pytest.approx(np.mean(spans) / n)
    assert bw["profile_frac"] == pytest.approx(sum(spans) / (n * mat.n_rows))


def test_block_density_matches_reference(mat):
    b = 16
    bd = block_density(mat, blocks=b)
    if mat.nnz == 0:
        assert bd == {"fill": 0.0, "cv": 0.0}
        return
    blocks, stripe = set(), [0.0] * b
    for r, cols in enumerate(_rows_cols(mat)):
        rb = r * b // mat.n_rows
        stripe[rb] += len(cols)
        for c in cols:
            blocks.add((rb, min(c * b // mat.n_cols, b - 1)))
    stripe_arr = np.asarray(stripe)
    assert bd["fill"] == pytest.approx(len(blocks) / (b * b))
    assert bd["cv"] == pytest.approx(stripe_arr.std() / stripe_arr.mean())


def test_reuse_proxies_matches_reference(mat):
    ru = reuse_proxies(mat, line_elems=8)
    if mat.nnz == 0:
        assert ru == {"col_reuse": 1.0, "line_reuse": 1.0, "adj_gap": 0.0}
        return
    all_cols = [c for cols in _rows_cols(mat) for c in cols]
    gaps = [
        abs(cols[i + 1] - cols[i])
        for cols in _rows_cols(mat)
        for i in range(len(cols) - 1)
    ]
    assert ru["col_reuse"] == pytest.approx(mat.nnz / max(len(set(all_cols)), 1))
    assert ru["line_reuse"] == pytest.approx(
        mat.nnz / max(len({c // 8 for c in all_cols}), 1)
    )
    expect_gap = (np.mean(gaps) / 8.0) if gaps else 0.0
    assert ru["adj_gap"] == pytest.approx(expect_gap)


def test_partition_spans_matches_reference(mat):
    for n_parts in (1, 2, 3, 5):
        if n_parts > mat.n_rows:
            continue
        part = partition_rows_balanced(mat, n_parts)
        spans = partition_spans(mat, part)
        rows = _rows_cols(mat)
        for k, (r0, r1) in enumerate(part.ranges()):
            cols = [c for r in range(r0, r1) for c in rows[r]]
            expect = (max(cols) - min(cols) + 1) if cols else 0.0
            assert spans[k] == pytest.approx(expect)


# -- permutation properties ------------------------------------------------


def _permute(a: CSRMatrix, rng, rows=True, cols=True) -> CSRMatrix:
    dense = a.to_dense()
    if rows:
        dense = dense[rng.permutation(a.n_rows)]
    if cols:
        dense = dense[:, rng.permutation(a.n_cols)]
    return CSRMatrix.from_dense(dense)


def test_row_length_histogram_permutation_invariant():
    rng = np.random.default_rng(17)
    a = power_law(150, 5.0, alpha=1.2, seed=5)
    for _ in range(3):
        b = _permute(a, rng, rows=True, cols=True)
        assert np.allclose(row_length_histogram(a), row_length_histogram(b))


def test_bandwidth_stats_detects_reordering():
    # A narrow band scattered by a random column permutation must show a
    # much larger mean diagonal distance — the feature's whole purpose.
    rng = np.random.default_rng(23)
    a = banded(300, 6.0, 7, seed=3)
    scattered = _permute(a, rng, rows=False, cols=True)
    assert (
        bandwidth_stats(scattered)["mean_dist"]
        > 5 * bandwidth_stats(a)["mean_dist"]
    )


# -- assembled vector ------------------------------------------------------


def test_feature_vector_layout_and_determinism():
    from repro.machine.registry import get_machine

    a = banded(200, 6.0, 9, seed=3)
    machine = get_machine("scc-48")
    config = machine.presets["conf0"]
    mf = matrix_features(a)
    part = partition_rows_balanced(a, 4)
    pf = partition_features(a, part, mf)
    core_map = list(range(4))
    v1 = point_features(mf, pf, machine, config, core_map, "csr", 4)
    v2 = point_features(mf, pf, machine, config, core_map, "csr", 4)
    assert v1.shape == (len(FEATURE_NAMES),)
    assert np.array_equal(v1, v2)
    assert np.all(np.isfinite(v1))


def test_matrix_features_memo_is_identity_keyed():
    a = banded(100, 4.0, 5, seed=1)
    b = banded(100, 4.0, 5, seed=1)
    mf_a = matrix_features(a)
    assert matrix_features(a) is mf_a  # same object: memo hit
    assert matrix_features(b) is not mf_a  # equal content, distinct object
    assert np.array_equal(matrix_features(b).vector, mf_a.vector)
