"""Tests for fault plans and the deterministic injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, derive_seed
from repro.faults.plan import (
    EXAMPLE_PLANS,
    CoreFailure,
    CoreStall,
    FaultPlan,
    LinkDegradation,
    McStallBurst,
    get_plan,
    load_plan,
)
from repro.sim import Simulator


class TestPlanValidation:
    def test_default_plan_is_faultless(self):
        assert FaultPlan().is_faultless

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.5, duplicate_rate=0.3, corrupt_rate=0.3)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(n_random_failures=-1)
        with pytest.raises(ValueError):
            FaultPlan(n_random_stalls=-1)

    def test_windows_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(failure_window=(1.0, 0.5))
        with pytest.raises(ValueError):
            FaultPlan(stall_window=(-1.0, 0.5))

    def test_explicit_failure_of_protected_ue_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(core_failures=(CoreFailure(0, 1e-4),))
        # non-protected explicit failure is fine
        FaultPlan(core_failures=(CoreFailure(3, 1e-4),))

    def test_component_validation(self):
        with pytest.raises(ValueError):
            CoreFailure(-1, 0.0)
        with pytest.raises(ValueError):
            CoreStall(0, 0.0, 0.0)
        with pytest.raises(ValueError):
            McStallBurst(0.5, 0.5, 2.0)
        with pytest.raises(ValueError):
            McStallBurst(0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            LinkDegradation((0, 0), (1, 0), 0.9)

    def test_with_seed(self):
        plan = get_plan("lossy").with_seed(99)
        assert plan.seed == 99
        assert plan.drop_rate == get_plan("lossy").drop_rate


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        plan = EXAMPLE_PLANS["chaos"]
        path = tmp_path / "plan.json"
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"drop_rte": 0.1})

    def test_bad_json_reported_with_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            FaultPlan.from_file(path)

    def test_load_plan_resolves_names_and_files(self, tmp_path):
        assert load_plan("crash") is EXAMPLE_PLANS["crash"]
        path = tmp_path / "custom.json"
        get_plan("lossy").to_file(path)
        assert load_plan(str(path)) == get_plan("lossy")
        with pytest.raises(ValueError, match="neither a named plan"):
            load_plan("no-such-plan")


class TestInjectorDeterminism:
    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(7, "messages") == derive_seed(7, "messages")
        assert derive_seed(7, "messages") != derive_seed(7, "payloads")
        assert derive_seed(7, "messages") != derive_seed(8, "messages")

    def test_resolved_schedules_replay_identically(self):
        plan = get_plan("chaos")
        a = FaultInjector(plan, 8, Simulator())
        b = FaultInjector(plan, 8, Simulator())
        assert a.core_failures() == b.core_failures()
        assert a.core_stalls() == b.core_stalls()

    def test_different_seed_different_schedule(self):
        plan = get_plan("crash")
        a = FaultInjector(plan, 8, Simulator())
        b = FaultInjector(plan.with_seed(999), 8, Simulator())
        assert a.core_failures() != b.core_failures()

    def test_random_failures_never_hit_protected_ues(self):
        plan = FaultPlan(seed=1, n_random_failures=7, protected_ues=(0,))
        inj = FaultInjector(plan, 8, Simulator())
        failed = [ue for ue, _t in inj.core_failures()]
        assert 0 not in failed
        assert len(failed) == 7  # everyone else dies

    def test_message_fate_stream_replays(self):
        plan = get_plan("lossy")
        a = FaultInjector(plan, 4, Simulator())
        b = FaultInjector(plan, 4, Simulator())
        fates_a = [a.message_fate(0, 1, 0, 0.0) for _ in range(200)]
        fates_b = [b.message_fate(0, 1, 0, 0.0) for _ in range(200)]
        assert fates_a == fates_b
        assert {"drop", "duplicate", "corrupt"} & set(fates_a)

    def test_faultless_plan_never_touches_rng(self):
        inj = FaultInjector(FaultPlan(), 4, Simulator())
        assert all(
            inj.message_fate(0, 1, 0, 0.0) == "deliver" for _ in range(50)
        )
        assert inj.events == []


class TestCorruption:
    def _injector(self):
        return FaultInjector(get_plan("lossy"), 4, Simulator())

    def test_ndarray_corruption_changes_one_element(self):
        inj = self._injector()
        arr = np.ones(16)
        out = inj.corrupt_payload(arr)
        assert out is not arr and (out != arr).sum() == 1
        assert np.array_equal(arr, np.ones(16))  # original untouched

    def test_scalar_and_container_corruption_changes_value(self):
        inj = self._injector()
        assert inj.corrupt_payload(42) != 42
        assert inj.corrupt_payload(1.5) != 1.5
        assert inj.corrupt_payload(True) is False
        assert inj.corrupt_payload(b"abc") != b"abc"
        assert inj.corrupt_payload("tag") != "tag"
        t = ("work", 3, 5)
        assert inj.corrupt_payload(t) != t

    def test_unknown_object_wrapped_not_dropped(self):
        inj = self._injector()
        out = inj.corrupt_payload(object())
        assert out[0] == "__corrupted__"


class TestStalls:
    def test_stalls_consumed_once(self):
        plan = FaultPlan(core_stalls=(CoreStall(1, 1e-5, 2e-4),))
        inj = FaultInjector(plan, 4, Simulator())
        assert inj.consume_stalls(1, 0.0, 1e-3) == pytest.approx(2e-4)
        assert inj.consume_stalls(1, 0.0, 1e-3) == 0.0
        assert inj.consume_stalls(0, 0.0, 1e-3) == 0.0

    def test_stall_outside_window_waits(self):
        plan = FaultPlan(core_stalls=(CoreStall(0, 5e-3, 1e-4),))
        inj = FaultInjector(plan, 2, Simulator())
        assert inj.consume_stalls(0, 0.0, 1e-4) == 0.0
        assert inj.consume_stalls(0, 5e-3, 1e-4) == pytest.approx(1e-4)
