"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import SimulationError, Simulator


class TestSimulatorBasics:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_advances_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        assert sim.run() == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.timeout(-0.5)

    def test_empty_run_is_noop(self):
        sim = Simulator()
        assert sim.run() == 0.0
        assert sim.empty()

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.peek() == 1.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for t in (3.0, 1.0, 2.0):
            sim.schedule(t, lambda t=t: order.append(t))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for k in range(10):
            sim.schedule(1.0, lambda k=k: order.append(k))
        sim.run()
        assert order == list(range(10))

    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(2.0, lambda: seen.append(("inner", sim.now)))
        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_events_handled_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_handled == 5

    def test_runaway_guard(self):
        sim = Simulator()
        def reschedule():
            sim.schedule(0.0, reschedule)
        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run(max_events=100)


class TestSimEvent:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event("e")
        got = []
        ev.add_callback(got.append)
        ev.succeed(42)
        assert got == [42]
        assert ev.triggered
        assert ev.value == 42

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_late_callback_fires_via_scheduler(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        got = []
        ev.add_callback(got.append)
        assert got == []  # deferred, not synchronous
        sim.run()
        assert got == ["x"]

    def test_timeout_delivers_value(self):
        sim = Simulator()
        ev = sim.timeout(2.0, value="payload")
        got = []
        ev.add_callback(got.append)
        sim.run()
        assert got == ["payload"]
        assert sim.now == 2.0

    def test_multiple_callbacks_all_fire(self):
        sim = Simulator()
        ev = sim.timeout(1.0, value=7)
        got = []
        for _ in range(3):
            ev.add_callback(got.append)
        sim.run()
        assert got == [7, 7, 7]

    def test_zero_delay_timeout(self):
        sim = Simulator()
        ev = sim.timeout(0.0, value=1)
        sim.run()
        assert ev.triggered
        assert sim.now == 0.0
