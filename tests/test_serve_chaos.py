"""Chaos tests of the campaign server (the ``repro chaos --serve`` leg).

Worker SIGKILLs, poison points and store bit flips land on a live
server; the PR 7 ladder semantics must hold end to end: in-flight jobs
complete or quarantine, quarantines are never persisted (so they retry
on resubmission), and the server process never dies.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.supervise import CHAOS_ENV, SupervisePolicy
from repro.core.parallel import fork_context
from repro.faults.chaos import chaos_main
from repro.serve import CampaignServer, CampaignSpec, ServeClient
from repro.serve.protocol import point_store_key

pytestmark = pytest.mark.skipif(
    fork_context() is None,
    reason="chaos injection needs fork-pool workers to kill",
)

SCALE = 0.05
ITERATIONS = 2

FAST_POLICY = SupervisePolicy(
    task_timeout=10.0, max_retries=2, backoff_base=0.01, on_failure="quarantine"
)


def _spec(core_counts=(1, 4)):
    return CampaignSpec(
        ids=(24,),
        core_counts=tuple(core_counts),
        scale=SCALE,
        iterations=ITERATIONS,
        mode="model",
    )


@pytest.fixture()
def chaos_env(monkeypatch):
    """Set the chaos schedule via env (workers inherit it at fork)."""

    def apply(schedule: dict) -> None:
        monkeypatch.setenv(CHAOS_ENV, json.dumps(schedule))

    yield apply
    monkeypatch.delenv(CHAOS_ENV, raising=False)


def test_transient_worker_kill_mid_job_recovers(tmp_path, chaos_env):
    spec = _spec()
    victim = spec.points()[0].key()
    chaos_env({victim: {"action": "kill", "attempts": [1]}})
    server = CampaignServer(tmp_path / "serve-data", workers=2, policy=FAST_POLICY)
    server.start()
    try:
        client = ServeClient(server.url)
        result = client.wait(
            str(client.submit(spec)["job_id"]), timeout=300.0
        )
        assert result["quarantined"] == 0
        assert all(r["status"] == "ok" for r in result["records"])
        metrics = client.metrics()
        assert metrics["supervise"]["worker_crashes"] >= 1
        assert metrics["worker_health"]["failures"].get("crash", 0) >= 1
        assert client.healthz()["ok"] is True
    finally:
        server.stop()


def test_poison_point_quarantines_and_stays_retryable(tmp_path, chaos_env, monkeypatch):
    spec = _spec()
    poison = spec.points()[1].key()
    chaos_env({poison: {"action": "kill", "attempts": "all"}})
    server = CampaignServer(tmp_path / "serve-data", workers=2, policy=FAST_POLICY)
    server.start()
    try:
        client = ServeClient(server.url)
        result = client.wait(str(client.submit(spec)["job_id"]), timeout=300.0)
        assert result["quarantined"] == 1
        statuses = [r["status"] for r in result["records"]]
        assert statuses.count("quarantined") == 1
        # The quarantine was not persisted: only the survivor is stored.
        assert client.healthz()["store_entries"] == len(spec.points()) - 1
        assert client.metrics()["worker_health"]["quarantined"] == 1

        # Clear the chaos; resubmission retries exactly the poison point.
        monkeypatch.delenv(CHAOS_ENV)
        retry = client.wait(str(client.submit(spec)["job_id"]), timeout=300.0)
        assert retry["quarantined"] == 0
        assert retry["simulated"] == 1
        assert retry["dedup_hits"] == len(spec.points()) - 1
        assert all(r["status"] == "ok" for r in retry["records"])
        assert client.healthz()["ok"] is True
    finally:
        server.stop()


def test_bitflipped_store_entry_is_requarantined_and_resimulated(tmp_path):
    spec = _spec()
    server = CampaignServer(tmp_path / "serve-data", workers=2, policy=FAST_POLICY)
    server.start()
    try:
        client = ServeClient(server.url)
        first = client.wait(str(client.submit(spec)["job_id"]), timeout=300.0)

        target = spec.points()[0]
        path = server.store.path_for(
            point_store_key(target, spec.context()), "json"
        )
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))

        second = client.wait(str(client.submit(spec)["job_id"]), timeout=300.0)
        assert second["simulated"] == 1  # only the corrupted point
        assert second["dedup_hits"] == len(spec.points()) - 1
        assert [json.dumps(r, sort_keys=True) for r in second["records"]] == [
            json.dumps(r, sort_keys=True) for r in first["records"]
        ]
        health = client.healthz()
        assert health["ok"] is True
        assert health["store_corrupt"] == 1
    finally:
        server.stop()


def test_chaos_cli_serve_scenario_holds_every_invariant(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = chaos_main(
        [
            "--serve",
            "--seed",
            "0",
            "--scale",
            "0.05",
            "--iterations",
            "2",
            "--skip-store-leg",
            "--json",
            "--output",
            str(tmp_path / "chaos.json"),
        ]
    )
    assert rc == 0
    report = json.loads((tmp_path / "chaos.json").read_text())
    assert report["ok"] is True
    assert report["serve_leg"]["poison"] == report["serve_leg"]["quarantined"]
    assert report["serve_leg"]["resubmit"]["quarantined"] == 0
    assert os.path.exists(tmp_path / "chaos.json")
