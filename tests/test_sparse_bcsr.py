"""Tests for the BCSR register-blocking format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix, banded, block_diagonal, random_uniform
from repro.sparse.bcsr import BCSRMatrix, bcsr_traffic_bytes, csr_traffic_bytes


@pytest.fixture(scope="module")
def blocky():
    return block_diagonal(240, 8, 0.7, seed=41)


class TestConstruction:
    def test_from_csr_roundtrip(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 4, 4)
        assert b.to_csr().allclose(blocky)

    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (2, 4), (4, 2), (3, 3)])
    def test_roundtrip_all_shapes(self, r, c):
        a = random_uniform(100, 5.0, seed=42)
        b = BCSRMatrix.from_csr(a, r, c)
        assert b.to_csr().allclose(a)

    def test_roundtrip_when_n_not_block_multiple(self):
        a = random_uniform(101, 4.0, seed=43)  # 101 % 4 != 0
        b = BCSRMatrix.from_csr(a, 4, 4)
        assert b.to_csr().allclose(a)

    def test_1x1_blocks_equal_csr(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 1, 1)
        assert b.n_blocks == blocky.nnz
        assert b.fill_ratio() == pytest.approx(1.0)

    def test_invalid_block_shape(self, blocky):
        with pytest.raises(ValueError):
            BCSRMatrix.from_csr(blocky, 0, 2)

    def test_validation_of_raw_arrays(self):
        with pytest.raises(ValueError):
            BCSRMatrix(
                np.array([0, 1]),
                np.array([0], dtype=np.int32),
                np.zeros((2, 2, 2)),  # wrong block count
                2, 2, 2, 2,
            )

    def test_empty_matrix(self):
        a = CSRMatrix(np.zeros(5, np.int64), np.empty(0, np.int32), np.empty(0), n_cols=4)
        b = BCSRMatrix.from_csr(a, 2, 2)
        assert b.n_blocks == 0
        assert b.spmv(np.ones(4)).tolist() == [0.0] * 4


class TestFillRatio:
    def test_block_matrix_fills_well(self, blocky):
        aligned = BCSRMatrix.from_csr(blocky, 4, 4)
        assert aligned.fill_ratio() < 2.5

    def test_scattered_matrix_fills_poorly(self):
        scattered = random_uniform(240, 6.0, seed=44)
        b = BCSRMatrix.from_csr(scattered, 4, 4)
        assert b.fill_ratio() > 5.0

    def test_bigger_blocks_more_fill_on_scattered(self):
        scattered = random_uniform(240, 6.0, seed=44)
        small = BCSRMatrix.from_csr(scattered, 2, 2)
        big = BCSRMatrix.from_csr(scattered, 8, 8)
        assert big.fill_ratio() > small.fill_ratio()


class TestSpMV:
    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (4, 4), (2, 8)])
    def test_matches_csr_product(self, blocky, r, c):
        x = np.random.default_rng(5).uniform(size=blocky.n_cols)
        b = BCSRMatrix.from_csr(blocky, r, c)
        np.testing.assert_allclose(b.spmv(x), blocky.to_scipy() @ x, rtol=1e-10)

    def test_non_multiple_dimension(self):
        a = banded(97, 5.0, 6, seed=45)
        b = BCSRMatrix.from_csr(a, 4, 4)
        x = np.random.default_rng(6).uniform(size=97)
        np.testing.assert_allclose(b.spmv(x), a.to_scipy() @ x, rtol=1e-10)

    def test_wrong_x_shape(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 2, 2)
        with pytest.raises(ValueError):
            b.spmv(np.ones(blocky.n_cols + 1))


class TestTrafficModel:
    def test_csr_traffic_formula(self):
        assert csr_traffic_bytes(1000, 100) == 12 * 1000 + 12 * 100 + 4
        with pytest.raises(ValueError):
            csr_traffic_bytes(-1, 0)

    def test_blocking_saves_traffic_on_blocky_matrix(self, blocky):
        b = BCSRMatrix.from_csr(blocky, 4, 4)
        assert bcsr_traffic_bytes(b) < csr_traffic_bytes(blocky.nnz, blocky.n_rows)

    def test_blocking_wastes_traffic_on_scattered_matrix(self):
        scattered = random_uniform(240, 6.0, seed=44)
        b = BCSRMatrix.from_csr(scattered, 4, 4)
        assert bcsr_traffic_bytes(b) > csr_traffic_bytes(scattered.nnz, scattered.n_rows)
