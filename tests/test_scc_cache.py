"""Tests for the exact set-associative cache simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scc import Cache, CacheHierarchy
from repro.scc.cache import _PLRUTree


class TestPLRUTree:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            _PLRUTree(3)

    def test_plru_artifact_after_partial_touch(self):
        # Touch ways 0,1,2: the root points away from 2 (left half) and
        # the left node away from 1, so tree-PLRU victimizes way 0 even
        # though way 3 was never touched — the classic PLRU != LRU case.
        tree = _PLRUTree(4)
        for way in (0, 1, 2):
            tree.touch(way)
        assert tree.victim() == 0

    def test_agrees_with_lru_on_full_round(self):
        tree = _PLRUTree(4)
        for way in (0, 1, 2, 3):
            tree.touch(way)
        assert tree.victim() == 0

    def test_victim_never_most_recently_touched(self):
        tree = _PLRUTree(4)
        rng = np.random.default_rng(5)
        for way in rng.integers(0, 4, size=100):
            tree.touch(int(way))
            assert tree.victim() != way

    def test_victim_rotates_under_round_robin_touches(self):
        tree = _PLRUTree(4)
        seen = set()
        for _ in range(8):
            v = tree.victim()
            seen.add(v)
            tree.touch(v)
        assert seen == {0, 1, 2, 3}

    def test_two_way(self):
        tree = _PLRUTree(2)
        tree.touch(0)
        assert tree.victim() == 1
        tree.touch(1)
        assert tree.victim() == 0


class TestCacheGeometry:
    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=0)
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, assoc=3, line_bytes=32)  # not divisible

    def test_default_is_scc_l2(self):
        c = Cache()
        assert c.size_bytes == 256 * 1024
        assert c.assoc == 4
        assert c.line_bytes == 32
        assert c.n_sets == 2048
        assert c.n_lines == 8192


class TestCacheBehaviour:
    def test_first_access_misses_second_hits(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(31) is True  # same line
        assert c.access(32) is False  # next line

    def test_stats_track_hits_and_misses(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        for addr in (0, 0, 64, 0, 64):
            c.access(addr)
        assert c.stats.misses == 2
        assert c.stats.hits == 3
        assert c.stats.accesses == 5
        assert c.stats.miss_ratio == pytest.approx(0.4)

    def test_capacity_eviction(self):
        # 4 lines total (1 set of 4 ways): the 5th distinct line evicts.
        c = Cache(size_bytes=128, assoc=4, line_bytes=32)
        for i in range(5):
            c.access(i * 32 * c.n_sets)  # all map to set 0
        assert c.stats.evictions == 1

    def test_lru_like_retention(self):
        """Recently touched lines survive; the stale one is evicted."""
        c = Cache(size_bytes=128, assoc=4, line_bytes=32)
        lines = [i * 32 for i in range(4)]
        for a in lines:
            c.access(a)
        # Touch lines 1..3 again, then insert a new line: line 0 is victim.
        for a in lines[1:]:
            c.access(a)
        c.access(4 * 32)
        assert c.access(lines[1]) is True
        assert c.access(lines[2]) is True
        assert c.access(lines[3]) is True
        assert c.access(lines[0]) is False  # was evicted

    def test_writeback_on_dirty_eviction(self):
        c = Cache(size_bytes=128, assoc=4, line_bytes=32)
        c.access(0, write=True)
        for i in range(1, 5):
            c.access(i * 32)
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache(size_bytes=128, assoc=4, line_bytes=32)
        for i in range(5):
            c.access(i * 32)
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 0

    def test_flush_writes_back_dirty_lines(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        c.access(0, write=True)
        c.access(64, write=True)
        c.access(128)
        assert c.flush() == 2
        assert c.access(0) is False  # everything invalidated

    def test_access_trace_counts_misses(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        addrs = np.array([0, 32, 0, 32, 64])
        assert c.access_trace(addrs) == 3

    def test_access_trace_write_shape_mismatch(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        with pytest.raises(ValueError):
            c.access_trace(np.array([0, 32]), writes=np.array([True]))

    def test_streaming_misses_every_line(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        n_lines = 100
        addrs = np.arange(n_lines) * 32
        assert c.access_trace(addrs) == n_lines

    def test_contains_line(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        c.access(96)
        assert c.contains_line(3)
        assert not c.contains_line(4)

    def test_small_loop_fits(self):
        """A loop over a footprint smaller than capacity only cold-misses."""
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)  # 32 lines
        addrs = np.tile(np.arange(16) * 32, 10)
        misses = c.access_trace(addrs)
        assert misses == 16


class TestCacheEdgeCases:
    def test_empty_trace_is_a_noop(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        assert c.access_trace(np.empty(0, dtype=np.int64)) == 0
        assert c.stats.accesses == 0

    def test_store_miss_write_allocates_dirty(self):
        # A write miss allocates the line dirty: evicting it later must
        # count a writeback even though it was never re-written.
        c = Cache(size_bytes=128, assoc=4, line_bytes=32)  # 1 set
        c.access(0, write=True)  # miss + allocate dirty
        assert c.stats.writebacks == 0
        for i in range(1, 5):
            c.access(i * 32)
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 1

    def test_read_after_write_keeps_line_dirty(self):
        c = Cache(size_bytes=128, assoc=4, line_bytes=32)
        c.access(0, write=True)
        c.access(0)  # read hit must not clean the line
        for i in range(1, 5):
            c.access(i * 32)
        assert c.stats.writebacks == 1

    def test_flush_twice_writes_back_once(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        c.access(0, write=True)
        assert c.flush() == 1
        assert c.flush() == 0  # already clean and invalid

    def test_stats_after_flush_keep_accumulating(self):
        c = Cache(size_bytes=1024, assoc=4, line_bytes=32)
        c.access(0)
        c.flush()
        c.access(0)
        assert c.stats.misses == 2


class TestCacheHierarchy:
    def test_levels_reported(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=512, assoc=4, line_bytes=32)
        assert h.access(0) == "mem"
        assert h.access(0) == "l1"

    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=1024, assoc=4, line_bytes=32)
        # Fill L1 (4 lines) plus one: line 0 falls to L2 but stays there.
        for i in range(5):
            h.access(i * 32)
        assert h.access(0) == "l2"

    def test_disabled_l2_goes_to_memory(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=1024, assoc=4, line_bytes=32, l2_enabled=False)
        assert h.l2 is None
        for i in range(5):
            h.access(i * 32)
        assert h.access(0) == "mem"

    def test_access_trace_counts(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=1024, assoc=4, line_bytes=32)
        addrs = np.array([0, 0, 32, 64, 96, 128, 0])
        counts = h.access_trace(addrs)
        assert counts["l1"] + counts["l2"] + counts["mem"] == len(addrs)
        assert counts["mem"] == 5  # five distinct lines, all cold

    def test_flush_resets_both_levels(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=512, assoc=4, line_bytes=32)
        h.access(0)
        h.flush()
        assert h.access(0) == "mem"

    def test_access_trace_write_shape_mismatch(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=512, assoc=4, line_bytes=32)
        with pytest.raises(ValueError):
            h.access_trace(np.array([0, 32]), writes=np.array([True]))

    def test_access_trace_empty(self):
        h = CacheHierarchy(l1_bytes=128, l2_bytes=512, assoc=4, line_bytes=32)
        counts = h.access_trace(np.empty(0, dtype=np.int64))
        assert counts == {"l1": 0, "l2": 0, "mem": 0}
