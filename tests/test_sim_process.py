"""Tests for generator-based processes."""

from __future__ import annotations

import pytest

from repro.sim import Process, ProcessFailure, SimulationError, Simulator


def test_process_runs_to_completion():
    sim = Simulator()
    log = []

    def proc(sim):
        log.append(("start", sim.now))
        yield sim.timeout(1.5)
        log.append(("mid", sim.now))
        yield sim.timeout(2.5)
        log.append(("end", sim.now))
        return "done"

    p = Process(sim, proc(sim), name="p")
    sim.run()
    assert p.finished
    assert p.done.value == "done"
    assert log == [("start", 0.0), ("mid", 1.5), ("end", 4.0)]


def test_return_value_none_by_default():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = Process(sim, proc(sim))
    sim.run()
    assert p.done.value is None


def test_processes_interleave():
    sim = Simulator()
    log = []

    def proc(sim, name, dt):
        for i in range(3):
            yield sim.timeout(dt)
            log.append((name, sim.now))

    Process(sim, proc(sim, "a", 1.0))
    Process(sim, proc(sim, "b", 1.5))
    sim.run()
    # At the t=3.0 tie, b's timeout was scheduled earlier (at t=1.5)
    # than a's (at t=2.0), so b fires first.
    assert log == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5),
    ]


def test_timeout_value_received_by_send():
    sim = Simulator()
    got = []

    def proc(sim):
        v = yield sim.timeout(1.0, value="hello")
        got.append(v)

    Process(sim, proc(sim))
    sim.run()
    assert got == ["hello"]


def test_process_waits_on_another_process():
    sim = Simulator()
    order = []

    def worker(sim):
        yield sim.timeout(3.0)
        order.append("worker")
        return 99

    def waiter(sim, target):
        v = yield target.done
        order.append(("waiter", v, sim.now))

    w = Process(sim, worker(sim), name="worker")
    Process(sim, waiter(sim, w), name="waiter")
    sim.run()
    assert order == ["worker", ("waiter", 99, 3.0)]


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    Process(sim, bad(sim), name="bad")
    with pytest.raises((SimulationError, ProcessFailure)):
        sim.run()


def test_exception_in_process_surfaces_as_failure():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    p = Process(sim, boom(sim), name="boom")
    with pytest.raises(ProcessFailure) as exc_info:
        sim.run()
    assert isinstance(exc_info.value.cause, ValueError)
    assert exc_info.value.process is p


def test_immediate_return_process():
    sim = Simulator()

    def instant(sim):
        return "now"
        yield  # pragma: no cover - makes it a generator

    p = Process(sim, instant(sim))
    sim.run()
    assert p.done.value == "now"
    assert sim.now == 0.0


def test_creation_order_decides_ties():
    sim = Simulator()
    order = []

    def proc(sim, name):
        order.append(name)
        yield sim.timeout(0.0)

    for name in ("first", "second", "third"):
        Process(sim, proc(sim, name))
    sim.run()
    assert order == ["first", "second", "third"]
