"""Fixture: host wall-clock consulted inside simulated code (DET201)."""

import time


def program(comm):
    t0 = time.time()  # host clock, not simulated time
    yield from comm.compute(1e-6)
    elapsed = time.perf_counter() - t0
    return elapsed
