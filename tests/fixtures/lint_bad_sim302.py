"""Fixture: yielding non-SimEvent values to the engine (SIM302)."""


def program(comm):
    yield comm.compute(1e-6)  # generator, not SimEvent: use `yield from`
    yield 5                   # plain value: engine raises
    yield                     # bare yield delivers None
