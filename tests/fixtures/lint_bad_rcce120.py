"""Fixture: payload bigger than the 8 KB MPB on a non-chunked path (RCCE120)."""

import numpy as np


def program(comm, onesided, window):
    # 2048 float64 = 16 KB: twice the per-core MPB, unchunked.
    yield from onesided.put(comm.ue, 1, 0, np.zeros(2048))
    window.write(0, bytes(10000))
    yield from comm.barrier()
