"""Fixture: unbounded recv in a program that uses the fault stack (RCCE130)."""

from repro.faults import FaultPlan, ReliableComm


def program(comm):
    rcomm = ReliableComm(comm)
    plan = FaultPlan(drop_rate=0.1)
    # unbounded: hangs forever if the peer crashed or the message dropped
    data = yield from comm.recv(1, 0)
    more = yield from rcomm.recv(1, tag=0)
    # bounded receives are the fault-tolerant idiom and must not fire
    safe = yield from comm.recv(1, 0, timeout=1e-3)
    also_safe = yield from rcomm.recv(1, tag=0, timeout=1e-3)
    return (plan, data, more, safe, also_safe)
