"""Fixture: a correct SPMD program no rule should fire on."""

import numpy as np


def program(comm, rng_seed=7):
    rng = np.random.default_rng(rng_seed)
    payload = rng.uniform(size=16)
    right = (comm.ue + 1) % comm.num_ues
    left = (comm.ue - 1) % comm.num_ues
    if comm.ue % 2 == 0:  # symmetry break: p2p only, no collectives
        yield from comm.send(payload, right, tag=3)
        incoming = yield from comm.recv(left, tag=3)
    else:
        incoming = yield from comm.recv(left, tag=3)
        yield from comm.send(payload, right, tag=3)
    total = yield from comm.allreduce(float(incoming.sum()))
    yield from comm.barrier()
    return total
