"""Fixture: collective entered only by some ranks (RCCE110)."""


def program(comm):
    partial = float(comm.ue)
    if comm.ue == 0:
        total = yield from comm.allreduce(partial)  # other ranks never enter
        return total
    yield from comm.compute(1e-6)
    return partial
