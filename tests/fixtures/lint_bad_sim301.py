"""Fixture: communication generator built but never driven (SIM301)."""


def program(comm):
    comm.barrier()  # missing `yield from`: nothing happens
    yield from comm.compute(1e-6)
