"""Intentionally buggy UE programs exercising the *runtime* checkers.

Each function is an RCCE program (generator taking ``comm``) with one
specific protocol defect; the integration tests boot them on a checked
:class:`~repro.rcce.runtime.RCCERuntime` and assert the corresponding
checker fires.  ``repro check --program tests/fixtures/buggy_programs.py:<name>``
demonstrates the same from the CLI.
"""

from __future__ import annotations


def deadlock_tag_mismatch(comm):
    """UE 0 sends tag 5 but UE 1 expects tag 7: rendezvous deadlock (RT801)."""
    if comm.ue == 0:
        yield from comm.send("payload", dest=1, tag=5)
    else:
        data = yield from comm.recv(source=0, tag=7)
        return data


def deadlock_all_recv(comm):
    """Every rank receives, nobody sends (RT801 with recv-only graph)."""
    data = yield from comm.recv()
    return data


def collective_kind_mismatch(comm):
    """UE 0 calls barrier while the rest call allreduce (RT804).

    Both are reduce+bcast trees on the same reserved tags, so the run
    *completes* — with rank 0's barrier token silently folded into the
    other ranks' sum.  Exactly the class of silent corruption the
    dynamic checker exists to catch.
    """
    if comm.ue == 0:
        yield from comm.barrier()
        return 0.0
    total = yield from comm.allreduce(1.0)
    return total


def collective_size_mismatch(comm):
    """Ranks contribute different payload sizes to an allreduce (RT805)."""
    contribution = [1.0] * (4 if comm.ue == 0 else 2)
    total = yield from comm.allreduce(contribution)
    return len(total)


def mpb_overwrite_race(comm, onesided):
    """UE 0 puts twice to the same offset with no intervening read (RT803)."""
    if comm.ue == 0:
        yield from onesided.put(0, 1, 0, b"first")
        yield from onesided.put(0, 1, 0, b"clobbered")  # never drained
        yield from onesided.set_flag(0, 1, flag_id=0)
    else:
        yield from onesided.wait_flag(1, flag_id=0)
        payload = yield from onesided.get(1, 1, 0)
        return payload


def nondeterministic_compute(comm):
    """Compute time drawn from the process-global RNG (DET900 on replay)."""
    import random

    yield from comm.compute(1e-9 + random.random() * 1e-8)
    yield from comm.barrier()
    return comm.wtime()
