"""The congruent fix for ``df_deadlock_ring.py``.

Identical communication structure (same neighbors, same tag, same
payload, same trailing allreduce), but the exchange is staggered: even
ranks send before receiving, odd ranks receive before sending, so at
every core count some rank is always ready to consume a pending
rendezvous send and the ring drains.  The symbolic analyzer must report
zero findings on this program at every core count.
"""

from __future__ import annotations

import numpy as np

RING_TAG = 3


def ring_exchange_fixed(comm):
    """Correct neighbor exchange: even ranks send first, odd recv first."""
    me = comm.ue
    n = comm.num_ues
    right = (me + 1) % n
    left = (me - 1) % n
    payload = np.full(16, float(me))
    if n == 1:
        return 0.0
    if me % 2 == 0:
        yield from comm.send(payload, right, tag=RING_TAG)
        incoming = yield from comm.recv(source=left, tag=RING_TAG)
    else:
        incoming = yield from comm.recv(source=left, tag=RING_TAG)
        yield from comm.send(payload, right, tag=RING_TAG)
    total = yield from comm.allreduce(float(incoming[0]))
    return total
