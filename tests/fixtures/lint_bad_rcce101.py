"""Fixture: send/recv tags that can never match (RCCE101)."""


def program(comm):
    if comm.ue == 0:
        yield from comm.send("payload", dest=1, tag=1)
    else:
        data = yield from comm.recv(source=0, tag=2)  # tag typo: never matches
        return data
