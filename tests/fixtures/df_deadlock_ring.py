"""Seeded-bug fixture: a rendezvous ring exchange that deadlocks.

Every UE issues its blocking ``send`` to the right neighbor *first*.
Under RCCE rendezvous semantics the send does not complete until the
destination consumes it, so all ranks block on their ack simultaneously
and nobody ever reaches the ``recv`` — a wait-for cycle spanning the
whole ring, at every core count >= 2.

``repro check`` only catches this at runtime (RT801 after executing a
schedule); the symbolic analyzer must prove it statically (DF501) for
every core count.  The congruent fix is ``df_ring_fixed.py``.
"""

from __future__ import annotations

import numpy as np

RING_TAG = 3


def ring_exchange_deadlock(comm):
    """Broken neighbor exchange: everyone sends first, nobody receives."""
    me = comm.ue
    n = comm.num_ues
    right = (me + 1) % n
    payload = np.full(16, float(me))
    yield from comm.send(payload, right, tag=RING_TAG)  # blocks forever
    incoming = yield from comm.recv(source=(me - 1) % n, tag=RING_TAG)
    total = yield from comm.allreduce(float(incoming[0]))
    return total
