"""Fixture: mutable default argument on a simulated function (DET203)."""


def program(comm, acc=[], table={}):
    acc.append(comm.ue)  # shared across every UE and every run
    table[comm.ue] = True
    yield from comm.barrier()
    return len(acc)
