"""Fixture: unseeded / global-state randomness in simulated code (DET202)."""

import random

import numpy as np


def program(comm):
    rng = np.random.default_rng()  # no seed: differs per process
    jitter = random.random()       # stdlib global RNG
    noise = np.random.uniform()    # NumPy legacy global RNG
    yield from comm.compute(1e-9 * (rng.uniform() + jitter + noise))
