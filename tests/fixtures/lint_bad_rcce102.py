"""Fixture: rendezvous send addressed to the sender itself (RCCE102)."""


def program(comm):
    yield from comm.send("boomerang", comm.ue)
    data = yield from comm.recv()
    return data
