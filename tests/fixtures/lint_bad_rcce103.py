"""Fixture: user tags straying into the negative/reserved range (RCCE103)."""


def program(comm):
    if comm.ue == 0:
        yield from comm.send(1.0, dest=1, tag=-1)  # negative: rejected at runtime
    else:
        data = yield from comm.recv(source=0, tag=-1)
        return data
