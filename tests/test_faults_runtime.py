"""Fault behaviour of the runtime and hardware layers.

Covers the injection points the fault plans drive: process kills and
their surfacing in deadlock diagnostics, per-core stall windows, memory
controller stall bursts, and mesh link degradation.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import CoreFailure, CoreStall, FaultPlan, LinkDegradation
from repro.rcce.errors import (
    RCCEBudgetExceededError,
    RCCEDeadlockError,
    RCCETimeoutError,
)
from repro.rcce.runtime import RCCERuntime
from repro.scc.mcqueue import CoreWorkload, StallBurst, simulate_controller
from repro.scc.mesh import MeshNetwork
from repro.sim import Process, Simulator, any_of


class TestProcessKill:
    def test_kill_marks_finished_and_fires_done(self):
        sim = Simulator()
        seen = []

        def body():
            seen.append("start")
            yield sim.timeout(1.0)
            seen.append("never")

        p = Process(sim, body(), name="victim")
        sim.schedule(0.5, p.kill)
        sim.run()
        assert seen == ["start"]
        assert p.killed and p.finished

    def test_kill_is_idempotent(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)

        p = Process(sim, body(), name="victim")
        sim.schedule(0.1, p.kill)
        sim.run()
        assert p.kill() is False  # already dead


class TestRuntimeFaults:
    def test_core_failure_registers_time(self):
        plan = FaultPlan(core_failures=(CoreFailure(1, 2e-4),))

        def fn(comm):
            yield from comm.compute(1e-3)
            return comm.ue

        rt = RCCERuntime([0, 1], fault_plan=plan)
        res = rt.run(fn)
        assert rt.failed_ues == {1: pytest.approx(2e-4)}
        assert res[0].value == 0
        assert res[1].value is None  # killed before returning

    def test_core_stall_extends_compute(self):
        stall = CoreStall(0, 1e-5, 3e-4)
        plan = FaultPlan(core_stalls=(stall,))

        def fn(comm):
            yield from comm.compute(1e-4)
            return comm.wtime()

        faulty = RCCERuntime([0], fault_plan=plan).run(fn)[0].value
        clean = RCCERuntime([0]).run(fn)[0].value
        assert faulty == pytest.approx(clean + 3e-4)

    def test_raw_recv_timeout(self):
        def fn(comm):
            if comm.ue == 0:
                with pytest.raises(RCCETimeoutError) as err:
                    yield from comm.recv(1, 0, timeout=1e-4)
                assert err.value.timeout == 1e-4
                return "expired"
            yield from comm.compute(1e-3)
            return None

        assert RCCERuntime([0, 1]).run(fn)[0].value == "expired"

    def test_budget_exceeded_lists_running_ues(self):
        def fn(comm):
            yield from comm.compute(1.0)

        with pytest.raises(RCCEBudgetExceededError) as err:
            RCCERuntime([0, 1]).run(fn, until=1e-3)
        assert err.value.budget == 1e-3
        assert set(err.value.running_ues) == {0, 1}
        assert err.value.sim_time == pytest.approx(1e-3)

    def test_deadlock_report_marks_crashed_peer(self):
        """Blocking on a UE that the fault plan killed must be diagnosed
        as 'peer crashed', not a generic never-sent deadlock."""
        plan = FaultPlan(core_failures=(CoreFailure(1, 1e-5),))

        def fn(comm):
            if comm.ue == 0:
                # deliberately unbounded: this is the bug RCCE130 flags
                data = yield from comm.recv(1, 0)
                return data
            yield from comm.compute(1.0)
            return None

        with pytest.raises(RCCEDeadlockError) as err:
            RCCERuntime([0, 1], fault_plan=plan).run(fn)
        message = str(err.value)
        assert "CRASHED" in message
        assert "injected core failure" in message
        assert err.value.failed_ues == {1: pytest.approx(1e-5)}

    def test_deadlock_without_faults_has_no_crash_note(self):
        def fn(comm):
            if comm.ue == 0:
                yield from comm.recv(1, 0)
            return None

        with pytest.raises(RCCEDeadlockError) as err:
            RCCERuntime([0, 1]).run(fn)
        assert "CRASHED" not in str(err.value)


class TestAnyOf:
    def test_first_event_wins(self):
        sim = Simulator()
        winner = []

        def body():
            fast = sim.timeout(0.1, value="fast")
            slow = sim.timeout(0.5, value="slow")
            ev, val = yield any_of(sim, [fast, slow])
            winner.append((ev is fast, val))

        Process(sim, body(), name="racer")
        sim.run()
        assert winner == [(True, "fast")]


class TestMcStallBursts:
    WORKLOADS = [CoreWorkload(compute_time=1e-4, n_lines=100, latency=1e-7)] * 4

    def test_burst_slows_completion(self):
        base = simulate_controller(self.WORKLOADS, capacity_lines_per_sec=1e7)
        bursty = simulate_controller(
            self.WORKLOADS,
            capacity_lines_per_sec=1e7,
            stall_bursts=[StallBurst(0.0, 1.0, 8.0)],
        )
        assert max(bursty) > max(base)

    def test_burst_outside_window_is_free(self):
        base = simulate_controller(self.WORKLOADS, capacity_lines_per_sec=1e7)
        late = simulate_controller(
            self.WORKLOADS,
            capacity_lines_per_sec=1e7,
            stall_bursts=[StallBurst(10.0, 11.0, 8.0)],
        )
        assert late == base

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            StallBurst(1.0, 0.5, 2.0)
        with pytest.raises(ValueError):
            StallBurst(0.0, 1.0, 0.9)

    def test_worst_overlapping_burst_wins(self):
        from repro.scc.mcqueue import _burst_factor

        bursts = (StallBurst(0.0, 1.0, 2.0), StallBurst(0.5, 1.5, 6.0))
        assert _burst_factor(bursts, 0.25) == 2.0
        assert _burst_factor(bursts, 0.75) == 6.0
        assert _burst_factor(bursts, 2.0) == 1.0


class TestMeshDegradation:
    def test_degraded_link_slows_route(self):
        mesh = MeshNetwork()
        healthy = mesh.message_time((0, 0), (3, 0), 4096)
        mesh.set_link_degradation((1, 0), (2, 0), 4.0)
        assert mesh.route_slowdown((0, 0), (3, 0)) == 4.0
        assert mesh.message_time((0, 0), (3, 0), 4096) > healthy
        # a route avoiding the link is unaffected
        assert mesh.route_slowdown((0, 1), (3, 1)) == 1.0
        mesh.clear_link_degradations()
        assert mesh.message_time((0, 0), (3, 0), 4096) == healthy

    def test_degradation_validation(self):
        mesh = MeshNetwork()
        with pytest.raises(ValueError):
            mesh.set_link_degradation((0, 0), (1, 0), 0.5)
        with pytest.raises(ValueError):
            mesh.set_link_degradation((0, 0), (99, 0), 2.0)

    def test_plan_degradations_reach_the_runtime_mesh(self):
        plan = FaultPlan(
            link_degradations=(LinkDegradation((0, 0), (1, 0), 3.0),)
        )
        rt = RCCERuntime([0, 1], fault_plan=plan)
        assert rt.mesh.route_slowdown((0, 0), (1, 0)) == 3.0
