"""Tests for the event-driven NoC (per-link contention)."""

from __future__ import annotations

import pytest

from repro.scc.mesh import LINK_BYTES_PER_CYCLE, ROUTER_CYCLES
from repro.scc.noc import EventDrivenMesh, simulate_transfers
from repro.sim import Process, Simulator


def hop_cost(nbytes, mesh_mhz=800.0):
    cyc = 1.0 / (mesh_mhz * 1e6)
    return ROUTER_CYCLES * cyc + nbytes / (LINK_BYTES_PER_CYCLE * mesh_mhz * 1e6)


class TestUncontended:
    def test_matches_store_and_forward_formula(self):
        [t] = simulate_transfers([(0.0, (0, 0), (3, 0), 640)])
        assert t == pytest.approx(3 * hop_cost(640), rel=1e-9)

    def test_local_transfer_one_router(self):
        [t] = simulate_transfers([(0.0, (2, 1), (2, 1), 100)])
        assert t == pytest.approx(ROUTER_CYCLES / 800e6)

    def test_time_grows_with_bytes_and_distance(self):
        [short] = simulate_transfers([(0.0, (0, 0), (1, 0), 64)])
        [long_] = simulate_transfers([(0.0, (0, 0), (1, 0), 6400)])
        [far] = simulate_transfers([(0.0, (0, 0), (5, 3), 64)])
        assert long_ > short
        assert far > short

    def test_faster_mesh_clock(self):
        [slow] = simulate_transfers([(0.0, (0, 0), (4, 0), 1024)], mesh_mhz=800)
        [fast] = simulate_transfers([(0.0, (0, 0), (4, 0), 1024)], mesh_mhz=1600)
        assert fast == pytest.approx(slow / 2, rel=1e-9)

    def test_uncontended_time_helper_agrees(self):
        sim = Simulator()
        mesh = EventDrivenMesh(sim)
        [t] = simulate_transfers([(0.0, (1, 1), (4, 3), 512)])
        assert t == pytest.approx(mesh.uncontended_time((1, 1), (4, 3), 512), rel=1e-9)

    def test_start_offset_respected(self):
        [t] = simulate_transfers([(1e-3, (0, 0), (1, 0), 64)])
        assert t == pytest.approx(1e-3 + hop_cost(64), rel=1e-9)


class TestContention:
    def test_shared_link_serializes(self):
        # Both transfers need link (0,0)->(1,0) at t=0.
        times = simulate_transfers(
            [
                (0.0, (0, 0), (1, 0), 1600),
                (0.0, (0, 0), (1, 0), 1600),
            ]
        )
        first, second = sorted(times)
        assert first == pytest.approx(hop_cost(1600), rel=1e-9)
        assert second == pytest.approx(2 * hop_cost(1600), rel=1e-9)

    def test_disjoint_routes_parallel(self):
        times = simulate_transfers(
            [
                (0.0, (0, 0), (1, 0), 1600),
                (0.0, (0, 3), (1, 3), 1600),
            ]
        )
        for t in times:
            assert t == pytest.approx(hop_cost(1600), rel=1e-9)

    def test_opposite_directions_do_not_conflict(self):
        """Links are directed: A->B and B->A are independent."""
        times = simulate_transfers(
            [
                (0.0, (0, 0), (1, 0), 1600),
                (0.0, (1, 0), (0, 0), 1600),
            ]
        )
        for t in times:
            assert t == pytest.approx(hop_cost(1600), rel=1e-9)

    def test_many_random_messages_complete(self):
        """Deadlock-freedom smoke test: a storm of crossing messages."""
        import numpy as np

        rng = np.random.default_rng(8)
        transfers = []
        for k in range(60):
            src = (int(rng.integers(0, 6)), int(rng.integers(0, 4)))
            dst = (int(rng.integers(0, 6)), int(rng.integers(0, 4)))
            transfers.append((float(k) * 1e-8, src, dst, int(rng.integers(16, 2048))))
        times = simulate_transfers(transfers)
        assert len(times) == 60
        assert all(t >= 0 for t in times)

    def test_busiest_links_diagnostic(self):
        sim = Simulator()
        mesh = EventDrivenMesh(sim)

        def xfer():
            yield from mesh.transfer((0, 0), (3, 0), 3200)

        Process(sim, xfer())
        Process(sim, xfer())
        sim.run()
        ranked = mesh.busiest_links(top=3)
        assert ranked[0][1] > 0
        # The first hop link carries both messages back to back.
        assert ranked[0][1] == pytest.approx(2 * hop_cost(3200), rel=1e-6)


class TestValidation:
    def test_empty_transfer_list(self):
        with pytest.raises(ValueError):
            simulate_transfers([])

    def test_negative_bytes(self):
        with pytest.raises(Exception):
            simulate_transfers([(0.0, (0, 0), (1, 0), -1)])

    def test_negative_start(self):
        with pytest.raises(Exception):
            simulate_transfers([(-1.0, (0, 0), (1, 0), 64)])

    def test_invalid_clock(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            EventDrivenMesh(sim, mesh_mhz=0)
