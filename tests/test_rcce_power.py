"""Tests for the RCCE power-management API."""

from __future__ import annotations

import pytest

from repro.rcce import (
    FREQ_CHANGE_SECONDS,
    N_VOLTAGE_DOMAINS,
    VOLTAGE_RAMP_SECONDS,
    PowerManager,
    RCCERuntime,
)
from repro.rcce.power import domain_of_tile
from repro.scc import CONF0, SCCTopology
from repro.scc.power import core_voltage


@pytest.fixture()
def pm():
    return PowerManager(CONF0)


class TestDomainGeometry:
    def test_six_islands_of_four_tiles(self, pm):
        seen = set()
        for d in range(N_VOLTAGE_DOMAINS):
            tiles = pm.tiles_of_domain(d)
            assert len(tiles) == 4
            seen.update(tiles)
        assert seen == set(range(24))

    def test_island_layout_is_2x2(self):
        assert domain_of_tile(0, 0) == domain_of_tile(1, 1)
        assert domain_of_tile(0, 0) != domain_of_tile(2, 0)
        assert domain_of_tile(0, 0) != domain_of_tile(0, 2)
        assert domain_of_tile(5, 3) == 5

    def test_domain_of_core(self, pm):
        topo = SCCTopology()
        for core in (0, 13, 47):
            t = topo.tile_of_core(core)
            assert pm.domain_of_core(core) == domain_of_tile(t.x, t.y)

    def test_bad_domain_rejected(self, pm):
        with pytest.raises(ValueError):
            pm.tiles_of_domain(6)
        with pytest.raises(ValueError):
            pm.voltage_of_domain(-1)


class TestTransitions:
    def test_initial_state_from_config(self, pm):
        assert pm.frequency_of_core(0) == 533
        assert pm.voltage_of_domain(0) == core_voltage(533)
        assert pm.chip_power() == pytest.approx(CONF0.full_chip_power())

    def test_off_menu_frequency_rejected(self, pm):
        with pytest.raises(ValueError):
            pm.request_transition(0, 600)

    def test_frequency_only_change_is_fast(self, pm):
        # Same-voltage change: 100 <-> 200 both run at 0.70 V.
        pm.request_transition(0, 200)
        stall = pm.request_transition(0, 100)
        assert stall == pytest.approx(FREQ_CHANGE_SECONDS)

    def test_voltage_down_does_not_block(self, pm):
        # 533 -> 100 lowers voltage: divider switches first, the ramp
        # drains in the background (asymmetric stall, as on the chip).
        stall = pm.request_transition(0, 100)
        assert stall == pytest.approx(FREQ_CHANGE_SECONDS)
        assert pm.voltage_of_domain(0) < 0.9

    def test_voltage_change_is_slow(self, pm):
        stall = pm.request_transition(0, 800)  # 0.9 V -> 1.1 V
        assert stall == pytest.approx(FREQ_CHANGE_SECONDS + VOLTAGE_RAMP_SECONDS)

    def test_transition_applies_to_whole_island(self, pm):
        pm.request_transition(0, 800)
        for t in pm.tiles_of_domain(0):
            assert pm.tile_mhz[t] == 800
        # Other islands untouched.
        assert pm.frequency_of_core(47) == 533

    def test_power_tracks_transitions(self, pm):
        before = pm.chip_power()
        pm.request_transition(0, 800)
        up = pm.chip_power()
        pm.request_transition(0, 100)
        down = pm.chip_power()
        assert down < before < up

    def test_audit_trail(self, pm):
        pm.request_transition(2, 800)
        pm.request_transition(2, 533)
        assert len(pm.transitions) == 2
        assert pm.transitions[0][0] == 2
        assert pm.transitions[0][1] == 800


class TestRuntimeIntegration:
    def test_compute_cycles_uses_live_frequency(self):
        def fn(comm):
            yield from comm.compute_cycles(533e6)  # 1 second at 533 MHz
            t1 = comm.wtime()
            yield from comm.set_power(100)
            t2 = comm.wtime()
            yield from comm.compute_cycles(100e6)  # 1 second at 100 MHz
            return (t1, t2, comm.wtime())

        rt = RCCERuntime([0])
        [res] = rt.run(fn)
        t1, t2, t3 = res.value
        assert t1 == pytest.approx(1.0)
        assert t2 - t1 > 0  # the transition stalled
        assert t3 - t2 == pytest.approx(1.0)

    def test_set_power_affects_island_neighbours(self):
        def fn(comm):
            if comm.ue == 0:
                yield from comm.set_power(100)
            yield from comm.barrier()
            # Core 1 shares core 0's island: it slowed down too.
            return comm._rt.power.frequency_of_core(comm.core)

        rt = RCCERuntime([0, 1])
        res = rt.run(fn)
        assert [r.value for r in res] == [100, 100]

    def test_negative_cycles_rejected(self):
        def fn(comm):
            yield from comm.compute_cycles(-1)

        rt = RCCERuntime([0])
        with pytest.raises(Exception):
            rt.run(fn)

    def test_power_gated_core_cannot_compute(self):
        rt = RCCERuntime([0])
        rt.power.tile_mhz[0] = 0.0  # explicit gating

        def fn(comm):
            yield from comm.compute_cycles(100)

        with pytest.raises(Exception):
            rt.run(fn)

    def test_energy_snapshot(self):
        pm = PowerManager(CONF0)
        freqs, watts = pm.energy_rate_snapshot()
        assert len(freqs) == 24
        assert watts == pytest.approx(CONF0.full_chip_power())
