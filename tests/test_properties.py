"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.rcce import RCCERuntime
from repro.scc import Cache, SCCTopology, footprint_curve, miss_ratio_curve, reuse_profile, reuse_times
from repro.sim import Simulator
from repro.sparse import (
    COOMatrix,
    partition_rows_balanced,
    spmv,
    spmv_reference,
    working_set_bytes,
)

SET = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --- strategies -------------------------------------------------------------

@st.composite
def coo_matrices(draw, max_n=40, max_nnz=200):
    n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(hnp.arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    cols = draw(hnp.arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    vals = draw(
        hnp.arrays(
            np.float64,
            nnz,
            elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
        )
    )
    return COOMatrix(n, n, rows, cols, vals)


line_streams = hnp.arrays(
    np.int64,
    st.integers(1, 300),
    elements=st.integers(0, 40),
)


# --- sparse properties ---------------------------------------------------------

class TestSparseProperties:
    @SET
    @given(coo_matrices())
    def test_csr_roundtrip_matches_dense(self, coo):
        csr = coo.to_csr()
        np.testing.assert_allclose(csr.to_dense(), coo.to_dense(), rtol=1e-12, atol=1e-12)

    @SET
    @given(coo_matrices())
    def test_spmv_matches_reference(self, coo):
        csr = coo.to_csr()
        x = np.linspace(-1.0, 1.0, csr.n_cols)
        np.testing.assert_allclose(
            spmv(csr, x), spmv_reference(csr, x), rtol=1e-9, atol=1e-9
        )

    @SET
    @given(coo_matrices(), st.integers(1, 8))
    def test_partition_covers_and_balances(self, coo, k):
        csr = coo.to_csr()
        k = min(k, csr.n_rows)
        p = partition_rows_balanced(csr, k)
        assert p.bounds[0] == 0 and p.bounds[-1] == csr.n_rows
        assert p.part_nnz(csr).sum() == csr.nnz
        # No part exceeds the ideal share by more than the largest row.
        max_row = int(csr.row_lengths().max()) if csr.n_rows else 0
        assert p.part_nnz(csr).max() <= csr.nnz / k + max_row + 1

    @SET
    @given(coo_matrices(), st.integers(1, 6))
    def test_parallel_blocks_reassemble_product(self, coo, k):
        csr = coo.to_csr()
        k = min(k, csr.n_rows)
        x = np.linspace(0.5, 1.5, csr.n_cols)
        p = partition_rows_balanced(csr, k)
        from repro.sparse import spmv_row_range

        parts = [spmv_row_range(csr, x, lo, hi) for lo, hi in p.ranges()]
        # The prefix-sum reduction cancels catastrophically on rows whose
        # sum is tiny next to their neighbours', so bound the absolute
        # error by the magnitude flowing through the cumsum.
        atol = 1e-12 * (np.abs(csr.da).sum() + 1.0)
        np.testing.assert_allclose(
            np.concatenate(parts), spmv(csr, x), rtol=1e-9, atol=atol
        )

    @SET
    @given(st.integers(0, 10**6), st.integers(0, 10**7))
    def test_working_set_positive_and_monotone(self, n, nnz):
        ws = working_set_bytes(n, nnz)
        assert ws >= 4
        assert working_set_bytes(n + 1, nnz) > ws
        assert working_set_bytes(n, nnz + 1) > ws


# --- locality model properties ------------------------------------------------

class TestLocalityProperties:
    @SET
    @given(line_streams)
    def test_reuse_times_consistency(self, lines):
        rt, first = reuse_times(lines)
        assert first.sum() == len(set(lines.tolist()))
        # Non-first accesses have positive reuse times bounded by position.
        for i in np.flatnonzero(~first):
            assert 1 <= rt[i] <= i

    @SET
    @given(line_streams)
    def test_footprint_monotone_and_bounded(self, lines):
        fp = footprint_curve(reuse_profile(lines))
        assert fp.values[0] == 0.0
        assert (np.diff(fp.values) >= -1e-9).all()
        assert fp.values[-1] == pytest.approx(len(set(lines.tolist())))

    @SET
    @given(line_streams)
    def test_footprint_of_full_window_is_distinct_count(self, lines):
        fp = footprint_curve(reuse_profile(lines))
        assert fp(len(lines)) == pytest.approx(len(set(lines.tolist())))

    @SET
    @given(line_streams, st.integers(1, 64))
    def test_miss_count_between_cold_and_total(self, lines, capacity):
        mrc = miss_ratio_curve(lines)
        misses = mrc.misses(capacity)
        assert mrc.profile.cold_misses <= misses <= len(lines)

    @SET
    @given(line_streams)
    def test_mrc_monotone_in_capacity(self, lines):
        mrc = miss_ratio_curve(lines)
        last = None
        for cap in (1, 2, 4, 8, 16, 32, 64):
            m = mrc.misses(cap)
            if last is not None:
                assert m <= last
            last = m


# --- exact cache properties -----------------------------------------------------

class TestCacheProperties:
    @SET
    @given(line_streams)
    def test_exact_cache_miss_bounds(self, lines):
        cache = Cache(size_bytes=16 * 32, assoc=4, line_bytes=32)
        misses = cache.access_trace(lines * 32)
        assert len(set(lines.tolist())) <= misses <= len(lines)

    @SET
    @given(line_streams)
    def test_bigger_cache_never_worse_when_fully_assoc_equivalent(self, lines):
        """With a single set (fully associative), more ways never hurt."""
        small = Cache(size_bytes=4 * 32, assoc=4, line_bytes=32)
        big = Cache(size_bytes=16 * 32, assoc=16, line_bytes=32)
        assert big.access_trace(lines * 32) <= small.access_trace(lines * 32)

    @SET
    @given(line_streams)
    def test_true_lru_second_pass_never_misses_more(self, lines):
        """True LRU has the stack property: replaying a trace cannot
        miss more the second time.  (Tree pseudo-LRU does NOT guarantee
        this — hypothesis found a counterexample — which is why this
        invariant is checked against an LRU reference, not the
        hardware-accurate simulator.)"""

        def lru_misses(trace, capacity):
            stack: list = []
            misses = 0
            for line in trace:
                if line in stack:
                    stack.remove(line)
                else:
                    misses += 1
                    if len(stack) >= capacity:
                        stack.pop()
                stack.insert(0, line)
            return misses

        m1 = lru_misses(lines.tolist(), 8)
        m2 = lru_misses(np.tile(lines, 2).tolist(), 8)
        assert m2 <= 2 * m1

    @SET
    @given(line_streams)
    def test_plru_double_pass_bounded_by_trace_length(self, lines):
        """The pseudo-LRU hardware cache still obeys the trivial bounds
        even where the stack property fails."""
        c2 = Cache(size_bytes=8 * 32, assoc=4, line_bytes=32)
        m2 = c2.access_trace(np.tile(lines, 2) * 32)
        assert len(set(lines.tolist())) <= m2 <= 2 * len(lines)


# --- topology properties -----------------------------------------------------------

class TestTopologyProperties:
    @SET
    @given(st.integers(0, 47), st.integers(0, 47))
    def test_hops_symmetric_triangle(self, a, b):
        topo = SCCTopology()
        ta, tb = topo.tile_of_core(a), topo.tile_of_core(b)
        ca, cb = (ta.x, ta.y), (tb.x, tb.y)
        assert topo.hops_between(ca, cb) == topo.hops_between(cb, ca)
        assert topo.hops_between(ca, cb) <= 8  # mesh diameter

    @SET
    @given(st.integers(1, 48))
    def test_distance_mapping_prefix_stability(self, n):
        from repro.core import distance_reduction_mapping

        topo = SCCTopology()
        full = distance_reduction_mapping(48, topo)
        assert distance_reduction_mapping(n, topo) == full[:n]


# --- runtime properties -------------------------------------------------------------

class TestRuntimeProperties:
    @SET
    @given(st.integers(1, 16), st.integers(0, 1000))
    def test_allreduce_sum_invariant(self, n, offset):
        def fn(comm):
            return (yield from comm.allreduce(comm.ue + offset))

        rt = RCCERuntime(list(range(n)))
        res = rt.run(fn)
        expected = sum(range(n)) + n * offset
        assert all(r.value == expected for r in res)

    @SET
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8))
    def test_makespan_equals_max_compute(self, durations):
        def fn(comm):
            yield from comm.compute(durations[comm.ue])

        rt = RCCERuntime(list(range(len(durations))))
        res = rt.run(fn)
        assert rt.makespan(res) == pytest.approx(max(durations), abs=1e-12)

    @SET
    @given(st.lists(st.tuples(st.floats(0, 10), st.integers(0, 5)), max_size=20))
    def test_simulator_time_never_regresses(self, events):
        sim = Simulator()
        stamps = []
        for delay, _ in events:
            sim.schedule(delay, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == sorted(stamps)
