"""Tests for Resource and Store contention primitives."""

from __future__ import annotations

import pytest

from repro.sim import Process, Resource, SimulationError, Simulator, Store


class TestResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_when_free(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        ev = res.request()
        assert ev.triggered
        assert res.in_use == 1

    def test_queue_when_full(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert first.triggered
        assert not second.triggered
        assert res.queue_length == 1
        res.release()
        assert second.triggered
        assert res.in_use == 1

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        waiters = [res.request() for _ in range(3)]
        for i in range(3):
            res.release()
            assert waiters[i].triggered
            assert all(not w.triggered for w in waiters[i + 1 :])

    def test_serialized_processes(self):
        """Two processes sharing a capacity-1 server run back to back."""
        sim = Simulator()
        spans = []

        def user(sim, res, work):
            yield res.request()
            start = sim.now
            yield sim.timeout(work)
            res.release()
            spans.append((start, sim.now))

        res = Resource(sim, capacity=1)
        Process(sim, user(sim, res, 2.0))
        Process(sim, user(sim, res, 3.0))
        sim.run()
        assert spans == [(0.0, 2.0), (2.0, 5.0)]

    def test_busy_time_accounting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def user(sim, res):
            yield res.request()
            yield sim.timeout(4.0)
            res.release()

        Process(sim, user(sim, res))
        sim.run()
        assert res.busy_time() == pytest.approx(4.0)

    def test_total_wait_time(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def user(sim, res, work):
            yield res.request()
            yield sim.timeout(work)
            res.release()

        Process(sim, user(sim, res, 2.0))
        Process(sim, user(sim, res, 1.0))
        sim.run()
        assert res.total_wait_time == pytest.approx(2.0)
        assert res.total_requests == 2


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        ev = store.get()
        assert ev.triggered and ev.value == "a"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        ev = store.get()
        assert not ev.triggered
        store.put(123)
        assert ev.triggered and ev.value == 123

    def test_fifo_items(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        assert [store.get().value for _ in range(5)] == list(range(5))

    def test_fifo_getters(self):
        sim = Simulator()
        store = Store(sim)
        evs = [store.get() for _ in range(3)]
        for i in range(3):
            store.put(i)
        assert [e.value for e in evs] == [0, 1, 2]

    def test_len_and_peek(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        store.put("y")
        assert len(store) == 2
        assert store.peek_all() == ("x", "y")

    def test_producer_consumer_processes(self):
        sim = Simulator()
        consumed = []

        def producer(sim, store):
            for i in range(3):
                yield sim.timeout(1.0)
                store.put(i)

        def consumer(sim, store):
            for _ in range(3):
                item = yield store.get()
                consumed.append((item, sim.now))

        store = Store(sim)
        Process(sim, producer(sim, store))
        Process(sim, consumer(sim, store))
        sim.run()
        assert consumed == [(0, 1.0), (1, 2.0), (2, 3.0)]
