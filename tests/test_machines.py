"""The machine zoo: registry, SCC drift-freedom, Phi/FT calibration.

The ``repro.machine`` package puts every modeled many-core target
behind one :class:`~repro.machine.base.MachineModel` interface.  These
tests pin the three contracts that make the zoo trustworthy:

* the **registry** is a stable public API (ids, suggestions on typos,
  deprecated aliases still importable with a warning);
* the **SCC** re-expressed as a machine is bitwise identical to the
  pre-zoo code path (the golden fixture tests cover campaign bytes;
  here we cover the experiment/figure layer);
* the **Xeon Phi** and **FT-2000+** models land in the bands their
  source papers report and respond to ablations in the right
  direction (bandwidth-bound scaling, panel locality).
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core import Campaign, SpMVExperiment
from repro.core.figures import machine_comparison_data, suite_experiments
from repro.machine import (
    DEFAULT_MACHINE,
    MACHINE_REGISTRY,
    CacheGeometry,
    FT2000PlusMachine,
    MachineModel,
    SCCMachine,
    XeonPhiMachine,
    get_machine,
    list_machines,
)
from repro.scc.chip import CONF0, PRESETS
from repro.scc.topology import SCCTopology
from repro.sparse import build_matrix


class TestRegistry:
    def test_all_three_machines_registered(self):
        assert set(MACHINE_REGISTRY) == {"scc-48", "xeonphi-61", "ft2000plus-64"}
        assert list_machines()[0] == DEFAULT_MACHINE == "scc-48"

    def test_get_machine_returns_singletons(self):
        assert get_machine("xeonphi-61") is get_machine("xeonphi-61")
        assert isinstance(get_machine("ft2000plus-64"), FT2000PlusMachine)
        assert isinstance(get_machine(), SCCMachine)

    def test_instances_pass_through(self):
        m = get_machine("xeonphi-61")
        assert get_machine(m) is m

    def test_unknown_machine_suggests_close_ids(self):
        with pytest.raises(KeyError) as exc:
            get_machine("xeonphi")
        msg = str(exc.value)
        assert "registered machines" in msg
        assert "xeonphi-61" in msg
        with pytest.raises(KeyError):
            get_machine("not-a-machine-at-all")

    def test_modes_error_names_machine_and_valid_modes(self):
        exp = SpMVExperiment(build_matrix(24, scale=0.02), machine="xeonphi-61")
        with pytest.raises(ValueError, match=r"mode must be one of .*xeonphi-61"):
            exp.run(n_cores=4, mode="bogus")
        with pytest.raises(ValueError, match="supports modes"):
            exp.run(n_cores=4, mode="sim")

    def test_machine_params_are_provenanced(self):
        for machine_id in list_machines():
            p = get_machine(machine_id).params()
            assert p.machine_id == machine_id
            assert p.n_cores >= 48
            assert p.source
            assert isinstance(p.cache, CacheGeometry)


class TestDeprecatedAliases:
    def test_sccconfig_alias_warns_and_resolves(self):
        import repro.core.experiment as experiment

        with pytest.deprecated_call():
            cls = experiment.SCCConfig
        from repro.scc.chip import SCCConfig

        assert cls is SCCConfig
        with pytest.deprecated_call():
            assert experiment.CONF0 is CONF0

    def test_result_record_wrapper_warns(self):
        from repro.core.campaign import result_record

        exp = SpMVExperiment(build_matrix(24, scale=0.02))
        result = exp.run(n_cores=1, mode="model", iterations=1)
        with pytest.deprecated_call():
            rec = result_record(result)
        assert rec["mflops"] == result.mflops

    def test_unknown_attr_still_raises(self):
        import repro.core.experiment as experiment

        with pytest.raises(AttributeError):
            experiment.NoSuchThing


class TestSCCDriftFree:
    """The SCC behind the MachineModel interface is the old SCC."""

    def test_default_machine_matches_explicit_scc(self):
        a = build_matrix(24, scale=0.05)
        implicit = SpMVExperiment(a).run(n_cores=4, mode="model", iterations=2)
        explicit = SpMVExperiment(a, machine="scc-48").run(
            n_cores=4, mode="model", iterations=2
        )
        assert implicit.to_record() == explicit.to_record()
        assert "machine" not in implicit.to_record()

    def test_scc_machine_delegates_to_scc_modules(self):
        scc = get_machine("scc-48")
        assert scc.presets is PRESETS
        assert scc.default_config is CONF0
        assert isinstance(scc.topology, SCCTopology)
        assert scc.supported_modes == ("sim", "model", "exact-trace", "predict")
        assert scc.cache_key() == "scc-48"

    def test_sim_and_model_agree_on_scc_only(self):
        a = build_matrix(24, scale=0.02)
        exp = SpMVExperiment(a, machine="scc-48")
        sim = exp.run(n_cores=2, mode="sim", iterations=1)
        model = exp.run(n_cores=2, mode="model", iterations=1)
        assert model.makespan == pytest.approx(sim.makespan, rel=1e-9)


class TestXeonPhi:
    """Calibration vs Saule, Kaya & Catalyurek (arXiv:1302.1078)."""

    def test_aggregate_bandwidth_is_152_gbs(self):
        phi = get_machine("xeonphi-61")
        bw = phi.aggregate_bandwidth(phi.default_config)
        assert bw == pytest.approx(8 * 19.0e9)

    def test_full_chip_mflops_in_bandwidth_bound_band(self):
        """The paper measures roughly 7-22 GFLOPS/s for CSR SpMV across
        matrices on 60 cores; suite-average full-chip throughput of the
        model must land in that bandwidth-bound band."""
        exps = suite_experiments(scale=0.25, ids=(7, 24, 30), machine="xeonphi-61")
        mflops = [
            exp.run(n_cores=61, mode="model", iterations=4).mflops
            for _mid, exp in exps
        ]
        avg = sum(mflops) / len(mflops)
        assert 4_000 <= avg <= 24_000, mflops

    def test_scaling_sensitivity_saturates(self):
        """Adding cores past the bandwidth knee must sublinearly help:
        61 cores gains over 32 but less than the 1.9x core ratio
        (ring + GDDR5 saturation)."""
        a = build_matrix(7, scale=0.25)
        exp = SpMVExperiment(a, machine="xeonphi-61")
        at32 = exp.run(n_cores=32, mode="model", iterations=2).mflops
        at61 = exp.run(n_cores=61, mode="model", iterations=2).mflops
        assert at61 > at32
        assert at61 < (61 / 32) * at32

    def test_memory_clock_ablation_moves_throughput(self):
        """The model is bandwidth-bound at full chip: halving the GDDR5
        clock must cut throughput materially; raising core clock at
        fixed memory must not help proportionally."""
        from repro.machine.base import UniformMachineConfig

        a = build_matrix(7, scale=0.25)
        exp = SpMVExperiment(a, machine="xeonphi-61")
        base = exp.run(n_cores=61, mode="model", iterations=2).mflops
        conf = exp.machine.default_config
        half_mem = UniformMachineConfig(
            "halfmem", conf.core_mhz, conf.mesh_mhz, conf.mem_mhz / 2,
            power_watts=conf.power_watts,
        )
        halved = exp.run(n_cores=61, config=half_mem, mode="model", iterations=2).mflops
        assert halved < 0.85 * base
        fast_core = UniformMachineConfig(
            "fastcore", conf.core_mhz * 2, conf.mesh_mhz, conf.mem_mhz,
            power_watts=conf.power_watts,
        )
        fast = exp.run(n_cores=61, config=fast_core, mode="model", iterations=2).mflops
        assert fast < 1.5 * base


class TestFT2000Plus:
    """Calibration vs the FT-2000+ SpMV study (arXiv:1911.08779)."""

    def test_panel_topology_shape(self):
        ft = get_machine("ft2000plus-64")
        topo = ft.topology
        assert topo.n_cores == 64
        assert topo.n_controllers == 8
        assert topo.distance_histogram() == {0: 16, 1: 16, 2: 16, 3: 16}
        assert len(topo.cores_of_controller(0)) == 8

    def test_panel_locality_ratio_in_band(self):
        """Remote-panel vs local-panel access latency ratio: the paper
        reports NUMA penalties in the 1.3-2.2x range."""
        ft = get_machine("ft2000plus-64")
        ratio = ft.panel_locality_ratio()
        assert 1.3 <= ratio <= 2.2, ratio

    def test_panel_ablation_degrades_locality(self):
        """Doubling the inter-panel hop cost must widen the locality
        ratio — the ablation direction the source paper reports."""
        from repro.machine.ft2000plus import FT2000PlusMachine as FT

        base = FT().panel_locality_ratio()
        stretched = FT(inter_panel_hop_cost=4).panel_locality_ratio()
        assert stretched > base

    def test_full_chip_beats_single_panel(self):
        a = build_matrix(30, scale=0.25)
        exp = SpMVExperiment(a, machine="ft2000plus-64")
        one_panel = exp.run(n_cores=8, mode="model", iterations=2).mflops
        full = exp.run(n_cores=64, mode="model", iterations=2).mflops
        assert full > 2.0 * one_panel


class TestStoreKeys:
    def test_replay_keys_distinct_per_machine(self):
        from repro.scc.tracegen import DEFAULT_LAYOUT, _replay_cache_key

        a = build_matrix(24, scale=0.02)
        keys = {
            _replay_cache_key(a, 0, a.n_rows, 1, False, True, DEFAULT_LAYOUT, mk)
            for mk in ("scc-48", "xeonphi-61", "ft2000plus-64")
        }
        assert len(keys) == 3

    def test_campaign_records_distinct_per_machine(self, tmp_path):
        points = Campaign.grid(
            (24,), (4,), machines=("scc-48", "xeonphi-61", "ft2000plus-64")
        )
        campaign = Campaign("zoo", tmp_path, scale=0.02, iterations=1, mode="model")
        ran, skipped = campaign.run(points)
        assert (ran, skipped) == (3, 0)
        raw = [
            json.loads(line)
            for line in campaign.path.read_text().splitlines()
            if line.strip()
        ]
        assert len({rec["_key"] for rec in raw}) == 3
        records = campaign.load()
        by_machine = {rec.get("machine", DEFAULT_MACHINE) for rec in records}
        assert by_machine == {"scc-48", "xeonphi-61", "ft2000plus-64"}
        # resume: a second run skips everything
        again = Campaign("zoo", tmp_path, scale=0.02, iterations=1, mode="model")
        ran, skipped = again.run(points)
        assert (ran, skipped) == (0, 3)


class TestExperimentAPI:
    def test_sweep_cores_machine_kwarg(self):
        a = build_matrix(24, scale=0.02)
        exp = SpMVExperiment(a)
        results = exp.sweep_cores([1, 4], mode="model", iterations=1,
                                  machine="ft2000plus-64")
        assert [r.machine for r in results] == ["ft2000plus-64"] * 2
        scc = exp.sweep_cores([1], mode="model", iterations=1)
        assert scc[0].machine == "scc-48"

    def test_record_machine_field_only_off_default(self):
        a = build_matrix(24, scale=0.02)
        default = SpMVExperiment(a).run(n_cores=1, mode="model", iterations=1)
        phi = SpMVExperiment(a, machine="xeonphi-61").run(
            n_cores=1, mode="model", iterations=1
        )
        assert "machine" not in default.to_record()
        assert phi.to_record()["machine"] == "xeonphi-61"

    def test_machine_instance_accepted(self):
        a = build_matrix(24, scale=0.02)
        exp = SpMVExperiment(a, machine=XeonPhiMachine())
        assert isinstance(exp.machine, MachineModel)
        assert exp.topology.n_cores == 61

    def test_machine_comparison_data_rows(self, tmp_path):
        points = []
        for machine_id in list_machines():
            n = get_machine(machine_id).topology.n_cores
            points += Campaign.grid((24,), (n,), machines=(machine_id,))
        campaign = Campaign("cmp", tmp_path, scale=0.05, iterations=1, mode="model")
        campaign.run(points)
        rows = machine_comparison_data(campaign.load())
        assert [r["machine"] for r in rows] == [
            "scc-48", "ft2000plus-64", "xeonphi-61"
        ]
        for row in rows:
            assert row["gflops"] > 0
            assert row["mflops_per_watt"] > 0


class TestCLIMachine:
    def test_run_fig10_on_phi(self, capsys):
        from repro.cli import main

        code = main([
            "run", "fig10", "--scale", "0.02", "--ids", "24",
            "--machine", "xeonphi-61",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Xeon Phi conf0" in out

    def test_exact_rejected_off_scc(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="event-driven"):
            main([
                "run", "fig5", "--scale", "0.02", "--ids", "24",
                "--machine", "ft2000plus-64", "--exact",
            ])

    def test_validate_exact_rejected_off_scc(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="validate-exact"):
            main([
                "run", "--validate-exact", "--scale", "0.02",
                "--machine", "xeonphi-61",
            ])


def test_zoo_machines_survive_json_round_trip(tmp_path):
    """Records with the machine field are plain JSON (campaign contract)."""
    exp = SpMVExperiment(build_matrix(24, scale=0.02), machine="ft2000plus-64")
    rec = exp.run(n_cores=4, mode="model", iterations=1).to_record()
    assert json.loads(json.dumps(rec)) == rec


def test_no_deprecation_warnings_from_plain_import():
    """Importing the core package must not touch deprecated aliases."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import repro.core  # noqa: F401
        import repro.machine  # noqa: F401
