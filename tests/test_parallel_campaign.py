"""The parallel execution contract: sharding never changes the answers.

:mod:`repro.core.parallel` promises submission-order results, graceful
serial fallback, and crash-then-resume with no duplicates and no gaps;
:class:`~repro.core.campaign.Campaign` builds on that to make a
``workers=N`` run bitwise-identical to the serial one.  These tests pin
each promise, plus the metrics-merge algebra that makes parallel
campaign aggregation exact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.campaign import Campaign, CampaignPoint
from repro.core.parallel import (
    CRASH_ENV,
    CampaignWorkerCrash,
    available_parallelism,
    fork_context,
    in_worker,
    iter_ordered,
    maybe_crash,
    parallel_map,
)
from repro.core.supervise import CHAOS_ENV, SupervisePolicy
from repro.obs.metrics import merge_flat_summaries

pytestmark = pytest.mark.skipif(
    fork_context() is None, reason="requires the fork start method"
)

SCALE = 0.05
ITERATIONS = 2
GRID = dict(ids=(24, 30), core_counts=(1, 4), configs=("conf0", "conf1"))


def _square(x: int) -> int:
    """Module-level so pool workers can pickle it."""
    return x * x


def _campaign(tmp_path, name, **kw):
    kw.setdefault("scale", SCALE)
    kw.setdefault("iterations", ITERATIONS)
    kw.setdefault("mode", "model")
    return Campaign(name, tmp_path, **kw)


class TestPrimitives:
    def test_parallel_map_preserves_submission_order(self):
        items = list(range(12))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_serial_and_parallel_agree(self):
        items = list(range(7))
        assert parallel_map(_square, items, workers=1) == parallel_map(
            _square, items, workers=4
        )

    def test_iter_ordered_yields_item_result_pairs(self):
        pairs = list(iter_ordered(_square, [3, 1, 2], workers=2))
        assert pairs == [(3, 9), (1, 1), (2, 4)]

    def test_iter_ordered_bounds_in_flight_submissions(self):
        pulled = []

        def gen():
            for x in range(500):
                pulled.append(x)
                yield x

        it = iter_ordered(_square, gen(), workers=2)
        try:
            item, result = next(it)
            assert (item, result) == (0, 0)
            # sliding window: ~window_factor * workers in flight, not 500
            assert len(pulled) < 500
            assert len(pulled) <= 2 + 4 * 2 + 1
        finally:
            it.close()

    def test_iter_ordered_serial_path_stays_lazy(self):
        pulled = []

        def gen():
            for x in range(100):
                pulled.append(x)
                yield x

        it = iter_ordered(_square, gen(), workers=1)
        next(it)
        assert len(pulled) <= 3  # only the two-item peek plus one

    def test_fork_unavailable_degrades_to_serial(self, monkeypatch):
        import repro.core.parallel as par

        monkeypatch.setattr(par, "fork_context", lambda: None)
        with pytest.warns(UserWarning, match="running serially"):
            out = par.parallel_map(_square, [1, 2, 3], workers=4)
        assert out == [1, 4, 9]

    def test_maybe_crash_is_inert_in_the_parent(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "some:task")
        assert not in_worker()
        maybe_crash("some:task")  # must NOT kill the test process

    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1


class TestCampaignParallel:
    def test_parallel_file_bitwise_identical_to_serial(self, tmp_path):
        points = Campaign.grid(**GRID)
        serial = _campaign(tmp_path, "serial")
        par = _campaign(tmp_path, "par")
        assert serial.run(points) == (len(points), 0)
        assert par.run(points, workers=4) == (len(points), 0)
        assert par.path.read_bytes() == serial.path.read_bytes()

    def test_crash_resume_no_duplicates_no_gaps(self, tmp_path, monkeypatch):
        points = Campaign.grid(**GRID)
        serial = _campaign(tmp_path, "reference")
        serial.run(points)

        crashy = _campaign(tmp_path, "crashy")
        monkeypatch.setenv(CRASH_ENV, points[3].key())
        with pytest.raises(CampaignWorkerCrash) as excinfo:
            crashy.run(points, workers=2)
        assert excinfo.value.done + excinfo.value.remaining == len(points)
        assert excinfo.value.remaining > 0
        # the completed prefix is durable and duplicate-free
        prefix = crashy.completed_keys()
        assert len(prefix) == excinfo.value.done

        monkeypatch.delenv(CRASH_ENV)
        ran, skipped = crashy.run(points, workers=2)
        assert ran == excinfo.value.remaining
        assert skipped == excinfo.value.done
        # no gaps, no duplicates, and the same bytes a serial run writes
        assert crashy.completed_keys() == {pt.key() for pt in points}
        assert crashy.path.read_bytes() == serial.path.read_bytes()

    def test_duplicate_points_count_as_skipped(self, tmp_path):
        points = Campaign.grid(**GRID)
        c = _campaign(tmp_path, "dups")
        ran, skipped = c.run(points + points[:3])
        assert (ran, skipped) == (len(points), 3)
        # a second run skips everything
        assert c.run(points, workers=2) == (0, len(points))

    def test_workers_must_be_positive(self, tmp_path):
        c = _campaign(tmp_path, "vals")
        with pytest.raises(ValueError, match="workers"):
            c.run(Campaign.grid(**GRID), workers=0)

    def test_model_mode_rejects_fault_plan(self, tmp_path):
        from repro.faults.plan import EXAMPLE_PLANS

        with pytest.raises(ValueError, match="fault_plan requires mode='sim'"):
            _campaign(tmp_path, "bad", fault_plan=EXAMPLE_PLANS["lossy"])

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            _campaign(tmp_path, "bad", mode="magic")

    def test_parallel_metrics_summary_matches_serial(self, tmp_path):
        points = Campaign.grid(ids=(24,), core_counts=(1, 4), configs=("conf0",))
        serial = _campaign(tmp_path, "m_serial", collect_metrics=True)
        par = _campaign(tmp_path, "m_par", collect_metrics=True)
        serial.run(points)
        par.run(points, workers=2)
        summary = par.metrics_summary()
        assert summary == serial.metrics_summary()
        assert summary  # collect_metrics actually recorded something


class TestSupervisedCampaign:
    """Campaign.run under a SupervisePolicy: self-healing, same bytes."""

    POLICY = SupervisePolicy(max_retries=2, backoff_base=0.0, backoff_jitter=0.0)

    def test_supervised_run_bitwise_identical_to_serial(self, tmp_path):
        points = Campaign.grid(**GRID)
        serial = _campaign(tmp_path, "sup_serial")
        sup = _campaign(tmp_path, "sup_par")
        serial.run(points)
        assert sup.run(points, workers=4, policy=self.POLICY) == (len(points), 0)
        assert sup.path.read_bytes() == serial.path.read_bytes()
        assert sup.last_supervise["supervise.tasks"] == len(points)

    def test_transient_kill_heals_with_identical_bytes(self, tmp_path, monkeypatch):
        points = Campaign.grid(**GRID)
        serial = _campaign(tmp_path, "heal_ref")
        serial.run(points)
        # SIGKILL the worker running point 3 on its first attempt only
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps({points[3].key(): {"action": "kill", "attempts": [1]}}),
        )
        healed = _campaign(tmp_path, "heal_run")
        assert healed.run(points, workers=2, policy=self.POLICY) == (
            len(points),
            0,
        )
        # recovered records carry no retry metadata: bytes stay identical
        assert healed.path.read_bytes() == serial.path.read_bytes()
        assert healed.last_supervise["supervise.retries"] >= 1
        assert healed.last_supervise["supervise.worker_crashes"] >= 1

    def test_poison_point_quarantines_then_reruns_after_clearing(
        self, tmp_path, monkeypatch
    ):
        points = Campaign.grid(**GRID)
        serial = _campaign(tmp_path, "poison_ref")
        serial.run(points)
        target = points[5]
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps({target.key(): {"action": "kill", "attempts": "all"}}),
        )
        c = _campaign(tmp_path, "poison_run")
        assert c.run(points, workers=2, policy=self.POLICY) == (len(points), 0)
        # the poison point persisted as a structured quarantine record
        assert c.status_counts().get("quarantined") == 1
        quarantined = [
            rec for rec in c.load() if rec.get("status") == "quarantined"
        ]
        assert len(quarantined) == 1
        rec = quarantined[0]
        assert rec["reason"] == "crash"
        assert rec["attempts"] == self.POLICY.max_attempts
        assert len(rec["tracebacks"]) == self.POLICY.max_attempts
        assert rec["n_cores"] == target.n_cores
        # quarantined points are retryable: excluded from the resume set
        assert target.key() not in c.completed_keys()
        assert len(c.completed_keys()) == len(points) - 1

        # fault clears -> resume reruns exactly the quarantined point
        monkeypatch.delenv(CHAOS_ENV)
        assert c.run(points, workers=2, policy=self.POLICY) == (
            1,
            len(points) - 1,
        )
        assert c.completed_keys() == {pt.key() for pt in points}
        # the healed record supersedes the quarantine marker in load()
        assert c.status_counts() == {"ok": len(points)}
        assert c.summarize() == serial.summarize()

    def test_on_failure_serial_rescues_in_parent(self, tmp_path, monkeypatch):
        points = Campaign.grid(**GRID)
        serial = _campaign(tmp_path, "ladder_ref")
        serial.run(points)
        # poison in the pool: every in-pool attempt of point 0 dies; the
        # serial fallback runs in the parent, where chaos is inert.
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps({points[0].key(): {"action": "kill", "attempts": "all"}}),
        )
        policy = SupervisePolicy(
            max_retries=0, backoff_base=0.0, backoff_jitter=0.0,
            on_failure="serial",
        )
        c = _campaign(tmp_path, "ladder_run")
        assert c.run(points, workers=2, policy=policy) == (len(points), 0)
        assert c.status_counts() == {"ok": len(points)}
        assert c.path.read_bytes() == serial.path.read_bytes()
        assert c.last_supervise["supervise.fallbacks"] == 1


class TestMergeFlatSummaries:
    def test_counters_sum_as_totals(self):
        merged = merge_flat_summaries([{"msgs": 2.0}, {"msgs": 3.0, "drops": 1.0}])
        assert merged == {"drops": 1.0, "msgs": 5.0}

    def test_histograms_merge_count_weighted(self):
        a = {"lat": {"count": 2, "mean": 1.0, "min": 0.5, "max": 1.5}}
        b = {"lat": {"count": 6, "mean": 3.0, "min": 2.0, "max": 9.0}}
        merged = merge_flat_summaries([a, b])
        assert merged["lat"] == {"count": 8, "mean": 2.5, "min": 0.5, "max": 9.0}

    def test_empty_histograms_never_drag_min_max(self):
        empty = {"lat": {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}}
        real = {"lat": {"count": 4, "mean": 2.0, "min": 1.0, "max": 3.0}}
        assert merge_flat_summaries([empty, real]) == real
        assert merge_flat_summaries([real, empty]) == real
        assert merge_flat_summaries([empty]) == empty

    def test_merge_is_associative(self):
        parts = [
            {"n": 1.0, "lat": {"count": 1, "mean": 4.0, "min": 4.0, "max": 4.0}},
            {"n": 2.0, "lat": {"count": 3, "mean": 2.0, "min": 1.0, "max": 3.0}},
            {"n": 4.0, "lat": {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}},
        ]
        serial = merge_flat_summaries(parts)
        left = merge_flat_summaries([merge_flat_summaries(parts[:2]), parts[2]])
        right = merge_flat_summaries([parts[0], merge_flat_summaries(parts[1:])])
        assert serial == left == right


def test_crash_env_documented_name():
    """The test hook's env var is part of the public resume contract."""
    assert CRASH_ENV == "REPRO_FAULT_WORKER_CRASH"
    assert os.environ.get(CRASH_ENV) is None
