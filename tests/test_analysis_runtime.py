"""Integration tests for the dynamic pass: deadlock, races, collective
mismatches, determinism replay — each demonstrated by a buggy fixture."""

from __future__ import annotations

import pytest

from repro.analysis import RuntimeChecker, verify_program_determinism
from repro.analysis.check import check_battery, load_program, run_checked
from repro.analysis.determinism import diff_traces
from repro.rcce import RCCEDeadlockError, RCCEError, RCCERuntime
from repro.rcce.onesided import OneSided

from .fixtures import buggy_programs as buggy


def checked_runtime(n_ues: int) -> RCCERuntime:
    return RCCERuntime(list(range(n_ues)), checker=RuntimeChecker())


def rules_fired(checker: RuntimeChecker):
    return {f.rule for f in checker.findings}


class TestDeadlockDetector:
    def test_tag_mismatch_names_ranks_and_tags(self):
        rt = checked_runtime(2)
        with pytest.raises(RCCEDeadlockError) as excinfo:
            rt.run(buggy.deadlock_tag_mismatch)
        err = excinfo.value
        assert err.wait_for[0] == ("send", 1, 5)
        assert err.wait_for[1] == ("recv", 0, 7)
        assert "UE 0: blocked in send to UE 1 (tag=5)" in str(err)
        assert "UE 1: waits in recv(source=0, tag=7)" in str(err)
        assert "RT801" in rules_fired(rt.checker)

    def test_all_recv_graph(self):
        rt = checked_runtime(3)
        with pytest.raises(RCCEDeadlockError) as excinfo:
            rt.run(buggy.deadlock_all_recv)
        graph = excinfo.value.wait_for
        assert set(graph) == {0, 1, 2}
        assert all(info[0] == "recv" for info in graph.values())

    def test_deadlock_is_still_a_runtimeerror(self):
        """Backwards compatibility: older callers catch RuntimeError."""
        rt = RCCERuntime([0, 1])
        with pytest.raises(RuntimeError, match="deadlock"):
            rt.run(buggy.deadlock_all_recv)


class TestCollectiveMismatch:
    def test_kind_mismatch_detected_on_completed_run(self):
        rt = checked_runtime(4)
        rt.run(buggy.collective_kind_mismatch)  # completes: silent corruption
        assert "RT804" in rules_fired(rt.checker)
        msg = next(f for f in rt.checker.findings if f.rule == "RT804").message
        assert "barrier" in msg and "allreduce" in msg

    def test_size_mismatch_detected(self):
        rt = checked_runtime(3)
        rt.run(buggy.collective_size_mismatch)
        assert "RT805" in rules_fired(rt.checker)

    def test_matched_collectives_are_clean(self):
        def fn(comm):
            total = yield from comm.allreduce(float(comm.ue))
            yield from comm.barrier()
            return total

        rt = checked_runtime(4)
        rt.run(fn)
        assert rt.checker.findings == []


class TestRaceDetectors:
    def test_mpb_overwrite_race(self):
        rt = checked_runtime(2)
        onesided = OneSided(rt)
        rt.run(buggy.mpb_overwrite_race, onesided)
        assert "RT803" in rules_fired(rt.checker)
        msg = next(f for f in rt.checker.findings if f.rule == "RT803").message
        assert "offset 0" in msg

    def test_flag_synchronized_protocol_is_clean(self):
        def fn(comm, onesided):
            if comm.ue == 0:
                yield from onesided.put(0, 1, 0, b"one")
                yield from onesided.set_flag(0, 1, flag_id=0)
            else:
                yield from onesided.wait_flag(1, flag_id=0)
                payload = yield from onesided.get(1, 1, 0)
                return payload

        rt = checked_runtime(2)
        rt.run(fn, OneSided(rt))
        assert rt.checker.findings == []

    def test_mailbox_duplicate_envelope_race(self):
        from repro.rcce import Envelope, Mailbox
        from repro.sim import Simulator

        sim = Simulator()
        checker = RuntimeChecker()
        box = Mailbox(sim, owner=0, n_peers=2, checker=checker)
        box.deliver(Envelope(1, 4, "a", sim.event("ack1")))
        box.deliver(Envelope(1, 4, "b", sim.event("ack2")))  # undrained duplicate
        assert {f.rule for f in checker.findings} == {"RT802"}


class TestMailboxValidation:
    """Satellite: structured RCCEError instead of a hang/bare assert."""

    def setup_method(self):
        from repro.rcce import Mailbox
        from repro.sim import Simulator

        self.sim = Simulator()
        self.box = Mailbox(self.sim, owner=0, n_peers=4)

    def test_recv_nonexistent_peer_raises(self):
        with pytest.raises(RCCEError, match="peer rank 9 does not exist"):
            self.box.receive(source=9)

    def test_recv_negative_peer_raises(self):
        with pytest.raises(RCCEError, match="does not exist"):
            self.box.receive(source=-1)

    def test_recv_negative_tag_raises(self):
        with pytest.raises(RCCEError, match="negative tag"):
            self.box.receive(source=1, tag=-3)

    def test_runtime_recv_from_ghost_rank_raises(self):
        def fn(comm):
            data = yield from comm.recv(source=17)
            return data

        rt = RCCERuntime([0, 1])
        from repro.sim import ProcessFailure

        with pytest.raises(ProcessFailure, match="peer rank 17"):
            rt.run(fn)

    def test_valid_recv_unaffected(self):
        ev = self.box.receive(source=3, tag=0)
        assert not ev.triggered


class TestDeterminismVerifier:
    def test_deterministic_program_passes(self):
        def fn(comm):
            yield from comm.compute(1e-6 * (comm.ue + 1))
            yield from comm.barrier()

        report = verify_program_determinism(fn, n_ues=4)
        assert report.deterministic
        assert report.events_compared > 0
        assert report.findings == []

    def test_nondeterministic_program_caught(self):
        report = verify_program_determinism(buggy.nondeterministic_compute, n_ues=2)
        assert not report.deterministic
        assert report.divergence_index is not None
        assert [f.rule for f in report.findings] == ["DET900"]

    def test_diff_traces_length_mismatch(self):
        a = [(0.0, 0, "x"), (1.0, 1, "y")]
        index, desc = diff_traces(a, a[:1])
        assert index == 1 and "extra event" in desc

    def test_runs_below_two_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            verify_program_determinism(lambda comm: iter(()), 1, runs=1)


class TestCheckDriver:
    def test_battery_all_ok(self):
        results = check_battery(verify_determinism=False)
        assert len(results) >= 3
        assert all(r.ok for r in results), [
            (r.name, [str(f) for f in r.findings]) for r in results
        ]

    def test_run_checked_flags_buggy_program(self):
        result = run_checked(
            "deadlock", buggy.deadlock_tag_mismatch, 2, verify_determinism=False
        )
        assert not result.ok
        assert not result.completed
        assert "RT801" in {f.rule for f in result.findings}

    def test_load_program(self):
        import os

        path = os.path.join(os.path.dirname(__file__), "fixtures", "buggy_programs.py")
        name, fn = load_program(f"{path}:deadlock_all_recv")
        assert name == "deadlock_all_recv" and callable(fn)
        with pytest.raises(ValueError):
            load_program("no-colon")
        with pytest.raises(AttributeError):
            load_program(f"{path}:missing_function")


class TestChecksEnvGate:
    def test_env_enables_default_checker(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "1")
        rt = RCCERuntime([0, 1])
        assert rt.checker is not None

    def test_env_off_means_no_checker(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKS", raising=False)
        rt = RCCERuntime([0, 1])
        assert rt.checker is None

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "1")
        rt = RCCERuntime([0, 1], checks=False)
        assert rt.checker is None


class TestRuntimeCheckerEdgeCases:
    """Corner cases surfaced while building ``repro analyze
    --compare-runtime``: crashes, degenerate job sizes and empty
    payloads must neither hang the checker nor fire false findings."""

    def test_self_send_crashes_cleanly(self):
        def selfsend(comm):
            yield from comm.send(1.0, comm.ue)

        result = run_checked("selfsend", selfsend, 2, verify_determinism=False)
        assert not result.completed and not result.ok
        rules = {f.rule for f in result.findings}
        assert "RT800" in rules
        msg = next(f for f in result.findings if f.rule == "RT800").message
        assert "send to self" in msg

    def test_out_of_range_dest_crashes_cleanly(self):
        def bad_dest(comm):
            yield from comm.send(1.0, comm.num_ues)

        result = run_checked("bad_dest", bad_dest, 2, verify_determinism=False)
        assert not result.completed
        assert "RT800" in {f.rule for f in result.findings}

    def test_single_ue_collectives_complete(self):
        def single(comm):
            yield from comm.barrier()
            total = yield from comm.allreduce(3.0)
            got = yield from comm.gather(comm.ue, root=0)
            data = yield from comm.bcast((1, 2, 3), root=0)
            return total, got, data

        result = run_checked("single", single, 1, verify_determinism=True)
        assert result.completed and result.ok
        assert result.findings == []

    def test_single_ue_recv_times_out(self):
        from repro.rcce.errors import RCCETimeoutError

        def lonely(comm):
            try:
                yield from comm.recv(source=None, timeout=1e-6)
            except RCCETimeoutError:
                return "timed-out"
            return "got-a-message"

        rt = checked_runtime(1)
        results = rt.run(lonely)
        assert results[0].value == "timed-out"  # no peer can ever send

    def test_zero_payload_round_trip(self):
        def zero(comm):
            if comm.ue == 0:
                yield from comm.send(b"", 1, tag=1)
                back = yield from comm.recv(source=1, tag=2)
                return back
            back = yield from comm.recv(source=0, tag=1)
            yield from comm.send(b"", 0, tag=2)
            return back

        result = run_checked("zero", zero, 2, verify_determinism=True)
        assert result.completed and result.ok
        assert result.findings == []

    def test_zero_payload_collectives(self):
        def zero_coll(comm):
            data = yield from comm.bcast(None, root=0)
            yield from comm.barrier()
            return data

        result = run_checked("zero_coll", zero_coll, 3, verify_determinism=False)
        assert result.completed and result.ok
