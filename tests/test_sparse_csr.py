"""Tests for the CSR storage format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


class TestConstruction:
    def test_fig2_example(self, tiny_csr):
        """The 5x5 example structure of the paper's Fig. 2."""
        assert tiny_csr.shape == (5, 5)
        assert tiny_csr.nnz == 9
        assert list(tiny_csr.ptr) == [0, 2, 3, 6, 7, 9]
        assert list(tiny_csr.index) == [0, 2, 1, 0, 2, 3, 3, 1, 4]
        assert list(tiny_csr.da) == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]

    def test_dtype_contract(self, tiny_csr):
        """32-bit indices, 64-bit values — the Table I working-set basis."""
        assert tiny_csr.index.dtype == np.int32
        assert tiny_csr.da.dtype == np.float64

    def test_ptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([1, 2]), np.array([0]), np.array([1.0]), n_cols=3)

    def test_ptr_must_end_at_nnz(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), n_cols=3)

    def test_ptr_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2, 1, 3]), np.arange(3, dtype=np.int32), np.ones(3), n_cols=5)

    def test_column_bounds_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), n_cols=5)
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([-1]), np.array([1.0]), n_cols=5)

    def test_index_da_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2]), np.array([0, 1]), np.array([1.0]), n_cols=3)

    def test_empty_matrix(self):
        m = CSRMatrix(np.zeros(4, dtype=np.int64), np.empty(0, np.int32), np.empty(0), n_cols=7)
        assert m.shape == (3, 7)
        assert m.nnz == 0
        assert m.nnz_per_row == 0.0


class TestRoundTrips:
    def test_dense_round_trip(self, rng):
        dense = rng.uniform(size=(20, 30))
        dense[dense < 0.7] = 0.0
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.to_dense(), dense)

    def test_scipy_round_trip(self, small_banded):
        sp = small_banded.to_scipy()
        back = CSRMatrix.from_scipy(sp)
        assert back.allclose(small_banded)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.ones(5))


class TestAccessors:
    def test_row_contents(self, tiny_csr):
        cols, vals = tiny_csr.row(2)
        assert list(cols) == [0, 2, 3]
        assert list(vals) == [4.0, 5.0, 6.0]

    def test_row_out_of_range(self, tiny_csr):
        with pytest.raises(IndexError):
            tiny_csr.row(5)

    def test_iter_rows_covers_matrix(self, tiny_csr):
        total = sum(len(cols) for _, cols, _ in tiny_csr.iter_rows())
        assert total == tiny_csr.nnz

    def test_row_lengths(self, tiny_csr):
        assert list(tiny_csr.row_lengths()) == [2, 1, 3, 1, 2]

    def test_nnz_per_row(self, tiny_csr):
        assert tiny_csr.nnz_per_row == pytest.approx(9 / 5)


class TestRowBlock:
    def test_block_values(self, tiny_csr):
        b = tiny_csr.row_block(1, 4)
        assert b.shape == (3, 5)
        assert b.nnz == 5
        np.testing.assert_allclose(b.to_dense(), tiny_csr.to_dense()[1:4])

    def test_block_ptr_rebased(self, tiny_csr):
        b = tiny_csr.row_block(2, 5)
        assert b.ptr[0] == 0
        assert b.ptr[-1] == b.nnz

    def test_whole_matrix_block(self, tiny_csr):
        b = tiny_csr.row_block(0, 5)
        assert b.allclose(tiny_csr)

    def test_empty_block(self, tiny_csr):
        b = tiny_csr.row_block(2, 2)
        assert b.shape == (0, 5)
        assert b.nnz == 0

    def test_bad_block_raises(self, tiny_csr):
        with pytest.raises(ValueError):
            tiny_csr.row_block(3, 2)
        with pytest.raises(ValueError):
            tiny_csr.row_block(0, 6)


class TestCOO:
    def test_duplicates_are_summed(self):
        coo = COOMatrix(3, 3, np.array([0, 0, 1]), np.array([1, 1, 2]), np.array([2.0, 3.0, 4.0]))
        m = coo.to_csr()
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 5.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([2]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([0]), np.array([-1]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_empty_coo(self):
        coo = COOMatrix(4, 4, np.array([], dtype=int), np.array([], dtype=int), np.array([]))
        m = coo.to_csr()
        assert m.nnz == 0 and m.shape == (4, 4)

    def test_csr_rows_sorted_by_column(self, rng):
        n = 50
        rows = rng.integers(0, n, size=500)
        cols = rng.integers(0, n, size=500)
        vals = rng.uniform(size=500)
        m = COOMatrix(n, n, rows, cols, vals).to_csr()
        for i in range(n):
            c, _ = m.row(i)
            assert (np.diff(c) > 0).all()  # strictly increasing: deduped

    def test_coo_dense_agrees_with_csr_dense(self, rng):
        rows = rng.integers(0, 10, size=40)
        cols = rng.integers(0, 10, size=40)
        vals = rng.uniform(size=40)
        coo = COOMatrix(10, 10, rows, cols, vals)
        np.testing.assert_allclose(coo.to_dense(), coo.to_csr().to_dense())
