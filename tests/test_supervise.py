"""The self-healing supervisor: retry, timeout, quarantine, fallback.

:mod:`repro.core.supervise` promises that worker deaths, hangs and task
exceptions never take a sweep down: failed attempts retry with
deterministic backoff, hung workers are SIGKILLed at the task deadline,
poison tasks quarantine with a structured failure history, and an
optional fallback ladder rescues tasks in the parent before quarantine.
These tests pin each promise with real forked workers and real injected
faults (the :data:`~repro.core.supervise.CHAOS_ENV` schedule).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.parallel import fork_context
from repro.core.supervise import (
    CHAOS_ENV,
    ON_FAILURE_LADDER,
    QuarantinedTaskError,
    SupervisePolicy,
    TaskOutcome,
    backoff_delay,
    chaos_spec,
    maybe_chaos,
    supervised_iter_ordered,
    supervised_parallel_map,
)
from repro.obs.metrics import MetricsRegistry, summary_prefix

pytestmark = pytest.mark.skipif(
    fork_context() is None, reason="requires the fork start method"
)

#: instant-retry policy: no backoff waits slowing the suite down.
FAST = dict(backoff_base=0.0, backoff_jitter=0.0)


def _square(x: int) -> int:
    """Module-level so forked workers inherit it cleanly."""
    return x * x


def _sleep_forever(x: int) -> int:
    time.sleep(300)
    return x


def _chaos(monkeypatch, schedule: dict) -> None:
    monkeypatch.setenv(CHAOS_ENV, json.dumps(schedule))


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            SupervisePolicy(task_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            SupervisePolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="backoff_jitter"):
            SupervisePolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError, match="on_failure"):
            SupervisePolicy(on_failure="shrug")

    def test_max_attempts(self):
        assert SupervisePolicy(max_retries=0).max_attempts == 1
        assert SupervisePolicy(max_retries=3).max_attempts == 4

    def test_ladder_is_the_documented_one(self):
        assert ON_FAILURE_LADDER == ("quarantine", "serial", "model", "raise")


class TestBackoffDelay:
    POLICY = SupervisePolicy(
        backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0, backoff_jitter=0.25
    )

    def test_deterministic(self):
        a = backoff_delay(self.POLICY, "task:1", 2)
        b = backoff_delay(self.POLICY, "task:1", 2)
        assert a == b  # not approx: byte-identical replay schedules

    def test_jitter_varies_by_identity_and_attempt(self):
        assert backoff_delay(self.POLICY, "task:1", 2) != backoff_delay(
            self.POLICY, "task:2", 2
        )
        assert backoff_delay(self.POLICY, "task:1", 2) != backoff_delay(
            self.POLICY, "task:1", 3
        )

    def test_bounded_exponential_with_jitter_band(self):
        for attempt, base in ((2, 0.1), (3, 0.2), (4, 0.4)):
            d = backoff_delay(self.POLICY, "t", attempt)
            assert base <= d <= base * 1.25

    def test_cap(self):
        # attempt 12 would be base * 2**10 = 102.4 s without the cap
        assert backoff_delay(self.POLICY, "t", 12) <= 1.0 * 1.25

    def test_zero_jitter_is_exact(self):
        p = SupervisePolicy(backoff_base=0.5, backoff_jitter=0.0)
        assert backoff_delay(p, "anything", 2) == 0.5


class TestChaosHook:
    def test_spec_parses_valid_schedules(self, monkeypatch):
        _chaos(monkeypatch, {"t": {"action": "kill", "attempts": [1]}})
        assert chaos_spec() == {"t": {"action": "kill", "attempts": [1]}}

    def test_spec_tolerates_garbage(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "{not json")
        assert chaos_spec() == {}

    def test_inert_in_the_parent(self, monkeypatch):
        _chaos(monkeypatch, {"t": {"action": "kill", "attempts": "all"}})
        maybe_chaos("t", 1)  # must NOT kill the test process


class TestSupervisedIterOrdered:
    def test_clean_run_matches_map_in_order(self):
        outcomes = list(supervised_iter_ordered(_square, range(9), workers=3))
        assert [o.value for o in outcomes] == [x * x for x in range(9)]
        assert all(o.ok and o.attempts == 1 and not o.failures for o in outcomes)

    def test_kill_on_attempt_1_succeeds_on_attempt_2(self, monkeypatch):
        _chaos(monkeypatch, {"2": {"action": "kill", "attempts": [1]}})
        registry = MetricsRegistry()
        outcomes = list(
            supervised_iter_ordered(
                _square,
                range(5),
                workers=2,
                policy=SupervisePolicy(**FAST),
                metrics=registry,
            )
        )
        # no duplicates, no gaps, submission order kept
        assert [o.value for o in outcomes] == [0, 1, 4, 9, 16]
        rescued = outcomes[2]
        assert rescued.ok and rescued.attempts == 2 and rescued.retries == 1
        assert rescued.failures[0].kind == "crash"
        m = summary_prefix(registry.flat_summary(), "supervise")
        assert m["tasks"] == 5
        assert m["retries"] == 1
        assert m["worker_crashes"] >= 1
        assert m["respawns"] >= 1
        assert "quarantines" not in m

    def test_poison_task_quarantines_with_history(self, monkeypatch):
        _chaos(monkeypatch, {"3": {"action": "raise", "attempts": "all"}})
        registry = MetricsRegistry()
        outcomes = list(
            supervised_iter_ordered(
                _square,
                range(5),
                workers=2,
                policy=SupervisePolicy(max_retries=1, **FAST),
                metrics=registry,
            )
        )
        poisoned = outcomes[3]
        assert not poisoned.ok
        assert poisoned.attempts == 2
        assert [f.kind for f in poisoned.failures] == ["error", "error"]
        assert all("ChaosInjectedError" in f.detail for f in poisoned.failures)
        # the healthy neighbours are untouched
        assert [o.value for o in outcomes[:3]] == [0, 1, 4]
        assert outcomes[4].value == 16
        rec = poisoned.quarantine_record()
        assert rec["status"] == "quarantined"
        assert rec["reason"] == "error"
        assert rec["attempts"] == 2
        assert len(rec["tracebacks"]) == 2
        m = summary_prefix(registry.flat_summary(), "supervise")
        assert m["quarantines"] == 1
        assert m["retries"] == 1

    def test_hung_worker_killed_at_deadline(self, monkeypatch):
        _chaos(monkeypatch, {"1": {"action": "stop", "attempts": "all"}})
        t0 = time.monotonic()
        outcomes = list(
            supervised_iter_ordered(
                _square,
                range(3),
                workers=2,
                policy=SupervisePolicy(task_timeout=0.5, max_retries=0, **FAST),
            )
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0  # SIGSTOP did not wedge the sweep
        hung = outcomes[1]
        assert not hung.ok
        assert hung.failures[0].kind == "timeout"
        assert "SIGKILLed" in hung.failures[0].detail
        assert outcomes[0].ok and outcomes[2].ok

    def test_slow_task_times_out_without_chaos(self):
        outcomes = list(
            supervised_iter_ordered(
                _sleep_forever,
                [0],
                workers=1,
                policy=SupervisePolicy(task_timeout=0.3, max_retries=0, **FAST),
            )
        )
        assert not outcomes[0].ok
        assert outcomes[0].quarantine_record()["reason"] == "timeout"

    def test_fallback_ladder_rescues_before_quarantine(self, monkeypatch):
        _chaos(monkeypatch, {"2": {"action": "kill", "attempts": "all"}})
        registry = MetricsRegistry()
        outcomes = list(
            supervised_iter_ordered(
                _square,
                range(4),
                workers=2,
                policy=SupervisePolicy(max_retries=0, **FAST),
                fallbacks=[("serial", _square)],
                metrics=registry,
            )
        )
        rescued = outcomes[2]
        assert rescued.ok and rescued.value == 4
        assert rescued.fallback == "serial"
        assert rescued.failures  # the in-pool attempt is still on record
        m = summary_prefix(registry.flat_summary(), "supervise")
        assert m["fallbacks"] == 1
        assert "quarantines" not in m

    def test_on_failure_raise_aborts(self, monkeypatch):
        _chaos(monkeypatch, {"0": {"action": "raise", "attempts": "all"}})
        with pytest.raises(QuarantinedTaskError, match="failed all 1 attempt"):
            list(
                supervised_iter_ordered(
                    _square,
                    range(2),
                    workers=2,
                    policy=SupervisePolicy(
                        max_retries=0, on_failure="raise", **FAST
                    ),
                )
            )

    def test_lazy_items_bounded_window(self):
        pulled = []

        def gen():
            for x in range(200):
                pulled.append(x)
                yield x

        it = supervised_iter_ordered(
            _square, gen(), workers=2, policy=SupervisePolicy(**FAST)
        )
        try:
            first = next(it)
            assert first.value == 0
            # window_factor=4 * 2 workers = 8 beyond the unyielded head
            assert len(pulled) < 200
            assert len(pulled) <= 2 + 4 * 2 + 1
        finally:
            it.close()


class TestSupervisedParallelMap:
    def test_values_in_order(self):
        assert supervised_parallel_map(_square, range(7), workers=3) == [
            x * x for x in range(7)
        ]

    def test_raises_on_quarantine_regardless_of_policy(self, monkeypatch):
        _chaos(monkeypatch, {"1": {"action": "raise", "attempts": "all"}})
        with pytest.raises(QuarantinedTaskError) as excinfo:
            supervised_parallel_map(
                _square,
                range(3),
                workers=2,
                policy=SupervisePolicy(max_retries=0, **FAST),
            )
        assert isinstance(excinfo.value.outcome, TaskOutcome)
        assert excinfo.value.outcome.identity == "1"


class TestForklessDegradation:
    def test_serial_supervision_retries_and_quarantines(self, monkeypatch):
        import repro.core.supervise as sup

        monkeypatch.setattr(sup, "fork_context", lambda: None)
        calls = {"n": 0}

        def flaky(x: int) -> int:
            calls["n"] += 1
            if x == 1 and calls["n"] < 3:  # item 1 fails its first attempt
                raise RuntimeError("transient")
            if x == 2:
                raise RuntimeError("poison")
            return x * x

        with pytest.warns(UserWarning, match="in-process"):
            outcomes = list(
                sup.supervised_iter_ordered(
                    flaky,
                    range(3),
                    workers=4,
                    policy=SupervisePolicy(max_retries=1, **FAST),
                )
            )
        assert outcomes[0].ok and outcomes[1].ok
        assert outcomes[1].attempts == 2
        assert not outcomes[2].ok
        assert outcomes[2].attempts == 2
