"""Predictor training, artifact round-trip and fallback contracts.

Three guarantees the predict tier stands on:

* **determinism** — the same labelled rows always fit bit-identical
  models (no RNG anywhere in the regressor);
* **round-trip fidelity** — train → seal into the store → reload gives
  bitwise-identical predictions, and a corrupted artifact is
  quarantined by the store's sha256 seal rather than half-loaded;
* **fail-soft** — ``mode="predict"`` without a usable artifact answers
  via ``mode="model"`` after exactly one structured warning, and the
  ``predicted`` result flag tells callers which tier answered.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.experiment import SpMVExperiment
from repro.machine.registry import get_machine
from repro.predict import (
    MODEL_NAMESPACE,
    PredictFallbackWarning,
    clear_predictor_cache,
    fit_perf_regressor,
    get_predictor,
    labelled_rows,
    load_predictor,
    model_store_key,
    save_predictor,
    train_predictor,
)
from repro.sparse.suite import build_matrix, entry_by_id
from repro.store import ContentStore

MACHINE = get_machine("scc-48")
GRID = dict(core_counts=(1, 2, 4, 8), scale=0.05, iterations=2)


@pytest.fixture(scope="module")
def rows():
    """One small labelled grid, shared by every test in the module."""
    return labelled_rows(MACHINE, (2, 7), use_store=False, **GRID)


def test_fit_is_deterministic(rows):
    x, y = rows
    from repro.sparse.features import FEATURE_NAMES

    a = fit_perf_regressor(x, y, FEATURE_NAMES, n_rounds=80)
    b = fit_perf_regressor(x, y, FEATURE_NAMES, n_rounds=80)
    assert np.array_equal(a.coef, b.coef)
    assert a.intercept == b.intercept
    assert np.array_equal(a.stump_feature, b.stump_feature)
    assert np.array_equal(a.stump_threshold, b.stump_threshold)
    assert np.array_equal(a.predict(x), b.predict(x))


def test_in_sample_error_is_reported_and_small(rows):
    x, y = rows
    from repro.sparse.features import FEATURE_NAMES

    model = fit_perf_regressor(x, y, FEATURE_NAMES, n_rounds=120)
    assert model.train_rows == x.shape[0]
    assert model.train_stats["median_rel_err_pct"] < 10.0


def test_out_of_distribution_extrapolation_is_bounded(rows):
    """Features beyond the training envelope are clipped, so an extreme
    query predicts exactly what the clipped (in-envelope) point does —
    the linear stage can never run off to a nonsense makespan."""
    x, y = rows
    from repro.sparse.features import FEATURE_NAMES

    model = fit_perf_regressor(x, y, FEATURE_NAMES, n_rounds=80)
    extreme = model.x_max * 1e6 + 1e6  # far outside every feature's range
    clipped = np.clip(extreme, model.x_min, model.x_max)
    assert np.array_equal(model.predict(extreme), model.predict(clipped))
    # and the clipped prediction stays inside the training target range
    pad = 0.5 * (y.max() - y.min())
    assert y.min() - pad <= model.predict(extreme)[0] <= y.max() + pad


def test_artifact_roundtrip_bitwise(rows):
    x, _ = rows
    model, _ = train_predictor(MACHINE, (2, 7), n_rounds=80, **GRID)
    before = model.predict(x)
    clear_predictor_cache()
    loaded = get_predictor(MACHINE)
    assert loaded is not None
    assert np.array_equal(loaded.predict(x), before)
    assert loaded.feature_names == model.feature_names
    assert loaded.train_stats == model.train_stats


def test_corrupt_artifact_quarantined_then_fallback(rows):
    train_predictor(MACHINE, (2,), n_rounds=40, **GRID)
    store = ContentStore(namespace=MODEL_NAMESPACE)
    key = model_store_key(MACHINE.cache_key())
    path = store.path_for(key, "npz")
    assert path.exists()
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    path.write_bytes(bytes(payload))
    clear_predictor_cache()
    assert load_predictor(MACHINE) is None
    # the seal mismatch moved the bundle aside; nothing half-loads later
    assert not path.exists()
    assert store.corrupt_count() >= 1


def test_missing_artifact_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert get_predictor(MACHINE) is None
        assert get_predictor(MACHINE) is None
    fallback = [w for w in caught if issubclass(w.category, PredictFallbackWarning)]
    assert len(fallback) == 1
    assert "repro predict train" in str(fallback[0].message)


def test_mode_predict_falls_back_to_model():
    exp = SpMVExperiment(
        build_matrix(2, scale=0.05), name=entry_by_id(2).name, machine="scc-48"
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PredictFallbackWarning)
        predicted = exp.run(n_cores=4, iterations=2, mode="predict")
    modeled = exp.run(n_cores=4, iterations=2, mode="model")
    assert not predicted.predicted  # the model tier answered
    assert predicted.makespan == modeled.makespan


def test_predicted_flag_in_records(rows):
    train_predictor(MACHINE, (2, 7), n_rounds=80, **GRID)
    exp = SpMVExperiment(
        build_matrix(2, scale=0.05), name=entry_by_id(2).name, machine="scc-48"
    )
    pred = exp.run(n_cores=4, iterations=2, mode="predict")
    assert pred.predicted
    assert pred.to_record()["predicted"] is True
    modeled = exp.run(n_cores=4, iterations=2, mode="model")
    assert "predicted" not in modeled.to_record()
    # the prediction lands within the gate's error budget on this point
    rel = abs(pred.makespan - modeled.makespan) / modeled.makespan
    assert rel < 0.25
