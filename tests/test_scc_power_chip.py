"""Tests for the power model and chip configurations."""

from __future__ import annotations

import pytest

from repro.scc import (
    CONF0,
    CONF1,
    CONF2,
    CORE_FREQS_MHZ,
    PRESETS,
    SCCConfig,
    chip_power,
    core_voltage,
    mesh_voltage,
)
from repro.scc.topology import N_TILES


class TestVoltageTable:
    def test_menu_frequencies_have_voltages(self):
        for f in CORE_FREQS_MHZ:
            v = core_voltage(f)
            assert 0.6 < v < 1.3

    def test_voltage_monotone_in_frequency(self):
        vs = [core_voltage(f) for f in CORE_FREQS_MHZ]
        assert vs == sorted(vs)

    def test_intermediate_frequency_rounds_up(self):
        assert core_voltage(500) == core_voltage(533)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            core_voltage(900)
        with pytest.raises(ValueError):
            core_voltage(0)
        with pytest.raises(ValueError):
            mesh_voltage(2000)

    def test_mesh_voltages(self):
        assert mesh_voltage(800) < mesh_voltage(1600)


class TestChipPower:
    def test_calibration_anchor_conf0(self):
        """Paper Sec. IV-D: 83.3 W running on 48 cores at conf0."""
        assert CONF0.full_chip_power() == pytest.approx(83.3, abs=0.2)

    def test_calibration_anchor_conf1(self):
        """Paper Sec. IV-D: 107.4 W at conf1."""
        assert CONF1.full_chip_power() == pytest.approx(107.4, abs=0.2)

    def test_conf2_between_conf0_and_conf1(self):
        assert CONF0.full_chip_power() < CONF2.full_chip_power() < CONF1.full_chip_power()

    def test_power_gated_tiles_cost_nothing_dynamic(self):
        all_on = chip_power([533.0] * N_TILES, 800, 800)
        half_on = chip_power([533.0] * 12 + [0.0] * 12, 800, 800)
        assert half_on < all_on

    def test_negative_tile_frequency_rejected(self):
        with pytest.raises(ValueError):
            chip_power([-1.0] * N_TILES, 800, 800)

    def test_power_monotone_in_core_frequency(self):
        p_slow = chip_power([100.0] * N_TILES, 800, 800)
        p_fast = chip_power([800.0] * N_TILES, 800, 800)
        assert p_fast > p_slow


class TestSCCConfig:
    def test_presets_registered(self):
        assert set(PRESETS) == {"conf0", "conf1", "conf2"}
        assert PRESETS["conf0"] is CONF0

    def test_paper_frequencies(self):
        assert (CONF0.core_mhz, CONF0.mesh_mhz, CONF0.mem_mhz) == (533, 800, 800)
        assert (CONF1.core_mhz, CONF1.mesh_mhz, CONF1.mem_mhz) == (800, 1600, 1066)
        assert (CONF2.core_mhz, CONF2.mesh_mhz, CONF2.mem_mhz) == (800, 1600, 800)

    def test_off_menu_frequencies_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig.uniform("bad", core_mhz=600)
        with pytest.raises(ValueError):
            SCCConfig.uniform("bad", mesh_mhz=1000)
        with pytest.raises(ValueError):
            SCCConfig.uniform("bad", mem_mhz=933)

    def test_tile_count_enforced(self):
        with pytest.raises(ValueError):
            SCCConfig("bad", tile_mhz=(533.0,) * 10)

    def test_per_tile_frequencies(self):
        tiles = (533.0,) * 12 + (800.0,) * 12
        cfg = SCCConfig("mixed", tile_mhz=tiles)
        assert not cfg.is_uniform
        assert cfg.core_mhz_of_tile(0) == 533
        assert cfg.core_mhz_of_tile(23) == 800
        assert cfg.core_mhz_of_core(0) == 533
        assert cfg.core_mhz_of_core(47) == 800
        with pytest.raises(ValueError):
            _ = cfg.core_mhz

    def test_with_l2_toggle(self):
        off = CONF0.with_l2(False)
        assert not off.l2_enabled
        assert off.name.endswith("+noL2")
        assert CONF0.l2_enabled  # original untouched
        on = off.with_l2(True)
        assert on.l2_enabled

    def test_default_uniform(self):
        cfg = SCCConfig.uniform("d")
        assert cfg.core_mhz == 533
        assert cfg.l2_enabled
