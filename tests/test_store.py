"""Tests for the content-addressed on-disk artifact store."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.store
from repro.store import (
    STORE_ENOSPC_ENV,
    ContentStore,
    cache_enabled,
    default_cache_dir,
    digest_arrays,
    digest_parts,
)


@pytest.fixture()
def store(tmp_path):
    return ContentStore(root=tmp_path, namespace="test")


class TestDigests:
    def test_digest_parts_distinguishes_values(self):
        assert digest_parts("a", 1) != digest_parts("a", 2)
        assert digest_parts("a", 1) != digest_parts("b", 1)
        # Floats digest via repr: close-but-distinct values never alias.
        assert digest_parts(0.1) != digest_parts(0.1 + 1e-12)

    def test_digest_parts_is_stable(self):
        assert digest_parts("ns", 3, True) == digest_parts("ns", 3, True)

    def test_digest_arrays_sensitive_to_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.int64)
        assert digest_arrays(a) == digest_arrays(a.copy())
        assert digest_arrays(a) != digest_arrays(a.astype(np.int32))
        assert digest_arrays(a) != digest_arrays(a.reshape(2, 3))
        b = a.copy()
        b[0] = 99
        assert digest_arrays(a) != digest_arrays(b)
        assert digest_arrays(a, extra="x") != digest_arrays(a, extra="y")


class TestJsonEntries:
    def test_round_trip(self, store):
        key = digest_parts("k", 1)
        assert store.get_json(key) is None
        store.put_json(key, {"hits": 3, "misses": 1})
        assert store.get_json(key) == {"hits": 3, "misses": 1}

    def test_corrupt_entry_is_a_miss_and_quarantined(self, store):
        key = digest_parts("k", 2)
        store.put_json(key, {"ok": True})
        path = store.path_for(key, "json")
        path.write_text("{truncated")
        assert store.get_json(key) is None
        # the evidence is moved to corrupt/, never deleted or re-read
        assert not path.exists()
        assert (store.corrupt_dir / path.name).read_text() == "{truncated"

    def test_non_dict_payload_rejected(self, store):
        key = digest_parts("k", 3)
        path = store.path_for(key, "json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert store.get_json(key) is None

    def test_bit_flip_in_payload_is_a_miss(self, store):
        key = digest_parts("k", 5)
        store.put_json(key, {"mflops": 24.55})
        path = store.path_for(key, "json")
        # valid JSON, valid frame shape — but the payload no longer
        # matches its recorded sha256, so the read must reject it.
        frame = json.loads(path.read_text())
        frame["payload"]["mflops"] = 9999.0
        path.write_text(json.dumps(frame))
        assert store.get_json(key) is None
        assert (store.corrupt_dir / path.name).exists()

    def test_legacy_unsealed_entry_is_a_miss(self, store):
        key = digest_parts("k", 6)
        path = store.path_for(key, "json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"mflops": 24.55}')  # pre-integrity format
        assert store.get_json(key) is None
        assert (store.corrupt_dir / path.name).exists()

    def test_two_level_fanout(self, store):
        key = digest_parts("k", 4)
        store.put_json(key, {})
        assert store.path_for(key, "json").parent.name == key[:2]


class TestArrayEntries:
    def test_round_trip(self, store):
        key = digest_parts("a", 1)
        assert store.get_arrays(key) is None
        store.put_arrays(key, x=np.arange(5), y=np.ones((2, 2)))
        bundle = store.get_arrays(key)
        np.testing.assert_array_equal(bundle["x"], np.arange(5))
        np.testing.assert_array_equal(bundle["y"], np.ones((2, 2)))

    def test_corrupt_bundle_is_a_miss(self, store):
        key = digest_parts("a", 2)
        store.put_arrays(key, x=np.arange(5))
        path = store.path_for(key, "npz")
        path.write_bytes(b"not an npz")
        assert store.get_arrays(key) is None
        assert (store.corrupt_dir / path.name).exists()

    def test_truncated_bundle_is_a_miss(self, store):
        key = digest_parts("a", 3)
        store.put_arrays(key, x=np.arange(512, dtype=np.float64))
        path = store.path_for(key, "npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.get_arrays(key) is None
        assert (store.corrupt_dir / path.name).exists()

    def test_missing_seal_is_a_miss(self, store):
        key = digest_parts("a", 4)
        path = store.path_for(key, "npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        import io

        buf = io.BytesIO()
        np.savez(buf, x=np.arange(5))  # legacy bundle: no __sha256__
        path.write_bytes(buf.getvalue())
        assert store.get_arrays(key) is None
        assert (store.corrupt_dir / path.name).exists()

    def test_seal_name_is_reserved(self, store):
        with pytest.raises(ValueError, match="reserved"):
            store.put_arrays(digest_parts("a", 5), __sha256__=np.arange(3))

    def test_quarantine_preserves_round_trip_after_rewrite(self, store):
        key = digest_parts("a", 6)
        store.put_arrays(key, x=np.arange(4))
        store.path_for(key, "npz").write_bytes(b"junk")
        assert store.get_arrays(key) is None
        store.put_arrays(key, x=np.arange(4))  # recompute-and-rewrite
        np.testing.assert_array_equal(store.get_arrays(key)["x"], np.arange(4))


class TestFailedWrites:
    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self, monkeypatch):
        monkeypatch.setattr(repro.store, "_WARNED_ERRNOS", set())

    def test_enospc_warns_once_and_drops_the_entry(self, store, monkeypatch):
        monkeypatch.setenv(STORE_ENOSPC_ENV, "1")
        key = digest_parts("k", 1)
        with pytest.warns(RuntimeWarning, match="no space left"):
            store.put_json(key, {"doomed": True})
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.put_json(key, {"doomed": True})  # second failure: silent
            store.put_arrays(digest_parts("a", 1), x=np.arange(3))
        assert not [w for w in caught if "no space left" in str(w.message)]
        assert store.get_json(key) is None

    def test_enospc_leaves_no_temp_files(self, store, monkeypatch):
        monkeypatch.setenv(STORE_ENOSPC_ENV, "1")
        with pytest.warns(RuntimeWarning):
            store.put_json(digest_parts("k", 2), {"doomed": True})
        assert not list(store.root.rglob("*.tmp"))

    def test_recovery_after_space_returns(self, store, monkeypatch):
        monkeypatch.setenv(STORE_ENOSPC_ENV, "1")
        key = digest_parts("k", 3)
        with pytest.warns(RuntimeWarning):
            store.put_json(key, {"v": 1})
        monkeypatch.delenv(STORE_ENOSPC_ENV)
        store.put_json(key, {"v": 2})
        assert store.get_json(key) == {"v": 2}


class TestEnvControl:
    def test_disable_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        assert not cache_enabled()
        store = ContentStore(root=tmp_path, namespace="off")
        key = digest_parts("k", 1)
        store.put_json(key, {"dropped": True})
        assert not any(tmp_path.rglob("*.json"))
        monkeypatch.delenv("REPRO_NO_DISK_CACHE")
        assert cache_enabled()
        assert store.get_json(key) is None  # nothing was ever written

    def test_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachehome"))
        assert default_cache_dir() == tmp_path / "cachehome"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().name == "repro"
