"""Tests for the content-addressed on-disk artifact store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import (
    ContentStore,
    cache_enabled,
    default_cache_dir,
    digest_arrays,
    digest_parts,
)


@pytest.fixture()
def store(tmp_path):
    return ContentStore(root=tmp_path, namespace="test")


class TestDigests:
    def test_digest_parts_distinguishes_values(self):
        assert digest_parts("a", 1) != digest_parts("a", 2)
        assert digest_parts("a", 1) != digest_parts("b", 1)
        # Floats digest via repr: close-but-distinct values never alias.
        assert digest_parts(0.1) != digest_parts(0.1 + 1e-12)

    def test_digest_parts_is_stable(self):
        assert digest_parts("ns", 3, True) == digest_parts("ns", 3, True)

    def test_digest_arrays_sensitive_to_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.int64)
        assert digest_arrays(a) == digest_arrays(a.copy())
        assert digest_arrays(a) != digest_arrays(a.astype(np.int32))
        assert digest_arrays(a) != digest_arrays(a.reshape(2, 3))
        b = a.copy()
        b[0] = 99
        assert digest_arrays(a) != digest_arrays(b)
        assert digest_arrays(a, extra="x") != digest_arrays(a, extra="y")


class TestJsonEntries:
    def test_round_trip(self, store):
        key = digest_parts("k", 1)
        assert store.get_json(key) is None
        store.put_json(key, {"hits": 3, "misses": 1})
        assert store.get_json(key) == {"hits": 3, "misses": 1}

    def test_corrupt_entry_is_a_miss_and_dies(self, store):
        key = digest_parts("k", 2)
        store.put_json(key, {"ok": True})
        path = store.path_for(key, "json")
        path.write_text("{truncated")
        assert store.get_json(key) is None
        assert not path.exists()  # corrupt file deleted, not re-read

    def test_non_dict_payload_rejected(self, store):
        key = digest_parts("k", 3)
        path = store.path_for(key, "json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert store.get_json(key) is None

    def test_two_level_fanout(self, store):
        key = digest_parts("k", 4)
        store.put_json(key, {})
        assert store.path_for(key, "json").parent.name == key[:2]


class TestArrayEntries:
    def test_round_trip(self, store):
        key = digest_parts("a", 1)
        assert store.get_arrays(key) is None
        store.put_arrays(key, x=np.arange(5), y=np.ones((2, 2)))
        bundle = store.get_arrays(key)
        np.testing.assert_array_equal(bundle["x"], np.arange(5))
        np.testing.assert_array_equal(bundle["y"], np.ones((2, 2)))

    def test_corrupt_bundle_is_a_miss(self, store):
        key = digest_parts("a", 2)
        store.put_arrays(key, x=np.arange(5))
        store.path_for(key, "npz").write_bytes(b"not an npz")
        assert store.get_arrays(key) is None


class TestEnvControl:
    def test_disable_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        assert not cache_enabled()
        store = ContentStore(root=tmp_path, namespace="off")
        key = digest_parts("k", 1)
        store.put_json(key, {"dropped": True})
        assert not any(tmp_path.rglob("*.json"))
        monkeypatch.delenv("REPRO_NO_DISK_CACHE")
        assert cache_enabled()
        assert store.get_json(key) is None  # nothing was ever written

    def test_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachehome"))
        assert default_cache_dir() == tmp_path / "cachehome"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().name == "repro"
