"""Tests for MatrixMarket I/O and matrix statistics."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    banded,
    profile_matrix,
    read_matrix_market,
    working_set_bytes,
    working_set_mbytes,
    working_set_per_core,
    write_matrix_market,
)


class TestWorkingSet:
    def test_paper_formula(self):
        """ws = 4*((n+1) + nnz) + 8*(nnz + 2n) — Sec. III."""
        n, nnz = 1000, 9000
        assert working_set_bytes(n, nnz) == 4 * ((n + 1) + nnz) + 8 * (nnz + 2 * n)

    def test_mbytes(self):
        assert working_set_mbytes(0, 0) == pytest.approx(4 / 2**20)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            working_set_bytes(-1, 0)

    def test_per_core_divides_evenly(self, small_banded):
        full = working_set_bytes(small_banded.n_rows, small_banded.nnz)
        assert working_set_per_core(small_banded, 8) == pytest.approx(full / 8)
        with pytest.raises(ValueError):
            working_set_per_core(small_banded, 0)


class TestProfile:
    def test_table1_columns(self, small_banded):
        p = profile_matrix(small_banded)
        assert p.n == small_banded.n_rows
        assert p.nnz == small_banded.nnz
        assert p.nnz_per_row == pytest.approx(small_banded.nnz_per_row)
        n, nnz, npr, ws = p.row()
        assert (n, nnz) == (p.n, p.nnz)

    def test_row_length_stats(self, tiny_csr):
        p = profile_matrix(tiny_csr)
        assert p.row_len_min == 1
        assert p.row_len_max == 3

    def test_col_distance_banded_vs_random(self, small_banded, small_random):
        assert profile_matrix(small_banded).mean_col_distance < profile_matrix(
            small_random
        ).mean_col_distance


class TestMatrixMarketIO:
    def test_round_trip(self, tiny_csr):
        buf = io.StringIO()
        write_matrix_market(tiny_csr, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert back.allclose(tiny_csr)

    def test_round_trip_file(self, tmp_path, small_banded):
        path = tmp_path / "m.mtx"
        write_matrix_market(small_banded, path)
        back = read_matrix_market(path)
        assert back.allclose(small_banded)

    def test_symmetric_expansion(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 5.0
3 3 1.0
3 2 7.0
"""
        m = read_matrix_market(io.StringIO(text))
        d = m.to_dense()
        np.testing.assert_allclose(d, d.T)
        assert d[1, 0] == 5.0 and d[0, 1] == 5.0  # mirrored off-diagonal
        assert d[0, 0] == 2.0 and d[2, 1] == 7.0 and d[1, 2] == 7.0
        assert m.nnz == 6  # diagonal entries not duplicated

    def test_pattern_field(self):
        text = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
"""
        m = read_matrix_market(io.StringIO(text))
        np.testing.assert_allclose(m.to_dense(), np.eye(2))

    def test_comments_skipped(self):
        text = """%%MatrixMarket matrix coordinate real general
% a comment
% another
2 2 1
1 2 3.5
"""
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 1] == 3.5

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("garbage\n1 1 0\n"))

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix array real general\n"))
        with pytest.raises(ValueError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
            )

    def test_entry_count_checked(self):
        text = """%%MatrixMarket matrix coordinate real general
2 2 3
1 1 1.0
"""
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(text))

    def test_nonsquare(self):
        text = """%%MatrixMarket matrix coordinate real general
2 4 2
1 4 1.0
2 1 2.0
"""
        m = read_matrix_market(io.StringIO(text))
        assert m.shape == (2, 4)
