"""Tests for the reliable-messaging layer over a lossy MPB."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import CoreFailure, FaultPlan
from repro.faults.reliable import (
    FailureDetector,
    PeerFailedError,
    ReliableComm,
    payload_checksum,
)
from repro.rcce.errors import RCCETimeoutError
from repro.rcce.runtime import RCCERuntime


def run_pair(fn, plan=None, cores=(0, 1), **rt_kwargs):
    rt = RCCERuntime(list(cores), fault_plan=plan, **rt_kwargs)
    return rt, rt.run(fn)


class TestChecksum:
    def test_covers_identity_and_data(self):
        base = payload_checksum(1, 0, np.arange(4.0))
        assert payload_checksum(2, 0, np.arange(4.0)) != base
        assert payload_checksum(1, 1, np.arange(4.0)) != base
        assert payload_checksum(1, 0, np.arange(5.0)) != base
        assert payload_checksum(1, 0, np.arange(4.0)) == base

    def test_distinguishes_shape_and_dtype(self):
        a = np.zeros(4)
        assert payload_checksum(0, 0, a) != payload_checksum(0, 0, a.reshape(2, 2))
        assert payload_checksum(0, 0, a) != payload_checksum(0, 0, a.astype(np.float32))

    def test_handles_nested_payloads(self):
        p = ("work", 3, {"rows": (0, 10)}, np.ones(3))
        assert payload_checksum(0, 0, p) == payload_checksum(0, 0, p)
        assert payload_checksum(0, 0, p) != payload_checksum(0, 0, ("work", 4))


class TestReliableRoundtrip:
    def _echo(self, comm):
        rcomm = ReliableComm(comm)
        if comm.ue == 0:
            yield from rcomm.send(np.arange(32.0), 1, tag=3)
            src, back = yield from rcomm.recv(1, tag=4, timeout=1.0)
            return (src, back)
        src, data = yield from rcomm.recv(0, tag=3, timeout=1.0)
        yield from rcomm.send(data * 2, 0, tag=4)
        return dict(rcomm.counters)

    def test_roundtrip_faultless(self):
        _rt, res = run_pair(self._echo)
        src, back = res[0].value
        assert src == 1
        assert np.array_equal(back, np.arange(32.0) * 2)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_roundtrip_survives_loss_dup_corruption(self, seed):
        plan = FaultPlan(
            seed=seed, drop_rate=0.15, duplicate_rate=0.1, corrupt_rate=0.1
        )
        _rt, res = run_pair(self._echo, plan=plan)
        _src, back = res[0].value
        assert np.array_equal(back, np.arange(32.0) * 2)

    def test_retries_and_corruption_are_counted(self):
        # High drop rate guarantees retransmissions within a few seeds.
        plan = FaultPlan(seed=5, drop_rate=0.4)
        rt, res = run_pair(self._echo, plan=plan)
        total = dict(res[1].value)
        injected_drops = rt.fault_injector.counters["drop"]
        assert injected_drops > 0
        # Someone had to retry for the exchange to complete.
        # (Retries may land on either side; check the injector agrees.)
        assert rt.fault_injector.events

    def test_recv_timeout_raises(self):
        def fn(comm):
            rcomm = ReliableComm(comm)
            if comm.ue == 0:
                with pytest.raises(RCCETimeoutError):
                    yield from rcomm.recv(1, tag=0, timeout=1e-4)
                return "timed-out"
            yield from comm.compute(1e-3)  # never sends
            return None

        _rt, res = run_pair(fn)
        assert res[0].value == "timed-out"

    def test_duplicates_are_not_redelivered(self):
        plan = FaultPlan(seed=11, duplicate_rate=0.6)

        def fn(comm):
            rcomm = ReliableComm(comm)
            if comm.ue == 0:
                for i in range(5):
                    yield from rcomm.send(i, 1, tag=0)
                return None
            got = []
            for _ in range(5):
                _src, v = yield from rcomm.recv(0, tag=0, timeout=1.0)
                got.append(v)
            # no sixth message may surface
            with pytest.raises(RCCETimeoutError):
                yield from rcomm.recv(0, tag=0, timeout=2e-3)
            return (got, dict(rcomm.counters))

        rt, res = run_pair(fn, plan=plan)
        got, counters = res[1].value
        assert got == [0, 1, 2, 3, 4]
        if rt.fault_injector.counters["duplicate"]:
            assert counters.get("duplicates_discarded", 0) > 0

    def test_no_livelock_when_receiver_is_computing(self):
        """Acks are interrupt-driven: a sender must complete even while
        the receiver spends the whole window in compute."""

        def fn(comm):
            rcomm = ReliableComm(comm, ack_timeout=5e-5)
            if comm.ue == 0:
                yield from rcomm.send(np.ones(8), 1, tag=0)
                return "done"
            yield from comm.compute(5e-3)  # long compute before any recv
            _src, data = yield from rcomm.recv(0, tag=0, timeout=1.0)
            return float(data.sum())

        _rt, res = run_pair(fn)
        assert res[0].value == "done"
        assert res[1].value == 8.0


class TestFailureDetection:
    def test_probe_costs_sim_time_and_reports_death(self):
        plan = FaultPlan(core_failures=(CoreFailure(1, 1e-4),))

        def fn(comm):
            det = FailureDetector(comm._rt, probe_cost=1e-6)
            if comm.ue == 0:
                t0 = comm.wtime()
                alive_early = yield from det.probe(1)
                assert comm.wtime() == pytest.approx(t0 + 1e-6)
                yield from comm.compute(5e-4)  # let the failure fire
                alive_late = yield from det.probe(1)
                return (alive_early, alive_late, det.probes_sent)
            yield from comm.compute(1.0)
            return None

        rt = RCCERuntime([0, 1], fault_plan=plan)
        res = rt.run(fn)
        assert res[0].value == (True, False, 2)
        assert rt.failed_ues == {1: pytest.approx(1e-4)}

    def test_send_to_dead_peer_raises_peer_failed(self):
        plan = FaultPlan(core_failures=(CoreFailure(1, 1e-6),))

        def fn(comm):
            rcomm = ReliableComm(comm, ack_timeout=5e-5, max_retries=4)
            if comm.ue == 0:
                yield from comm.compute(1e-5)  # outlive the victim
                with pytest.raises(PeerFailedError) as err:
                    yield from rcomm.send(np.ones(4), 1, tag=0)
                assert err.value.peer == 1
                return "detected"
            yield from comm.compute(1.0)
            return None

        _rt, res = run_pair(fn, plan=plan)
        assert res[0].value == "detected"

    def test_probe_of_nonexistent_ue_rejected(self):
        def fn(comm):
            det = FailureDetector(comm._rt)
            with pytest.raises(Exception, match="nonexistent"):
                yield from det.probe(7)
            return "ok"

        rt = RCCERuntime([0])
        assert rt.run(fn)[0].value == "ok"


class TestValidation:
    def test_constructor_validation(self):
        rt = RCCERuntime([0, 1])
        comm = rt.comms[0]
        with pytest.raises(ValueError):
            ReliableComm(comm, ack_timeout=0)
        with pytest.raises(ValueError):
            ReliableComm(comm, max_retries=0)
        with pytest.raises(ValueError):
            ReliableComm(comm, backoff=0.5)

    def test_reliable_tag_range_enforced(self):
        def fn(comm):
            rcomm = ReliableComm(comm)
            if comm.ue == 0:
                with pytest.raises(ValueError, match="reliable tag"):
                    yield from rcomm.send(1, 1, tag=1 << 10)
            return None

        RCCERuntime([0, 1]).run(fn)
