"""Tests for the synthetic sparsity-pattern generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    banded,
    block_diagonal,
    power_law,
    random_uniform,
    stencil_2d,
    with_dense_rows,
)


class TestCommonProperties:
    GENERATORS = [
        lambda seed: banded(500, 8.0, 10, seed=seed),
        lambda seed: block_diagonal(500, 20, 0.3, seed=seed),
        lambda seed: random_uniform(500, 8.0, seed=seed),
        lambda seed: power_law(500, 8.0, alpha=1.1, seed=seed),
        lambda seed: stencil_2d(25, 20, seed=seed),
    ]

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_given_seed(self, gen):
        a, b = gen(7), gen(7)
        assert a.allclose(b)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_different_seeds_differ(self, gen):
        a, b = gen(7), gen(8)
        assert not (a.nnz == b.nnz and a.allclose(b))

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_square_and_valid(self, gen):
        a = gen(3)
        assert a.n_rows == a.n_cols == 500
        assert a.nnz > 0
        assert a.index.min() >= 0 and a.index.max() < a.n_cols

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_values_in_generator_band(self, gen):
        a = gen(3)
        # duplicate merging can push values above 1.5, never below 0.5
        assert a.da.min() >= 0.5


class TestBanded:
    def test_diagonal_always_present(self):
        a = banded(100, 4.0, 3, seed=1)
        dense = a.to_dense()
        assert (np.diag(dense) != 0).all()

    def test_bandwidth_controls_spread(self):
        narrow = banded(2000, 8.0, 5, seed=1)
        wide = banded(2000, 8.0, 200, seed=1)

        def mean_dist(m):
            rows = np.repeat(np.arange(m.n_rows), np.diff(m.ptr))
            return np.abs(m.index - rows).mean()

        assert mean_dist(wide) > 5 * mean_dist(narrow)

    def test_nnz_near_target(self):
        a = banded(1000, 10.0, 20, seed=2)
        assert 0.8 * 10_000 <= a.nnz <= 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            banded(0, 5.0, 10)
        with pytest.raises(ValueError):
            banded(10, 5.0, 0)


class TestBlockDiagonal:
    def test_entries_within_blocks(self):
        a = block_diagonal(100, 10, 0.5, seed=1)
        rows = np.repeat(np.arange(a.n_rows), np.diff(a.ptr))
        assert (rows // 10 == a.index // 10).all()

    def test_fill_controls_density(self):
        sparse = block_diagonal(200, 20, 0.1, seed=1)
        dense = block_diagonal(200, 20, 0.9, seed=1)
        assert dense.nnz > 2 * sparse.nnz

    def test_validation(self):
        with pytest.raises(ValueError):
            block_diagonal(100, 10, 0.0)
        with pytest.raises(ValueError):
            block_diagonal(100, 10, 1.5)
        with pytest.raises(ValueError):
            block_diagonal(100, 0, 0.5)


class TestStencil:
    def test_five_point_interior_rows(self):
        a = stencil_2d(10, 10, seed=1)
        lengths = a.row_lengths()
        # Interior points have 5 entries, corners 3, edges 4.
        assert lengths.max() == 5
        assert lengths.min() == 3
        # Row for grid point (5,5) = index 55: full 5-point star.
        cols, _ = a.row(55)
        assert set(cols.tolist()) == {45, 54, 55, 56, 65}

    def test_symmetric_structure(self):
        a = stencil_2d(8, 6, seed=1)
        d = a.to_dense()
        assert ((d != 0) == (d != 0).T).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            stencil_2d(0, 5)


class TestRandomUniform:
    def test_rows_have_target_nnz(self):
        a = random_uniform(1000, 6.0, seed=4)
        # Dedupe costs a little; row lengths concentrate near 6.
        assert 5.5 <= a.nnz_per_row <= 6.0

    def test_columns_spread_widely(self):
        a = random_uniform(2000, 8.0, seed=4)
        assert len(np.unique(a.index)) > 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            random_uniform(0, 5.0)
        with pytest.raises(ValueError):
            random_uniform(10, 0.0)


class TestPowerLaw:
    def test_popularity_skew(self):
        a = power_law(2000, 8.0, alpha=1.3, seed=5)
        counts = np.bincount(a.index, minlength=a.n_cols)
        counts.sort()
        top = counts[-20:].sum()
        assert top > 0.15 * a.nnz  # top 1% of columns draw >15% of entries

    def test_alpha_controls_skew(self):
        flat = power_law(2000, 8.0, alpha=0.3, seed=5)
        steep = power_law(2000, 8.0, alpha=1.6, seed=5)

        def top_share(m):
            counts = np.sort(np.bincount(m.index, minlength=m.n_cols))
            return counts[-20:].sum() / m.nnz

        assert top_share(steep) > top_share(flat)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law(100, 5.0, alpha=0.0)
        with pytest.raises(ValueError):
            power_law(0, 5.0)


class TestWithDenseRows:
    def test_adds_dense_rows(self):
        base = random_uniform(500, 3.0, seed=6)
        a = with_dense_rows(base, 5, 0.6, seed=7)
        lengths = a.row_lengths()
        assert (lengths > 0.4 * a.n_cols).sum() >= 5
        assert a.nnz > base.nnz

    def test_preserves_base_entries(self):
        base = random_uniform(200, 3.0, seed=6)
        a = with_dense_rows(base, 2, 0.5, seed=7)
        base_d = base.to_dense()
        new_d = a.to_dense()
        mask = base_d != 0
        assert (new_d[mask] != 0).all()

    def test_validation(self):
        base = random_uniform(100, 3.0, seed=6)
        with pytest.raises(ValueError):
            with_dense_rows(base, -1, 0.5)
        with pytest.raises(ValueError):
            with_dense_rows(base, 1, 0.0)
