"""Concurrency contracts of the campaign server.

Two layers are attacked with real threads:

* the :class:`~repro.serve.queue.PointQueue` claim protocol — racing
  claimers must partition the pending set (no key claimed twice, none
  lost);
* the whole HTTP service — N concurrent clients submitting overlapping
  grids must cause **each unique store key to be simulated exactly
  once**, with every client's merged results equal to the serial
  baseline.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.campaign import Campaign
from repro.core.parallel import fork_context
from repro.serve import CampaignServer, CampaignSpec, PointQueue, ServeClient
from repro.serve.protocol import point_store_key
from repro.store import ContentStore

SCALE = 0.05
ITERATIONS = 2


def _spec(core_counts, ids=(24,)):
    return CampaignSpec(
        ids=tuple(ids),
        core_counts=tuple(core_counts),
        scale=SCALE,
        iterations=ITERATIONS,
        mode="model",
    )


def _canon(rec: dict) -> str:
    return json.dumps(rec, sort_keys=True)


# -- queue-level claim atomicity ------------------------------------------


def test_concurrent_claimers_partition_the_pending_set(tmp_path):
    """No two racing claim_batch() calls ever receive the same key."""
    queue = PointQueue(ContentStore(root=tmp_path / "cache", namespace="t"))
    specs = [_spec((n,)) for n in (1, 2, 4, 8, 16, 32)]
    jobs = [queue.submit(s) for s in specs]
    expected_keys = {k for job in jobs for k in job.keys}

    claimed: list = []
    claimed_lock = threading.Lock()
    start = threading.Barrier(8)

    def claimer():
        start.wait()
        while True:
            batch = queue.claim_batch(timeout=0.01)
            if not batch:
                return
            with claimed_lock:
                claimed.extend(key for key, _pt, _ctx in batch)

    threads = [threading.Thread(target=claimer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(claimed) == len(set(claimed)), "a key was claimed twice"
    assert set(claimed) == expected_keys
    # Completing every claim resolves every waiting job.
    for key in claimed:
        queue.complete(key, {"status": "ok", "key": key})
    assert all(job.done.is_set() for job in jobs)


def test_duplicate_submissions_share_one_flight(tmp_path):
    """Same spec submitted twice before any claim: one pending key set."""
    queue = PointQueue(ContentStore(root=tmp_path / "cache", namespace="t"))
    a = queue.submit(_spec((1, 4)))
    b = queue.submit(_spec((1, 4)))
    batch = queue.claim_batch(timeout=0.01)
    assert len(batch) == 2  # not 4: the second job joined the flight
    for key, _pt, _ctx in batch:
        queue.complete(key, {"status": "ok", "key": key})
    assert a.done.is_set() and b.done.is_set()
    assert a.records == b.records
    assert a.origins == ["simulated"] * 2
    assert b.origins == ["shared"] * 2


def test_completion_is_store_before_table_drop(tmp_path):
    """A submission racing a completion must hit store or flight, never
    re-simulate: after complete() returns, the store already has the
    record (the write happens under the same lock that drops the key)."""
    store = ContentStore(root=tmp_path / "cache", namespace="t")
    queue = PointQueue(store)
    job = queue.submit(_spec((4,)))
    [(key, pt, ctx)] = queue.claim_batch(timeout=0.01)
    queue.complete(key, {"status": "ok", "n_cores": 4})
    assert store.get_json(key) == {"status": "ok", "n_cores": 4}
    late = queue.submit(_spec((4,)))
    assert late.done.is_set()
    assert late.origins == ["store"]
    assert queue.claim_batch(timeout=0.01) == []


# -- service-level concurrency --------------------------------------------


@pytest.mark.skipif(
    fork_context() is None,
    reason="the campaign server's supervised pool needs the fork start method",
)
def test_concurrent_clients_simulate_each_unique_key_exactly_once(tmp_path):
    grids = [(1, 2), (2, 4), (4, 8), (1, 8)]  # overlapping core counts
    union_counts = sorted({n for grid in grids for n in grid})
    union_spec = _spec(tuple(union_counts))
    unique_keys = {
        point_store_key(pt, union_spec.context()) for pt in union_spec.points()
    }

    server = CampaignServer(tmp_path / "serve-data", workers=2)
    server.start()
    try:
        results: dict = {}
        errors: list = []
        start = threading.Barrier(len(grids))

        def submit_and_wait(i, grid):
            try:
                client = ServeClient(server.url)
                start.wait()
                summary = client.submit(_spec(grid))
                results[i] = client.wait(str(summary["job_id"]), timeout=300.0)
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append((i, exc))

        threads = [
            threading.Thread(target=submit_and_wait, args=(i, grid))
            for i, grid in enumerate(grids)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        client = ServeClient(server.url)
        serve_metrics = client.metrics()["serve"]
        # The exactly-once invariant, from the server's own counters:
        # every unique store key simulated once, every other request for
        # it answered by dedup (store hit or shared flight).
        assert serve_metrics["simulations"] == len(unique_keys)
        total_points = sum(len(_spec(grid).points()) for grid in grids)
        assert sum(r["simulated"] for r in results.values()) == len(unique_keys)
        assert sum(r["dedup_hits"] for r in results.values()) == total_points - len(
            unique_keys
        )
        assert client.healthz()["store_entries"] == len(unique_keys)

        # Merged records equal the serial baseline of the union grid.
        baseline = Campaign(
            "baseline",
            output_dir=tmp_path / "baseline",
            scale=SCALE,
            iterations=ITERATIONS,
            mode="model",
        )
        baseline.run(union_spec.points(), workers=1)
        by_cores = {rec["n_cores"]: _canon(rec) for rec in baseline.load()}
        for i, grid in enumerate(grids):
            for n, rec in zip(grid, results[i]["records"]):
                assert rec["n_cores"] == n
                assert _canon(rec) == by_cores[n]
    finally:
        server.stop()
