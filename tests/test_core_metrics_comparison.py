"""Tests for metrics aggregation, architecture comparison, and reporting."""

from __future__ import annotations

import pytest

from repro.core import (
    COMPARISON_SYSTEMS,
    ArchitectureModel,
    SpMVExperiment,
    average_gflops,
    average_mflops_per_watt,
    banner,
    comparison_table,
    format_series,
    format_table,
    geomean_gflops,
    parallel_efficiency,
    speedup,
    speedup_series,
)
from repro.scc import CONF0, CONF1
from repro.sparse import banded


@pytest.fixture(scope="module")
def results():
    a = banded(1500, 10.0, 15, seed=31)
    exp = SpMVExperiment(a, name="m")
    return {
        "r4_std": exp.run(n_cores=4, mapping="standard"),
        "r4_dr": exp.run(n_cores=4, mapping="distance_reduction"),
        "r1": exp.run(n_cores=1),
        "r8": exp.run(n_cores=8),
        "conf1": exp.run(n_cores=4, config=CONF1),
    }


class TestMetrics:
    def test_average_and_geomean(self, results):
        rs = [results["r4_std"], results["r8"]]
        avg = average_gflops(rs)
        geo = geomean_gflops(rs)
        assert avg >= geo > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_gflops([])
        with pytest.raises(ValueError):
            geomean_gflops([])

    def test_speedup_direction(self, results):
        s = speedup(results["r4_dr"], results["r4_std"])
        assert s >= 1.0

    def test_speedup_requires_same_workload(self, results):
        other = SpMVExperiment(banded(500, 6.0, 9, seed=32), name="other").run(n_cores=4)
        with pytest.raises(ValueError):
            speedup(results["r4_std"], other)

    def test_speedup_series(self, results):
        fast = [results["r4_dr"], results["r8"]]
        slow = [results["r4_std"], results["r8"]]
        s = speedup_series(fast, slow)
        assert len(s) == 2 and s[1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            speedup_series(fast, slow[:1])

    def test_average_mflops_per_watt(self, results):
        rs = [results["r4_std"], results["r8"]]
        eff = average_mflops_per_watt(rs)
        assert eff == pytest.approx(
            (results["r4_std"].mflops + results["r8"].mflops) / 2 / CONF0.full_chip_power()
        )

    def test_mixed_power_states_rejected(self, results):
        with pytest.raises(ValueError):
            average_mflops_per_watt([results["r4_std"], results["conf1"]])

    def test_parallel_efficiency(self, results):
        eff = parallel_efficiency({1: results["r1"], 8: results["r8"]})
        assert 0 < eff[8] <= 1.2
        assert eff[1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            parallel_efficiency({8: results["r8"]})


class TestArchitectureModels:
    def test_five_competitors(self):
        names = [m.name for m in COMPARISON_SYSTEMS]
        assert names == [
            "Itanium2 Montvale",
            "Xeon X5570",
            "Opteron 6174",
            "Tesla C1060",
            "Tesla M2050",
        ]

    def test_m2050_anchors(self):
        """Paper Sec. IV-E: 7.9 GFLOPS/s average, 35 MFLOPS/s per watt."""
        m2050 = COMPARISON_SYSTEMS[-1]
        assert m2050.spmv_gflops() == pytest.approx(7.9, rel=0.02)
        assert m2050.mflops_per_watt() == pytest.approx(35.0, rel=0.03)

    def test_c1060_vs_cpus(self):
        """Paper: C1060 = 2.4x Xeon and 1.7x Opteron."""
        xeon = COMPARISON_SYSTEMS[1].spmv_gflops()
        opteron = COMPARISON_SYSTEMS[2].spmv_gflops()
        c1060 = COMPARISON_SYSTEMS[3].spmv_gflops()
        assert c1060 / xeon == pytest.approx(2.4, rel=0.1)
        assert c1060 / opteron == pytest.approx(1.7, rel=0.1)

    def test_ordering_matches_figure(self):
        perf = {m.name: m.spmv_gflops() for m in COMPARISON_SYSTEMS}
        assert (
            perf["Tesla M2050"] > perf["Tesla C1060"] > perf["Opteron 6174"]
            > perf["Xeon X5570"] > perf["Itanium2 Montvale"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchitectureModel("bad", 1, 1.0, 1.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            ArchitectureModel("bad", 0, 1.0, 1.0, 0.5, 100.0)
        with pytest.raises(ValueError):
            COMPARISON_SYSTEMS[0].spmv_gflops(bytes_per_flop=0)

    def test_roofline_is_bandwidth_bound_for_spmv(self):
        for m in COMPARISON_SYSTEMS:
            assert m.spmv_gflops() < m.peak_gflops

    def test_comparison_table_includes_scc(self):
        rows = comparison_table({"SCC conf0": (1.04, 83.3)})
        assert len(rows) == 6
        scc = [r for r in rows if r["system"] == "SCC conf0"][0]
        assert scc["mflops_per_watt"] == pytest.approx(1040 / 83.3, rel=1e-6)
        assert scc["source"] == "scc-model"

    def test_comparison_table_validates_watts(self):
        with pytest.raises(ValueError):
            comparison_table({"SCC": (1.0, 0.0)})


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.25}]
        text = format_table(rows, ["a", "b"], caption="cap")
        lines = text.splitlines()
        assert lines[0] == "cap"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], ["a"], caption="c")

    def test_format_series(self):
        text = format_series("cores", [1, 2], {"perf": [1.0, 2.0]}, caption="fig")
        assert "cores" in text and "perf" in text

    def test_format_series_length_check(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1.0]})

    def test_banner(self):
        b = banner("Title")
        assert "Title" in b and "=" in b
