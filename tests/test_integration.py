"""End-to-end integration tests: the paper's qualitative findings must
hold on the model at reduced scale.

Each test reproduces the *shape* of one paper claim on a small version
of the testbed; the benchmarks regenerate the full figures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SpMVExperiment,
    average_gflops,
    comparison_table,
    single_core_at_distance,
)
from repro.scc import CONF0, CONF1, CONF2
from repro.sparse import build_matrix, entry_by_id, iter_suite

SCALE = 0.05
MEM_BOUND_IDS = [2, 5, 7]     # F1, gupta3, sme3Dc stand-ins: huge ws
SMALL_IDS = [30, 31, 32]      # Na5, tandem_vtx, lhr10: small ws
SHORT_ROW_IDS = [24, 25]      # rajat09, ncvxbqp1


def experiments(ids, scale=SCALE):
    return [
        SpMVExperiment(a, name=e.name)
        for e, a in iter_suite(scale=scale, ids=ids)
    ]


class TestFig3Shape:
    def test_monotone_hop_degradation(self):
        exp = SpMVExperiment(build_matrix(7, scale=0.3), name="sme3Dc")
        perf = [
            exp.run(n_cores=1, mapping=single_core_at_distance(h)).mflops
            for h in range(4)
        ]
        assert perf == sorted(perf, reverse=True)
        assert 0.05 <= 1 - perf[3] / perf[0] <= 0.25  # paper: ~12%


class TestFig5Shape:
    def test_distance_reduction_wins_at_intermediate_counts(self):
        exp = SpMVExperiment(build_matrix(7, scale=0.5), name="sme3Dc")
        speedups = []
        for n in (8, 16, 24):
            std = exp.run(n_cores=n, mapping="standard")
            dr = exp.run(n_cores=n, mapping="distance_reduction")
            speedups.append(std.makespan / dr.makespan)
        assert max(speedups) > 1.05
        assert min(speedups) >= 0.999


class TestFig6Shape:
    def test_l2_resident_matrices_boost_at_high_core_counts(self):
        """Small-ws matrices overtake large ones once resident (Sec. IV-B)."""
        small = experiments(SMALL_IDS, scale=0.4)
        large = experiments(MEM_BOUND_IDS, scale=0.4)
        small_48 = average_gflops([e.run(n_cores=48) for e in small])
        large_48 = average_gflops([e.run(n_cores=48) for e in large])
        assert small_48 > 1.5 * large_48

    def test_short_row_matrices_miss_the_boost(self):
        """Matrices 24/25 stay slow despite fitting in L2 (small nnz/n)."""
        short = experiments(SHORT_ROW_IDS, scale=0.4)
        good = experiments(SMALL_IDS, scale=0.4)
        short_perf = average_gflops([e.run(n_cores=24) for e in short])
        good_perf = average_gflops([e.run(n_cores=24) for e in good])
        assert short_perf < 0.7 * good_perf


class TestFig7Shape:
    def test_disabling_l2_degrades_and_flattens(self):
        exp = SpMVExperiment(build_matrix(30, scale=0.4), name="Na5")
        on = exp.run(n_cores=24)
        off = exp.run(n_cores=24, config=CONF0.with_l2(False))
        assert off.makespan > 1.2 * on.makespan


class TestFig8Shape:
    def test_no_x_miss_speedup_largest_for_short_rows(self):
        speedups = {}
        for mid in SHORT_ROW_IDS + SMALL_IDS:
            e = entry_by_id(mid)
            exp = SpMVExperiment(build_matrix(mid, scale=0.4), name=e.name)
            base = exp.run(n_cores=8)
            nox = exp.run(n_cores=8, kernel="no_x_miss")
            speedups[mid] = base.makespan / nox.makespan
        worst_short = min(speedups[m] for m in SHORT_ROW_IDS)
        best_good = max(speedups[m] for m in SMALL_IDS)
        assert worst_short > best_good
        assert worst_short > 1.3


class TestFig9Shape:
    def test_conf1_fastest_conf2_between(self):
        exp = SpMVExperiment(build_matrix(7, scale=0.5), name="sme3Dc")
        r0 = exp.run(n_cores=48, config=CONF0)
        r1 = exp.run(n_cores=48, config=CONF1)
        r2 = exp.run(n_cores=48, config=CONF2)
        assert r1.makespan < r0.makespan
        assert r1.makespan <= r2.makespan
        assert r0.makespan / r1.makespan <= 1.55  # paper: up to 1.45

    def test_power_ordering(self):
        assert CONF0.full_chip_power() < CONF2.full_chip_power() < CONF1.full_chip_power()


class TestFig10Shape:
    def test_scc_beats_only_itanium(self):
        rows = comparison_table({"SCC conf0": (1.04, CONF0.full_chip_power())})
        perf = {r["system"]: r["gflops"] for r in rows}
        scc = perf["SCC conf0"]
        assert perf["Itanium2 Montvale"] < scc
        for other in ("Xeon X5570", "Opteron 6174", "Tesla C1060", "Tesla M2050"):
            assert perf[other] > scc

    def test_efficiency_ordering(self):
        rows = comparison_table({"SCC conf0": (1.04, CONF0.full_chip_power())})
        eff = {r["system"]: r["mflops_per_watt"] for r in rows}
        assert eff["Tesla M2050"] == max(eff.values())
        assert eff["SCC conf0"] > eff["Itanium2 Montvale"]


class TestNumericalEndToEnd:
    def test_full_pipeline_product_correct(self):
        a = build_matrix(12, scale=0.1)
        exp = SpMVExperiment(a, name="crystk03")
        x = np.random.default_rng(7).uniform(size=a.n_cols)
        r = exp.run(n_cores=16, iterations=1, verify=True, x=x)
        np.testing.assert_allclose(r.y, a.to_scipy() @ x, rtol=1e-9)

    def test_deterministic_makespans(self):
        a = build_matrix(30, scale=0.2)
        e1 = SpMVExperiment(a, name="Na5").run(n_cores=8)
        e2 = SpMVExperiment(a, name="Na5").run(n_cores=8)
        assert e1.makespan == e2.makespan
