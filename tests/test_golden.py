"""Golden regression tests: frozen model outputs.

The model's constants are calibrated and then frozen (DESIGN.md §5);
these tests pin representative *outputs* so accidental drift in any
substrate — partitioner, locality model, contention solver, power —
shows up as a diff, not as silently shifted figures.  Tolerances are
tight (0.5 %) because everything in the pipeline is deterministic.

If a deliberate model change moves these numbers, update the goldens in
the same commit and note the change in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import Campaign, SpMVExperiment, single_core_at_distance
from repro.scc import CONF0, CONF1, CONF2, memory_read_latency
from repro.sparse import build_matrix

SCALE = 0.25
REL = 5e-3

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def sme3dc():
    return SpMVExperiment(build_matrix(7, scale=SCALE), name="sme3Dc")


@pytest.fixture(scope="module")
def na5():
    return SpMVExperiment(build_matrix(30, scale=SCALE), name="Na5")


class TestGoldenLatencies:
    def test_eq1_values(self):
        assert memory_read_latency(0, 533, 800, 800) == pytest.approx(132.55e-9, rel=1e-4)
        assert memory_read_latency(3, 533, 800, 800) == pytest.approx(162.55e-9, rel=1e-4)
        assert memory_read_latency(0, 800, 1600, 1066) == pytest.approx(93.15e-9, rel=1e-3)


class TestGoldenPower:
    def test_config_wattages(self):
        assert CONF0.full_chip_power() == pytest.approx(83.31, rel=REL)
        assert CONF1.full_chip_power() == pytest.approx(107.40, rel=REL)
        assert CONF2.full_chip_power() == pytest.approx(105.74, rel=REL)


class TestGoldenThroughput:
    """Pinned MFLOPS/s of representative runs at scale 0.25."""

    def test_single_core_memory_bound(self, sme3dc):
        r = sme3dc.run(n_cores=1, mapping=single_core_at_distance(0))
        assert r.mflops == pytest.approx(24.55, rel=0.02)

    def test_hop3_single_core(self, sme3dc):
        r = sme3dc.run(n_cores=1, mapping=single_core_at_distance(3))
        assert r.mflops == pytest.approx(21.52, rel=0.02)

    def test_l2_resident_24_cores(self, na5):
        r = na5.run(n_cores=24)
        assert r.mflops == pytest.approx(951.0, rel=0.02)

    def test_conf1_over_conf0_ratio(self, na5):
        r0 = na5.run(n_cores=24, config=CONF0)
        r1 = na5.run(n_cores=24, config=CONF1)
        assert r0.makespan / r1.makespan == pytest.approx(1.50, rel=0.01)

    def test_determinism_bit_exact(self, sme3dc):
        a = sme3dc.run(n_cores=16)
        b = SpMVExperiment(build_matrix(7, scale=SCALE), name="sme3Dc").run(n_cores=16)
        assert a.makespan == b.makespan  # not approx: bit-identical


class TestGoldenCampaign:
    """The checked-in campaign file is reproducible byte-for-byte.

    ``tests/fixtures/golden_campaign.jsonl`` was produced by the exact
    run below; both the serial and the ``workers=4`` executor must
    regenerate it bitwise — this is the determinism guarantee that lets
    parallel sweeps share resume files with serial ones.  Records hold
    no wall-clock or host-dependent fields, so byte equality is fair.
    """

    GOLDEN = FIXTURES / "golden_campaign.jsonl"

    def _run(self, tmp_path, workers, machine="scc-48"):
        campaign = Campaign(
            "golden_campaign", tmp_path, scale=0.05, iterations=2, mode="model",
            machine=machine,
        )
        points = Campaign.grid(
            ids=(24, 30), core_counts=(1, 4), configs=("conf0", "conf1")
        )
        ran, skipped = campaign.run(points, workers=workers)
        assert (ran, skipped) == (len(points), 0)
        return campaign.path.read_bytes()

    def test_serial_reproduces_fixture_bitwise(self, tmp_path):
        assert self._run(tmp_path, workers=1) == self.GOLDEN.read_bytes()

    def test_workers4_reproduces_fixture_bitwise(self, tmp_path):
        assert self._run(tmp_path, workers=4) == self.GOLDEN.read_bytes()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_explicit_default_machine_is_driftfree(self, tmp_path, workers):
        """Pinning machine='scc-48' (the pre-zoo implicit machine) must
        reproduce the pre-zoo fixture bytes: the MachineModel indirection
        introduced no behavioral drift."""
        assert self._run(tmp_path, workers, machine="scc-48") == self.GOLDEN.read_bytes()

    def test_supervised_run_reproduces_fixture_bitwise(self, tmp_path):
        """Supervision must be invisible in the output: the self-healing
        executor's records are the same bytes as the bare pool's."""
        from repro.core import SupervisePolicy

        campaign = Campaign(
            "golden_campaign", tmp_path, scale=0.05, iterations=2, mode="model"
        )
        points = Campaign.grid(
            ids=(24, 30), core_counts=(1, 4), configs=("conf0", "conf1")
        )
        policy = SupervisePolicy(task_timeout=60.0, max_retries=2)
        assert campaign.run(points, workers=4, policy=policy) == (len(points), 0)
        assert campaign.path.read_bytes() == self.GOLDEN.read_bytes()


class TestGoldenSuiteStats:
    def test_suite_fingerprint(self):
        """The deterministic generators must keep producing the same
        matrices: pin (nnz, first column indices) of three entries."""
        a = build_matrix(7, scale=SCALE)   # sme3Dc stand-in
        b = build_matrix(24, scale=SCALE)  # rajat09 stand-in
        c = build_matrix(30, scale=SCALE)  # Na5 stand-in
        assert a.nnz == 705607
        assert b.nnz == 24430
        assert c.nnz == 66992
        assert a.index[:5].tolist() == [0, 6, 7, 14, 15]
