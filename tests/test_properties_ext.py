"""Property-based tests for the extension modules (BCSR, reordering,
trace generation) and the fem_blocks generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scc.noc import EventDrivenMesh, simulate_transfers
from repro.scc.tracegen import spmv_address_trace
from repro.sim import Simulator
from repro.sparse import (
    fem_blocks,
    permute_symmetric,
    random_uniform,
    reverse_cuthill_mckee,
)
from repro.sparse.bcsr import BCSRMatrix

SET = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestFemBlocksGenerator:
    @pytest.mark.parametrize("block", [2, 3, 4, 6])
    def test_blocks_are_dense(self, block):
        a = fem_blocks(20 * block, block, 4.0 * block, seed=1)
        dense = (a.to_dense() != 0).astype(int)
        n_brows = a.n_rows // block
        for bi in range(n_brows):
            tile_rows = dense[bi * block : (bi + 1) * block]
            for bj in range(n_brows):
                tile = tile_rows[:, bj * block : (bj + 1) * block]
                total = tile.sum()
                assert total in (0, block * block), "tiles must be empty or full"

    def test_diagonal_blocks_present(self):
        a = fem_blocks(60, 3, 9.0, seed=2)
        dense = a.to_dense()
        assert (np.diag(dense) != 0).all()

    def test_density_near_target(self):
        a = fem_blocks(3000, 4, 40.0, seed=3)
        assert a.nnz_per_row == pytest.approx(40.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            fem_blocks(0, 4, 10.0)
        with pytest.raises(ValueError):
            fem_blocks(100, 0, 10.0)
        with pytest.raises(ValueError):
            fem_blocks(100, 4, 0.0)

    def test_deterministic(self):
        assert fem_blocks(200, 4, 12.0, seed=9).allclose(fem_blocks(200, 4, 12.0, seed=9))


class TestBCSRProperties:
    @SET
    @given(
        st.integers(10, 80),
        st.floats(1.0, 8.0),
        st.sampled_from([(1, 1), (2, 2), (2, 3), (4, 4)]),
        st.integers(0, 100),
    )
    def test_roundtrip_and_product(self, n, npr, shape, seed):
        a = random_uniform(n, npr, seed=seed)
        b = BCSRMatrix.from_csr(a, *shape)
        assert b.to_csr().allclose(a)
        x = np.linspace(0.1, 1.0, n)
        np.testing.assert_allclose(b.spmv(x), a.to_scipy() @ x, rtol=1e-9, atol=1e-12)

    @SET
    @given(st.integers(10, 60), st.integers(0, 50))
    def test_fill_ratio_at_least_one(self, n, seed):
        a = random_uniform(n, 3.0, seed=seed)
        b = BCSRMatrix.from_csr(a, 2, 2)
        assert b.fill_ratio() >= 1.0

    @SET
    @given(st.integers(10, 60), st.integers(0, 50))
    def test_block_count_bounded_by_nnz(self, n, seed):
        a = random_uniform(n, 3.0, seed=seed)
        b = BCSRMatrix.from_csr(a, 2, 2)
        assert b.n_blocks <= a.nnz


class TestReorderProperties:
    @SET
    @given(st.integers(10, 80), st.integers(0, 100))
    def test_rcm_is_permutation(self, n, seed):
        a = random_uniform(n, 4.0, seed=seed)
        p = reverse_cuthill_mckee(a)
        assert sorted(p.tolist()) == list(range(n))

    @SET
    @given(st.integers(10, 60), st.integers(0, 60))
    def test_double_permutation_roundtrip(self, n, seed):
        """Permuting by p then by the inverse restores the matrix."""
        a = random_uniform(n, 4.0, seed=seed)
        rng = np.random.default_rng(seed)
        p = rng.permutation(n)
        b = permute_symmetric(a, p)
        inv = np.empty(n, dtype=np.int64)
        inv[np.arange(n)] = p  # applying p's inverse = mapping back
        restored = permute_symmetric(b, np.argsort(p))
        # permute by argsort(p) reverses permute by p.
        assert restored.allclose(a)

    @SET
    @given(st.integers(10, 60), st.integers(0, 60))
    def test_spmv_commutes_with_permutation(self, n, seed):
        """(P A P^T)(P x) == P (A x) — reordering preserves numerics."""
        from repro.sparse import spmv

        a = random_uniform(n, 4.0, seed=seed)
        rng = np.random.default_rng(seed + 1)
        p = rng.permutation(n)
        inv = np.argsort(p)
        b = permute_symmetric(a, p)
        x = rng.uniform(size=n)
        lhs = spmv(b, x[p])      # permuted operator on permuted input
        rhs = spmv(a, x)[p]      # permute the original result
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-12)


class TestTraceProperties:
    @SET
    @given(st.integers(5, 60), st.floats(1.0, 6.0), st.integers(0, 80))
    def test_trace_length_formula(self, n, npr, seed):
        a = random_uniform(n, npr, seed=seed)
        addrs, writes = spmv_address_trace(a)
        assert addrs.size == 3 * a.n_rows + 3 * a.nnz
        assert writes.sum() == a.n_rows

    @SET
    @given(st.integers(5, 40), st.integers(0, 40))
    def test_trace_splits_concatenate(self, n, seed):
        """Row-range traces concatenate to the full trace."""
        a = random_uniform(n, 3.0, seed=seed)
        full, _ = spmv_address_trace(a)
        mid = n // 2
        first, _ = spmv_address_trace(a, 0, mid)
        second, _ = spmv_address_trace(a, mid, n)
        np.testing.assert_array_equal(np.concatenate([first, second]), full)


coords = st.tuples(st.integers(0, 5), st.integers(0, 3))


class TestNoCProperties:
    @SET
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1e-5),
                coords,
                coords,
                st.integers(0, 4096),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_every_transfer_respects_its_floor(self, transfers):
        """Contention can only delay: completion >= start + uncontended."""
        times = simulate_transfers(list(transfers))
        mesh = EventDrivenMesh(Simulator())
        for (start, src, dst, nbytes), t in zip(transfers, times):
            floor = start + mesh.uncontended_time(src, dst, nbytes)
            assert t >= floor - 1e-15

    @SET
    @given(coords, coords, st.integers(0, 4096))
    def test_single_transfer_exact(self, src, dst, nbytes):
        [t] = simulate_transfers([(0.0, src, dst, nbytes)])
        mesh = EventDrivenMesh(Simulator())
        assert t == pytest.approx(mesh.uncontended_time(src, dst, nbytes), rel=1e-9)
