"""Tests for the SCC roofline model."""

from __future__ import annotations

import pytest

from repro.core import SpMVExperiment
from repro.core.roofline import (
    SCCRoofline,
    locate_matrix,
    matrix_arithmetic_intensity,
)
from repro.scc import CONF0, CONF1
from repro.sparse import banded, build_matrix


@pytest.fixture(scope="module")
def roof48():
    return SCCRoofline(CONF0, list(range(48)))


class TestCeilings:
    def test_empty_core_map_rejected(self):
        with pytest.raises(ValueError):
            SCCRoofline(CONF0, [])

    def test_peak_scales_with_cores(self):
        one = SCCRoofline(CONF0, [0]).peak_gflops
        all48 = SCCRoofline(CONF0, list(range(48))).peak_gflops
        assert all48 == pytest.approx(48 * one)

    def test_peak_scales_with_frequency(self):
        p0 = SCCRoofline(CONF0, [0]).peak_gflops
        p1 = SCCRoofline(CONF1, [0]).peak_gflops
        assert p1 / p0 == pytest.approx(800 / 533)

    def test_bandwidth_counts_reachable_mcs_only(self):
        quad0 = SCCRoofline(CONF0, [0, 1, 2, 3])  # all in quadrant 0
        spread = SCCRoofline(CONF0, [0, 10, 24, 34])  # one per quadrant
        assert spread.bandwidth_gbs == pytest.approx(4 * quad0.bandwidth_gbs)

    def test_bandwidth_scales_with_memory_clock(self):
        b0 = SCCRoofline(CONF0, list(range(48))).bandwidth_gbs
        b1 = SCCRoofline(CONF1, list(range(48))).bandwidth_gbs
        assert b1 / b0 == pytest.approx(1066 / 800)

    def test_attainable_capped_at_peak(self, roof48):
        assert roof48.attainable_gflops(1e9) == pytest.approx(roof48.peak_gflops)

    def test_attainable_linear_below_ridge(self, roof48):
        ai = roof48.ridge_point / 10
        assert roof48.attainable_gflops(ai) == pytest.approx(ai * roof48.bandwidth_gbs)

    def test_invalid_intensity(self, roof48):
        with pytest.raises(ValueError):
            roof48.attainable_gflops(0)


class TestMatrixPlacement:
    def test_streaming_matrix_is_memory_bound(self, roof48):
        a = build_matrix(7, scale=0.5)  # sme3Dc: big working set
        exp = SpMVExperiment(a, name="sme3Dc")
        pt = locate_matrix("sme3Dc", exp.traces(48), roof48)
        assert pt.bound == "memory"
        assert 0 < pt.arithmetic_intensity < roof48.ridge_point

    def test_resident_matrix_is_compute_bound_with_iterations(self, roof48):
        a = banded(2000, 8.0, 10, seed=9)  # tiny: fits L2 everywhere
        exp = SpMVExperiment(a, name="tiny")
        pt = locate_matrix("tiny", exp.traces(48), roof48, iterations=64)
        assert pt.bound == "compute"
        assert pt.attainable_gflops == pytest.approx(roof48.peak_gflops)

    def test_intensity_rises_with_iterations_when_resident(self):
        a = banded(2000, 8.0, 10, seed=9)
        exp = SpMVExperiment(a, name="tiny")
        traces = exp.traces(8)
        ai1 = matrix_arithmetic_intensity(traces, iterations=1)
        ai8 = matrix_arithmetic_intensity(traces, iterations=8)
        assert ai8 > ai1

    def test_roofline_bounds_simulated_performance(self, roof48):
        """The simulator must never report more than the roofline allows."""
        a = build_matrix(14, scale=0.3)  # sparsine: scattered
        exp = SpMVExperiment(a, name="sparsine")
        r = exp.run(n_cores=48, iterations=16)
        pt = locate_matrix("sparsine", exp.traces(48), roof48, iterations=16)
        assert r.gflops <= pt.attainable_gflops * 1.05
