"""Tests for the library-level figure generation (repro.core.figures)."""

from __future__ import annotations

import pytest

from repro.core.figures import (
    FIG3_HOPS,
    FIG5_CORE_COUNTS,
    FIG6_CORE_COUNTS,
    FIG7_CORE_COUNTS,
    FIG9_CORE_COUNTS,
    fig3_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
    fig9_summary,
    fig10_data,
    suite_experiments,
    table1_data,
)

SCALE = 0.04
IDS = [24, 30]
ITERS = 2


@pytest.fixture(scope="module")
def exps():
    return suite_experiments(scale=SCALE, ids=IDS)


class TestSuiteExperiments:
    def test_filtered_ids(self, exps):
        assert [mid for mid, _ in exps] == IDS

    def test_full_suite_size(self):
        assert len(suite_experiments(scale=SCALE)) == 32

    def test_names_match_entries(self, exps):
        assert exps[0][1].name == "rajat09"
        assert exps[1][1].name == "Na5"


class TestTable1:
    def test_columns(self, exps):
        rows = table1_data(exps)
        assert len(rows) == 2
        for col in ("id", "name", "n", "nnz", "nnz_per_row", "ws_mbytes", "family"):
            assert col in rows[0]

    def test_values_match_matrices(self, exps):
        rows = table1_data(exps)
        assert rows[1]["nnz"] == exps[1][1].a.nnz


class TestFigData:
    def test_fig3_shape(self, exps):
        data = fig3_data(exps, ITERS)
        assert sorted(data) == FIG3_HOPS
        assert all(v > 0 for v in data.values())

    def test_fig5_shape(self, exps):
        std, dr = fig5_data(exps, ITERS)
        assert len(std) == len(dr) == len(FIG5_CORE_COUNTS)
        assert std[0] == pytest.approx(dr[0])  # 1 core: same mapping

    def test_fig6_shape(self, exps):
        rows = fig6_data(exps, ITERS)
        assert len(rows) == 2
        for n in FIG6_CORE_COUNTS:
            assert f"MFLOPS@{n}" in rows[0]
            assert f"wsKB/core@{n}" in rows[0]

    def test_fig7_shape(self, exps):
        on, off = fig7_data(exps, ITERS)
        assert sorted(on) == sorted(FIG7_CORE_COUNTS)
        for n in FIG7_CORE_COUNTS:
            assert len(on[n]) == len(off[n]) == 2
            # L2 off is never faster.
            for a, b in zip(on[n], off[n]):
                assert b.makespan >= a.makespan

    def test_fig8_shape(self, exps):
        rows = fig8_data(exps, ITERS)
        for r in rows:
            for n in FIG6_CORE_COUNTS:
                assert r[f"speedup@{n}"] >= 0.999

    def test_fig9_shape_and_summary(self, exps):
        results = fig9_data(exps, ITERS)
        assert sorted(results) == ["conf0", "conf1", "conf2"]
        perf, eff = fig9_summary(results)
        assert len(perf["conf0"]) == len(FIG9_CORE_COUNTS)
        assert all(e > 0 for e in eff.values())
        # conf1 dominates conf0 in raw performance at every count.
        assert all(a >= b for a, b in zip(perf["conf1"], perf["conf0"]))

    def test_fig10_shape(self, exps):
        rows = fig10_data(exps, ITERS)
        systems = {r["system"] for r in rows}
        assert {"SCC conf0", "SCC conf1", "Tesla M2050"} <= systems
        assert len(rows) == 7
