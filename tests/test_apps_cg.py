"""Tests for the distributed CG application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import CGResult, make_spd, parallel_cg
from repro.scc import CONF0, CONF1
from repro.sparse import CSRMatrix, banded, random_uniform, stencil_2d


@pytest.fixture(scope="module")
def system():
    a = make_spd(banded(500, 6.0, 8, seed=3))
    rng = np.random.default_rng(1)
    x_true = rng.uniform(size=a.n_rows)
    b = a.to_scipy() @ x_true
    return a, b, x_true


class TestMakeSPD:
    def test_symmetric(self):
        m = make_spd(random_uniform(80, 4.0, seed=5))
        d = m.to_dense()
        np.testing.assert_allclose(d, d.T)

    def test_positive_definite(self):
        m = make_spd(random_uniform(60, 4.0, seed=6))
        eigs = np.linalg.eigvalsh(m.to_dense())
        assert eigs.min() > 0

    def test_diagonally_dominant(self):
        m = make_spd(random_uniform(60, 4.0, seed=7))
        d = m.to_dense()
        off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
        assert (np.diag(d) >= off).all()

    def test_non_square_rejected(self):
        m = CSRMatrix(np.array([0, 1]), np.array([1], np.int32), np.array([1.0]), n_cols=3)
        with pytest.raises(ValueError):
            make_spd(m)

    def test_bad_shift_rejected(self):
        with pytest.raises(ValueError):
            make_spd(random_uniform(10, 2.0, seed=1), shift=0.0)


class TestParallelCG:
    def test_solves_banded_system(self, system):
        a, b, x_true = system
        res = parallel_cg(a, b, n_ues=8, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_residual_definition(self, system):
        a, b, _ = system
        res = parallel_cg(a, b, n_ues=4, tol=1e-10)
        true_res = np.linalg.norm(b - a.to_scipy() @ res.x)
        assert true_res == pytest.approx(res.residual_norm, rel=0.1, abs=1e-9)

    @pytest.mark.parametrize("n_ues", [1, 2, 5, 8, 16])
    def test_ue_count_does_not_change_answer(self, system, n_ues):
        a, b, x_true = system
        res = parallel_cg(a, b, n_ues=n_ues, tol=1e-10)
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_stencil_system(self):
        a = make_spd(stencil_2d(16, 16, seed=9))
        x_true = np.ones(a.n_rows)
        b = a.to_scipy() @ x_true
        res = parallel_cg(a, b, n_ues=8, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_zero_rhs(self, system):
        a, _, _ = system
        res = parallel_cg(a, np.zeros(a.n_rows), n_ues=4)
        assert res.converged
        assert res.iterations == 0
        np.testing.assert_allclose(res.x, 0.0)

    def test_max_iter_cap_reports_nonconvergence(self, system):
        a, b, _ = system
        res = parallel_cg(a, b, n_ues=4, tol=1e-14, max_iter=2)
        assert not res.converged
        assert res.iterations == 2

    def test_simulated_time_positive_and_grows_with_iters(self, system):
        a, b, _ = system
        quick = parallel_cg(a, b, n_ues=8, tol=1e-2)
        precise = parallel_cg(a, b, n_ues=8, tol=1e-12)
        assert precise.iterations > quick.iterations
        assert precise.makespan > quick.makespan > 0

    def test_faster_config_is_faster(self, system):
        a, b, _ = system
        slow = parallel_cg(a, b, n_ues=8, tol=1e-8, config=CONF0)
        fast = parallel_cg(a, b, n_ues=8, tol=1e-8, config=CONF1)
        assert fast.iterations == slow.iterations
        assert fast.makespan < slow.makespan

    def test_explicit_core_map(self, system):
        a, b, x_true = system
        res = parallel_cg(a, b, n_ues=4, core_map=[40, 41, 46, 47], tol=1e-10)
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_validation(self, system):
        a, b, _ = system
        with pytest.raises(ValueError):
            parallel_cg(a, b[:-1])
        with pytest.raises(ValueError):
            parallel_cg(a, b, n_ues=0)
        with pytest.raises(ValueError):
            parallel_cg(a, b, tol=0.0)
        with pytest.raises(ValueError):
            parallel_cg(a, b, max_iter=0)
