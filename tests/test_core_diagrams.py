"""Tests for the structural-figure renderings (Figs. 1, 2, 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    chip_diagram,
    csr_example,
    distance_reduction_mapping,
    mapping_diagram,
    standard_mapping,
)
from repro.core.diagrams import FIG2_DENSE
from repro.scc import SCCTopology


class TestChipDiagram:
    def test_all_cores_present(self):
        text = chip_diagram()
        for core in range(48):
            assert f"{core:2d}" in text

    def test_four_mc_markers(self):
        assert chip_diagram().count("MC") == 4

    def test_row_order_top_is_y3(self):
        lines = [l for l in chip_diagram().splitlines() if l.count("[") >= 6]
        assert "36,37" in lines[0]   # tile (0,3) holds cores 36/37
        assert " 0, 1" in lines[-1]  # tile (0,0) holds cores 0/1


class TestCSRExample:
    def test_fig2_arrays(self):
        text = csr_example()
        assert "ptr   = [0, 2, 3, 6, 7, 9]" in text
        assert "index = [0, 2, 1, 0, 2, 3, 3, 1, 4]" in text
        assert "da    = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]" in text

    def test_dots_for_zeros(self):
        text = csr_example()
        assert "." in text

    def test_custom_matrix(self):
        text = csr_example(np.eye(3))
        assert "ptr   = [0, 1, 2, 3]" in text

    def test_fig2_dense_shape(self):
        assert FIG2_DENSE.shape == (5, 5)
        assert np.count_nonzero(FIG2_DENSE) == 9


class TestMappingDiagram:
    def test_all_ues_shown(self):
        text = mapping_diagram(standard_mapping(6))
        for ue in range(6):
            assert f"{ue:2d}" in text

    def test_distance_reduction_touches_all_quadrants(self):
        topo = SCCTopology()
        text = mapping_diagram(distance_reduction_mapping(8, topo), topo)
        rows = [l for l in text.splitlines() if l.count("[") >= 6]
        populated = [any(ch.isdigit() for ch in l) for l in rows]
        assert populated == [False, True, False, True]  # the two MC rows

    def test_empty_tiles_are_dotted(self):
        text = mapping_diagram([0])
        assert "[ .  . ]" in text
