"""Differential harness: analytic fast path vs event-driven simulator.

The fast path (``mode="model"``, :mod:`repro.sparse.fastpath` +
:func:`repro.core.timing.solve_core_times_batched` +
:func:`repro.core.timing.barrier_exit_times`) must reproduce the
simulator's numbers — per-core solve and barrier critical path are the
same arithmetic, so the contract is *bitwise* within ``REL_TOL`` — and,
independently of absolute values, must rank every paper finding the
same way: which mapping wins (Fig. 5), how the chip configs order
(Fig. 9), and how L2-resident working sets split from streaming ones
(Fig. 6).  The battery crosses seeded generator matrices (the families
behind Table I) with cores x mappings x configs; suite-level rankings
run on real Table I stand-ins.

The final test pins the reason the fast path exists: a full-suite
``sweep_cores`` must be at least 20x faster in ``mode="model"`` than in
``mode="sim"``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.experiment import SpMVExperiment
from repro.core.figures import (
    FIG5_CORE_COUNTS,
    FIG9_CORE_COUNTS,
    fig5_data,
    fig9_data,
    suite_experiments,
)
from repro.scc.chip import CONF0, CONF1, CONF2
from repro.scc.params import L2_BYTES
from repro.sparse.generators import banded, power_law, random_uniform, stencil_2d

#: the fidelity contract (docs/PERFORMANCE.md): identical arithmetic on
#: both paths makes the agreement exact; the tolerance only allows for
#: float noise a future refactor might legitimately introduce.
REL_TOL = 1e-9

#: ties closer than this relative margin don't count as a ranking.
TIE_TOL = 1e-6

CORE_COUNTS = (1, 4, 8, 24, 48)
MAPPINGS = ("standard", "distance_reduction")
CONFIGS = (CONF0, CONF1, CONF2)
ITERATIONS = 2

#: seeded generator battery — one matrix per sparsity family, sized so
#: the set spans both L2-resident and streaming working sets.
MATRICES = (
    ("banded", lambda: banded(3000, 9.0, 12, seed=11)),
    # sized to stream even at 24 cores (ws/core > 256 KiB L2)
    ("random", lambda: random_uniform(40000, 15.0, seed=12)),
    ("power_law", lambda: power_law(2200, 7.0, seed=13)),
    ("stencil", lambda: stencil_2d(48, 48, seed=14)),
)


@pytest.fixture(scope="module")
def grid():
    """(matrix, cores, mapping, config) -> (sim result, model result)."""
    out = {}
    for mat_name, build in MATRICES:
        exp = SpMVExperiment(build(), name=mat_name)
        for n in CORE_COUNTS:
            for mapping in MAPPINGS:
                for cfg in CONFIGS:
                    kwargs = dict(
                        n_cores=n,
                        mapping=mapping,
                        config=cfg,
                        iterations=ITERATIONS,
                    )
                    out[(mat_name, n, mapping, cfg.name)] = (
                        exp.run(mode="sim", **kwargs),
                        exp.run(mode="model", **kwargs),
                    )
    return out


def _ranking(values: dict, tie_tol: float = TIE_TOL):
    """Keys sorted by value, with near-ties collapsed to frozensets."""
    ordered = sorted(values, key=values.__getitem__, reverse=True)
    groups, current = [], [ordered[0]]
    for key in ordered[1:]:
        prev = values[current[-1]]
        if abs(prev - values[key]) <= tie_tol * max(abs(prev), 1e-300):
            current.append(key)
        else:
            groups.append(frozenset(current))
            current = [key]
    groups.append(frozenset(current))
    return groups


class TestMflopsAgreement:
    def test_mflops_within_tolerance(self, grid):
        """Every grid point's throughput agrees to REL_TOL."""
        worst = 0.0
        for key, (sim, model) in grid.items():
            rel = abs(sim.mflops - model.mflops) / sim.mflops
            worst = max(worst, rel)
            assert rel <= REL_TOL, f"{key}: sim {sim.mflops} vs model {model.mflops}"
        assert worst <= REL_TOL

    def test_makespans_match(self, grid):
        for key, (sim, model) in grid.items():
            assert model.makespan == pytest.approx(sim.makespan, rel=REL_TOL), key

    def test_result_identity_fields_match(self, grid):
        for sim, model in grid.values():
            assert (sim.matrix_name, sim.n_cores, sim.config_name, sim.mapping) == (
                model.matrix_name,
                model.n_cores,
                model.config_name,
                model.mapping,
            )

    def test_per_core_times_match(self, grid):
        """Not just the aggregate: every per-core solve agrees."""
        for key, (sim, model) in grid.items():
            for ts, tm in zip(sim.per_core, model.per_core):
                assert tm.time == pytest.approx(ts.time, rel=REL_TOL), key
                assert tm.mem_lines == ts.mem_lines, key


class TestRankingAgreement:
    def test_fig5_mapping_winner_per_matrix(self, grid):
        """Fig. 5: whichever mapping wins under the simulator wins under
        the model, for every matrix and core count."""
        for mat_name, _build in MATRICES:
            for n in CORE_COUNTS:
                sim_rank = _ranking(
                    {m: grid[(mat_name, n, m, CONF0.name)][0].mflops for m in MAPPINGS}
                )
                model_rank = _ranking(
                    {m: grid[(mat_name, n, m, CONF0.name)][1].mflops for m in MAPPINGS}
                )
                assert sim_rank == model_rank, (mat_name, n)

    def test_fig9_config_ordering_per_matrix(self, grid):
        """Fig. 9: the config speedup ordering is preserved."""
        for mat_name, _build in MATRICES:
            for n in CORE_COUNTS:
                sim_rank = _ranking(
                    {
                        cfg.name: grid[(mat_name, n, "distance_reduction", cfg.name)][0].mflops
                        for cfg in CONFIGS
                    }
                )
                model_rank = _ranking(
                    {
                        cfg.name: grid[(mat_name, n, "distance_reduction", cfg.name)][1].mflops
                        for cfg in CONFIGS
                    }
                )
                assert sim_rank == model_rank, (mat_name, n)

    def test_fig6_working_set_split(self, grid):
        """Fig. 6: both paths agree on which matrices are L2-resident at
        24 cores and that the resident group outperforms the streaming
        group by the same margin."""
        sim_small, sim_large, model_small, model_large = [], [], [], []
        for mat_name, _build in MATRICES:
            sim, model = grid[(mat_name, 24, "distance_reduction", CONF0.name)]
            assert sim.ws_per_core_bytes == model.ws_per_core_bytes
            if sim.ws_per_core_bytes <= L2_BYTES:
                sim_small.append(sim.mflops)
                model_small.append(model.mflops)
            else:
                sim_large.append(sim.mflops)
                model_large.append(model.mflops)
        # the battery must actually exercise the split
        assert sim_small and sim_large
        sim_gap = (sum(sim_small) / len(sim_small)) / (sum(sim_large) / len(sim_large))
        model_gap = (sum(model_small) / len(model_small)) / (
            sum(model_large) / len(model_large)
        )
        assert sim_gap > 1.0 and model_gap > 1.0
        assert model_gap == pytest.approx(sim_gap, rel=REL_TOL)


class TestSuiteFigureAgreement:
    """Figs. 5/9 on Table I stand-ins through the real figure pipeline."""

    SCALE = 0.05
    IDS = (7, 24, 30)

    @pytest.fixture(scope="class")
    def exps(self):
        return suite_experiments(scale=self.SCALE, ids=self.IDS)

    def test_fig5_series_and_winner(self, exps):
        counts = (1, 8, 24)
        sim_std, sim_dr = fig5_data(exps, ITERATIONS, counts, mode="sim")
        model_std, model_dr = fig5_data(exps, ITERATIONS, counts, mode="model")
        assert model_std == pytest.approx(sim_std, rel=REL_TOL)
        assert model_dr == pytest.approx(sim_dr, rel=REL_TOL)
        for i in range(len(counts)):
            assert _ranking({"std": sim_std[i], "dr": sim_dr[i]}) == _ranking(
                {"std": model_std[i], "dr": model_dr[i]}
            )

    def test_fig9_config_ordering(self, exps):
        counts = (8, 24)
        sim = fig9_data(exps, ITERATIONS, counts, mode="sim")
        model = fig9_data(exps, ITERATIONS, counts, mode="model")
        for n in counts:
            sim_avg = {
                name: sum(r.mflops for r in by_n[n]) / len(by_n[n])
                for name, by_n in sim.items()
            }
            model_avg = {
                name: sum(r.mflops for r in by_n[n]) / len(by_n[n])
                for name, by_n in model.items()
            }
            assert _ranking(sim_avg) == _ranking(model_avg)
            for name in sim_avg:
                assert model_avg[name] == pytest.approx(sim_avg[name], rel=REL_TOL)


class TestSpeedup:
    def test_model_sweep_at_least_20x_faster(self):
        """The acceptance bar: full-suite sweep_cores, model vs sim.

        Both paths share the stream characterization (traces), so it is
        warmed first; the model's schedule/solver caches are likewise
        warmed with one sweep — in a figure campaign both are one-time
        setup amortized over every figure.  The sim side is measured
        once (noise only inflates it); the model side takes the best of
        three to keep a loaded CI machine from failing a real 27x
        margin.
        """
        exps = [exp for _mid, exp in suite_experiments(scale=0.01)]
        counts = FIG5_CORE_COUNTS
        for exp in exps:
            for n in counts:
                exp.traces(n)
                exp.batched_traces(n)
        for exp in exps:
            exp.sweep_cores(counts, iterations=ITERATIONS, mode="model")  # warm

        t0 = time.perf_counter()
        for exp in exps:
            exp.sweep_cores(counts, iterations=ITERATIONS, mode="sim")
        sim_s = time.perf_counter() - t0

        model_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for exp in exps:
                exp.sweep_cores(counts, iterations=ITERATIONS, mode="model")
            model_s = min(model_s, time.perf_counter() - t0)

        assert sim_s / model_s >= 20.0, (
            f"model sweep only {sim_s / model_s:.1f}x faster "
            f"(sim {sim_s:.3f}s, model {model_s:.4f}s)"
        )
