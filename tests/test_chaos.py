"""The ``repro chaos`` harness: seeded OS-level faults, verified healing.

The harness's contract is the PR's headline invariant: under any seeded
schedule of worker SIGKILLs, SIGSTOPs and store corruption, the
supervised campaign completes, its surviving records are bitwise
identical to a clean serial run, and exactly the injected poison points
are quarantined.  These tests pin the schedule generator's determinism
and run the full harness end to end on a reduced grid.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.campaign import Campaign
from repro.core.parallel import fork_context
from repro.faults.chaos import build_chaos_schedule, chaos_main

pytestmark = pytest.mark.skipif(
    fork_context() is None, reason="requires the fork start method"
)

KEYS = [pt.key() for pt in Campaign.grid(ids=(24, 30), core_counts=(1, 4),
                                         configs=("conf0", "conf1"))]

#: a fast harness invocation: tiny matrices, short SIGSTOP deadline.
FAST = [
    "--scale", "0.02",
    "--iterations", "1",
    "--task-timeout", "2.0",
    "--workers", "2",
]


class TestSchedule:
    def test_deterministic_per_seed(self):
        assert build_chaos_schedule(KEYS, 0) == build_chaos_schedule(KEYS, 0)
        assert build_chaos_schedule(KEYS, 0) != build_chaos_schedule(KEYS, 1)

    def test_targets_are_distinct_and_typed(self):
        spec, transient, poison = build_chaos_schedule(KEYS, 3)
        assert set(spec) == set(transient) | set(poison)
        assert len(spec) == len(transient) + len(poison)
        for key in transient:
            assert spec[key]["attempts"] == [1]
        for key in poison:
            assert spec[key] == {"action": "kill", "attempts": "all"}
        # the 8-point grid draws 2 kills + 1 stop + 2 poison
        assert len(transient) == 3 and len(poison) == 2
        assert sum(1 for e in spec.values() if e["action"] == "stop") == 1

    def test_insensitive_to_key_order(self):
        assert build_chaos_schedule(KEYS, 5) == build_chaos_schedule(
            list(reversed(KEYS)), 5
        )

    def test_tiny_grids_scale_down(self):
        spec, transient, poison = build_chaos_schedule(KEYS[:2], 0)
        assert poison and len(spec) <= 2


class TestHarnessEndToEnd:
    def test_invariants_hold_and_artifacts_written(self, tmp_path):
        qfile = tmp_path / "quarantine.jsonl"
        buf = io.StringIO()
        code = chaos_main(
            FAST + ["--seed", "0", "--json",
                    "--quarantine-records", str(qfile)],
            out=buf,
        )
        report = json.loads(buf.getvalue())
        assert code == 0, report
        assert report["violations"] == []
        worker = report["worker_leg"]
        assert worker["quarantined"] == sorted(worker["poison"])
        assert worker["survivors_checked"] == worker["points"] - len(
            worker["poison"]
        )
        metrics = worker["metrics"]
        assert metrics["supervise.quarantines"] == len(worker["poison"])
        assert metrics["supervise.retries"] >= len(worker["transient"])
        # the quarantine-records artifact holds one record per poison key
        records = [json.loads(line) for line in qfile.read_text().splitlines()]
        assert len(records) == len(worker["poison"])
        assert all(rec["status"] == "quarantined" for rec in records)
        assert all(rec["tracebacks"] for rec in records)
        # the store leg ran and quarantined every corrupted entry
        store = report["store_leg"]
        assert not store.get("skipped")
        assert len(store["corrupt_quarantined"]) == 3

    def test_skip_store_leg(self, tmp_path):
        buf = io.StringIO()
        code = chaos_main(
            FAST + ["--seed", "1", "--json", "--skip-store-leg"], out=buf
        )
        report = json.loads(buf.getvalue())
        assert code == 0, report
        assert report["store_leg"]["skipped"]

    def test_explicit_machine_smoke(self, tmp_path):
        """--machine scc-48 is the default spelled out: same invariants."""
        buf = io.StringIO()
        code = chaos_main(
            FAST + ["--seed", "1", "--json", "--skip-store-leg",
                    "--machine", "scc-48"],
            out=buf,
        )
        report = json.loads(buf.getvalue())
        assert code == 0, report
        assert report["violations"] == []

    def test_text_report_names_the_invariants(self):
        buf = io.StringIO()
        code = chaos_main(FAST + ["--seed", "2", "--skip-store-leg"], out=buf)
        text = buf.getvalue()
        assert code == 0, text
        assert "bitwise-identical" in text
        assert "quarantined set == injected poison set" in text
