"""Tests for the ``repro lint`` / ``repro check`` CLI subcommands."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.cli import ANALYSIS_COMMANDS, main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestLintCommand:
    def test_clean_paths_exit_zero(self):
        code, text = run_cli(
            "lint",
            os.path.join(REPO, "examples"),
            os.path.join(REPO, "src", "repro", "apps"),
        )
        assert code == 0
        assert "no findings" in text

    def test_buggy_fixture_exit_one_with_location(self):
        path = os.path.join(FIXTURES, "lint_bad_rcce110.py")
        code, text = run_cli("lint", path)
        assert code == 1
        assert "RCCE110" in text
        assert "lint_bad_rcce110.py:7" in text  # precise file:line

    def test_json_format(self):
        path = os.path.join(FIXTURES, "lint_bad_sim301.py")
        code, text = run_cli("lint", path, "--format", "json")
        assert code == 1
        payload = json.loads(text)
        assert payload[0]["rule"] == "SIM301"

    def test_select_filter(self):
        path = os.path.join(FIXTURES, "lint_bad_sim301.py")
        code, text = run_cli("lint", path, "--select", "DET201")
        assert code == 0

    def test_list_rules(self):
        code, text = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in ("RCCE101", "RCCE110", "DET201", "SIM302"):
            assert rule_id in text

    def test_no_paths_is_an_error(self):
        with pytest.raises(SystemExit):
            run_cli("lint")

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit):
            run_cli("lint", "no/such/dir")

    def test_analysis_commands_exported(self):
        assert ANALYSIS_COMMANDS == ("lint", "check", "analyze")


class TestCheckCommand:
    def test_battery_runs_clean(self):
        code, text = run_cli("check", "--no-determinism")
        assert code == 0
        assert "ring-allgather" in text
        assert "0 failing" in text

    def test_buggy_program_fails_with_wait_for_graph(self):
        spec = os.path.join(FIXTURES, "buggy_programs.py") + ":deadlock_tag_mismatch"
        code, text = run_cli(
            "check", "--program", spec, "--ues", "2", "--no-determinism"
        )
        assert code == 1
        assert "RT801" in text
        assert "tag=5" in text and "tag=7" in text

    def test_nondeterministic_program_fails(self):
        spec = (
            os.path.join(FIXTURES, "buggy_programs.py") + ":nondeterministic_compute"
        )
        code, text = run_cli("check", "--program", spec, "--ues", "2")
        assert code == 1
        assert "DET900" in text

    def test_json_format(self):
        code, text = run_cli("check", "--no-determinism", "--format", "json")
        assert code == 0
        payload = json.loads(text)
        assert all(entry["ok"] for entry in payload)

    def test_bad_program_spec(self):
        with pytest.raises(SystemExit):
            run_cli("check", "--program", "nope")

    def test_bad_ues(self):
        spec = os.path.join(FIXTURES, "buggy_programs.py") + ":deadlock_all_recv"
        with pytest.raises(SystemExit):
            run_cli("check", "--program", spec, "--ues", "0")


class TestAnalyzeCommand:
    def test_list_rules(self):
        code, text = run_cli("analyze", "--list-rules")
        assert code == 0
        for rule_id in ("DF500", "DF501", "DF502", "DF503"):
            assert rule_id in text

    def test_clean_corpus_exits_zero(self):
        code, text = run_cli(
            "analyze",
            os.path.join(REPO, "examples"),
            os.path.join(REPO, "src", "repro", "apps"),
            "--ues-range",
            "2:8",
        )
        assert code == 0
        assert "no findings" in text

    def test_deadlock_fixture_exits_one(self):
        code, text = run_cli(
            "analyze",
            os.path.join(FIXTURES, "df_deadlock_ring.py"),
            "--ues-range",
            "2:8",
        )
        assert code == 1
        assert "DF501" in text and "n_ues in 2..8" in text
        assert "df_deadlock_ring.py:27" in text

    def test_single_function_spec(self):
        spec = os.path.join(FIXTURES, "buggy_programs.py") + ":collective_kind_mismatch"
        code, text = run_cli("analyze", spec, "--ues-range", "2:4")
        assert code == 1
        assert "DF502" in text and "collective_kind_mismatch" in text

    def test_json_format(self):
        code, text = run_cli(
            "analyze",
            os.path.join(FIXTURES, "df_deadlock_ring.py"),
            "--ues-range",
            "2:4",
            "--json",
        )
        assert code == 1
        payload = json.loads(text)
        assert payload[0]["rule"] == "DF501"
        assert payload[0]["col"] > 0 and payload[0]["end_col"] > 0

    def test_sarif_format_validates(self):
        from repro.analysis.sarif import validate_sarif

        code, text = run_cli(
            "analyze",
            os.path.join(FIXTURES, "df_deadlock_ring.py"),
            "--format",
            "sarif",
            "--ues-range",
            "2:4",
        )
        assert code == 1
        doc = json.loads(text)
        assert doc["version"] == "2.1.0"
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "DF501"

    def test_select_restricts_rules(self):
        code, text = run_cli(
            "analyze",
            os.path.join(FIXTURES, "df_deadlock_ring.py"),
            "--select",
            "DF503",
            "--ues-range",
            "2:4",
        )
        assert code == 0
        assert "no findings" in text

    def test_compare_runtime_agreement(self):
        bad = os.path.join(FIXTURES, "df_deadlock_ring.py") + ":ring_exchange_deadlock"
        code, text = run_cli(
            "analyze", bad, "--compare-runtime", "--ues", "3", "--ues-range", "2:4"
        )
        assert code == 1  # findings are errors, but the tools AGREE
        assert "AGREE" in text and "DISAGREE" not in text
        assert "DF501" in text and "RT801" in text

    def test_compare_runtime_clean_program(self):
        good = os.path.join(FIXTURES, "df_ring_fixed.py") + ":ring_exchange_fixed"
        code, text = run_cli(
            "analyze", good, "--compare-runtime", "--ues", "5", "--ues-range", "2:6"
        )
        assert code == 0
        assert "AGREE" in text and "static=clean" in text

    def test_compare_runtime_rejects_sarif(self):
        good = os.path.join(FIXTURES, "df_ring_fixed.py") + ":ring_exchange_fixed"
        with pytest.raises(SystemExit):
            run_cli("analyze", good, "--compare-runtime", "--format", "sarif")

    def test_no_paths_errors(self):
        with pytest.raises(SystemExit):
            run_cli("analyze")

    def test_bad_range_errors(self):
        with pytest.raises(SystemExit):
            run_cli("analyze", "x.py", "--ues-range", "8:2")
        with pytest.raises(SystemExit):
            run_cli("analyze", "x.py", "--ues-range", "abc")

    def test_output_file(self, tmp_path):
        out = tmp_path / "report.sarif"
        # no explicit stream: --output must win and write the file
        code = main(
            [
                "analyze",
                os.path.join(FIXTURES, "df_ring_fixed.py"),
                "--format",
                "sarif",
                "--ues-range",
                "2:4",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"] == []
