"""Tests for the ``repro lint`` / ``repro check`` CLI subcommands."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.cli import ANALYSIS_COMMANDS, main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestLintCommand:
    def test_clean_paths_exit_zero(self):
        code, text = run_cli(
            "lint",
            os.path.join(REPO, "examples"),
            os.path.join(REPO, "src", "repro", "apps"),
        )
        assert code == 0
        assert "no findings" in text

    def test_buggy_fixture_exit_one_with_location(self):
        path = os.path.join(FIXTURES, "lint_bad_rcce110.py")
        code, text = run_cli("lint", path)
        assert code == 1
        assert "RCCE110" in text
        assert "lint_bad_rcce110.py:7" in text  # precise file:line

    def test_json_format(self):
        path = os.path.join(FIXTURES, "lint_bad_sim301.py")
        code, text = run_cli("lint", path, "--format", "json")
        assert code == 1
        payload = json.loads(text)
        assert payload[0]["rule"] == "SIM301"

    def test_select_filter(self):
        path = os.path.join(FIXTURES, "lint_bad_sim301.py")
        code, text = run_cli("lint", path, "--select", "DET201")
        assert code == 0

    def test_list_rules(self):
        code, text = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in ("RCCE101", "RCCE110", "DET201", "SIM302"):
            assert rule_id in text

    def test_no_paths_is_an_error(self):
        with pytest.raises(SystemExit):
            run_cli("lint")

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit):
            run_cli("lint", "no/such/dir")

    def test_analysis_commands_exported(self):
        assert ANALYSIS_COMMANDS == ("lint", "check")


class TestCheckCommand:
    def test_battery_runs_clean(self):
        code, text = run_cli("check", "--no-determinism")
        assert code == 0
        assert "ring-allgather" in text
        assert "0 failing" in text

    def test_buggy_program_fails_with_wait_for_graph(self):
        spec = os.path.join(FIXTURES, "buggy_programs.py") + ":deadlock_tag_mismatch"
        code, text = run_cli(
            "check", "--program", spec, "--ues", "2", "--no-determinism"
        )
        assert code == 1
        assert "RT801" in text
        assert "tag=5" in text and "tag=7" in text

    def test_nondeterministic_program_fails(self):
        spec = (
            os.path.join(FIXTURES, "buggy_programs.py") + ":nondeterministic_compute"
        )
        code, text = run_cli("check", "--program", spec, "--ues", "2")
        assert code == 1
        assert "DET900" in text

    def test_json_format(self):
        code, text = run_cli("check", "--no-determinism", "--format", "json")
        assert code == 0
        payload = json.loads(text)
        assert all(entry["ok"] for entry in payload)

    def test_bad_program_spec(self):
        with pytest.raises(SystemExit):
            run_cli("check", "--program", "nope")

    def test_bad_ues(self):
        spec = os.path.join(FIXTURES, "buggy_programs.py") + ":deadlock_all_recv"
        with pytest.raises(SystemExit):
            run_cli("check", "--program", spec, "--ues", "0")
