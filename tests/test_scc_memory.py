"""Tests for the memory system: Eq. 1 latency and MC bandwidth sharing."""

from __future__ import annotations

import pytest

from repro.scc import MemorySystem, SCCTopology, memory_read_latency
from repro.scc.params import (
    LAT_CORE_CYCLES,
    LAT_MEM_CYCLES,
    LAT_MESH_CYCLES_PER_HOP,
    MC_BANDWIDTH_BYTES_PER_SEC_AT_800,
)


class TestLatencyFormula:
    def test_zero_hop_default_clocks(self):
        t = memory_read_latency(0, 533, 800, 800)
        expected = LAT_CORE_CYCLES / 533e6 + LAT_MEM_CYCLES / 800e6
        assert t == pytest.approx(expected)

    def test_hop_term_linear(self):
        base = memory_read_latency(0, 533, 800, 800)
        per_hop = LAT_MESH_CYCLES_PER_HOP / 800e6
        for h in range(1, 5):
            assert memory_read_latency(h, 533, 800, 800) == pytest.approx(base + h * per_hop)

    def test_three_hops_adds_about_23_percent(self):
        """Eq. 1 at default clocks: 3 hops raise latency 132.5 -> 162.5 ns."""
        t0 = memory_read_latency(0, 533, 800, 800)
        t3 = memory_read_latency(3, 533, 800, 800)
        assert t0 == pytest.approx(132.5e-9, rel=1e-3)
        assert t3 == pytest.approx(162.5e-9, rel=1e-3)

    def test_faster_clocks_reduce_latency(self):
        slow = memory_read_latency(2, 533, 800, 800)
        fast = memory_read_latency(2, 800, 1600, 1066)
        assert fast < slow

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            memory_read_latency(-1, 533, 800, 800)
        with pytest.raises(ValueError):
            memory_read_latency(0, 0, 800, 800)
        with pytest.raises(ValueError):
            memory_read_latency(0, 533, -1, 800)
        with pytest.raises(ValueError):
            memory_read_latency(0, 533, 800, 0)


class TestMemorySystem:
    def test_four_controllers(self, topology):
        mem = MemorySystem(topology)
        assert len(mem.controllers) == 4
        assert {mc.coord for mc in mem.controllers} == set(topology.mc_coords)

    def test_bandwidth_scales_with_clock(self, topology):
        m800 = MemorySystem(topology, mem_mhz=800)
        m1066 = MemorySystem(topology, mem_mhz=1066)
        ratio = m1066.controllers[0].bandwidth / m800.controllers[0].bandwidth
        assert ratio == pytest.approx(1066 / 800)
        assert m800.controllers[0].bandwidth == pytest.approx(
            MC_BANDWIDTH_BYTES_PER_SEC_AT_800
        )

    def test_line_service_time(self, topology):
        mem = MemorySystem(topology, mem_mhz=800)
        t = mem.controllers[0].line_service_time(32)
        assert t == pytest.approx(32 / MC_BANDWIDTH_BYTES_PER_SEC_AT_800)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            MemorySystem(mem_mhz=0)

    def test_controller_of_core_matches_quadrant(self, topology):
        mem = MemorySystem(topology)
        for q in range(4):
            for core in topology.cores_of_quadrant(q):
                assert mem.controller_of_core(core).index == q

    def test_latency_for_core_uses_hops(self, topology):
        mem = MemorySystem(topology)
        c0 = topology.cores_at_distance(0)[0]
        c3 = topology.cores_at_distance(3)[0]
        assert mem.latency_for_core(c3, 533, 800) > mem.latency_for_core(c0, 533, 800)

    def test_group_cores_by_controller(self, topology):
        mem = MemorySystem(topology)
        groups = mem.group_cores_by_controller(range(48))
        assert sorted(groups) == [0, 1, 2, 3]
        assert all(len(v) == 12 for v in groups.values())


class TestEffectiveLineTime:
    def test_uncontended_returns_latency(self, topology):
        mem = MemorySystem(topology)
        lat = mem.latency_for_core(0, 533, 800)
        # One quiet core: demand far below capacity.
        t = mem.effective_line_time(0, 533, 800, {0: 1000.0})
        assert t == pytest.approx(lat)

    def test_saturated_inflates(self, topology):
        mem = MemorySystem(topology)
        cap_lines = mem.controllers[0].bandwidth / 32
        # 12 cores of quadrant 0 each demanding half the full capacity.
        demand = {c: cap_lines / 2 for c in topology.cores_of_quadrant(0)}
        lat = mem.latency_for_core(0, 533, 800)
        t = mem.effective_line_time(0, 533, 800, demand)
        assert t > lat

    def test_other_quadrant_demand_ignored(self, topology):
        mem = MemorySystem(topology)
        cap_lines = mem.controllers[0].bandwidth / 32
        demand = {c: cap_lines for c in topology.cores_of_quadrant(1)}
        demand[0] = 100.0
        lat = mem.latency_for_core(0, 533, 800)
        assert mem.effective_line_time(0, 533, 800, demand) == pytest.approx(lat)

    def test_fair_share_at_saturation(self, topology):
        mem = MemorySystem(topology)
        cap_lines = mem.controllers[0].bandwidth / 32
        cores = topology.cores_of_quadrant(0)
        demand = {c: cap_lines for c in cores}  # 12x oversubscription
        t = mem.effective_line_time(cores[0], 533, 800, demand)
        # Equal demands -> each gets cap/12 lines/sec.
        assert t == pytest.approx(12 / cap_lines)
