"""Differential harness: predict vs model (and exact-trace) error bounds.

The acceptance bar of the predict tier is *quantified*, not asserted:
:func:`repro.predict.harness.differential_report` trains a fresh
predictor per machine on a ``mode="model"`` sweep and replays the same
grid through ``mode="predict"``.  These tests pin the error contract
(median relative makespan error within the gate's 10% budget on every
machine-zoo member, and close to the SCC exact-trace tier as well) and
the purity contract (a predict sweep writes nothing to the content
store).  The 100x wall-clock speedup is deliberately *not* asserted
here — unit-test machines are noisy; ``repro bench gate
--min-predict-speedup`` owns that number.
"""

from __future__ import annotations

import pytest

from repro.predict.harness import differential_report
from repro.store import ContentStore

ZOO = ("scc-48", "xeonphi-61", "ft2000plus-64")


@pytest.fixture(scope="module")
def report():
    rep = differential_report(
        machine_ids=ZOO,
        ids=(2, 7),
        core_counts=(1, 2, 4, 8, 16),
        scale=0.05,
        iterations=2,
        n_rounds=100,
        include_exact=True,
        exact_ids=(2,),
        exact_core_counts=(2, 8),
    )
    # Captured here, inside the same per-test store sandbox the harness
    # ran in (the autouse cache-dir fixture is function-scoped).
    rep["_store_counts"] = {
        ns: ContentStore(namespace=ns).entry_count()
        for ns in ("serve-points", "predict-models")
    }
    return rep


def test_every_machine_within_error_budget(report):
    assert set(report["machines"]) == set(ZOO)
    for machine_id, m in report["machines"].items():
        assert m["n_points"] == 10
        assert m["median_rel_err_pct"] <= 10.0, machine_id
        assert m["p90_rel_err_pct"] <= 25.0, machine_id


def test_predict_is_faster_than_model(report):
    # The real >=100x bound lives in the bench gate; here only sanity.
    for machine_id, m in report["machines"].items():
        assert m["speedup"] > 1.0, machine_id
    agg = report["aggregate"]
    assert agg["t_predict_s"] < agg["t_model_s"]
    assert agg["worst_median_rel_err_pct"] <= 10.0


def test_predict_tracks_exact_trace_on_scc(report):
    exact = report["machines"]["scc-48"]["exact"]
    assert exact["n_points"] == 2
    # exact-trace and model disagree by a few percent themselves, so
    # the budget here is looser than the predict-vs-model bound.
    assert exact["median_rel_err_pct"] <= 15.0


def test_predict_sweep_writes_nothing_to_store(report):
    # The harness trained and predicted across the whole zoo above; the
    # serve-points namespace (the only place campaign records persist)
    # must still be empty, and no model artifact was sealed either —
    # the harness installs predictors in-process only.
    assert report["_store_counts"] == {"serve-points": 0, "predict-models": 0}
