"""repro — reproduction of Pichel & Rivera, "Experiences with the Sparse
Matrix-Vector Multiplication on a Many-core Processor" (2012).

The package models the Intel SCC research processor and reruns the
paper's SpMV characterization study on the model:

- :mod:`repro.sim` — deterministic discrete-event engine.
- :mod:`repro.scc` — SCC architecture model (topology, caches, mesh,
  memory controllers, frequency/power).
- :mod:`repro.rcce` — RCCE-style message-passing runtime.
- :mod:`repro.sparse` — CSR/COO formats, SpMV kernels, partitioners and
  the reconstructed Table I testbed.
- :mod:`repro.core` — the study itself: mappings, experiment runner,
  metrics and the cross-architecture comparison models.
- :mod:`repro.analysis` — static linter and dynamic checkers for RCCE
  programs.
- :mod:`repro.faults` — deterministic fault injection and the
  fault-tolerant execution layer.
- :mod:`repro.obs` — structured tracing (simulated-time spans, Chrome
  trace export) and a labelled metrics registry.

Quickstart::

    from repro.sparse import build_matrix
    from repro.core import SpMVExperiment
    from repro.scc import CONF0

    a = build_matrix(12, scale=0.1)           # crystk03 stand-in
    exp = SpMVExperiment(a)
    r = exp.run(n_cores=24, config=CONF0)
    print(r.gflops, r.mflops_per_watt)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
