"""Library-level generation of every table/figure of the paper.

Each ``figN_data`` function reproduces one artifact of the evaluation
section from a list of (name, :class:`SpMVExperiment`) pairs, returning
plain data (dicts/lists) that the benchmark harness asserts on and the
CLI renders.  Keeping these in the library — rather than in the
benchmark files — makes the reproduction scriptable:

    from repro.core.figures import suite_experiments, fig5_data
    exps = suite_experiments(scale=0.2)
    std, dr = fig5_data(exps)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..scc.chip import CONF0, CONF1, CONF2, SCCConfig
from ..sparse.stats import working_set_mbytes
from ..sparse.suite import SUITE, build_matrix
from .comparison import comparison_table
from .experiment import DEFAULT_ITERATIONS, ExperimentResult, SpMVExperiment
from .mapping import single_core_at_distance
from .metrics import average_gflops, average_mflops_per_watt

__all__ = [
    "suite_experiments",
    "table1_data",
    "fig3_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "fig8_data",
    "fig9_data",
    "fig10_data",
    "FIG5_CORE_COUNTS",
    "FIG6_CORE_COUNTS",
    "FIG7_CORE_COUNTS",
    "FIG9_CORE_COUNTS",
]

FIG3_HOPS = [0, 1, 2, 3]
FIG5_CORE_COUNTS = [1, 2, 4, 8, 16, 24, 32, 48]
FIG6_CORE_COUNTS = [8, 24, 48]
FIG7_CORE_COUNTS = [1, 8, 16, 24, 32, 48]
FIG9_CORE_COUNTS = [8, 16, 24, 32, 48]

Experiments = Sequence[Tuple[int, SpMVExperiment]]


def suite_experiments(
    scale: float = 1.0,
    ids: Optional[Sequence[int]] = None,
) -> List[Tuple[int, SpMVExperiment]]:
    """(matrix id, experiment) pairs over the Table I suite."""
    out = []
    for e in SUITE:
        if ids is not None and e.mid not in ids:
            continue
        out.append((e.mid, SpMVExperiment(build_matrix(e.mid, scale=scale), name=e.name)))
    return out


def table1_data(experiments: Experiments) -> List[dict]:
    """Table I rows for the given experiments."""
    rows = []
    by_id = {e.mid: e for e in SUITE}
    for mid, exp in experiments:
        a = exp.a
        rows.append(
            {
                "id": mid,
                "name": exp.name,
                "n": a.n_rows,
                "nnz": a.nnz,
                "nnz_per_row": a.nnz_per_row,
                "ws_mbytes": working_set_mbytes(a.n_rows, a.nnz),
                "family": by_id[mid].family,
            }
        )
    return rows


def fig3_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
) -> Dict[int, float]:
    """Suite-average MFLOPS/s of one core at each hop distance."""
    perf: Dict[int, List[ExperimentResult]] = {h: [] for h in FIG3_HOPS}
    for _mid, exp in experiments:
        for h in FIG3_HOPS:
            perf[h].append(
                exp.run(n_cores=1, mapping=single_core_at_distance(h), iterations=iterations)
            )
    return {h: average_gflops(rs) * 1000 for h, rs in perf.items()}


def fig5_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG5_CORE_COUNTS),
) -> Tuple[List[float], List[float]]:
    """(standard, distance-reduction) suite-average MFLOPS/s per count."""
    std = {n: [] for n in core_counts}
    dr = {n: [] for n in core_counts}
    for _mid, exp in experiments:
        for n in core_counts:
            std[n].append(exp.run(n_cores=n, mapping="standard", iterations=iterations))
            dr[n].append(
                exp.run(n_cores=n, mapping="distance_reduction", iterations=iterations)
            )
    return (
        [average_gflops(std[n]) * 1000 for n in core_counts],
        [average_gflops(dr[n]) * 1000 for n in core_counts],
    )


def fig6_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG6_CORE_COUNTS),
) -> List[dict]:
    """Per-matrix performance and per-core working set at each count."""
    rows = []
    for mid, exp in experiments:
        row: dict = {"id": mid, "name": exp.name}
        for n in core_counts:
            r = exp.run(n_cores=n, iterations=iterations)
            row[f"MFLOPS@{n}"] = r.mflops
            row[f"wsKB/core@{n}"] = r.ws_per_core_bytes / 1024
        rows.append(row)
    return rows


def fig7_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG7_CORE_COUNTS),
) -> Tuple[Dict[int, List[ExperimentResult]], Dict[int, List[ExperimentResult]]]:
    """Per-count result lists with L2 enabled and disabled."""
    no_l2 = CONF0.with_l2(False)
    with_l2: Dict[int, List[ExperimentResult]] = {n: [] for n in core_counts}
    without_l2: Dict[int, List[ExperimentResult]] = {n: [] for n in core_counts}
    for _mid, exp in experiments:
        for n in core_counts:
            with_l2[n].append(exp.run(n_cores=n, iterations=iterations))
            without_l2[n].append(exp.run(n_cores=n, config=no_l2, iterations=iterations))
    return with_l2, without_l2


def fig8_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG6_CORE_COUNTS),
) -> List[dict]:
    """Per-matrix no-x-miss speedups at each core count."""
    rows = []
    for mid, exp in experiments:
        row: dict = {"id": mid, "name": exp.name}
        for n in core_counts:
            base = exp.run(n_cores=n, iterations=iterations)
            nox = exp.run(n_cores=n, kernel="no_x_miss", iterations=iterations)
            row[f"speedup@{n}"] = base.makespan / nox.makespan
            row[f"MFLOPS@{n}"] = base.mflops
        rows.append(row)
    return rows


def fig9_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG9_CORE_COUNTS),
    configs: Sequence[SCCConfig] = (CONF0, CONF1, CONF2),
) -> Dict[str, Dict[int, List[ExperimentResult]]]:
    """Per-config, per-count result lists."""
    results: Dict[str, Dict[int, List[ExperimentResult]]] = {
        cfg.name: {n: [] for n in core_counts} for cfg in configs
    }
    for _mid, exp in experiments:
        for cfg in configs:
            for n in core_counts:
                results[cfg.name][n].append(
                    exp.run(n_cores=n, config=cfg, iterations=iterations)
                )
    return results


def fig9_summary(
    results: Dict[str, Dict[int, List[ExperimentResult]]],
    core_counts: Sequence[int] = tuple(FIG9_CORE_COUNTS),
) -> Tuple[Dict[str, List[float]], Dict[str, float]]:
    """(per-config MFLOPS/s series, per-config 48-core MFLOPS/W)."""
    perf = {
        name: [average_gflops(by_n[n]) * 1000 for n in core_counts]
        for name, by_n in results.items()
    }
    eff = {
        name: average_mflops_per_watt(by_n[max(core_counts)])
        for name, by_n in results.items()
    }
    return perf, eff


def fig10_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
) -> List[dict]:
    """The Fig. 10 comparison table with measured SCC entries."""
    scc0, scc1 = [], []
    for _mid, exp in experiments:
        scc0.append(exp.run(n_cores=48, config=CONF0, iterations=iterations))
        scc1.append(exp.run(n_cores=48, config=CONF1, iterations=iterations))
    return comparison_table(
        {
            "SCC conf0": (average_gflops(scc0), CONF0.full_chip_power()),
            "SCC conf1": (average_gflops(scc1), CONF1.full_chip_power()),
        }
    )
