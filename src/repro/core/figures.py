"""Library-level generation of every table/figure of the paper.

Each ``figN_data`` function reproduces one artifact of the evaluation
section from a list of (name, :class:`SpMVExperiment`) pairs, returning
plain data (dicts/lists) that the benchmark harness asserts on and the
CLI renders.  Keeping these in the library — rather than in the
benchmark files — makes the reproduction scriptable:

    from repro.core.figures import suite_experiments, fig5_data
    exps = suite_experiments(scale=0.2)
    std, dr = fig5_data(exps)

Figure sweeps default to the analytic fast path
(``mode="model"``, see ``docs/PERFORMANCE.md``); pass ``mode="sim"`` —
or ``repro run --exact`` — to replay every point on the event-driven
runtime instead, and ``workers=N`` to shard a sweep's runs over forked
worker processes (results are identical either way).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.base import DEFAULT_MACHINE, MachineConfig
from ..machine.registry import get_machine
from ..sparse.stats import working_set_mbytes
from ..sparse.suite import SUITE, build_matrix
from .comparison import comparison_table
from .experiment import DEFAULT_ITERATIONS, ExperimentResult, SpMVExperiment
from .mapping import single_core_at_distance
from .metrics import average_gflops, average_mflops_per_watt
from .parallel import parallel_map
from .supervise import SupervisePolicy, supervised_parallel_map

__all__ = [
    "suite_experiments",
    "run_suite_batch",
    "table1_data",
    "fig3_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "fig8_data",
    "fig9_data",
    "fig10_data",
    "machine_comparison_data",
    "DEFAULT_MODE",
    "FIG5_CORE_COUNTS",
    "FIG6_CORE_COUNTS",
    "FIG7_CORE_COUNTS",
    "FIG9_CORE_COUNTS",
]

#: figure sweeps run on the analytic fast path unless told otherwise.
DEFAULT_MODE = "model"

FIG3_HOPS = [0, 1, 2, 3]
FIG5_CORE_COUNTS = [1, 2, 4, 8, 16, 24, 32, 48]
FIG6_CORE_COUNTS = [8, 24, 48]
FIG7_CORE_COUNTS = [1, 8, 16, 24, 32, 48]
FIG9_CORE_COUNTS = [8, 16, 24, 32, 48]

Experiments = Sequence[Tuple[int, SpMVExperiment]]


def suite_experiments(
    scale: float = 1.0,
    ids: Optional[Sequence[int]] = None,
    machine: Optional[str] = None,
) -> List[Tuple[int, SpMVExperiment]]:
    """(matrix id, experiment) pairs over the Table I suite.

    Each experiment carries its ``suite_ref`` — ``(matrix id, scale)``,
    plus the machine id when targeting a non-default machine — so
    worker processes can rebuild it deterministically for parallel
    sweeps.  ``machine`` selects the modeled target
    (:func:`repro.machine.get_machine`); the default is the SCC.
    """
    out = []
    machine_id = get_machine(machine or DEFAULT_MACHINE).machine_id
    for e in SUITE:
        if ids is not None and e.mid not in ids:
            continue
        exp = SpMVExperiment(build_matrix(e.mid, scale=scale), name=e.name, machine=machine_id)
        if machine_id == DEFAULT_MACHINE:
            exp.suite_ref = (e.mid, scale)
        else:
            exp.suite_ref = (e.mid, scale, machine_id)
        out.append((e.mid, exp))
    return out


#: per-worker-process experiment memo for :func:`run_suite_batch`.
_WORKER_SUITE: Dict[Tuple[int, float, str], SpMVExperiment] = {}


def run_suite_batch(task: Tuple) -> List[ExperimentResult]:
    """Pool-worker task: one suite experiment, several runs.

    ``task`` is ``(matrix id, scale, name, [run kwargs, ...])`` with an
    optional fifth element naming the machine; the experiment is
    rebuilt (and memoized) in the worker process and each kwargs dict
    goes straight to :meth:`SpMVExperiment.run`, results in order.
    """
    mid, scale, name, specs = task[:4]
    machine = task[4] if len(task) > 4 else DEFAULT_MACHINE
    exp = _WORKER_SUITE.get((mid, scale, machine))
    if exp is None:
        exp = _WORKER_SUITE[(mid, scale, machine)] = SpMVExperiment(
            build_matrix(mid, scale=scale), name=name, machine=machine
        )
    return [exp.run(**spec) for spec in specs]


def _model_fallback(task: Tuple) -> List[ExperimentResult]:
    """Degradation-ladder rung: rerun a suite batch on the analytic model."""
    mid, scale, name, specs = task[:4]
    retask = (mid, scale, name, [dict(spec, mode="model") for spec in specs])
    return run_suite_batch(retask + tuple(task[4:]))


def _task_identity(task: Tuple) -> str:
    mid, scale, name, _specs = task[:4]
    ident = f"suite:{mid}:{scale}:{name}"
    if len(task) > 4:
        ident += f":{task[4]}"
    return ident


def _batch_run(
    experiments: Experiments,
    jobs: Sequence[Tuple[int, dict]],
    mode: str,
    workers: int,
    policy: Optional[SupervisePolicy] = None,
) -> List[ExperimentResult]:
    """Run ``jobs`` — ``(experiment index, run kwargs)`` — preserving order.

    The workhorse behind every ``figN_data``: serial execution runs each
    job in place; ``workers > 1`` groups the jobs by experiment (one
    task per matrix, the natural shard — workers then reuse their
    partition/trace caches across that matrix's runs) and fans the
    groups out via :func:`repro.core.parallel.parallel_map`.  Results
    come back aligned with ``jobs`` and identical to serial execution.
    Experiments lacking a ``suite_ref`` (built outside
    :func:`suite_experiments`) cannot be rebuilt in a worker; they fall
    back to serial with a warning.

    With a ``policy`` the fan-out runs under the self-healing supervisor
    (even at ``workers=1``, a single supervised worker): crashed or hung
    workers are retried per policy and, when ``policy.on_failure``
    requests it, a failing batch is rerun serially in the parent and
    then on ``mode="model"``.  A figure sweep cannot tolerate holes —
    a batch surviving neither retries nor the ladder raises
    :class:`~repro.core.supervise.QuarantinedTaskError`.
    """
    supervised = policy is not None
    if (workers > 1 or supervised) and any(
        experiments[i][1].suite_ref is None for i, _kw in jobs
    ):
        warnings.warn(
            "parallel figure sweep needs experiments from "
            "suite_experiments() (suite_ref is unset); running serially",
            stacklevel=3,
        )
        workers = 1
        supervised = False
    if workers <= 1 and not supervised:
        return [experiments[i][1].run(mode=mode, **kw) for i, kw in jobs]
    by_exp: Dict[int, List[int]] = {}
    for j, (i, _kw) in enumerate(jobs):
        by_exp.setdefault(i, []).append(j)
    tasks = []
    for i, job_ids in by_exp.items():
        _mid, exp = experiments[i]
        ref = exp.suite_ref  # type: ignore[misc]
        mid, scale = ref[0], ref[1]
        task = (mid, scale, exp.name, [dict(jobs[j][1], mode=mode) for j in job_ids])
        tasks.append(task + tuple(ref[2:]))
    if supervised:
        assert policy is not None
        fallbacks: List[Tuple[str, object]] = []
        if policy.on_failure in ("serial", "model"):
            fallbacks.append(("serial", run_suite_batch))
        if policy.on_failure == "model" and mode != "model":
            fallbacks.append(("model", _model_fallback))
        batches = supervised_parallel_map(
            run_suite_batch,
            tasks,
            max(1, workers),
            policy,
            identity=_task_identity,
            fallbacks=fallbacks,  # type: ignore[arg-type]
        )
    else:
        batches = parallel_map(run_suite_batch, tasks, workers)
    out: List[ExperimentResult] = [None] * len(jobs)  # type: ignore[list-item]
    for job_ids, batch in zip(by_exp.values(), batches):
        for j, result in zip(job_ids, batch):
            out[j] = result
    return out


def table1_data(experiments: Experiments) -> List[dict]:
    """Table I rows for the given experiments."""
    rows = []
    by_id = {e.mid: e for e in SUITE}
    for mid, exp in experiments:
        a = exp.a
        rows.append(
            {
                "id": mid,
                "name": exp.name,
                "n": a.n_rows,
                "nnz": a.nnz,
                "nnz_per_row": a.nnz_per_row,
                "ws_mbytes": working_set_mbytes(a.n_rows, a.nnz),
                "family": by_id[mid].family,
            }
        )
    return rows


def fig3_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> Dict[int, float]:
    """Suite-average MFLOPS/s of one core at each hop distance."""
    jobs, hops = [], []
    for i, (_mid, exp) in enumerate(experiments):
        for h in FIG3_HOPS:
            jobs.append(
                (
                    i,
                    dict(
                        n_cores=1,
                        mapping=single_core_at_distance(h, exp.topology),
                        iterations=iterations,
                    ),
                )
            )
            hops.append(h)
    perf: Dict[int, List[ExperimentResult]] = {h: [] for h in FIG3_HOPS}
    for h, r in zip(hops, _batch_run(experiments, jobs, mode, workers, policy)):
        perf[h].append(r)
    return {h: average_gflops(rs) * 1000 for h, rs in perf.items()}


def fig5_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG5_CORE_COUNTS),
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> Tuple[List[float], List[float]]:
    """(standard, distance-reduction) suite-average MFLOPS/s per count."""
    jobs, slots = [], []
    std: Dict[int, List[ExperimentResult]] = {n: [] for n in core_counts}
    dr: Dict[int, List[ExperimentResult]] = {n: [] for n in core_counts}
    for i, _ in enumerate(experiments):
        for n in core_counts:
            for mapping, dest in (("standard", std), ("distance_reduction", dr)):
                jobs.append((i, dict(n_cores=n, mapping=mapping, iterations=iterations)))
                slots.append(dest[n])
    for dest, r in zip(slots, _batch_run(experiments, jobs, mode, workers, policy)):
        dest.append(r)
    return (
        [average_gflops(std[n]) * 1000 for n in core_counts],
        [average_gflops(dr[n]) * 1000 for n in core_counts],
    )


def fig6_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG6_CORE_COUNTS),
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> List[dict]:
    """Per-matrix performance and per-core working set at each count."""
    jobs = [
        (i, dict(n_cores=n, iterations=iterations))
        for i, _ in enumerate(experiments)
        for n in core_counts
    ]
    results = iter(_batch_run(experiments, jobs, mode, workers, policy))
    rows = []
    for mid, exp in experiments:
        row: dict = {"id": mid, "name": exp.name}
        for n in core_counts:
            r = next(results)
            row[f"MFLOPS@{n}"] = r.mflops
            row[f"wsKB/core@{n}"] = r.ws_per_core_bytes / 1024
        rows.append(row)
    return rows


def fig7_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG7_CORE_COUNTS),
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> Tuple[Dict[int, List[ExperimentResult]], Dict[int, List[ExperimentResult]]]:
    """Per-count result lists with L2 enabled and disabled."""
    machine = experiments[0][1].machine if experiments else get_machine()
    no_l2 = machine.default_config.with_l2(False)
    with_l2: Dict[int, List[ExperimentResult]] = {n: [] for n in core_counts}
    without_l2: Dict[int, List[ExperimentResult]] = {n: [] for n in core_counts}
    jobs, slots = [], []
    for i, _ in enumerate(experiments):
        for n in core_counts:
            jobs.append((i, dict(n_cores=n, iterations=iterations)))
            slots.append(with_l2[n])
            jobs.append((i, dict(n_cores=n, config=no_l2, iterations=iterations)))
            slots.append(without_l2[n])
    for dest, r in zip(slots, _batch_run(experiments, jobs, mode, workers, policy)):
        dest.append(r)
    return with_l2, without_l2


def fig8_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG6_CORE_COUNTS),
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> List[dict]:
    """Per-matrix no-x-miss speedups at each core count."""
    jobs = []
    for i, _ in enumerate(experiments):
        for n in core_counts:
            jobs.append((i, dict(n_cores=n, iterations=iterations)))
            jobs.append((i, dict(n_cores=n, kernel="no_x_miss", iterations=iterations)))
    results = iter(_batch_run(experiments, jobs, mode, workers, policy))
    rows = []
    for mid, exp in experiments:
        row: dict = {"id": mid, "name": exp.name}
        for n in core_counts:
            base = next(results)
            nox = next(results)
            row[f"speedup@{n}"] = base.makespan / nox.makespan
            row[f"MFLOPS@{n}"] = base.mflops
        rows.append(row)
    return rows


def fig9_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    core_counts: Sequence[int] = tuple(FIG9_CORE_COUNTS),
    configs: Optional[Sequence[MachineConfig]] = None,
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> Dict[str, Dict[int, List[ExperimentResult]]]:
    """Per-config, per-count result lists (default: the machine's presets)."""
    if configs is None:
        machine = experiments[0][1].machine if experiments else get_machine()
        configs = tuple(machine.presets.values())
    results: Dict[str, Dict[int, List[ExperimentResult]]] = {
        cfg.name: {n: [] for n in core_counts} for cfg in configs
    }
    jobs, slots = [], []
    for i, _ in enumerate(experiments):
        for cfg in configs:
            for n in core_counts:
                jobs.append((i, dict(n_cores=n, config=cfg, iterations=iterations)))
                slots.append(results[cfg.name][n])
    for dest, r in zip(slots, _batch_run(experiments, jobs, mode, workers, policy)):
        dest.append(r)
    return results


def fig9_summary(
    results: Dict[str, Dict[int, List[ExperimentResult]]],
    core_counts: Sequence[int] = tuple(FIG9_CORE_COUNTS),
) -> Tuple[Dict[str, List[float]], Dict[str, float]]:
    """(per-config MFLOPS/s series, per-config 48-core MFLOPS/W)."""
    perf = {
        name: [average_gflops(by_n[n]) * 1000 for n in core_counts]
        for name, by_n in results.items()
    }
    eff = {
        name: average_mflops_per_watt(by_n[max(core_counts)])
        for name, by_n in results.items()
    }
    return perf, eff


def fig10_data(
    experiments: Experiments,
    iterations: int = DEFAULT_ITERATIONS,
    mode: str = DEFAULT_MODE,
    workers: int = 1,
    policy: Optional[SupervisePolicy] = None,
) -> List[dict]:
    """The Fig. 10 comparison table with measured entries for the
    experiments' machine (SCC in the paper's original figure)."""
    machine = experiments[0][1].machine if experiments else get_machine()
    label = machine.comparison_label or machine.machine_id
    conf0 = machine.presets["conf0"]
    conf1 = machine.presets.get("conf1", conf0)
    n_cores = machine.topology.n_cores
    jobs = []
    for i, _ in enumerate(experiments):
        jobs.append((i, dict(n_cores=n_cores, config=conf0, iterations=iterations)))
        jobs.append((i, dict(n_cores=n_cores, config=conf1, iterations=iterations)))
    results = _batch_run(experiments, jobs, mode, workers, policy)
    m0, m1 = results[0::2], results[1::2]
    return comparison_table(
        {
            f"{label} conf0": (average_gflops(m0), machine.chip_power(conf0)),
            f"{label} conf1": (average_gflops(m1), machine.chip_power(conf1)),
        },
        source="scc-model" if machine.machine_id == DEFAULT_MACHINE else "machine-model",
    )


def machine_comparison_data(records: Sequence[dict]) -> List[dict]:
    """Cross-architecture Fig-10-style rows from campaign records.

    ``records`` are campaign result dicts (see
    :meth:`repro.core.experiment.ExperimentResult.to_record`); records
    without a ``"machine"`` field belong to the default machine.  Each
    machine contributes one row — suite-average GFLOPS/s, full-chip
    watts at its ``conf0`` preset, and the resulting MFLOPS/W — in
    registry order.
    """
    by_machine: Dict[str, List[dict]] = {}
    for rec in records:
        if "error" in rec:
            continue
        by_machine.setdefault(rec.get("machine", DEFAULT_MACHINE), []).append(rec)
    rows = []
    for machine_id in sorted(by_machine, key=lambda m: (m != DEFAULT_MACHINE, m)):
        machine = get_machine(machine_id)
        recs = by_machine[machine_id]
        gflops = sum(r["mflops"] for r in recs) / len(recs) / 1000.0
        watts = machine.chip_power(machine.default_config)
        rows.append(
            {
                "machine": machine_id,
                "label": machine.comparison_label or machine_id,
                "n_cores": machine.topology.n_cores,
                "runs": len(recs),
                "gflops": gflops,
                "watts": watts,
                "mflops_per_watt": gflops * 1000.0 / watts if watts else 0.0,
            }
        )
    return rows
