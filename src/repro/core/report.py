"""Plain-text rendering of tables and series.

The benchmarks print each reproduced table/figure through these helpers
so the output reads like the paper's artifacts: fixed-width columns, a
caption line, and (for figures) a label/value series per curve.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "banner"]


def banner(title: str) -> str:
    """A '=='-framed section title."""
    line = "=" * max(len(title), 8)
    return f"\n{line}\n{title}\n{line}"


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str],
    caption: str = "",
    floatfmt: str = ".3f",
) -> str:
    """Render dict rows as a fixed-width text table."""
    if not rows:
        return f"{caption}\n(empty)"

    def cell(v) -> str:
        """Format one value for a table cell."""
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    data = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in data)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if caption:
        lines.append(caption)
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in data:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Iterable,
    curves: Mapping[str, Sequence[float]],
    caption: str = "",
    floatfmt: str = ".3f",
) -> str:
    """Render one or more named curves over a shared x axis."""
    xs = list(xs)
    for name, ys in curves.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"curve {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    rows = []
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name, ys in curves.items():
            row[name] = float(ys[i])
        rows.append(row)
    return format_table(rows, [x_label, *curves.keys()], caption, floatfmt)
