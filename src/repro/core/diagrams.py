"""ASCII renderings of the paper's structural figures (1, 2 and 4).

Figures 1 (chip overview), 2 (CSR example + kernel) and 4 (mapping
diagrams) carry no measurements; their reproduction is the *structure*
itself, generated from the live model objects so the diagrams cannot
drift from the implementation:

- :func:`chip_diagram` — the 6x4 tile grid with core ids and MC
  positions (Fig. 1a);
- :func:`csr_example` — the canonical 5x5 matrix of Fig. 2 with its
  ptr/index/da arrays, produced by the real CSR code;
- :func:`mapping_diagram` — tiles active under a mapping (Fig. 4a/4b).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..scc.topology import GRID_X, GRID_Y, SCCTopology
from ..sparse.csr import CSRMatrix

__all__ = ["chip_diagram", "csr_example", "mapping_diagram", "FIG2_DENSE"]

#: the 5x5 example matrix of the paper's Fig. 2.
FIG2_DENSE = np.array(
    [
        [1.0, 0.0, 2.0, 0.0, 0.0],
        [0.0, 3.0, 0.0, 0.0, 0.0],
        [4.0, 0.0, 5.0, 6.0, 0.0],
        [0.0, 0.0, 0.0, 7.0, 0.0],
        [0.0, 8.0, 0.0, 0.0, 9.0],
    ]
)


def chip_diagram(topology: Optional[SCCTopology] = None) -> str:
    """Fig. 1(a): the tile grid, row y=3 on top, with MC markers."""
    topo = topology or SCCTopology()
    lines: List[str] = []
    for y in reversed(range(GRID_Y)):
        cells = []
        for x in range(GRID_X):
            t = topo.tile_at(x, y)
            cells.append(f"[{t.cores[0]:2d},{t.cores[1]:2d}]")
        row = " ".join(cells)
        left = "MC>" if (0, y) in topo.mc_coords else "   "
        right = "<MC" if (GRID_X - 1, y) in topo.mc_coords else ""
        lines.append(f"{left} {row} {right}".rstrip())
    lines.append("")
    lines.append("each [a,b] tile: two P54C cores, 16KB L1s, 2x256KB L2, 16KB MPB, router")
    return "\n".join(lines)


def csr_example(dense: Optional[np.ndarray] = None) -> str:
    """Fig. 2: a small matrix and its CSR arrays, from the real encoder."""
    d = FIG2_DENSE if dense is None else np.asarray(dense, dtype=np.float64)
    a = CSRMatrix.from_dense(d)
    lines = ["A ="]
    for row in d:
        lines.append("  [ " + "  ".join(f"{v:g}" if v else "." for v in row) + " ]")
    lines.append("")
    lines.append(f"ptr   = {a.ptr.tolist()}")
    lines.append(f"index = {a.index.tolist()}")
    lines.append(f"da    = {[float(v) for v in a.da]}")
    lines.append("")
    lines.append("for i in rows:  y[i] = sum(da[j] * x[index[j]] for j in ptr[i]..ptr[i+1])")
    return "\n".join(lines)


def mapping_diagram(core_map: Sequence[int], topology: Optional[SCCTopology] = None) -> str:
    """Fig. 4: which tiles host UEs under a mapping ('##' = active)."""
    topo = topology or SCCTopology()
    by_core = {core: ue for ue, core in enumerate(core_map)}
    lines: List[str] = []
    for y in reversed(range(GRID_Y)):
        cells = []
        for x in range(GRID_X):
            t = topo.tile_at(x, y)
            ues = [by_core[c] for c in t.cores if c in by_core]
            if not ues:
                cells.append("[ .  . ]")
            else:
                slots = [
                    f"{by_core[c]:2d}" if c in by_core else " ." for c in t.cores
                ]
                cells.append(f"[{slots[0]} {slots[1]} ]")
        left = "MC>" if (0, y) in topo.mc_coords else "   "
        right = "<MC" if (GRID_X - 1, y) in topo.mc_coords else ""
        lines.append(f"{left} {' '.join(cells)} {right}".rstrip())
    lines.append("")
    lines.append("numbers are UE ranks placed on each tile's two cores")
    return "\n".join(lines)
