"""The SpMV experiment runner: one matrix on the modeled SCC.

:class:`SpMVExperiment` wires every substrate together.  For a run it

1. partitions the matrix row-wise with balanced nonzeros (the paper's
   scheme) for the requested UE count;
2. characterizes each UE's access stream (:mod:`repro.core.trace`),
   memoizing per UE count — the characterization is mapping- and
   frequency-independent;
3. converts traces to access summaries for the requested kernel
   variant / iteration count / L2 switch;
4. solves per-core times under MC contention
   (:mod:`repro.core.timing`);
5. replays the job on the RCCE runtime — each UE computes for its
   solved duration between barriers — so the reported makespan includes
   synchronization cost, and optionally executes the real kernel to
   verify ``y`` numerically.

Performance is reported exactly as in the paper (Sec. IV):
``FLOPS/s = 2 * nnz * iterations / time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..rcce.runtime import RCCERuntime
from ..scc.chip import CONF0, SCCConfig
from ..scc.memory import MemorySystem
from ..scc.params import DEFAULT_TIMING, L2_BYTES, P54CTimingParams
from ..scc.topology import SCCTopology
from ..sparse.csr import CSRMatrix
from ..sparse.partition import (
    RowPartition,
    partition_rows_balanced,
    partition_rows_uniform,
)
from ..sparse.spmv import spmv_no_x_miss, spmv_row_range
from ..sparse.stats import working_set_per_core
from .mapping import get_mapping
from .timing import CoreTiming, solve_core_times
from .trace import DEFAULT_X_CAPACITY_FRACTION, UETrace, access_summary, characterize_partition

__all__ = ["ExperimentResult", "SpMVExperiment", "DEFAULT_ITERATIONS"]

#: SpMV repetitions per timed run, matching the usual benchmarking loop.
DEFAULT_ITERATIONS = 16

KERNELS = ("csr", "no_x_miss")


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one (matrix, cores, config, mapping, kernel) run."""

    matrix_name: str
    n: int
    nnz: int
    n_cores: int
    config_name: str
    mapping: str
    kernel: str
    iterations: int
    makespan: float                      #: seconds, slowest UE incl. barriers
    per_core: List[CoreTiming] = field(repr=False)
    power_watts: float = 0.0             #: full-chip power of the config
    ws_per_core_bytes: float = 0.0
    y: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def flops(self) -> int:
        """Total floating-point operations: 2 * nnz * iterations."""
        return 2 * self.nnz * self.iterations

    @property
    def gflops(self) -> float:
        """Throughput in GFLOPS/s over the makespan."""
        return self.flops / self.makespan / 1e9

    @property
    def mflops(self) -> float:
        """Throughput in MFLOPS/s over the makespan."""
        return self.flops / self.makespan / 1e6

    @property
    def mflops_per_watt(self) -> float:
        """Full-system MFLOPS/s per watt, the paper's efficiency metric."""
        return self.mflops / self.power_watts if self.power_watts > 0 else 0.0


def _ue_body(comm, durations, blocks, a, x, kernel, verify):
    """The program every UE executes on the runtime."""
    yield from comm.barrier()
    yield from comm.compute(durations[comm.ue])
    result_block = None
    if verify:
        r0, r1 = blocks[comm.ue]
        if kernel == "no_x_miss":
            result_block = spmv_no_x_miss(a, x, r0, r1)
        else:
            result_block = spmv_row_range(a, x, r0, r1)
    yield from comm.barrier()
    if verify:
        gathered = yield from comm.gather(result_block, root=0)
        if comm.ue == 0:
            return np.concatenate(gathered)
        return None
    return None


class SpMVExperiment:
    """Run the paper's SpMV study for one matrix on the SCC model."""

    #: available row-partitioning schemes; the paper uses ``balanced``.
    PARTITIONERS = {
        "balanced": partition_rows_balanced,
        "uniform": partition_rows_uniform,
    }

    def __init__(
        self,
        a: CSRMatrix,
        name: str = "matrix",
        topology: Optional[SCCTopology] = None,
        timing: P54CTimingParams = DEFAULT_TIMING,
        x_capacity_fraction: float = DEFAULT_X_CAPACITY_FRACTION,
        partitioner: str = "balanced",
    ) -> None:
        if partitioner not in self.PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {sorted(self.PARTITIONERS)}, "
                f"got {partitioner!r}"
            )
        self.a = a
        self.name = name
        self.topology = topology or SCCTopology()
        self.timing = timing
        self.x_capacity_fraction = x_capacity_fraction
        self.partitioner = partitioner
        self._trace_cache: Dict[int, List[UETrace]] = {}
        self._partition_cache: Dict[int, RowPartition] = {}

    # -- cached analyses ---------------------------------------------------

    def partition(self, n_ues: int) -> RowPartition:
        """The (cached) row partition for this UE count."""
        if n_ues not in self._partition_cache:
            split = self.PARTITIONERS[self.partitioner]
            self._partition_cache[n_ues] = split(self.a, n_ues)
        return self._partition_cache[n_ues]

    def traces(self, n_ues: int) -> List[UETrace]:
        """Per-UE stream characterization (frequency/mapping independent)."""
        if n_ues not in self._trace_cache:
            self._trace_cache[n_ues] = characterize_partition(
                self.a,
                self.partition(n_ues),
                x_capacity_fraction=self.x_capacity_fraction,
            )
        return self._trace_cache[n_ues]

    # -- the runner ---------------------------------------------------------

    def run(
        self,
        n_cores: int = 48,
        config: SCCConfig = CONF0,
        mapping: Union[str, Sequence[int]] = "distance_reduction",
        kernel: str = "csr",
        iterations: int = DEFAULT_ITERATIONS,
        verify: bool = False,
        x: Optional[np.ndarray] = None,
    ) -> ExperimentResult:
        """Execute one configuration and return its result.

        ``mapping`` is a policy name from :mod:`repro.core.mapping` or an
        explicit core list (e.g. from ``single_core_at_distance``).
        ``verify=True`` additionally runs the real kernel on the RCCE
        runtime and attaches the gathered ``y`` to the result.
        """
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if isinstance(mapping, str):
            core_map = get_mapping(mapping)(n_cores, self.topology)
            mapping_name = mapping
        else:
            core_map = list(mapping)
            mapping_name = "explicit"
            if len(core_map) != n_cores:
                raise ValueError(
                    f"explicit mapping names {len(core_map)} cores but n_cores={n_cores}"
                )

        traces = self.traces(n_cores)
        summaries = [
            access_summary(
                t,
                iterations=iterations,
                l2_enabled=config.l2_enabled,
                no_x_miss=(kernel == "no_x_miss"),
                l2_bytes=L2_BYTES,
            )
            for t in traces
        ]
        mem = MemorySystem(self.topology, mem_mhz=config.mem_mhz)
        timings = solve_core_times(summaries, core_map, config, mem, self.timing)

        durations = [t.time for t in timings]
        blocks = self.partition(n_cores).ranges()
        x_vec = x if x is not None else np.ones(self.a.n_cols)
        runtime = RCCERuntime(core_map, config=config, topology=self.topology)
        results = runtime.run(_ue_body, durations, blocks, self.a, x_vec, kernel, verify)
        makespan = runtime.makespan(results)
        y = results[0].value if verify else None

        return ExperimentResult(
            matrix_name=self.name,
            n=self.a.n_rows,
            nnz=self.a.nnz,
            n_cores=n_cores,
            config_name=config.name,
            mapping=mapping_name,
            kernel=kernel,
            iterations=iterations,
            makespan=makespan,
            per_core=timings,
            power_watts=config.full_chip_power(),
            ws_per_core_bytes=working_set_per_core(self.a, n_cores),
            y=y,
        )

    def sweep_cores(
        self,
        core_counts: Sequence[int],
        **kwargs,
    ) -> List[ExperimentResult]:
        """Run the same configuration across several core counts."""
        return [self.run(n_cores=n, **kwargs) for n in core_counts]
