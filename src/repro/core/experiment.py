"""The SpMV experiment runner: one matrix on a modeled many-core.

:class:`SpMVExperiment` wires every substrate of one machine together
(the paper's SCC by default; any :mod:`repro.machine` zoo member via
``machine=``).  For a run it

1. partitions the matrix row-wise with balanced nonzeros (the paper's
   scheme) for the requested UE count;
2. characterizes each UE's access stream (:mod:`repro.core.trace`),
   memoizing per UE count — the characterization is mapping- and
   frequency-independent;
3. converts traces to access summaries for the requested kernel
   variant / iteration count / L2 switch;
4. solves per-core times under MC contention
   (:mod:`repro.core.timing`);
5. replays the job on the RCCE runtime — each UE computes for its
   solved duration between barriers — so the reported makespan includes
   synchronization cost, and optionally executes the real kernel to
   verify ``y`` numerically.

Performance is reported exactly as in the paper (Sec. IV):
``FLOPS/s = 2 * nnz * iterations / time``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Counter as TCounter, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..machine.base import DEFAULT_MACHINE, MachineConfig, MachineModel, Topology
from ..machine.registry import get_machine
from ..rcce.errors import RCCEBudgetExceededError, RCCETimeoutError
from ..rcce.runtime import RCCERuntime
from ..scc.core_model import AccessSummary
from ..sparse.csr import CSRMatrix
from ..sparse.fastpath import BatchedTraces, batch_access_summaries, batch_traces
from ..sparse.partition import (
    RowPartition,
    partition_rows_balanced,
    partition_rows_uniform,
)
from ..sparse.spmv import spmv_no_x_miss, spmv_row_range
from ..sparse.stats import working_set_per_core
from .mapping import get_mapping
from .timing import (
    CoreTiming,
    barrier_exit_times,
    resolve_barrier_schedule,
    solve_core_times,
    solve_core_times_batched,
)
from .trace import DEFAULT_X_CAPACITY_FRACTION, UETrace, access_summary, characterize_partition

__all__ = [
    "ResultBase",
    "ExperimentResult",
    "FaultTolerantResult",
    "SpMVExperiment",
    "DEFAULT_ITERATIONS",
    "MODES",
    "FT_WORK_TAG",
    "FT_RESULT_TAG",
]

#: names this module used to re-export from the SCC layer; served via
#: module ``__getattr__`` with a DeprecationWarning so old call sites
#: (``from repro.core.experiment import SCCConfig``) keep working.
_DEPRECATED_SCC_ALIASES = {"SCCConfig", "CONF0"}


def __getattr__(name: str):
    if name in _DEPRECATED_SCC_ALIASES:
        import warnings

        from ..scc import chip as _chip

        warnings.warn(
            f"repro.core.experiment.{name} is deprecated; generic code "
            "should use repro.machine.MachineConfig (the structural "
            "config type) or get_machine(...).presets — import "
            f"{name} from repro.scc.chip if you really mean the SCC.",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_chip, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: SpMV repetitions per timed run, matching the usual benchmarking loop.
DEFAULT_ITERATIONS = 16

KERNELS = ("csr", "no_x_miss")

#: how a run is timed: ``sim`` replays the job on the event-driven RCCE
#: runtime; ``model`` composes the same per-core times and an analytic
#: barrier critical path without scheduling events (the fast path);
#: ``exact-trace`` replaces the analytic cache characterization with
#: trace-exact per-UE hit/miss counts from the vectorized replay engine
#: (:mod:`repro.scc.vecreplay`) — the validation path, now viable at
#: full Table-I scale; ``predict`` answers from a trained feature-based
#: regressor (:mod:`repro.predict`) in microseconds, falling back to
#: ``model`` when no artifact is available.
MODES = ("sim", "model", "exact-trace", "predict")


class ResultBase:
    """Shared surface of experiment outcomes (plain mixin, not a dataclass).

    Both result dataclasses carry the (matrix, cores, config, mapping,
    iterations, makespan) identity and report throughput the same way —
    ``FLOPS = 2 * nnz * iterations`` over the makespan (paper Sec. IV).
    The derived properties and the JSONL flattening (:meth:`to_record`)
    live here so campaigns and metrics never special-case the result
    kind.  Kept a plain class so the frozen dataclasses' field order is
    untouched.
    """

    matrix_name: str
    n: int
    nnz: int
    n_cores: int
    config_name: str
    mapping: str
    iterations: int
    makespan: float

    @property
    def flops(self) -> int:
        """Total floating-point operations: 2 * nnz * iterations."""
        return 2 * self.nnz * self.iterations

    @property
    def gflops(self) -> float:
        """Throughput in GFLOPS/s over the makespan."""
        return self.flops / self.makespan / 1e9

    @property
    def mflops(self) -> float:
        """Throughput in MFLOPS/s over the makespan."""
        return self.flops / self.makespan / 1e6

    def to_record(self) -> dict:
        """Flatten into the campaign's JSON-serializable record shape.

        Subclasses extend the dict; the shared prefix (through
        ``mflops``) is identical for every result kind so downstream
        consumers can group records without caring which driver ran.
        """
        return {
            "status": "ok",
            "matrix": self.matrix_name,
            "n": self.n,
            "nnz": self.nnz,
            "n_cores": self.n_cores,
            "config": self.config_name,
            "mapping": self.mapping,
            "kernel": getattr(self, "kernel", "csr"),
            "iterations": self.iterations,
            "makespan_s": self.makespan,
            "mflops": self.mflops,
        }


@dataclass(frozen=True)
class ExperimentResult(ResultBase):
    """Outcome of one (matrix, cores, config, mapping, kernel) run."""

    matrix_name: str
    n: int
    nnz: int
    n_cores: int
    config_name: str
    mapping: str
    kernel: str
    iterations: int
    makespan: float                      #: seconds, slowest UE incl. barriers
    per_core: List[CoreTiming] = field(repr=False)
    power_watts: float = 0.0             #: full-chip power of the config
    ws_per_core_bytes: float = 0.0
    y: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    #: machine the run was modeled on (registry id).
    machine: str = DEFAULT_MACHINE
    #: True when the makespan came from the feature-based predictor
    #: (``mode="predict"``), not from the timing composition.
    predicted: bool = False

    @property
    def mflops_per_watt(self) -> float:
        """Full-system MFLOPS/s per watt, the paper's efficiency metric."""
        return self.mflops / self.power_watts if self.power_watts > 0 else 0.0

    def to_record(self) -> dict:
        rec = super().to_record()
        rec["power_watts"] = self.power_watts
        rec["mflops_per_watt"] = self.mflops_per_watt
        rec["ws_per_core_bytes"] = self.ws_per_core_bytes
        # Records stay byte-identical to the pre-zoo format on the
        # default machine (the golden campaign fixture contract);
        # machine and predicted markers appear only off the default path.
        if self.machine != DEFAULT_MACHINE:
            rec["machine"] = self.machine
        if self.predicted:
            rec["predicted"] = True
        return rec


def _ue_body(comm, durations, blocks, a, x, kernel, verify):
    """The program every UE executes on the runtime."""
    yield from comm.barrier()
    yield from comm.compute(durations[comm.ue])
    result_block = None
    if verify:
        r0, r1 = blocks[comm.ue]
        if kernel == "no_x_miss":
            result_block = spmv_no_x_miss(a, x, r0, r1)
        else:
            result_block = spmv_row_range(a, x, r0, r1)
    yield from comm.barrier()
    if verify:
        gathered = yield from comm.gather(result_block, root=0)
        if comm.ue == 0:
            return np.concatenate(gathered)
        return None
    return None


#: reliable-layer user tags of the fault-tolerant driver.
FT_WORK_TAG = 1
FT_RESULT_TAG = 2


@dataclass(frozen=True)
class FaultTolerantResult(ResultBase):
    """Outcome of one fault-tolerant run under a (possibly faulty) plan."""

    matrix_name: str
    n: int
    nnz: int
    n_cores: int
    config_name: str
    mapping: str
    iterations: int
    makespan: float
    plan_name: str
    plan_seed: int
    #: assembled result vector (always present; the driver survives).
    y: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    #: exact equality against the fault-free block-wise computation.
    verified: bool = False
    #: fault + recovery counters: injector kinds (drop/duplicate/corrupt/
    #: core_failure/...) merged with protocol counters (retries,
    #: repartitions, detected_failures, checkpoints, stale_results, ...).
    counters: Dict[str, int] = field(default_factory=dict, repr=False)
    #: ranks that died, with their simulated failure time.
    failed_ues: Dict[int, float] = field(default_factory=dict)
    #: the injector's replayable fault schedule (same seed => identical).
    fault_schedule: List[Tuple] = field(default_factory=list, repr=False, compare=False)
    #: dispatched-event trace when ``record_trace=True`` (for DET900).
    trace: List[Tuple] = field(default_factory=list, repr=False, compare=False)

    def to_record(self) -> dict:
        rec = super().to_record()
        rec["plan"] = self.plan_name
        rec["plan_seed"] = self.plan_seed
        rec["verified"] = self.verified
        rec["failed_ues"] = sorted(self.failed_ues)
        rec["fault_counters"] = dict(sorted(self.counters.items()))
        return rec


def _block_nnz(a: CSRMatrix, r0: int, r1: int) -> int:
    return int(a.ptr[r1] - a.ptr[r0])


def _ft_coordinator(
    comm, rcomm, blocks, a, x, iterations, time_per_nnz, collect_timeout
):
    """Rank 0 of the fault-tolerant driver: dispatch, collect, recover.

    Owns the authoritative ``y``.  Work units are whole partition blocks;
    when a worker dies (discovered by a failed send or a collect timeout
    plus liveness probe) its blocks are re-dealt round-robin over the
    surviving workers — or computed locally when none remain.  Results
    are idempotent (a block is a pure function of the immutable inputs),
    so a late result from a presumed-dead worker is simply accepted or
    discarded as stale, never harmful.
    """
    from ..faults.reliable import PeerFailedError, ReliableSendError

    n_blocks = len(blocks)
    owner: Dict[int, int] = {b: b % comm.num_ues for b in range(n_blocks)}
    dead: set = set()
    counters: TCounter = Counter()
    y = np.zeros(a.n_rows)
    rr = 0  # round-robin pointer for re-deals

    def _mark_dead(w: int) -> None:
        if w not in dead:
            dead.add(w)
            counters["detected_failures"] += 1
            counters["repartitions"] += 1

    def _pick_owner() -> int:
        """Next surviving worker (round-robin), or 0 to compute locally."""
        nonlocal rr
        live = [w for w in range(1, comm.num_ues) if w not in dead]
        if not live:
            return 0
        w = live[rr % len(live)]
        rr += 1
        return w

    for it in range(iterations):
        filled = [False] * n_blocks
        for b in range(n_blocks):
            if owner[b] in dead:
                owner[b] = _pick_owner()

        # -- dispatch this iteration's work to the (believed-live) owners
        for b in range(n_blocks):
            while owner[b] != 0:
                w = owner[b]
                try:
                    yield from rcomm.send(("work", it, b), w, FT_WORK_TAG)
                    break
                except PeerFailedError:
                    _mark_dead(w)
                    owner[b] = _pick_owner()
                except ReliableSendError:
                    # Peer probes alive but never acked: degrade by
                    # taking the block over rather than stalling the run.
                    counters["send_failures"] += 1
                    owner[b] = 0

        # -- compute locally-owned blocks (overlaps with workers)
        for b in range(n_blocks):
            if owner[b] == 0 and not filled[b]:
                r0, r1 = blocks[b]
                yield from comm.compute(_block_nnz(a, r0, r1) * time_per_nnz)
                y[r0:r1] = spmv_row_range(a, x, r0, r1)
                filled[b] = True

        # -- collect, probing and re-dealing on timeout
        while not all(filled):
            try:
                _src, msg = yield from rcomm.recv(
                    None, FT_RESULT_TAG, timeout=collect_timeout
                )
            except RCCETimeoutError:
                for b in range(n_blocks):
                    if filled[b] or owner[b] == 0:
                        continue
                    w = owner[b]
                    alive = w not in dead and (yield from rcomm.detector.probe(w))
                    if alive:
                        continue
                    _mark_dead(w)
                    nw = _pick_owner()
                    if nw != 0:
                        try:
                            yield from rcomm.send(("work", it, b), nw, FT_WORK_TAG)
                            owner[b] = nw
                            continue
                        except (PeerFailedError, ReliableSendError):
                            _mark_dead(nw)
                    owner[b] = 0
                    r0, r1 = blocks[b]
                    yield from comm.compute(_block_nnz(a, r0, r1) * time_per_nnz)
                    y[r0:r1] = spmv_row_range(a, x, r0, r1)
                    filled[b] = True
                continue
            if not (isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "result"):
                counters["garbage_results"] += 1
                continue
            _kind, rit, b, arr = msg
            if rit != it or filled[b]:
                counters["stale_results"] += 1
                continue
            r0, r1 = blocks[b]
            y[r0:r1] = arr
            filled[b] = True

        # -- iteration complete: checkpoint the assembled vector
        counters["checkpoints"] += 1

    # -- release the survivors
    for w in range(1, comm.num_ues):
        if w in dead:
            continue
        try:
            yield from rcomm.send(("stop",), w, FT_WORK_TAG)
        except (PeerFailedError, ReliableSendError):
            _mark_dead(w)
    counters.update(rcomm.counters)
    return {"y": y, "counters": dict(counters)}


def _ft_worker(comm, rcomm, blocks, a, x, time_per_nnz, idle_timeout):
    """Worker loop: compute assigned blocks until told to stop.

    Every receive is bounded (lint rule RCCE130): a worker orphaned by
    message loss keeps polling instead of hanging the simulation, and
    the runtime's time budget bounds the whole job.
    """
    from ..faults.reliable import PeerFailedError, ReliableSendError

    while True:
        try:
            _src, msg = yield from rcomm.recv(0, FT_WORK_TAG, timeout=idle_timeout)
        except RCCETimeoutError:
            continue
        if not (isinstance(msg, tuple) and msg):
            continue
        if msg[0] == "stop":
            break
        if msg[0] != "work" or len(msg) != 3:
            continue
        _kind, it, b = msg
        r0, r1 = blocks[b]
        yield from comm.compute(_block_nnz(a, r0, r1) * time_per_nnz)
        block_y = spmv_row_range(a, x, r0, r1)
        try:
            yield from rcomm.send(("result", it, b, block_y), 0, FT_RESULT_TAG)
        except (PeerFailedError, ReliableSendError):
            break  # coordinator unreachable: nothing left to contribute
    return {"counters": dict(rcomm.counters)}


def _ft_ue_body(
    comm, blocks, a, x, iterations, time_per_nnz, collect_timeout, idle_timeout,
    ack_timeout,
):
    """SPMD entry of the fault-tolerant driver (rank 0 coordinates)."""
    from ..faults.reliable import ReliableComm

    rcomm = ReliableComm(comm, ack_timeout=ack_timeout)
    if comm.ue == 0:
        out = yield from _ft_coordinator(
            comm, rcomm, blocks, a, x, iterations, time_per_nnz, collect_timeout
        )
    else:
        out = yield from _ft_worker(
            comm, rcomm, blocks, a, x, time_per_nnz, idle_timeout
        )
    return out


class SpMVExperiment:
    """Run the paper's SpMV study for one matrix on a modeled machine.

    ``machine`` is a registry id (``"scc-48"``, ``"xeonphi-61"``,
    ``"ft2000plus-64"``) or a :class:`repro.machine.MachineModel`;
    omitted, the paper's SCC is used and every number is bitwise
    identical to the pre-zoo code path.
    """

    #: available row-partitioning schemes; the paper uses ``balanced``.
    PARTITIONERS = {
        "balanced": partition_rows_balanced,
        "uniform": partition_rows_uniform,
    }

    def __init__(
        self,
        a: CSRMatrix,
        name: str = "matrix",
        topology: Optional[Topology] = None,
        timing: Optional[Any] = None,
        x_capacity_fraction: float = DEFAULT_X_CAPACITY_FRACTION,
        partitioner: str = "balanced",
        machine: Union[str, MachineModel, None] = None,
    ) -> None:
        if partitioner not in self.PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {sorted(self.PARTITIONERS)}, "
                f"got {partitioner!r}"
            )
        self.a = a
        self.name = name
        self.machine = get_machine(machine if machine is not None else DEFAULT_MACHINE)
        self.topology = topology or self.machine.topology
        self.timing = timing if timing is not None else self.machine.timing
        self.x_capacity_fraction = x_capacity_fraction
        self.partitioner = partitioner
        self._trace_cache: Dict[int, List[UETrace]] = {}
        self._partition_cache: Dict[int, RowPartition] = {}
        self._batch_cache: Dict[int, BatchedTraces] = {}
        self._summary_cache: Dict[Tuple, Any] = {}
        self._ws_cache: Dict[int, float] = {}
        #: mode="predict" feature caches: the matrix-level extraction
        #: (one O(nnz) pass, machine-independent) and the O(n_parts)
        #: partition reductions per core count.
        self._matrix_features: Optional[Any] = None
        self._partition_features_cache: Dict[int, Any] = {}

    #: set by :func:`repro.core.figures.suite_experiments` to the
    #: ``(matrix_id, scale)`` (plus the machine id for non-default
    #: machines) that rebuilds this experiment's matrix — worker
    #: processes reconstruct from this instead of pickling CSR data.
    suite_ref: Optional[Tuple] = None

    # Model-mode caches shared across experiments (class-level): barrier
    # schedules, solver arrays, chip power and the stateless chip
    # substrates depend on mapping/config/topology geometry — never on
    # the matrix — and a machine's topology instances are
    # interchangeable.  Keys include the machine id and the topology
    # class so zoo members and exotic subclasses never alias.
    _shared_mapping_cache: Dict[Tuple, Tuple[int, ...]] = {}
    _shared_schedule_cache: Dict[Tuple, List[Tuple[int, int, float]]] = {}
    _shared_solver_cache: Dict = {}
    _shared_power_cache: Dict[Tuple, float] = {}
    _shared_memsys_cache: Dict[Tuple, Any] = {}
    _shared_mesh_cache: Dict[Tuple, Any] = {}

    # -- cached analyses ---------------------------------------------------

    def partition(self, n_ues: int) -> RowPartition:
        """The (cached) row partition for this UE count."""
        if n_ues not in self._partition_cache:
            split = self.PARTITIONERS[self.partitioner]
            self._partition_cache[n_ues] = split(self.a, n_ues)
        return self._partition_cache[n_ues]

    def traces(self, n_ues: int) -> List[UETrace]:
        """Per-UE stream characterization (frequency/mapping independent)."""
        if n_ues not in self._trace_cache:
            cache_geom = self.machine.cache
            self._trace_cache[n_ues] = characterize_partition(
                self.a,
                self.partition(n_ues),
                line_bytes=cache_geom.line_bytes,
                l1_bytes=cache_geom.l1_bytes,
                l2_bytes=cache_geom.l2_bytes,
                x_capacity_fraction=self.x_capacity_fraction,
            )
        return self._trace_cache[n_ues]

    def batched_traces(self, n_ues: int) -> BatchedTraces:
        """The (cached) columnized form of :meth:`traces` for the fast path."""
        if n_ues not in self._batch_cache:
            self._batch_cache[n_ues] = batch_traces(self.traces(n_ues))
        return self._batch_cache[n_ues]

    def _batched_summaries(self, n_ues, iterations, l2_enabled, no_x_miss):
        """Memoized batched access summaries (reused across configs that
        share an L2 switch — e.g. all three frequency presets)."""
        key = (n_ues, iterations, l2_enabled, no_x_miss)
        summ = self._summary_cache.get(key)
        if summ is None:
            summ = batch_access_summaries(
                self.batched_traces(n_ues),
                iterations=iterations,
                l2_enabled=l2_enabled,
                no_x_miss=no_x_miss,
                l2_bytes=self.machine.cache.l2_bytes,
            )
            self._summary_cache[key] = summ
        return summ

    def exact_summaries(
        self,
        n_ues: int,
        iterations: int,
        l2_enabled: bool = True,
        no_x_miss: bool = False,
        tracer: Optional[Any] = None,
    ) -> List[AccessSummary]:
        """Trace-exact per-UE access summaries via vectorized replay.

        Each UE's row block is replayed through the set-parallel exact
        engine (``engine="vectorized"`` of
        :func:`repro.scc.tracegen.replay_trace`): ``l2_hits`` and
        ``l2_misses`` are the simulated hierarchy's actual counts, not
        the HOTL locality estimate.  Memoized in process and — via the
        replay disk cache — across processes.
        """
        key = ("exact", n_ues, iterations, l2_enabled, no_x_miss)
        summ = self._summary_cache.get(key)
        if summ is None:
            from ..scc.tracegen import replay_trace

            summ = []
            for r0, r1 in self.partition(n_ues).ranges():
                counts = replay_trace(
                    self.a,
                    r0,
                    r1,
                    iterations=iterations,
                    no_x_miss=no_x_miss,
                    l2_enabled=l2_enabled,
                    engine="vectorized",
                    tracer=tracer,
                    machine_key=self.machine.cache_key(),
                )
                summ.append(
                    AccessSummary(
                        nnz=int(self.a.ptr[r1] - self.a.ptr[r0]),
                        rows=r1 - r0,
                        iterations=iterations,
                        l2_hits=float(counts.l2_hits),
                        l2_misses=float(counts.mem_misses),
                    )
                )
            self._summary_cache[key] = summ
        return summ

    def _resolve_mapping(self, mapping: str, n_cores: int) -> Tuple[int, ...]:
        """Memoized policy-name mapping resolution (pure in its inputs)."""
        key = (mapping, n_cores, self.machine.machine_id, self.topology.__class__)
        cache = SpMVExperiment._shared_mapping_cache
        cores = cache.get(key)
        if cores is None:
            cores = cache[key] = tuple(get_mapping(mapping)(n_cores, self.topology))
        return cores

    def _chip_power(self, config: MachineConfig) -> float:
        """Memoized full-chip power of a configuration."""
        key = (self.machine.machine_id, config)
        cache = SpMVExperiment._shared_power_cache
        p = cache.get(key)
        if p is None:
            p = cache[key] = self.machine.chip_power(config)
        return p

    def _ws_per_core(self, n_cores: int) -> float:
        """Memoized per-core working set of this matrix."""
        ws = self._ws_cache.get(n_cores)
        if ws is None:
            ws = self._ws_cache[n_cores] = working_set_per_core(self.a, n_cores)
        return ws

    def _model_memory(self, config: MachineConfig) -> Any:
        """Shared untraced memory system for the fast path (stateless reads)."""
        key = (self.machine.machine_id, self.topology.__class__, config.mem_mhz)
        cache = SpMVExperiment._shared_memsys_cache
        mem = cache.get(key)
        if mem is None:
            mem = cache[key] = self.machine.memory_system(
                config, topology=self.topology
            )
        return mem

    def _model_mesh(self, config: MachineConfig) -> Any:
        """Shared untraced, undegraded interconnect for the fast path."""
        key = (self.machine.machine_id, self.topology.__class__, config.mesh_mhz)
        cache = SpMVExperiment._shared_mesh_cache
        mesh = cache.get(key)
        if mesh is None:
            mesh = cache[key] = self.machine.interconnect(
                config, topology=self.topology
            )
        return mesh

    def _barrier_schedule(self, core_map: List[int], mesh: Any):
        """Memoized resolved barrier schedule for one mapping."""
        key = (
            tuple(core_map),
            mesh.mesh_mhz,
            self.machine.machine_id,
            self.topology.__class__,
        )
        cache = SpMVExperiment._shared_schedule_cache
        sched = cache.get(key)
        if sched is None:
            sched = cache[key] = resolve_barrier_schedule(core_map, mesh)
        return sched

    # -- mode="predict" features -------------------------------------------

    def point_feature_vector(
        self,
        n_cores: int,
        core_map: List[int],
        config: MachineConfig,
        kernel: str,
        iterations: int,
    ) -> np.ndarray:
        """The full predictor feature vector of one campaign point.

        This is the *only* extraction path — training
        (:mod:`repro.predict.dataset`) and serving (``mode="predict"``)
        both come through here, so the two can never skew.  The O(nnz)
        matrix pass runs once per experiment, the O(n_parts) partition
        reduction once per core count; per-point assembly is O(n_cores).
        """
        from ..sparse.features import matrix_features, partition_features, point_features

        mf = self._matrix_features
        if mf is None:
            mf = self._matrix_features = matrix_features(self.a)
        pf = self._partition_features_cache.get(n_cores)
        if pf is None:
            pf = self._partition_features_cache[n_cores] = partition_features(
                self.a, self.partition(n_cores), mf
            )
        return point_features(mf, pf, self.machine, config, core_map, kernel, iterations)

    # -- the runner ---------------------------------------------------------

    def run(
        self,
        n_cores: int = 48,
        config: Optional[MachineConfig] = None,
        mapping: Union[str, Sequence[int]] = "distance_reduction",
        kernel: str = "csr",
        iterations: int = DEFAULT_ITERATIONS,
        verify: bool = False,
        x: Optional[np.ndarray] = None,
        time_budget: Optional[float] = None,
        tracer: Optional[Any] = None,
        mode: str = "sim",
    ) -> ExperimentResult:
        """Execute one configuration and return its result.

        ``mapping`` is a policy name from :mod:`repro.core.mapping` or an
        explicit core list (e.g. from ``single_core_at_distance``).
        ``verify=True`` additionally runs the real kernel and attaches
        ``y`` to the result (on the RCCE runtime in ``sim`` mode; computed
        directly, outside the timed region, in ``model`` mode).
        ``time_budget`` bounds the run in *simulated* seconds: a job that
        has not finished by then raises
        :class:`~repro.rcce.errors.RCCEBudgetExceededError` — campaigns
        use this to turn a hung point into a structured record instead
        of a hung sweep.  ``tracer`` (a :class:`repro.obs.Tracer`)
        observes the whole stack: runtime spans, mesh counters, memory
        histograms and per-core model summaries.

        ``mode="sim"`` replays the job on the event-driven runtime;
        ``mode="model"`` computes the identical per-core times in one
        vectorized pass (:mod:`repro.sparse.fastpath`) and propagates the
        barrier critical path analytically
        (:func:`repro.core.timing.barrier_exit_times`) — same numbers to
        the tolerance stated in ``docs/PERFORMANCE.md``, orders of
        magnitude faster.  The model times the standard barrier/compute/
        barrier loop; runtime-only effects (fault injection, per-event
        tracer spans, the verify gather) exist only in ``sim`` mode.
        ``mode="exact-trace"`` runs the same analytic composition but
        replaces the HOTL cache characterization with trace-exact
        per-UE counts from the vectorized replay engine — the
        ground-truth validation path (``repro run --validate-exact``).
        """
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {mode!r} "
                f"(machine {self.machine.machine_id!r})"
            )
        if not self.machine.supports_mode(mode):
            raise ValueError(
                f"machine {self.machine.machine_id!r} supports modes "
                f"{self.machine.supported_modes}, got {mode!r}; the "
                "event-driven runtime and the trace-exact replay engine "
                "exist only for the SCC"
            )
        if config is None:
            config = self.machine.default_config
        if isinstance(mapping, str):
            core_map = list(self._resolve_mapping(mapping, n_cores))
            mapping_name = mapping
        else:
            core_map = list(mapping)
            mapping_name = "explicit"
            if len(core_map) != n_cores:
                raise ValueError(
                    f"explicit mapping names {len(core_map)} cores but n_cores={n_cores}"
                )

        if mode == "predict":
            return self._run_predict(
                n_cores=n_cores,
                core_map=core_map,
                mapping_name=mapping_name,
                config=config,
                kernel=kernel,
                iterations=iterations,
                verify=verify,
                x=x,
                time_budget=time_budget,
                tracer=tracer,
            )
        if mode in ("model", "exact-trace"):
            return self._run_analytic(
                n_cores=n_cores,
                core_map=core_map,
                mapping_name=mapping_name,
                config=config,
                kernel=kernel,
                iterations=iterations,
                verify=verify,
                x=x,
                time_budget=time_budget,
                tracer=tracer,
                exact=(mode == "exact-trace"),
            )

        traces = self.traces(n_cores)
        summaries = [
            access_summary(
                t,
                iterations=iterations,
                l2_enabled=config.l2_enabled,
                no_x_miss=(kernel == "no_x_miss"),
                l2_bytes=self.machine.cache.l2_bytes,
            )
            for t in traces
        ]
        mem = self.machine.memory_system(config, topology=self.topology, tracer=tracer)
        timings = solve_core_times(summaries, core_map, config, mem, self.timing)

        durations = [t.time for t in timings]
        blocks = self.partition(n_cores).ranges()
        x_vec = x if x is not None else np.ones(self.a.n_cols)
        runtime = RCCERuntime(
            core_map, config=config, topology=self.topology, tracer=tracer
        )
        results = runtime.run(
            _ue_body, durations, blocks, self.a, x_vec, kernel, verify, until=time_budget
        )
        makespan = runtime.makespan(results)
        y = results[0].value if verify else None
        if tracer:
            self._emit_core_metrics(tracer, timings)

        return ExperimentResult(
            matrix_name=self.name,
            n=self.a.n_rows,
            nnz=self.a.nnz,
            n_cores=n_cores,
            config_name=config.name,
            mapping=mapping_name,
            kernel=kernel,
            iterations=iterations,
            makespan=makespan,
            per_core=timings,
            power_watts=self._chip_power(config),
            ws_per_core_bytes=self._ws_per_core(n_cores),
            y=y,
            machine=self.machine.machine_id,
        )

    def _run_analytic(
        self,
        n_cores: int,
        core_map: List[int],
        mapping_name: str,
        config: MachineConfig,
        kernel: str,
        iterations: int,
        verify: bool,
        x: Optional[np.ndarray],
        time_budget: Optional[float],
        tracer: Optional[Any],
        exact: bool = False,
    ) -> ExperimentResult:
        """The analytic path: per-core solve + barrier recurrence.

        ``exact=False`` is ``mode="model"`` (batched HOTL summaries);
        ``exact=True`` is ``mode="exact-trace"`` (the same timing
        composition fed trace-exact per-UE cache counts) — the two
        differ only in where ``l2_hits``/``l2_misses`` come from, which
        is precisely what ``repro run --validate-exact`` compares.
        """
        mem = self._model_memory(config)
        if exact:
            timings = solve_core_times(
                self.exact_summaries(
                    n_cores,
                    iterations,
                    l2_enabled=config.l2_enabled,
                    no_x_miss=(kernel == "no_x_miss"),
                    tracer=tracer,
                ),
                core_map,
                config,
                mem,
                self.timing,
            )
        else:
            summaries = self._batched_summaries(
                n_cores, iterations, config.l2_enabled, kernel == "no_x_miss"
            )
            timings = solve_core_times_batched(
                summaries,
                core_map,
                config,
                mem,
                self.timing,
                cache=SpMVExperiment._shared_solver_cache,
            )

        schedule = self._barrier_schedule(core_map, self._model_mesh(config))
        entered = barrier_exit_times([0.0] * n_cores, core_map, schedule=schedule)
        computed = [e + t.time for e, t in zip(entered, timings)]
        exited = barrier_exit_times(computed, core_map, schedule=schedule)
        makespan = max(exited)
        if time_budget is not None and makespan > time_budget:
            stuck = [ue for ue, done in enumerate(exited) if done > time_budget]
            raise RCCEBudgetExceededError(time_budget, stuck, time_budget)

        y = None
        if verify:
            x_vec = x if x is not None else np.ones(self.a.n_cols)
            kernel_fn = spmv_no_x_miss if kernel == "no_x_miss" else spmv_row_range
            y = np.concatenate(
                [kernel_fn(self.a, x_vec, r0, r1) for r0, r1 in self.partition(n_cores).ranges()]
            )
        if tracer:
            self._emit_core_metrics(tracer, timings)

        return ExperimentResult(
            matrix_name=self.name,
            n=self.a.n_rows,
            nnz=self.a.nnz,
            n_cores=n_cores,
            config_name=config.name,
            mapping=mapping_name,
            kernel=kernel,
            iterations=iterations,
            makespan=makespan,
            per_core=timings,
            power_watts=self._chip_power(config),
            ws_per_core_bytes=self._ws_per_core(n_cores),
            y=y,
            machine=self.machine.machine_id,
        )

    @staticmethod
    def _emit_core_metrics(tracer: Any, timings: Sequence[Any]) -> None:
        """Publish per-core model summaries through the tracer's registry.

        Uses the registry's one-pass series API (a single locked
        create-or-get-and-update sweep over both per-core instrument
        names, memoized label tuples, batched histogram observation),
        so an *enabled* tracer costs a few dict lookups per run rather
        than a locked get-or-create plus a method call per instrument
        per core.
        """
        m = tracer.metrics
        m.series_update(
            "model.mem_lines",
            "model.core_time_s",
            "core",
            [(t.core, int(t.mem_lines), t.time) for t in timings],
        )
        m.histogram_observe_many(
            "model.mem_stall_fraction", [t.mem_stall_fraction for t in timings]
        )

    def _run_predict(
        self,
        n_cores: int,
        core_map: List[int],
        mapping_name: str,
        config: MachineConfig,
        kernel: str,
        iterations: int,
        verify: bool,
        x: Optional[np.ndarray],
        time_budget: Optional[float],
        tracer: Optional[Any],
    ) -> ExperimentResult:
        """The microsecond tier: answer from the trained regressor.

        No cache characterization, no contention solve, no barrier
        recurrence — just the cached structural features of this
        (matrix, partition, mapping) point pushed through the machine's
        trained :class:`~repro.predict.regressor.PerfRegressor`.  When
        no usable artifact exists, falls back to ``mode="model"``
        (:func:`~repro.predict.artifact.get_predictor` warns once per
        machine); the result then carries ``predicted=False``, so
        callers can tell which tier actually answered.
        """
        from ..predict.artifact import get_predictor

        predictor = get_predictor(self.machine)
        if predictor is None:
            return self._run_analytic(
                n_cores=n_cores,
                core_map=core_map,
                mapping_name=mapping_name,
                config=config,
                kernel=kernel,
                iterations=iterations,
                verify=verify,
                x=x,
                time_budget=time_budget,
                tracer=tracer,
                exact=False,
            )

        feats = self.point_feature_vector(n_cores, core_map, config, kernel, iterations)
        makespan = predictor.predict_makespan(feats, self.a.nnz, iterations)
        if time_budget is not None and makespan > time_budget:
            raise RCCEBudgetExceededError(time_budget, list(range(n_cores)), time_budget)

        y = None
        if verify:
            # The numeric result never came from a model — compute it
            # directly, outside anything a caller would time.
            x_vec = x if x is not None else np.ones(self.a.n_cols)
            kernel_fn = spmv_no_x_miss if kernel == "no_x_miss" else spmv_row_range
            y = np.concatenate(
                [kernel_fn(self.a, x_vec, r0, r1) for r0, r1 in self.partition(n_cores).ranges()]
            )
        if tracer:
            tracer.metrics.counter("predict.answers").inc()

        return ExperimentResult(
            matrix_name=self.name,
            n=self.a.n_rows,
            nnz=self.a.nnz,
            n_cores=n_cores,
            config_name=config.name,
            mapping=mapping_name,
            kernel=kernel,
            iterations=iterations,
            makespan=makespan,
            per_core=[],
            power_watts=self._chip_power(config),
            ws_per_core_bytes=self._ws_per_core(n_cores),
            y=y,
            machine=self.machine.machine_id,
            predicted=True,
        )

    def run_fault_tolerant(
        self,
        n_cores: int = 48,
        config: Optional[MachineConfig] = None,
        mapping: Union[str, Sequence[int]] = "distance_reduction",
        plan: Optional[Any] = None,
        iterations: int = DEFAULT_ITERATIONS,
        x: Optional[np.ndarray] = None,
        time_per_nnz: float = 1e-8,
        time_budget: Optional[float] = None,
        record_trace: bool = False,
        collect_timeout: float = 5e-4,
        idle_timeout: float = 1e-3,
        ack_timeout: float = 2e-4,
        tracer: Optional[Any] = None,
    ) -> FaultTolerantResult:
        """Run SpMV fault-tolerantly under a :class:`~repro.faults.plan.FaultPlan`.

        Rank 0 coordinates: it deals partition blocks to the workers over
        the reliable-messaging layer (:mod:`repro.faults.reliable`),
        re-deals the blocks of workers that die mid-run, checkpoints the
        assembled vector every iteration and survives message loss,
        duplication and corruption.  The returned result carries the
        merged fault/recovery counters and, per the robustness contract,
        ``verified`` is exact (bitwise) equality of ``y`` against the
        fault-free block-wise computation.

        ``plan=None`` (or a faultless plan) runs the same protocol on a
        perfect machine — useful as the baseline of injection studies.
        ``time_budget`` bounds the run in simulated seconds
        (:class:`~repro.rcce.errors.RCCEBudgetExceededError` past it).
        """
        if not self.machine.supports_mode("sim"):
            raise ValueError(
                f"machine {self.machine.machine_id!r} has no event-driven "
                "runtime; fault-tolerant runs require the SCC (sim mode)"
            )
        if config is None:
            config = self.machine.default_config
        if isinstance(mapping, str):
            core_map = get_mapping(mapping)(n_cores, self.topology)
            mapping_name = mapping
        else:
            core_map = list(mapping)
            mapping_name = "explicit"
            if len(core_map) != n_cores:
                raise ValueError(
                    f"explicit mapping names {len(core_map)} cores but n_cores={n_cores}"
                )

        blocks = self.partition(n_cores).ranges()
        x_vec = x if x is not None else np.ones(self.a.n_cols)
        runtime = RCCERuntime(
            core_map,
            config=config,
            topology=self.topology,
            record_trace=record_trace,
            fault_plan=plan,
            tracer=tracer,
        )
        results = runtime.run(
            _ft_ue_body,
            blocks,
            self.a,
            x_vec,
            iterations,
            time_per_nnz,
            collect_timeout,
            idle_timeout,
            ack_timeout,
            until=time_budget,
        )
        makespan = runtime.makespan(results)

        coord = results[0].value
        if not isinstance(coord, dict) or "y" not in coord:
            raise RuntimeError(
                "fault-tolerant coordinator returned no result "
                "(rank 0 must be protected from injected failures)"
            )
        y = coord["y"]
        counters: TCounter[str] = Counter(coord["counters"])
        for r in results[1:]:
            if isinstance(r.value, dict):
                counters.update(r.value.get("counters", {}))
        fault_schedule: List[Tuple] = []
        plan_name, plan_seed = "none", 0
        if runtime.fault_injector is not None:
            counters.update(runtime.fault_injector.counters)
            fault_schedule = runtime.fault_injector.schedule_signature()
            plan_name = runtime.fault_injector.plan.name
            plan_seed = runtime.fault_injector.plan.seed
        reference = np.concatenate(
            [spmv_row_range(self.a, x_vec, r0, r1) for r0, r1 in blocks]
        )
        return FaultTolerantResult(
            matrix_name=self.name,
            n=self.a.n_rows,
            nnz=self.a.nnz,
            n_cores=n_cores,
            config_name=config.name,
            mapping=mapping_name,
            iterations=iterations,
            makespan=makespan,
            plan_name=plan_name,
            plan_seed=plan_seed,
            y=y,
            verified=bool(np.array_equal(y, reference)),
            counters=dict(counters),
            failed_ues=dict(runtime.failed_ues),
            fault_schedule=fault_schedule,
            trace=list(runtime.sim.trace),
        )

    def sweep_cores(
        self,
        core_counts: Sequence[int],
        machine: Union[str, MachineModel, None] = None,
        **kwargs,
    ) -> List[ExperimentResult]:
        """Run the same configuration across several core counts.

        ``machine`` reruns the sweep on another zoo member: a sibling
        experiment is built over the same matrix (partitions and traces
        are machine-dependent, so per-experiment caches cannot be
        shared) and the sweep runs there.
        """
        exp: SpMVExperiment = self
        if machine is not None and get_machine(machine) is not self.machine:
            exp = SpMVExperiment(
                self.a,
                name=self.name,
                x_capacity_fraction=self.x_capacity_fraction,
                partitioner=self.partitioner,
                machine=machine,
            )
        return [exp.run(n_cores=n, **kwargs) for n in core_counts]
