"""Sensitivity of the study's conclusions to the calibrated constants.

Four numbers in the model are calibrated rather than published
(DESIGN.md §5): the P54C issue cost per nonzero, the L2 hit cost, the
per-row loop overhead, and the per-controller bandwidth.  A reproduction
whose conclusions flipped under a ±25 % wiggle of those constants would
be reporting tuning, not architecture.  This module perturbs one
constant at a time and re-derives the headline *effects* (ratios, not
absolute MFLOPS):

- Fig. 3's 3-hop degradation,
- Fig. 5's mapping speedup at 16 cores,
- Fig. 8's no-x-miss speedup on a short-row matrix,
- Fig. 9's conf1 speedup.

``benchmarks/test_ablation_sensitivity.py`` asserts every effect keeps
its direction and rough size across the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..scc.params import DEFAULT_TIMING, P54CTimingParams
from ..sparse.csr import CSRMatrix
from .experiment import SpMVExperiment
from .mapping import single_core_at_distance

__all__ = ["EffectSet", "measure_effects", "sensitivity_sweep", "PERTURBABLE"]

#: the calibrated constants a sweep may perturb.
PERTURBABLE = ("base_cycles_per_nnz", "l2_hit_cycles", "row_overhead_cycles")


@dataclass(frozen=True)
class EffectSet:
    """The headline effects, as dimensionless ratios."""

    hop3_degradation: float     # 1 - perf(3 hops)/perf(0 hops)
    mapping_speedup: float      # t(standard)/t(distance reduction) @16 cores
    no_x_speedup: float         # t(csr)/t(no_x_miss) on the short-row matrix
    conf1_speedup: float        # t(conf0)/t(conf1)

    def as_dict(self) -> Dict[str, float]:
        """The four effects as a name -> ratio mapping."""
        return {
            "hop3 deg": self.hop3_degradation,
            "mapping speedup": self.mapping_speedup,
            "no-x speedup": self.no_x_speedup,
            "conf1 speedup": self.conf1_speedup,
        }


def measure_effects(
    streaming: CSRMatrix,
    short_row: CSRMatrix,
    timing: P54CTimingParams = DEFAULT_TIMING,
    iterations: int = 8,
) -> EffectSet:
    """Re-derive the four headline effects under a given timing model.

    ``streaming`` should be a memory-bound matrix (working set well past
    L2 at 16 cores), ``short_row`` a scattered small-nnz/n matrix.
    """
    from ..scc.chip import CONF0, CONF1

    exp = SpMVExperiment(streaming, name="streaming", timing=timing)
    hop0 = exp.run(n_cores=1, mapping=single_core_at_distance(0), iterations=iterations)
    hop3 = exp.run(n_cores=1, mapping=single_core_at_distance(3), iterations=iterations)
    std = exp.run(n_cores=16, mapping="standard", iterations=iterations)
    dr = exp.run(n_cores=16, mapping="distance_reduction", iterations=iterations)
    c0 = exp.run(n_cores=16, config=CONF0, iterations=iterations)
    c1 = exp.run(n_cores=16, config=CONF1, iterations=iterations)

    sexp = SpMVExperiment(short_row, name="short", timing=timing)
    base = sexp.run(n_cores=8, iterations=iterations)
    nox = sexp.run(n_cores=8, kernel="no_x_miss", iterations=iterations)

    return EffectSet(
        hop3_degradation=1 - hop3.mflops / hop0.mflops,
        mapping_speedup=std.makespan / dr.makespan,
        no_x_speedup=base.makespan / nox.makespan,
        conf1_speedup=c0.makespan / c1.makespan,
    )


def sensitivity_sweep(
    streaming: CSRMatrix,
    short_row: CSRMatrix,
    factors: List[float] = [0.75, 1.0, 1.25],
    iterations: int = 8,
) -> List[dict]:
    """Perturb each calibrated constant by each factor; one record each."""
    for f in factors:
        if f <= 0:
            raise ValueError(f"perturbation factors must be positive, got {f}")
    rows = []
    for param in PERTURBABLE:
        for f in factors:
            timing = replace(
                DEFAULT_TIMING, **{param: getattr(DEFAULT_TIMING, param) * f}
            )
            effects = measure_effects(streaming, short_row, timing, iterations)
            row = {"param": param, "factor": f}
            row.update(effects.as_dict())
            rows.append(row)
    return rows
