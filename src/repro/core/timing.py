"""Per-core time composition with memory-controller contention.

Core time depends on the effective per-line memory time, which depends
on every core's demand on its controller, which depends on core time.
Rather than iterating that circular dependency (which oscillates around
the saturation point), :func:`solve_core_times` solves it exactly, one
controller at a time:

With ``A_c`` the core-clock seconds of core ``c`` (compute + L2 hits),
``M_c`` its memory line count, and ``T`` the controller's effective
per-line service time, the demand a controller sees is::

    D(T) = sum_c M_c / (A_c + M_c * max(T, latency_c))   [lines/sec]

``D`` is strictly decreasing in ``T``.  If ``D(latency)`` is below the
controller's capacity ``R = bandwidth / line_bytes``, the controller is
unsaturated and every core just pays its Eq. 1 latency.  Otherwise the
equilibrium is the unique ``T*`` with ``D(T*) = R``, found by
bisection; each core then sees ``max(T*, latency_c)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..machine.base import MachineConfig
from ..rcce.mpb import chunked_transfer_time
from ..scc.core_model import AccessSummary, core_time
from ..scc.params import DEFAULT_TIMING, P54CTimingParams
from ..sparse.fastpath import (
    BatchedSummaries,
    base_compute_times,
    equilibrium_line_times,
    memory_latencies,
)

__all__ = [
    "CoreTiming",
    "solve_core_times",
    "solve_core_times_batched",
    "barrier_schedule",
    "resolve_barrier_schedule",
    "barrier_exit_times",
]

#: every collective payload in the barrier is one Python int (8 bytes on
#: the wire, matching :func:`repro.rcce.api.payload_bytes`).
BARRIER_TOKEN_BYTES = 8


class CoreTiming(NamedTuple):
    """Solved execution time of one UE on one core.

    A ``NamedTuple`` rather than a dataclass: sweeps materialize one per
    UE per run, and tuple construction keeps the fast path fast.  The
    field API (and field order) is unchanged.
    """

    ue: int
    core: int
    time: float
    line_time: float      # effective seconds per memory line fetch
    mem_lines: float      # memory line fetches over the whole run

    @property
    def mem_stall_fraction(self) -> float:
        """Share of this core's time spent in memory stalls."""
        return min(self.mem_lines * self.line_time / self.time, 1.0) if self.time > 0 else 0.0


def _controller_line_time(
    base_times: List[float],
    mem_lines: List[float],
    latencies: List[float],
    capacity_lines_per_sec: float,
    tol: float = 1e-4,
    max_iter: int = 100,
) -> float:
    """Equilibrium per-line service time of one saturated-or-not MC.

    Returns the common ``T*`` (cores individually still floor at their
    own latency).  ``base_times`` are the A_c terms.
    """

    def demand(t: float) -> float:
        """Aggregate line demand (lines/sec) at service time ``t``."""
        total = 0.0
        for a, m, lat in zip(base_times, mem_lines, latencies):
            if m <= 0:
                continue
            total += m / (a + m * max(t, lat))
        return total

    lo = min(latencies)
    if demand(lo) <= capacity_lines_per_sec:
        return lo
    # Find an upper bracket: demand halves as T doubles past saturation.
    hi = max(lo, 1e-9)
    while demand(hi) > capacity_lines_per_sec:
        hi *= 2.0
        if hi > 1.0:  # 1 s/line would be ~10^9x the real latency
            return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if demand(mid) > capacity_lines_per_sec:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * hi:
            break
    return hi


def solve_core_times(
    summaries: Sequence[AccessSummary],
    core_map: Sequence[int],
    config: MachineConfig,
    mem: Any,
    timing: P54CTimingParams = DEFAULT_TIMING,
) -> List[CoreTiming]:
    """Exact per-core times under MC bandwidth sharing."""
    if len(summaries) != len(core_map):
        raise ValueError(
            f"{len(summaries)} summaries for {len(core_map)} cores — must match"
        )
    if mem.mem_mhz != config.mem_mhz:
        raise ValueError(
            f"memory system clocked at {mem.mem_mhz} MHz but config says {config.mem_mhz}"
        )
    cores = list(core_map)
    n = len(cores)
    freqs = [config.core_mhz_of_core(c) for c in cores]
    latencies = [
        mem.latency_for_core(c, f, config.mesh_mhz) for c, f in zip(cores, freqs)
    ]
    # A_c: everything but memory stalls (evaluate with zero line time).
    base_times = [
        core_time(s, f, 0.0, timing) for s, f in zip(summaries, freqs)
    ]
    mem_lines = [float(s.l2_misses) for s in summaries]

    # Group by controller and solve each equilibrium independently.
    line_time = [0.0] * n
    groups: Dict[int, List[int]] = {}
    for i, c in enumerate(cores):
        groups.setdefault(mem.topology.mc_index_of_core(c), []).append(i)
    for mc_idx, members in groups.items():
        capacity = mem.controllers[mc_idx].bandwidth / mem.line_bytes
        t_star = _controller_line_time(
            [base_times[i] for i in members],
            [mem_lines[i] for i in members],
            [latencies[i] for i in members],
            capacity,
        )
        for i in members:
            line_time[i] = max(t_star, latencies[i])

    times = [a + m * lt for a, m, lt in zip(base_times, mem_lines, line_time)]
    return [
        CoreTiming(ue=i, core=c, time=t, line_time=lt, mem_lines=m)
        for i, (c, t, lt, m) in enumerate(zip(cores, times, line_time, mem_lines))
    ]


def _chip_arrays(
    core_map: Sequence[int],
    config: MachineConfig,
    mem: Any,
    cache: Optional[Dict] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float], List[Tuple]]:
    """(freqs, latencies, mc_index, capacities, groups) for one mapping+config.

    ``groups`` pairs each occupied controller's member indices with its
    line capacity, precomputed for
    :func:`repro.sparse.fastpath.equilibrium_line_times`.  All five are
    pure functions of the mapping, the config and the memory geometry —
    the expensive per-core topology lookups are memoized in ``cache``
    (keyed so distinct machines/configs/mappings never collide) when
    callers sweep many runs.  The Eq.-1-form latency coefficients come
    from the memory system itself, so every zoo machine's values flow
    through the same vectorized path.
    """
    key = (
        tuple(core_map),
        config,
        mem.line_bytes,
        getattr(mem, "machine_id", "scc-48"),
    )
    if cache is not None and key in cache:
        return cache[key]
    cores = list(core_map)
    topo = mem.topology
    freqs = np.array([config.core_mhz_of_core(c) for c in cores], dtype=np.float64)
    hops = np.array([topo.hops_to_mc(c) for c in cores], dtype=np.float64)
    mc_index = np.array([topo.mc_index_of_core(c) for c in cores], dtype=np.int64)
    capacities = [mc.bandwidth / mem.line_bytes for mc in mem.controllers]
    latencies = memory_latencies(
        hops,
        freqs,
        config.mesh_mhz,
        mem.mem_mhz,
        mem.lat_core_cycles,
        mem.lat_mesh_cycles_per_hop,
        mem.lat_mem_cycles,
    )
    by_mc: Dict[int, List[int]] = {}
    for i, mc_i in enumerate(mc_index.tolist()):
        by_mc.setdefault(mc_i, []).append(i)
    groups = [(idx, float(capacities[mc_i])) for mc_i, idx in by_mc.items()]
    out = (freqs, latencies, mc_index, capacities, groups)
    if cache is not None:
        cache[key] = out
    return out


def solve_core_times_batched(
    batch: BatchedSummaries,
    core_map: Sequence[int],
    config: MachineConfig,
    mem: Any,
    timing: P54CTimingParams = DEFAULT_TIMING,
    cache: Optional[Dict] = None,
) -> List[CoreTiming]:
    """Vectorized :func:`solve_core_times` over batched access summaries.

    Same demand model, same per-controller equilibrium, but the per-core
    arithmetic runs as array expressions (:mod:`repro.sparse.fastpath`)
    instead of a Python loop per UE.  The scalar and batched solvers
    agree bitwise (the differential tests pin the whole fast path against
    the simulator).  ``cache`` memoizes the mapping/config-derived arrays
    across calls; pass a dict owned by the sweep.
    """
    if batch.n_ues != len(core_map):
        raise ValueError(
            f"{batch.n_ues} summaries for {len(core_map)} cores — must match"
        )
    if mem.mem_mhz != config.mem_mhz:
        raise ValueError(
            f"memory system clocked at {mem.mem_mhz} MHz but config says {config.mem_mhz}"
        )
    freqs, latencies, mc_index, capacities, groups = _chip_arrays(
        core_map, config, mem, cache
    )
    base_times = base_compute_times(batch, freqs, timing)
    mem_lines = batch.l2_misses.astype(np.float64)
    line_time = equilibrium_line_times(
        base_times, mem_lines, latencies, mc_index, capacities, groups=groups
    )
    times = base_times + mem_lines * line_time
    return [
        CoreTiming(ue=i, core=c, time=t, line_time=lt, mem_lines=m)
        for i, (c, t, lt, m) in enumerate(
            zip(core_map, times.tolist(), line_time.tolist(), mem_lines.tolist())
        )
    ]


@lru_cache(maxsize=None)
def barrier_schedule(n: int) -> Tuple[Tuple[int, int], ...]:
    """The (sender, receiver) rank pairs of one barrier, in execution order.

    A barrier is a binomial reduce to rank 0 followed by a binomial bcast
    (:mod:`repro.rcce.collectives`); which ranks exchange, and in what
    order, depends only on the UE count.  The reduce phase walks masks
    upward (each rank sends once, at its lowest set bit); the bcast phase
    is the root's depth-first fan-out in decreasing mask order.  Any
    sequentialization that respects each rank's own exchange order yields
    the same critical path, since an exchange touches only its two ranks.
    """
    pairs: List[Tuple[int, int]] = []
    mask = 1
    while mask < n:
        for rel in range(mask, n, 2 * mask):
            # rel = (2k+1)*mask, so its lowest set bit is exactly `mask`.
            pairs.append((rel, rel & ~mask))
        mask <<= 1

    top = 1
    while top < n:
        top <<= 1
    top >>= 1

    def fan(rel: int, start_mask: int) -> None:
        m = start_mask
        while m > 0:
            child = rel + m
            if child < n:
                pairs.append((rel, child))
                fan(child, m >> 1)
            m >>= 1

    fan(0, top)
    return tuple(pairs)


def resolve_barrier_schedule(
    core_map: Sequence[int], mesh
) -> List[Tuple[int, int, float]]:
    """:func:`barrier_schedule` with each pair's token transfer time.

    Returns ``(sender, receiver, seconds)`` triples; callers sweeping
    many runs over a fixed mapping cache the result.
    """
    cores = list(core_map)
    return [
        (s, r, chunked_transfer_time(mesh, cores[s], cores[r], BARRIER_TOKEN_BYTES))
        for s, r in barrier_schedule(len(cores))
    ]


def barrier_exit_times(
    entry_times: Sequence[float],
    core_map: Sequence[int],
    mesh=None,
    schedule: Optional[Sequence[Tuple[int, int, float]]] = None,
) -> List[float]:
    """When each UE leaves an RCCE barrier entered at ``entry_times``.

    Propagates the critical path of the barrier's binomial reduce+bcast
    analytically.  Every exchange is a rendezvous of one 8-byte token:
    with the sender arriving at ``t_s`` and the receiver at ``t_r``,
    both resume at ``max(t_s + transfer, t_r)`` — exactly the
    simulator's send/ack semantics — so this recurrence reproduces the
    event-driven barrier timing without scheduling a single event.

    Pass a precomputed ``schedule`` (:func:`resolve_barrier_schedule`)
    to amortize transfer-time lookups across runs; otherwise ``mesh``
    is required and the schedule is resolved on the fly.
    """
    n = len(entry_times)
    if n != len(core_map):
        raise ValueError(f"{n} entry times for {len(core_map)} cores — must match")
    t = [float(v) for v in entry_times]
    if n <= 1:
        return t
    if schedule is None:
        if mesh is None:
            raise ValueError("barrier_exit_times needs a mesh or a resolved schedule")
        schedule = resolve_barrier_schedule(core_map, mesh)
    for s, r, tt in schedule:
        done = t[s] + tt
        if t[r] > done:
            done = t[r]
        t[s] = t[r] = done
    return t
