"""Per-core time composition with memory-controller contention.

Core time depends on the effective per-line memory time, which depends
on every core's demand on its controller, which depends on core time.
Rather than iterating that circular dependency (which oscillates around
the saturation point), :func:`solve_core_times` solves it exactly, one
controller at a time:

With ``A_c`` the core-clock seconds of core ``c`` (compute + L2 hits),
``M_c`` its memory line count, and ``T`` the controller's effective
per-line service time, the demand a controller sees is::

    D(T) = sum_c M_c / (A_c + M_c * max(T, latency_c))   [lines/sec]

``D`` is strictly decreasing in ``T``.  If ``D(latency)`` is below the
controller's capacity ``R = bandwidth / line_bytes``, the controller is
unsaturated and every core just pays its Eq. 1 latency.  Otherwise the
equilibrium is the unique ``T*`` with ``D(T*) = R``, found by
bisection; each core then sees ``max(T*, latency_c)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..scc.chip import SCCConfig
from ..scc.core_model import AccessSummary, core_time
from ..scc.memory import MemorySystem
from ..scc.params import DEFAULT_TIMING, P54CTimingParams

__all__ = ["CoreTiming", "solve_core_times"]


@dataclass(frozen=True)
class CoreTiming:
    """Solved execution time of one UE on one core."""

    ue: int
    core: int
    time: float
    line_time: float      # effective seconds per memory line fetch
    mem_lines: float      # memory line fetches over the whole run

    @property
    def mem_stall_fraction(self) -> float:
        """Share of this core's time spent in memory stalls."""
        return min(self.mem_lines * self.line_time / self.time, 1.0) if self.time > 0 else 0.0


def _controller_line_time(
    base_times: List[float],
    mem_lines: List[float],
    latencies: List[float],
    capacity_lines_per_sec: float,
    tol: float = 1e-4,
    max_iter: int = 100,
) -> float:
    """Equilibrium per-line service time of one saturated-or-not MC.

    Returns the common ``T*`` (cores individually still floor at their
    own latency).  ``base_times`` are the A_c terms.
    """

    def demand(t: float) -> float:
        """Aggregate line demand (lines/sec) at service time ``t``."""
        total = 0.0
        for a, m, lat in zip(base_times, mem_lines, latencies):
            if m <= 0:
                continue
            total += m / (a + m * max(t, lat))
        return total

    lo = min(latencies)
    if demand(lo) <= capacity_lines_per_sec:
        return lo
    # Find an upper bracket: demand halves as T doubles past saturation.
    hi = max(lo, 1e-9)
    while demand(hi) > capacity_lines_per_sec:
        hi *= 2.0
        if hi > 1.0:  # 1 s/line would be ~10^9x the real latency
            return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if demand(mid) > capacity_lines_per_sec:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * hi:
            break
    return hi


def solve_core_times(
    summaries: Sequence[AccessSummary],
    core_map: Sequence[int],
    config: SCCConfig,
    mem: MemorySystem,
    timing: P54CTimingParams = DEFAULT_TIMING,
) -> List[CoreTiming]:
    """Exact per-core times under MC bandwidth sharing."""
    if len(summaries) != len(core_map):
        raise ValueError(
            f"{len(summaries)} summaries for {len(core_map)} cores — must match"
        )
    if mem.mem_mhz != config.mem_mhz:
        raise ValueError(
            f"memory system clocked at {mem.mem_mhz} MHz but config says {config.mem_mhz}"
        )
    cores = list(core_map)
    n = len(cores)
    freqs = [config.core_mhz_of_core(c) for c in cores]
    latencies = [
        mem.latency_for_core(c, f, config.mesh_mhz) for c, f in zip(cores, freqs)
    ]
    # A_c: everything but memory stalls (evaluate with zero line time).
    base_times = [
        core_time(s, f, 0.0, timing) for s, f in zip(summaries, freqs)
    ]
    mem_lines = [float(s.l2_misses) for s in summaries]

    # Group by controller and solve each equilibrium independently.
    line_time = [0.0] * n
    groups: Dict[int, List[int]] = {}
    for i, c in enumerate(cores):
        groups.setdefault(mem.topology.mc_index_of_core(c), []).append(i)
    for mc_idx, members in groups.items():
        capacity = mem.controllers[mc_idx].bandwidth / mem.line_bytes
        t_star = _controller_line_time(
            [base_times[i] for i in members],
            [mem_lines[i] for i in members],
            [latencies[i] for i in members],
            capacity,
        )
        for i in members:
            line_time[i] = max(t_star, latencies[i])

    times = [a + m * lt for a, m, lt in zip(base_times, mem_lines, line_time)]
    return [
        CoreTiming(ue=i, core=c, time=t, line_time=lt, mem_lines=m)
        for i, (c, t, lt, m) in enumerate(zip(cores, times, line_time, mem_lines))
    ]
