"""The paper's study: mappings, experiments, metrics, comparisons.

- :mod:`~repro.core.mapping` — standard vs distance-reduction UE maps.
- :mod:`~repro.core.trace` — per-UE SpMV access characterization.
- :mod:`~repro.core.timing` — contention-aware per-core time solver.
- :mod:`~repro.core.experiment` — :class:`SpMVExperiment`, the runner.
- :mod:`~repro.core.metrics` — suite aggregates and speedups.
- :mod:`~repro.core.comparison` — Fig. 10 architecture rooflines.
- :mod:`~repro.core.report` — text rendering of tables/figures.
- :mod:`~repro.core.figures` — scriptable generation of every paper artifact.
- :mod:`~repro.core.roofline` — the SCC's own roofline model.
- :mod:`~repro.core.campaign` — persistent, resumable experiment sweeps.
- :mod:`~repro.core.parallel` — process-pool sharding for sweeps.
- :mod:`~repro.core.supervise` — self-healing supervised execution.
- :mod:`~repro.core.diagrams` — ASCII renderings of Figs. 1/2/4.
- :mod:`~repro.core.blocked` — BCSR timing on the SCC model.
"""

from .blocked import BCSRTimingResult, run_bcsr_timing
from .campaign import (
    Campaign,
    CampaignContext,
    CampaignPoint,
    fault_tolerant_record,
    result_record,
    run_campaign_point,
)
from .parallel import CampaignWorkerCrash, iter_ordered, parallel_map
from .supervise import (
    QuarantinedTaskError,
    SupervisePolicy,
    TaskOutcome,
    supervised_iter_ordered,
    supervised_parallel_map,
)
from .diagrams import chip_diagram, csr_example, mapping_diagram
from .comparison import COMPARISON_SYSTEMS, ArchitectureModel, comparison_table
from .experiment import (
    DEFAULT_ITERATIONS,
    ExperimentResult,
    FaultTolerantResult,
    ResultBase,
    SpMVExperiment,
)
from .figures import DEFAULT_MODE, suite_experiments
from .roofline import MatrixPoint, SCCRoofline, locate_matrix
from .sensitivity import EffectSet, measure_effects, sensitivity_sweep
from .mapping import (
    MAPPINGS,
    distance_reduction_mapping,
    get_mapping,
    single_core_at_distance,
    standard_mapping,
)
from .metrics import (
    average_gflops,
    average_mflops_per_watt,
    geomean_gflops,
    parallel_efficiency,
    speedup,
    speedup_series,
)
from .report import banner, format_series, format_table
from .timing import (
    CoreTiming,
    barrier_exit_times,
    barrier_schedule,
    resolve_barrier_schedule,
    solve_core_times,
    solve_core_times_batched,
)
from .trace import UETrace, access_summary, characterize_partition

__all__ = [
    "BCSRTimingResult",
    "run_bcsr_timing",
    "Campaign",
    "CampaignContext",
    "CampaignPoint",
    "CampaignWorkerCrash",
    "result_record",
    "fault_tolerant_record",
    "run_campaign_point",
    "iter_ordered",
    "parallel_map",
    "QuarantinedTaskError",
    "SupervisePolicy",
    "TaskOutcome",
    "supervised_iter_ordered",
    "supervised_parallel_map",
    "DEFAULT_MODE",
    "chip_diagram",
    "csr_example",
    "mapping_diagram",
    "COMPARISON_SYSTEMS",
    "ArchitectureModel",
    "comparison_table",
    "DEFAULT_ITERATIONS",
    "ExperimentResult",
    "FaultTolerantResult",
    "ResultBase",
    "SpMVExperiment",
    "suite_experiments",
    "MatrixPoint",
    "SCCRoofline",
    "locate_matrix",
    "EffectSet",
    "measure_effects",
    "sensitivity_sweep",
    "MAPPINGS",
    "distance_reduction_mapping",
    "get_mapping",
    "single_core_at_distance",
    "standard_mapping",
    "average_gflops",
    "average_mflops_per_watt",
    "geomean_gflops",
    "parallel_efficiency",
    "speedup",
    "speedup_series",
    "banner",
    "format_series",
    "format_table",
    "CoreTiming",
    "barrier_exit_times",
    "barrier_schedule",
    "resolve_barrier_schedule",
    "solve_core_times",
    "solve_core_times_batched",
    "UETrace",
    "access_summary",
    "characterize_partition",
]
