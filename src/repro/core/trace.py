"""Per-UE characterization of the CSR SpMV access stream.

For each unit of execution's row block, the kernel of Fig. 2 touches:

==========  ============================  ==========================
array        bytes per iteration           pattern
==========  ============================  ==========================
``da``       8 * nnz_u                     unit-stride stream
``index``    4 * nnz_u                     unit-stride stream
``ptr``      4 * rows_u                    unit-stride stream
``y``        8 * rows_u                    unit-stride stream (store)
``x``        8 * nnz_u *touches*           irregular gather
==========  ============================  ==========================

The four streams have trivially predictable cache behaviour (one L1
miss per line per iteration; resident across iterations only if the
whole working set fits).  The ``x`` gather is characterized with the
footprint locality model (:mod:`repro.scc.locality`) evaluated at L1
and L2 capacity.  Streams and gather compete for L2 space; following
the classic shared-cache approximation we charge the gather an
``x_capacity_fraction`` of each level (default 0.5 — ablated in
``benchmarks/test_ablation_locality.py``).

:func:`characterize_partition` produces one :class:`UETrace` per UE;
:func:`access_summary` converts a trace into the
:class:`~repro.scc.core_model.AccessSummary` consumed by the timing
model, applying the experiment's iteration count, kernel variant and
L2 on/off switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..scc.core_model import AccessSummary
from ..scc.locality import miss_ratio_curve
from ..scc.params import CACHE_LINE_BYTES, L1D_BYTES, L2_BYTES
from ..sparse.csr import CSRMatrix
from ..sparse.partition import RowPartition

__all__ = ["UETrace", "characterize_partition", "access_summary"]

#: fraction of each cache level the x gather effectively owns while the
#: four streams flow through the remainder.
DEFAULT_X_CAPACITY_FRACTION = 0.5


def _stream_lines(nbytes: int, line_bytes: int) -> int:
    """Cache lines a contiguous nbytes stream occupies (worst alignment)."""
    if nbytes == 0:
        return 0
    return nbytes // line_bytes + 1


@dataclass(frozen=True)
class UETrace:
    """Per-iteration cache events of one UE's row block."""

    ue: int
    nnz: int
    rows: int
    #: L1 miss lines per iteration from the four unit-stride streams.
    stream_lines: int
    #: distinct lines across streams + gather (cold misses, iteration 1).
    distinct_lines: int
    #: gather misses per iteration at L1 capacity (go to L2 or memory).
    x_l1_misses: float
    #: gather misses per iteration at L2 capacity (go to memory).
    x_l2_misses: float
    #: distinct x lines the block touches.
    x_distinct_lines: int
    #: bytes of the block's working set (streams + x footprint).
    ws_bytes: int


def characterize_partition(
    a: CSRMatrix,
    partition: RowPartition,
    line_bytes: int = CACHE_LINE_BYTES,
    l1_bytes: int = L1D_BYTES,
    l2_bytes: int = L2_BYTES,
    x_capacity_fraction: float = DEFAULT_X_CAPACITY_FRACTION,
) -> List[UETrace]:
    """Analyze every UE's access stream of one balanced row partition."""
    if not 0.0 < x_capacity_fraction <= 1.0:
        raise ValueError(f"x_capacity_fraction must be in (0, 1], got {x_capacity_fraction}")
    x_l1_capacity = l1_bytes * x_capacity_fraction / line_bytes
    x_l2_capacity = l2_bytes * x_capacity_fraction / line_bytes
    doubles_per_line = line_bytes // 8

    traces: List[UETrace] = []
    for ue, (r0, r1) in enumerate(partition.ranges()):
        lo, hi = int(a.ptr[r0]), int(a.ptr[r1])
        nnz_u = hi - lo
        rows_u = r1 - r0
        stream = (
            _stream_lines(8 * nnz_u, line_bytes)      # da
            + _stream_lines(4 * nnz_u, line_bytes)    # index
            + _stream_lines(4 * rows_u, line_bytes)   # ptr
            + _stream_lines(8 * rows_u, line_bytes)   # y
        )
        if nnz_u:
            x_lines = a.index[lo:hi] // doubles_per_line
            mrc = miss_ratio_curve(x_lines)
            x_distinct = mrc.profile.n_lines
            # Steady-state per-iteration misses: capacity misses plus the
            # cold set, which re-misses every iteration unless resident.
            x_l1 = float(mrc.misses(x_l1_capacity))
            x_l2 = float(mrc.misses(x_l2_capacity))
        else:
            x_distinct = 0
            x_l1 = x_l2 = 0.0
        ws = 12 * nnz_u + 12 * rows_u + 4 + x_distinct * line_bytes
        traces.append(
            UETrace(
                ue=ue,
                nnz=nnz_u,
                rows=rows_u,
                stream_lines=stream,
                distinct_lines=stream + x_distinct,
                x_l1_misses=x_l1,
                x_l2_misses=x_l2,
                x_distinct_lines=x_distinct,
                ws_bytes=ws,
            )
        )
    return traces


def access_summary(
    trace: UETrace,
    iterations: int,
    l2_enabled: bool = True,
    no_x_miss: bool = False,
    l2_bytes: int = L2_BYTES,
) -> AccessSummary:
    """Fold a per-iteration trace into totals for ``iterations`` SpMVs.

    Three regimes (paper Sec. IV-B):

    - **L2-resident** (working set <= L2): only the first iteration
      misses to memory; later iterations turn every L1 miss into an L2
      hit.
    - **Streaming** (working set > L2): the streams miss to memory every
      iteration; gather accesses that fit L2 but not L1 are L2 hits.
    - **L2 disabled** (Fig. 7): every L1 miss pays the memory latency.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    x_l1 = 0.0 if no_x_miss else trace.x_l1_misses
    x_l2 = 0.0 if no_x_miss else trace.x_l2_misses
    x_cold = 0 if no_x_miss else trace.x_distinct_lines
    cold = trace.stream_lines + x_cold  # distinct lines ~ cold misses

    if not l2_enabled:
        mem = (trace.stream_lines + x_l1) * iterations
        l2_hits = 0.0
    elif trace.ws_bytes <= l2_bytes:
        # Warm after the first pass: cold misses once, L2 hits after.
        per_iter_l1_misses = trace.stream_lines + x_l1
        mem = float(cold)
        l2_hits = max(per_iter_l1_misses * iterations - cold, 0.0)
    else:
        mem = (trace.stream_lines + x_l2) * iterations
        l2_hits = max(x_l1 - x_l2, 0.0) * iterations

    return AccessSummary(
        nnz=trace.nnz,
        rows=trace.rows,
        iterations=iterations,
        l2_hits=l2_hits,
        l2_misses=mem,
    )
