"""Aggregate metrics over experiment results.

The paper reports suite-wide *average* MFLOPS/s per configuration and
speedups of one configuration over another; these helpers compute both
plus the load-balance and efficiency numbers used in the analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .experiment import ResultBase

__all__ = [
    "average_gflops",
    "geomean_gflops",
    "speedup",
    "speedup_series",
    "average_mflops_per_watt",
    "parallel_efficiency",
]


def _check_nonempty(results: Sequence[ResultBase]) -> None:
    if not results:
        raise ValueError("results must be non-empty")


def average_gflops(results: Sequence[ResultBase]) -> float:
    """Arithmetic mean GFLOPS/s (the paper's headline aggregate)."""
    _check_nonempty(results)
    return float(np.mean([r.gflops for r in results]))


def geomean_gflops(results: Sequence[ResultBase]) -> float:
    """Geometric mean GFLOPS/s (robust to the suite's heavy spread)."""
    _check_nonempty(results)
    vals = np.array([r.gflops for r in results])
    if np.any(vals <= 0):
        raise ValueError("geometric mean requires positive throughputs")
    return float(np.exp(np.log(vals).mean()))


def speedup(fast: ResultBase, slow: ResultBase) -> float:
    """Time ratio slow/fast of two runs of the same workload."""
    if (fast.matrix_name, fast.nnz, fast.iterations) != (
        slow.matrix_name,
        slow.nnz,
        slow.iterations,
    ):
        raise ValueError(
            "speedup compares runs of the same matrix and iteration count; got "
            f"{fast.matrix_name!r} x{fast.iterations} vs {slow.matrix_name!r} x{slow.iterations}"
        )
    return slow.makespan / fast.makespan


def speedup_series(
    fast: Sequence[ResultBase],
    slow: Sequence[ResultBase],
) -> List[float]:
    """Element-wise speedups of two equally long result series."""
    if len(fast) != len(slow):
        raise ValueError(f"series lengths differ: {len(fast)} vs {len(slow)}")
    return [speedup(f, s) for f, s in zip(fast, slow)]


def average_mflops_per_watt(results: Sequence[ExperimentResult]) -> float:
    """Mean suite MFLOPS/s divided by the (common) full-system wattage."""
    _check_nonempty(results)
    watts = {r.power_watts for r in results}
    if len(watts) != 1:
        raise ValueError(f"results span multiple power states: {sorted(watts)}")
    return float(np.mean([r.mflops for r in results])) / watts.pop()


def parallel_efficiency(results_by_cores: Dict[int, ResultBase]) -> Dict[int, float]:
    """Speedup over the 1-core run divided by core count."""
    if not results_by_cores:
        raise ValueError("results must be non-empty")
    if 1 not in results_by_cores:
        raise ValueError("need the 1-core run as the efficiency baseline")
    base = results_by_cores[1].makespan
    return {
        n: (base / r.makespan) / n
        for n, r in sorted(results_by_cores.items())
    }
