"""Self-healing supervised execution: retry, timeout, quarantine.

The paper's artifacts are hours-long sweeps — the full matrix suite
crossed with 1–48 cores, mappings and frequency configs — and a single
crashed or hung worker must not abort a campaign.  The bare pool in
:mod:`repro.core.parallel` surfaces any worker death as
:class:`~repro.core.parallel.CampaignWorkerCrash` and tears the sweep
down; this module wraps the same fork-based sharding in a *supervisor*
that keeps the campaign running through real failures:

- **timeouts** — each task carries a wall-clock deadline; a hung worker
  (SIGSTOP'd, livelocked, wedged in a syscall) is SIGKILLed at the
  deadline and a fresh worker is forked in its place;
- **retries** — a failed attempt (worker death, timeout, or an
  unexpected exception) is retried up to
  :attr:`SupervisePolicy.max_retries` times with bounded exponential
  backoff plus *deterministic* jitter — the delay is a pure function of
  ``(seed, task identity, attempt)``, so a replayed campaign produces a
  byte-identical retry schedule;
- **quarantine** — a task that fails every attempt (a *poison point*)
  is reported as a structured :class:`TaskOutcome` with reason,
  attempt count and tracebacks instead of killing the sweep; callers
  (``Campaign``) persist it as a ``status: "quarantined"`` record that
  resume treats as retryable;
- **degradation** — before quarantining, the supervisor walks an
  optional fallback ladder (e.g. rerun serially in the parent, then on
  ``mode="model"``) supplied by the caller and selected via
  ``--on-failure``.

Workers talk to the supervisor over one private pipe each — never a
shared queue — so a SIGKILLed worker can corrupt only its own channel,
which the supervisor observes as EOF and handles like any other death.
Results are yielded in submission order with a bounded in-flight
window, preserving the bitwise serial≡parallel contract of
:mod:`repro.core.parallel`.

Chaos hook: :data:`CHAOS_ENV` generalizes the single-identity
``REPRO_FAULT_WORKER_CRASH`` crash hook to a *seeded fault schedule* —
a JSON map from task identity to an OS-level action (``kill``: abrupt
``os._exit``; ``stop``: SIGSTOP yourself and hang; ``raise``: throw)
applied on selected attempts.  ``repro chaos``
(:mod:`repro.faults.chaos`) uses it to prove the core invariant: under
any chaos schedule the surviving records are bitwise identical to the
clean run and the quarantined set is exactly the injected poison set.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import signal
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..obs.metrics import MetricsRegistry
from .parallel import available_parallelism, fork_context, in_worker, maybe_crash

__all__ = [
    "CHAOS_ENV",
    "CHAOS_ACTIONS",
    "ON_FAILURE_LADDER",
    "ChaosInjectedError",
    "QuarantinedTaskError",
    "SupervisePolicy",
    "TaskFailure",
    "TaskOutcome",
    "backoff_delay",
    "chaos_spec",
    "maybe_chaos",
    "supervised_iter_ordered",
    "supervised_parallel_map",
]

#: environment variable holding a JSON chaos schedule: a map from task
#: identity to ``{"action": "kill"|"stop"|"raise", "attempts": [1, ...]
#: | "all"}``.  Honoured only inside worker processes, like the legacy
#: single-identity ``REPRO_FAULT_WORKER_CRASH`` hook it generalizes.
CHAOS_ENV = "REPRO_FAULT_CHAOS"

#: the OS-level actions a chaos schedule may request per attempt.
CHAOS_ACTIONS = ("kill", "stop", "raise")

#: the graceful-degradation ladder selectable via ``--on-failure``:
#: ``quarantine`` records the poison point and continues; ``serial``
#: retries once in the parent process first; ``model`` additionally
#: retries on the analytic fast path; ``raise`` aborts the sweep.
ON_FAILURE_LADDER = ("quarantine", "serial", "model", "raise")

#: worker exit code used by the ``kill`` chaos action (distinct from the
#: legacy crash hook's 17, so post-mortems can tell them apart).
_CHAOS_EXIT = 23


class ChaosInjectedError(RuntimeError):
    """Raised inside a worker by the ``raise`` chaos action."""


class QuarantinedTaskError(RuntimeError):
    """A task exhausted every attempt and the caller chose to abort.

    Carries the full :class:`TaskOutcome` so the caller can inspect the
    per-attempt failure history.
    """

    def __init__(self, outcome: "TaskOutcome") -> None:
        self.outcome = outcome
        last = outcome.failures[-1] if outcome.failures else None
        super().__init__(
            f"task {outcome.identity!r} failed all {outcome.attempts} attempt(s)"
            + (f"; last failure: {last.kind}" if last else "")
        )


@dataclass(frozen=True)
class SupervisePolicy:
    """Retry/timeout/backoff knobs of the supervised executor.

    The backoff delay before retry attempt ``k`` (the k-th attempt
    overall, k >= 2) is ``min(backoff_max, backoff_base *
    backoff_factor**(k-2))`` scaled by ``1 + backoff_jitter * u`` where
    ``u`` is a deterministic uniform draw from ``(seed, identity, k)``
    — seeded jitter, so retry schedules replay byte-identically.
    """

    #: wall-clock seconds a single attempt may take before the worker is
    #: SIGKILLed and the attempt counts as a timeout (None = no limit,
    #: hung workers are then indistinguishable from slow ones).
    task_timeout: Optional[float] = None
    #: retries after the first attempt; a task is quarantined after
    #: ``max_retries + 1`` failed attempts.
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    #: jitter fraction in [0, 1]: the delay is stretched by up to this
    #: fraction, deterministically per (seed, identity, attempt).
    backoff_jitter: float = 0.25
    #: seed of the deterministic jitter stream.
    seed: int = 0
    #: what to do when a task exhausts every attempt (see
    #: :data:`ON_FAILURE_LADDER`); callers translate ``serial``/``model``
    #: into a concrete fallback ladder.
    on_failure: str = "quarantine"

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base and backoff_max must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}")
        if self.on_failure not in ON_FAILURE_LADDER:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_LADDER}, got {self.on_failure!r}"
            )

    @property
    def max_attempts(self) -> int:
        """Total in-pool attempts before the fallback ladder/quarantine."""
        return self.max_retries + 1


def backoff_delay(policy: SupervisePolicy, identity: str, attempt: int) -> float:
    """Deterministic backoff before ``attempt`` (attempt >= 2) of a task.

    A pure function of ``(policy, identity, attempt)``: bounded
    exponential growth with seeded jitter, so a replayed campaign waits
    exactly the same schedule.
    """
    base = policy.backoff_base * policy.backoff_factor ** max(0, attempt - 2)
    delay = min(policy.backoff_max, base)
    if policy.backoff_jitter and delay > 0.0:
        digest = hashlib.sha256(
            f"{policy.seed}:{identity}:{attempt}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0**64
        delay *= 1.0 + policy.backoff_jitter * u
    return delay


@dataclass
class TaskFailure:
    """One failed attempt of a supervised task."""

    attempt: int
    kind: str  #: ``crash`` | ``timeout`` | ``error`` | ``fallback:<label>``
    detail: str  #: exit description or formatted traceback


@dataclass
class TaskOutcome:
    """What became of one supervised task, success or quarantine."""

    item: Any
    identity: str
    ok: bool
    value: Any = None
    attempts: int = 0
    failures: List[TaskFailure] = field(default_factory=list)
    #: label of the fallback rung that rescued the task, if any.
    fallback: Optional[str] = None

    @property
    def retries(self) -> int:
        """In-pool attempts beyond the first."""
        return max(0, self.attempts - 1)

    def failure_kinds(self) -> Dict[str, int]:
        """Failure count per kind (``crash``/``timeout``/``error``/...).

        The evidence a health board wants from an outcome: like the
        simulated :class:`repro.faults.reliable.FailureDetector`, this
        reports only *observed* deaths and hangs — there is no
        heartbeat guessing, so a nonzero count is authoritative.  The
        campaign server's per-pool worker health view is built from
        these.
        """
        counts: Dict[str, int] = {}
        for f in self.failures:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return dict(sorted(counts.items()))

    def quarantine_record(self) -> Dict[str, Any]:
        """The structured ``status: "quarantined"`` record body."""
        reason = self.failures[-1].kind if self.failures else "error"
        return {
            "status": "quarantined",
            "reason": reason,
            "attempts": self.attempts,
            "tracebacks": [
                f"attempt {f.attempt} [{f.kind}]: {f.detail}" for f in self.failures
            ],
        }


# -- chaos schedule hook ---------------------------------------------------

_CHAOS_CACHE: Tuple[Optional[str], Dict[str, Dict[str, Any]]] = (None, {})


def chaos_spec() -> Dict[str, Dict[str, Any]]:
    """The parsed :data:`CHAOS_ENV` schedule (cached per env value)."""
    global _CHAOS_CACHE
    raw = os.environ.get(CHAOS_ENV)
    if raw == _CHAOS_CACHE[0]:
        return _CHAOS_CACHE[1]
    spec: Dict[str, Dict[str, Any]] = {}
    if raw:
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict):
            spec = {
                str(key): entry for key, entry in obj.items() if isinstance(entry, dict)
            }
    _CHAOS_CACHE = (raw, spec)
    return spec


def maybe_chaos(identity: str, attempt: int) -> None:
    """Apply the scheduled chaos action for this (task, attempt), if any.

    Only active inside worker processes — the supervisor itself is never
    a chaos target.  ``kill`` dies abruptly (skipping all finalizers,
    like a kernel OOM kill), ``stop`` SIGSTOPs the worker so it hangs
    until the supervisor's deadline SIGKILLs it, ``raise`` throws
    :class:`ChaosInjectedError` through the task function.
    """
    if not in_worker():
        return
    entry = chaos_spec().get(identity)
    if not entry:
        return
    attempts = entry.get("attempts", "all")
    if attempts != "all" and attempt not in attempts:
        return
    action = entry.get("action")
    if action == "kill":
        os._exit(_CHAOS_EXIT)
    elif action == "stop":
        os.kill(os.getpid(), signal.SIGSTOP)
    elif action == "raise":
        raise ChaosInjectedError(
            f"chaos schedule injected a failure for {identity!r} (attempt {attempt})"
        )


# -- the supervised pool ---------------------------------------------------

_T = TypeVar("_T")

#: supervisor poll granularity: the longest the parent sleeps before
#: re-checking deadlines even when no worker has reported.
_POLL_S = 0.1


def _worker_main(
    func: Callable[[Any], Any],
    identity_of: Callable[[Any], str],
    conn: Any,
) -> None:
    """Worker loop: recv ``(task_id, attempt, item)``, send the outcome.

    Runs in a forked child, so ``func``/``identity_of`` arrive by
    inheritance (no pickling).  Any exception — including injected chaos
    — is reported as a formatted traceback; an abrupt death is seen by
    the supervisor as EOF on this worker's private pipe.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        task_id, attempt, item = msg
        try:
            identity = identity_of(item)
            maybe_crash(identity)  # legacy single-identity hook
            maybe_chaos(identity, attempt)
            value = func(item)
        except BaseException:  # noqa: BLE001 - report, never die silently
            payload = (task_id, False, traceback.format_exc())
        else:
            payload = (task_id, True, value)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One supervised child process with its private duplex pipe."""

    def __init__(self, ctx, func, identity_of) -> None:
        self._ctx = ctx
        self._func = func
        self._identity_of = identity_of
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main, args=(func, identity_of, child_conn), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[int] = None
        self.deadline: Optional[float] = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (works on SIGSTOP'd processes too)."""
        try:
            if self.process.pid is not None:
                os.kill(self.process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass
        self.process.join()
        try:
            self.conn.close()
        except OSError:
            pass

    def shutdown(self) -> None:
        """Polite stop: sentinel, short join, then force-kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


@dataclass
class _Task:
    item: Any
    identity: str
    attempts: int = 0
    failures: List[TaskFailure] = field(default_factory=list)


def supervised_iter_ordered(
    func: Callable[[_T], Any],
    items: Iterable[_T],
    workers: int,
    policy: Optional[SupervisePolicy] = None,
    *,
    identity: Callable[[_T], str] = str,
    fallbacks: Sequence[Tuple[str, Callable[[_T], Any]]] = (),
    metrics: Optional[MetricsRegistry] = None,
    window_factor: int = 4,
) -> Iterator[TaskOutcome]:
    """Yield a :class:`TaskOutcome` per item, in submission order.

    The self-healing analogue of
    :func:`repro.core.parallel.iter_ordered`: worker deaths, hangs and
    task exceptions are retried per ``policy`` instead of raising
    :class:`~repro.core.parallel.CampaignWorkerCrash`, and a task that
    exhausts every attempt (and every ``fallbacks`` rung, tried in the
    parent process) is yielded as a quarantined outcome — unless
    ``policy.on_failure == "raise"``, which raises
    :class:`QuarantinedTaskError`.

    At most ``window_factor * workers`` tasks are admitted beyond the
    oldest unyielded one, so arbitrarily long sweeps hold O(window)
    task state, and ``items`` may be a lazy iterable.  ``metrics``
    receives ``supervise.*`` counters: ``tasks``, ``retries``,
    ``timeouts``, ``worker_crashes``, ``respawns``, ``quarantines``,
    ``fallbacks`` and ``backoff_seconds``.

    Platforms without the ``fork`` start method degrade to an
    in-process loop with retry/fallback/quarantine semantics but no
    timeout enforcement (there is no worker to kill), with a warning.
    """
    policy = policy or SupervisePolicy()
    m = metrics if metrics is not None else MetricsRegistry()

    def count(name: str, amount: float = 1) -> None:
        m.counter(f"supervise.{name}").inc(amount)

    ctx = fork_context()
    if ctx is None:  # pragma: no cover - platform-dependent
        warnings.warn(
            "multiprocessing 'fork' start method unavailable; supervising "
            "in-process (retries apply, task timeouts cannot be enforced)",
            stacklevel=2,
        )
        yield from _serial_supervised(func, items, policy, identity, fallbacks, count)
        return

    n_workers = max(1, min(workers, available_parallelism()))
    window = max(2, window_factor * n_workers)
    it = iter(items)
    tasks: Dict[int, _Task] = {}
    results: Dict[int, TaskOutcome] = {}
    ready: deque = deque()
    delayed: List[Tuple[float, int]] = []
    next_id = 0
    next_emit = 0
    exhausted = False
    pool: List[_Worker] = []

    def respawn(w: _Worker) -> _Worker:
        count("respawns")
        w.kill()
        fresh = _Worker(ctx, func, identity)
        pool[pool.index(w)] = fresh
        return fresh

    def complete(task_id: int, outcome: TaskOutcome) -> None:
        results[task_id] = outcome
        del tasks[task_id]

    def exhausted_task(task_id: int) -> None:
        t = tasks[task_id]
        for label, fb in fallbacks:
            try:
                value = fb(t.item)
            except Exception:  # noqa: BLE001 - every rung may fail
                t.failures.append(
                    TaskFailure(t.attempts, f"fallback:{label}", traceback.format_exc())
                )
                continue
            count("fallbacks")
            complete(
                task_id,
                TaskOutcome(
                    t.item, t.identity, ok=True, value=value,
                    attempts=t.attempts, failures=t.failures, fallback=label,
                ),
            )
            return
        count("quarantines")
        outcome = TaskOutcome(
            t.item, t.identity, ok=False,
            attempts=t.attempts, failures=t.failures,
        )
        if policy.on_failure == "raise":
            raise QuarantinedTaskError(outcome)
        complete(task_id, outcome)

    def failure(task_id: int, kind: str, detail: str) -> None:
        t = tasks[task_id]
        t.failures.append(TaskFailure(t.attempts, kind, detail))
        if t.attempts >= policy.max_attempts:
            exhausted_task(task_id)
        else:
            count("retries")
            delay = backoff_delay(policy, t.identity, t.attempts + 1)
            count("backoff_seconds", delay)
            heapq.heappush(delayed, (time.monotonic() + delay, task_id))

    def handle_report(w: _Worker) -> None:
        task_id = w.task
        try:
            reported_id, ok, payload = w.conn.recv()
        except (EOFError, OSError):
            # The worker died abruptly (SIGKILL, os._exit, segfault) —
            # possibly mid-send, which corrupts only its private pipe.
            count("worker_crashes")
            respawn(w)
            if task_id is not None and task_id in tasks:
                failure(
                    task_id,
                    "crash",
                    f"worker process died abruptly (exitcode "
                    f"{w.process.exitcode})",
                )
            return
        w.task = None
        w.deadline = None
        if reported_id not in tasks:  # late report for a timed-out task
            return
        if ok:
            t = tasks[reported_id]
            complete(
                reported_id,
                TaskOutcome(
                    t.item, t.identity, ok=True, value=payload,
                    attempts=t.attempts, failures=t.failures,
                ),
            )
        else:
            failure(reported_id, "error", payload)

    try:
        pool = [_Worker(ctx, func, identity) for _ in range(n_workers)]
        while True:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, task_id = heapq.heappop(delayed)
                ready.append(task_id)
            while not exhausted and (next_id - next_emit) < window:
                try:
                    item = next(it)
                except StopIteration:
                    exhausted = True
                    break
                tasks[next_id] = _Task(item=item, identity=identity(item))
                ready.append(next_id)
                count("tasks")
                next_id += 1
            for w in pool:
                if not ready:
                    break
                if w.task is not None:
                    continue
                if not w.alive():
                    count("worker_crashes")
                    w = respawn(w)
                task_id = ready.popleft()
                t = tasks[task_id]
                t.attempts += 1
                w.task = task_id
                w.deadline = (
                    now + policy.task_timeout if policy.task_timeout else None
                )
                try:
                    w.conn.send((task_id, t.attempts, t.item))
                except (BrokenPipeError, OSError):
                    count("worker_crashes")
                    w = respawn(w)
                    w.task = task_id
                    w.deadline = (
                        now + policy.task_timeout if policy.task_timeout else None
                    )
                    w.conn.send((task_id, t.attempts, t.item))
            while next_emit in results:
                yield results.pop(next_emit)
                next_emit += 1
            if exhausted and not tasks and next_emit == next_id:
                return
            timeout = _POLL_S
            for w in pool:
                if w.task is not None and w.deadline is not None:
                    timeout = min(timeout, max(0.0, w.deadline - now))
            if delayed:
                timeout = min(timeout, max(0.0, delayed[0][0] - now))
            busy = [w for w in pool if w.task is not None]
            if busy:
                reported = _wait_connections([w.conn for w in busy], timeout)
                for w in list(busy):
                    if w.conn in reported:
                        handle_report(w)
            elif delayed:
                time.sleep(max(0.0, min(timeout, delayed[0][0] - now)))
            now = time.monotonic()
            for w in list(pool):
                if w.task is None:
                    continue
                if w.deadline is not None and now >= w.deadline:
                    task_id = w.task
                    count("timeouts")
                    respawn(w)
                    failure(
                        task_id,
                        "timeout",
                        f"attempt exceeded task_timeout="
                        f"{policy.task_timeout}s; worker SIGKILLed",
                    )
                elif not w.alive():
                    task_id = w.task
                    count("worker_crashes")
                    exitcode = w.process.exitcode
                    respawn(w)
                    failure(
                        task_id,
                        "crash",
                        f"worker process died abruptly (exitcode {exitcode})",
                    )
    finally:
        for w in pool:
            if w.task is not None:
                w.kill()
            else:
                w.shutdown()


def _serial_supervised(
    func, items, policy, identity, fallbacks, count
) -> Iterator[TaskOutcome]:
    """Fork-less fallback: in-process retries, no timeout enforcement."""
    for item in items:
        ident = identity(item)
        count("tasks")
        failures: List[TaskFailure] = []
        outcome: Optional[TaskOutcome] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                count("retries")
                delay = backoff_delay(policy, ident, attempt)
                count("backoff_seconds", delay)
                time.sleep(delay)
            try:
                value = func(item)
            except Exception:  # noqa: BLE001
                failures.append(TaskFailure(attempt, "error", traceback.format_exc()))
                continue
            outcome = TaskOutcome(
                item, ident, ok=True, value=value, attempts=attempt, failures=failures
            )
            break
        if outcome is None:
            attempts = policy.max_attempts
            for label, fb in fallbacks:
                try:
                    value = fb(item)
                except Exception:  # noqa: BLE001
                    failures.append(
                        TaskFailure(attempts, f"fallback:{label}", traceback.format_exc())
                    )
                    continue
                count("fallbacks")
                outcome = TaskOutcome(
                    item, ident, ok=True, value=value, attempts=attempts,
                    failures=failures, fallback=label,
                )
                break
        if outcome is None:
            count("quarantines")
            outcome = TaskOutcome(
                item, ident, ok=False, attempts=policy.max_attempts, failures=failures
            )
            if policy.on_failure == "raise":
                raise QuarantinedTaskError(outcome)
        yield outcome


def supervised_parallel_map(
    func: Callable[[_T], Any],
    items: Iterable[_T],
    workers: int,
    policy: Optional[SupervisePolicy] = None,
    *,
    identity: Callable[[_T], str] = str,
    fallbacks: Sequence[Tuple[str, Callable[[_T], Any]]] = (),
    metrics: Optional[MetricsRegistry] = None,
) -> List[Any]:
    """Order-preserving supervised map; raises on any quarantined task.

    Figure sweeps cannot tolerate holes — every grid point feeds an
    average — so a task that survives neither the retries nor the
    fallback ladder raises :class:`QuarantinedTaskError` here regardless
    of ``policy.on_failure``.
    """
    out: List[Any] = []
    for outcome in supervised_iter_ordered(
        func, items, workers, policy,
        identity=identity, fallbacks=fallbacks, metrics=metrics,
    ):
        if not outcome.ok:
            raise QuarantinedTaskError(outcome)
        out.append(outcome.value)
    return out
