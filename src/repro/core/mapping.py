"""Mapping units of execution to physical cores (paper Sec. IV-A).

Two policies from the paper:

- **standard** — RCCE's default: UE rank k runs on core k (Fig. 4a).
  Oblivious to memory distance; with 4 UEs it picks cores 0,1,2,3.
- **distance_reduction** — the paper's proposal (Fig. 4b): fill the
  job from the cores *closest to their memory controller*.  With 4 UEs
  it picks cores 0,1,10,11 (the hop-0 tiles of the two lower
  quadrants).

Both return explicit core lists consumable by
:class:`~repro.rcce.runtime.RCCERuntime`.  ``single_core_at_distance``
supports the Fig. 3 single-core hop sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..machine.base import Topology
from ..scc.topology import N_CORES, SCCTopology

__all__ = [
    "standard_mapping",
    "distance_reduction_mapping",
    "single_core_at_distance",
    "MAPPINGS",
    "get_mapping",
]


def _check_n(n_ues: int, topology: Optional[Topology] = None) -> None:
    limit = topology.n_cores if topology is not None else N_CORES
    if not 1 <= n_ues <= limit:
        raise ValueError(f"n_ues must be in [1, {limit}], got {n_ues}")


def standard_mapping(n_ues: int, topology: Optional[Topology] = None) -> List[int]:
    """RCCE default: rank == core id."""
    _check_n(n_ues, topology)
    return list(range(n_ues))


def distance_reduction_mapping(n_ues: int, topology: Optional[Topology] = None) -> List[int]:
    """Paper's proposal: cores sorted by (hops to their MC, core id)."""
    _check_n(n_ues, topology)
    topo = topology or SCCTopology()
    return list(topo.cores_by_distance()[:n_ues])


def single_core_at_distance(hops: int, topology: Optional[Topology] = None) -> List[int]:
    """A one-core map whose core sits ``hops`` from its MC (Fig. 3)."""
    topo = topology or SCCTopology()
    cores = topo.cores_at_distance(hops)
    if not cores:
        raise ValueError(
            f"no core is {hops} hops from its memory controller "
            f"(valid distances: {sorted(topo.distance_histogram())})"
        )
    return [cores[0]]


MAPPINGS: Dict[str, Callable[..., List[int]]] = {
    "standard": standard_mapping,
    "distance_reduction": distance_reduction_mapping,
}


def get_mapping(name: str) -> Callable[..., List[int]]:
    """Look up a mapping policy by name; raises KeyError if unknown."""
    try:
        return MAPPINGS[name]
    except KeyError:
        raise KeyError(f"unknown mapping {name!r}; choose from {sorted(MAPPINGS)}") from None
