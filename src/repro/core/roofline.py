"""Roofline model of the SCC itself.

The Fig. 10 comparison uses rooflines for the *competitor* systems;
this module builds the same model for the SCC so the suite's matrices
can be located against the chip's own ceilings (the analysis style of
Williams et al., whose optimization work the paper discusses in
Sec. V):

- compute ceiling: one FP multiply-add pair every
  ``base_cycles_per_nnz`` on each of the P54C cores in play;
- bandwidth ceiling: the aggregate sustained bandwidth of the memory
  controllers actually reachable from the mapped cores;
- per-matrix **arithmetic intensity** (flops per byte of memory
  traffic) from the same access characterization the timing model uses.

``attainable_gflops`` is the classic ``min(peak, AI * BW)`` and
:func:`locate_matrix` reports where a matrix sits and which ceiling
binds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..scc.chip import CONF0, SCCConfig
from ..scc.memory import MemorySystem
from ..scc.params import CACHE_LINE_BYTES, DEFAULT_TIMING, P54CTimingParams
from ..scc.topology import SCCTopology
from .trace import UETrace, access_summary

__all__ = ["SCCRoofline", "MatrixPoint", "locate_matrix"]


@dataclass(frozen=True)
class MatrixPoint:
    """One matrix located on the roofline."""

    name: str
    arithmetic_intensity: float   # flops / byte of memory traffic
    attainable_gflops: float
    bound: str                    # 'memory' or 'compute'


class SCCRoofline:
    """Compute/bandwidth ceilings of an SCC job."""

    def __init__(
        self,
        config: SCCConfig = CONF0,
        core_map: Sequence[int] = tuple(range(48)),
        topology: SCCTopology | None = None,
        timing: P54CTimingParams = DEFAULT_TIMING,
    ) -> None:
        if not core_map:
            raise ValueError("core_map must name at least one core")
        self.config = config
        self.core_map = list(core_map)
        self.topology = topology or SCCTopology()
        self.timing = timing
        self.mem = MemorySystem(self.topology, mem_mhz=config.mem_mhz)

    @property
    def peak_gflops(self) -> float:
        """Kernel-attainable compute ceiling of the mapped cores.

        2 flops per ``base_cycles_per_nnz`` — the SpMV inner loop's
        issue-limited rate, not the marketing FP peak.
        """
        total = 0.0
        for core in self.core_map:
            mhz = self.config.core_mhz_of_core(core)
            total += 2.0 * mhz * 1e6 / self.timing.base_cycles_per_nnz
        return total / 1e9

    @property
    def bandwidth_gbs(self) -> float:
        """Aggregate sustained bandwidth of the controllers in use."""
        mcs = {self.topology.mc_index_of_core(c) for c in self.core_map}
        return sum(self.mem.controllers[i].bandwidth for i in mcs) / 1e9

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity where the two ceilings meet (flops/byte)."""
        return self.peak_gflops / self.bandwidth_gbs

    def attainable_gflops(self, arithmetic_intensity: float) -> float:
        """min(compute ceiling, AI * bandwidth ceiling)."""
        if arithmetic_intensity <= 0:
            raise ValueError(
                f"arithmetic intensity must be positive, got {arithmetic_intensity}"
            )
        return min(self.peak_gflops, arithmetic_intensity * self.bandwidth_gbs)


def matrix_arithmetic_intensity(
    traces: Sequence[UETrace],
    iterations: int = 1,
    l2_enabled: bool = True,
) -> float:
    """Flops per byte of memory traffic for a partitioned matrix.

    Uses the same per-UE summaries as the timing model, so the roofline
    and the simulator agree on what 'traffic' means.
    """
    flops = 0
    bytes_moved = 0.0
    for t in traces:
        s = access_summary(t, iterations=iterations, l2_enabled=l2_enabled)
        flops += s.flops
        bytes_moved += s.l2_misses * CACHE_LINE_BYTES
    if bytes_moved <= 0:
        return float("inf")
    return flops / bytes_moved


def locate_matrix(
    name: str,
    traces: Sequence[UETrace],
    roofline: SCCRoofline,
    iterations: int = 1,
) -> MatrixPoint:
    """Place one partitioned matrix on the roofline."""
    ai = matrix_arithmetic_intensity(traces, iterations)
    if ai == float("inf"):
        return MatrixPoint(name, ai, roofline.peak_gflops, "compute")
    attainable = roofline.attainable_gflops(ai)
    bound = "compute" if ai >= roofline.ridge_point else "memory"
    return MatrixPoint(name, ai, attainable, bound)
