"""Process-pool execution primitives for campaigns and figure sweeps.

The paper's artifacts are embarrassingly parallel across grid points —
every (matrix, cores, config, mapping, kernel) point is an independent
deterministic computation — so the only work this module does is
*sharding without changing the answers*:

- results come back in **submission order**, whatever order workers
  finish in, so a parallel sweep appends records byte-identical to the
  serial one (``tests/test_golden.py`` pins this);
- the pool uses the ``fork`` start method — workers inherit the parent's
  loaded suite/caches for free and task functions only need picklable
  *arguments*.  Platforms without ``fork`` (Windows, some macOS
  configurations) degrade gracefully to the serial path with a warning;
- a worker that dies mid-task (OOM-killed, segfault, the deterministic
  :data:`CRASH_ENV` test hook) surfaces as :class:`CampaignWorkerCrash`
  *after* every already-finished in-order result has been handed to the
  caller, so a crashed campaign keeps its completed prefix on disk and
  resume reruns exactly the remainder — no duplicates, no gaps.

Task functions must be module-level (picklable) and take one argument;
bind fixed context with :func:`functools.partial`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple, TypeVar

__all__ = [
    "CRASH_ENV",
    "CampaignWorkerCrash",
    "available_parallelism",
    "fork_context",
    "in_worker",
    "iter_ordered",
    "parallel_map",
]

#: environment variable for deterministic worker-crash injection: set it
#: to a task's identity string (a :meth:`CampaignPoint.key`) and the
#: worker that picks that task up dies with ``os._exit`` before running
#: it — the same abrupt death a kernel OOM kill produces.  Only honoured
#: inside pool workers, never in the parent process.
CRASH_ENV = "REPRO_FAULT_WORKER_CRASH"


class CampaignWorkerCrash(RuntimeError):
    """A pool worker died abruptly; completed prefix already delivered.

    ``done`` results were yielded (and, for campaigns, persisted) before
    the crash; ``remaining`` tasks were never handed out or were lost
    with the pool.  Rerunning the same sweep resumes the remainder.
    """

    def __init__(self, done: int, remaining: int) -> None:
        self.done = done
        self.remaining = remaining
        super().__init__(
            f"worker process died abruptly after {done} completed task(s); "
            f"{remaining} task(s) not run — rerun to resume the remainder"
        )


def fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` start-method context, or None where unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return None


def in_worker() -> bool:
    """True when running inside a multiprocessing child process."""
    return multiprocessing.parent_process() is not None


def maybe_crash(identity: str) -> None:
    """Die abruptly if :data:`CRASH_ENV` names this task (workers only).

    ``os._exit`` skips every handler and finalizer — the parent sees the
    same broken pipe a SIGKILL would produce, which is exactly what the
    crash-resume tests need to exercise.
    """
    if os.environ.get(CRASH_ENV) == identity and in_worker():
        os._exit(17)


def available_parallelism() -> int:
    """Usable CPU count (>= 1)."""
    return max(1, os.cpu_count() or 1)


_T = TypeVar("_T")


def iter_ordered(
    func: Callable[[_T], Any],
    items: Iterable[_T],
    workers: int,
    *,
    window_factor: int = 4,
) -> Iterator[Tuple[_T, Any]]:
    """Yield ``(item, func(item))`` in submission order, ``workers`` wide.

    ``workers <= 1``, a single item, or a platform without ``fork`` all
    take the in-process serial path (the latter with a warning), so
    callers never need their own fallback.  On an abrupt worker death
    the already-completed in-order prefix is yielded first, then
    :class:`CampaignWorkerCrash` is raised.

    ``items`` may be an arbitrarily long lazy iterable: at most
    ``window_factor * workers`` tasks are in flight at once (submitted
    but not yet yielded), so neither all task arguments nor all pending
    results are ever held in memory at the same time.
    """
    stream = iter(items)
    head = list(itertools.islice(stream, 2))
    parallel = workers > 1 and len(head) > 1
    ctx = fork_context() if parallel else None
    if parallel and ctx is None:  # pragma: no cover - platform-dependent
        warnings.warn(
            "multiprocessing 'fork' start method unavailable on this "
            "platform; running serially",
            stacklevel=2,
        )
    if ctx is None:
        for item in itertools.chain(head, stream):
            yield item, func(item)
        return
    stream = itertools.chain(head, stream)
    n_workers = min(workers, available_parallelism())
    window = max(2, window_factor * n_workers)
    pending: deque = deque()  # (item, future), submission order
    done = 0
    exhausted = False
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
        while True:
            while not exhausted and len(pending) < window:
                try:
                    item = next(stream)
                except StopIteration:
                    exhausted = True
                    break
                try:
                    fut = pool.submit(func, item)
                except BrokenProcessPool as exc:
                    # The pool broke while earlier futures were still
                    # outstanding: hand the caller the completed
                    # in-order prefix before reporting the crash.
                    while pending:
                        qitem, qfut = pending[0]
                        if not qfut.done() or qfut.exception() is not None:
                            break
                        pending.popleft()
                        yield qitem, qfut.result()
                        done += 1
                    remaining = 1 + len(pending) + sum(1 for _ in stream)
                    raise CampaignWorkerCrash(done, remaining) from exc
                pending.append((item, fut))
            if not pending:
                return
            item, fut = pending.popleft()
            try:
                result = fut.result()
            except BrokenProcessPool as exc:
                remaining = 1 + len(pending) + sum(1 for _ in stream)
                raise CampaignWorkerCrash(done, remaining) from exc
            yield item, result
            done += 1


def parallel_map(
    func: Callable[[_T], Any],
    items: Iterable[_T],
    workers: int,
) -> List[Any]:
    """Order-preserving map over a worker pool (serial when ``workers<=1``)."""
    return [result for _item, result in iter_ordered(func, items, workers)]
