"""Experiment campaigns: grid sweeps with persistent, resumable results.

A reproduction is only useful if its numbers can be regenerated and
audited later.  :class:`Campaign` runs a cartesian grid of experiment
points — (matrix id, core count, config, mapping, kernel) — appending
one JSON record per completed point to ``<name>.jsonl``.  Reopening the
campaign skips points that are already on disk, so an interrupted sweep
resumes where it stopped, and the records feed any external analysis
without re-simulation.

Robustness contract (the parts a crashed or faulty sweep relies on):

- appends are flushed *and* fsynced per record, so a killed process
  loses at most the record being written;
- a truncated trailing line (the fsync race the previous rule cannot
  close) is tolerated on read — the point simply reruns on resume;
  corruption anywhere *else* is an integrity error and raises, pointing
  at :meth:`Campaign.repair`, which quarantines bad lines instead of
  deleting them;
- every record carries a ``status`` — points that exhaust their
  simulated-time budget (``point_budget``) or die on a runtime error
  are recorded as ``timeout`` / ``failed`` instead of aborting the
  sweep, and are *not* retried on resume (delete the record or repair
  to retry);
- with a ``fault_plan`` the sweep runs the fault-tolerant driver and
  records the fault/recovery counters per point;
- with a :class:`~repro.core.supervise.SupervisePolicy` the pool runs
  under the self-healing supervisor: worker deaths, hangs and task
  errors are retried with deterministic backoff, and a point that
  fails every attempt is recorded as ``quarantined`` (reason,
  attempts, tracebacks) — unlike ``timeout``/``failed``, a quarantined
  point *is* retryable: the next ``run`` reruns it and its successful
  record supersedes the quarantine marker.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from dataclasses import dataclass
from functools import partial
from itertools import product
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..machine.base import DEFAULT_MACHINE
from ..machine.registry import get_machine
from ..rcce.errors import RCCEBudgetExceededError, RCCEError
from ..sim import ProcessFailure, SimulationError
from ..sparse.suite import build_matrix, entry_by_id
from .experiment import (
    DEFAULT_ITERATIONS,
    MODES,
    ExperimentResult,
    FaultTolerantResult,
    SpMVExperiment,
)
from .parallel import CampaignWorkerCrash, iter_ordered, maybe_crash
from .supervise import SupervisePolicy, TaskOutcome, supervised_iter_ordered

__all__ = [
    "result_record",
    "fault_tolerant_record",
    "CampaignPoint",
    "CampaignContext",
    "Campaign",
    "CampaignIntegrityError",
    "CampaignWorkerCrash",
    "run_campaign_point",
    "validate_points",
]


class CampaignIntegrityError(ValueError):
    """A campaign file holds corrupt JSON away from the trailing edge."""

    def __init__(self, path: Path, lineno: int, detail: str) -> None:
        self.path = path
        self.lineno = lineno
        super().__init__(
            f"{path}:{lineno}: corrupt campaign record ({detail}); "
            f"run the repair path (CLI: `repro faults --repair {path}`, "
            f"API: Campaign.repair()) to quarantine bad lines"
        )


def result_record(r: ExperimentResult) -> dict:
    """Deprecated alias for :meth:`ExperimentResult.to_record`.

    The flattening now lives on the result itself (``r.to_record()``);
    this wrapper is kept so existing campaign/analysis code keeps
    working and will be removed in a future release.
    """
    warnings.warn(
        "result_record(r) is deprecated; call r.to_record() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return r.to_record()


def fault_tolerant_record(r: FaultTolerantResult) -> dict:
    """Deprecated alias for :meth:`FaultTolerantResult.to_record`."""
    warnings.warn(
        "fault_tolerant_record(r) is deprecated; call r.to_record() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return r.to_record()


@dataclass(frozen=True)
class CampaignPoint:
    """One grid point (hashable: used as the resume key)."""

    mid: int
    n_cores: int
    config: str
    mapping: str
    kernel: str
    #: machine registry id; "" inherits the campaign's machine.  Kept
    #: out of the default key so pre-zoo resume files stay valid.
    machine: str = ""

    def key(self) -> str:
        """Stable string identity used for resume bookkeeping."""
        base = f"{self.mid}:{self.n_cores}:{self.config}:{self.mapping}:{self.kernel}"
        return f"{base}:{self.machine}" if self.machine else base


@dataclass(frozen=True)
class CampaignContext:
    """Everything a worker process needs to execute one point.

    A picklable snapshot of the :class:`Campaign` knobs that affect a
    point's *result* (never its persistence), shipped to pool workers so
    :func:`run_campaign_point` computes identical records in any
    process.
    """

    scale: float
    iterations: int
    mode: str = "sim"
    point_budget: Optional[float] = None
    collect_metrics: bool = False
    fault_plan: Optional[object] = None
    #: default machine of points that don't pin one themselves.
    machine: str = DEFAULT_MACHINE


def _grid_fields(pt: CampaignPoint, machine_id: str) -> dict:
    """The identifying fields a failure record carries.

    ``machine`` appears only off the default machine so pre-zoo record
    bytes (the golden campaign fixture) are untouched.
    """
    fields = {
        "matrix": entry_by_id(pt.mid).name,
        "n_cores": pt.n_cores,
        "config": pt.config,
        "mapping": pt.mapping,
        "kernel": pt.kernel,
    }
    if machine_id != DEFAULT_MACHINE:
        fields["machine"] = machine_id
    return fields


def validate_points(
    points: Iterable[CampaignPoint],
    machine: str,
    mode: str,
    fault_plan: Optional[object] = None,
) -> List[CampaignPoint]:
    """Check every grid point against its machine before any work runs.

    ``machine`` is the default a point with ``machine=""`` inherits.
    Raises ``ValueError`` on an unknown config preset or a mode the
    point's machine cannot run (a ``fault_plan`` implies the
    event-driven driver, which validates its own mode), so a bad sweep
    fails at submission instead of producing a file of failure records.
    Shared by :meth:`Campaign.run` and the campaign server
    (:mod:`repro.serve`).  Returns the points as a list.
    """
    validated = []
    for pt in points:
        m = get_machine(pt.machine or machine)
        if pt.config not in m.presets:
            raise ValueError(
                f"unknown config {pt.config!r} for machine "
                f"{m.machine_id!r}; choose from {sorted(m.presets)}"
            )
        if fault_plan is None and not m.supports_mode(mode):
            raise ValueError(
                f"machine {m.machine_id!r} supports modes "
                f"{m.supported_modes}, but this campaign runs "
                f"mode={mode!r}"
            )
        validated.append(pt)
    return validated


def run_campaign_point(
    pt: CampaignPoint,
    ctx: CampaignContext,
    cache: Dict[Tuple[int, float, str], SpMVExperiment],
) -> dict:
    """Execute one grid point, mapping failures to structured records.

    Pure in ``(pt, ctx)`` — the ``cache`` only memoizes matrix builds
    within one process — so serial and parallel execution produce
    bitwise-identical records.
    """
    machine_id = pt.machine or ctx.machine
    exp = cache.get((pt.mid, ctx.scale, machine_id))
    if exp is None:
        entry = entry_by_id(pt.mid)
        exp = cache[(pt.mid, ctx.scale, machine_id)] = SpMVExperiment(
            build_matrix(pt.mid, scale=ctx.scale), name=entry.name, machine=machine_id
        )
    presets = exp.machine.presets
    tracer = None
    if ctx.collect_metrics:
        # categories=() drops every trace event but leaves the
        # metrics registry live: summaries without event overhead.
        from ..obs import Tracer

        tracer = Tracer(categories=())
    try:
        if ctx.fault_plan is not None:
            result = exp.run_fault_tolerant(
                n_cores=pt.n_cores,
                config=presets[pt.config],
                mapping=pt.mapping,
                plan=ctx.fault_plan,
                iterations=ctx.iterations,
                time_budget=ctx.point_budget,
                tracer=tracer,
            )
        else:
            result = exp.run(
                n_cores=pt.n_cores,
                config=presets[pt.config],
                mapping=pt.mapping,
                kernel=pt.kernel,
                iterations=ctx.iterations,
                time_budget=ctx.point_budget,
                tracer=tracer,
                mode=ctx.mode,
            )
        rec = result.to_record()
        if tracer is not None:
            rec["metrics"] = tracer.metrics.flat_summary()
        return rec
    except RCCEBudgetExceededError as exc:
        return {
            "status": "timeout",
            **_grid_fields(pt, machine_id),
            "budget_s": exc.budget,
            "stuck_ues": list(exc.running_ues),
            "error": str(exc),
        }
    except (RCCEError, ProcessFailure, SimulationError) as exc:
        return {
            "status": "failed",
            **_grid_fields(pt, machine_id),
            "error_type": type(exc).__name__,
            "error": str(exc),
        }


#: per-worker-process experiment memo for :func:`_point_task` (inherited
#: empty at fork, filled as the worker sees matrices).
_WORKER_EXPERIMENTS: Dict[Tuple[int, float, str], SpMVExperiment] = {}


def _point_task(ctx: CampaignContext, pt: CampaignPoint) -> dict:
    """Pool-worker task: one point against the per-process memo."""
    maybe_crash(pt.key())
    return run_campaign_point(pt, ctx, _WORKER_EXPERIMENTS)


def _supervised_point_task(ctx: CampaignContext, pt: CampaignPoint) -> dict:
    """Supervised-pool task: the supervisor itself applies the crash and
    chaos hooks per attempt, so this wrapper only executes the point."""
    return run_campaign_point(pt, ctx, _WORKER_EXPERIMENTS)


def _point_identity(pt: CampaignPoint) -> str:
    return pt.key()


def _iter_jsonl(path: Path, tolerate_trailing: bool = True):
    """Yield (lineno, record) from a campaign file, defensively.

    A bad *final* line is tolerated (with a warning): it is the
    signature of a write cut mid-record by a crash, and dropping it just
    reruns that point.  A bad line with valid records *after* it means
    the file was edited or the disk corrupted — that raises
    :class:`CampaignIntegrityError` so nobody silently analyses a
    damaged campaign.
    """
    bad: Optional[Tuple[int, str]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if bad is not None:
                raise CampaignIntegrityError(path, bad[0], bad[1])
            try:
                rec = json.loads(stripped)
            except json.JSONDecodeError as exc:
                bad = (lineno, f"invalid JSON: {exc}")
                continue
            if not isinstance(rec, dict):
                bad = (lineno, f"expected an object, got {type(rec).__name__}")
                continue
            yield lineno, rec
    if bad is not None:
        if not tolerate_trailing:
            raise CampaignIntegrityError(path, bad[0], bad[1])
        warnings.warn(
            f"{path}:{bad[0]}: ignoring truncated trailing record "
            f"({bad[1]}); the point will rerun on resume",
            stacklevel=2,
        )


class Campaign:
    """A persistent sweep over the experiment grid."""

    def __init__(
        self,
        name: str,
        output_dir: Path | str,
        scale: float = 1.0,
        iterations: int = DEFAULT_ITERATIONS,
        fault_plan: Optional[object] = None,
        point_budget: Optional[float] = None,
        collect_metrics: bool = False,
        mode: str = "sim",
        machine: str = DEFAULT_MACHINE,
    ) -> None:
        if not name or "/" in name:
            raise ValueError(f"campaign name must be a simple identifier, got {name!r}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if point_budget is not None and point_budget <= 0:
            raise ValueError(f"point_budget must be > 0, got {point_budget}")
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode != "sim" and fault_plan is not None:
            raise ValueError(
                "fault_plan requires mode='sim': fault injection lives in the "
                "event-driven runtime, which the analytic model does not run"
            )
        get_machine(machine)  # fail fast (KeyError with suggestions) on typos
        self.name = name
        #: default machine of every point that doesn't pin its own.
        self.machine = machine
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.output_dir / f"{name}.jsonl"
        self.scale = scale
        self.iterations = iterations
        #: a FaultPlan switches the sweep to the fault-tolerant driver.
        self.fault_plan = fault_plan
        #: per-point simulated-time budget (None = unbounded).
        self.point_budget = point_budget
        #: attach a metrics-only tracer per point and append its flat
        #: summary to the record under ``"metrics"``.
        self.collect_metrics = collect_metrics
        #: how points are timed: the event-driven simulator (``sim``) or
        #: the analytic fast path (``model``, same numbers to the
        #: tolerance in ``docs/PERFORMANCE.md``).
        self.mode = mode
        self._experiments: Dict[Tuple[int, float, str], SpMVExperiment] = {}

    # -- persistence ----------------------------------------------------

    def completed_keys(self) -> set:
        """Resume keys of every record already on disk.

        Failed and timed-out points count as completed — rerunning a
        point that deterministically times out would wedge every resume.
        Quarantined points (supervised runs only) are *retryable*: their
        keys are excluded unless a later record superseded the
        quarantine, so the next ``run`` picks them up again.
        """
        last_status: Dict[str, str] = {}
        if self.path.exists():
            for _lineno, rec in _iter_jsonl(self.path):
                if "_key" in rec:
                    last_status[rec["_key"]] = rec.get("status", "ok")
        return {k for k, status in last_status.items() if status != "quarantined"}

    def load(self) -> List[dict]:
        """All records on disk (without the internal resume key).

        A ``quarantined`` record that a later record for the same point
        supersedes (the point was rerun after the fault cleared) is
        dropped — it documents a transient failure, not a result; the
        raw line stays in the file for audits.
        """
        records = []
        if self.path.exists():
            rows = list(_iter_jsonl(self.path))
            last_index: Dict[str, int] = {}
            for i, (_lineno, rec) in enumerate(rows):
                if "_key" in rec:
                    last_index[rec["_key"]] = i
            for i, (_lineno, rec) in enumerate(rows):
                if (
                    rec.get("status") == "quarantined"
                    and last_index.get(rec.get("_key"), i) > i
                ):
                    continue
                rec = dict(rec)
                rec.pop("_key", None)
                records.append(rec)
        return records

    def repair(self) -> Tuple[int, int]:
        """Quarantine corrupt lines; returns (kept, quarantined).

        Bad lines are moved to ``<name>.quarantine.jsonl`` (appended,
        never overwritten — evidence is kept) and the campaign file is
        atomically rewritten with only the valid records.
        """
        if not self.path.exists():
            return 0, 0
        kept: List[str] = []
        quarantined: List[str] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    rec = json.loads(stripped)
                    ok = isinstance(rec, dict)
                except json.JSONDecodeError:
                    ok = False
                (kept if ok else quarantined).append(stripped)
        if quarantined:
            qpath = self.output_dir / f"{self.name}.quarantine.jsonl"
            with open(qpath, "a", encoding="utf-8") as fh:
                for line in quarantined:
                    fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        tmp = self.path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for line in kept:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        return len(kept), len(quarantined)

    @staticmethod
    def _append(fh, rec: dict) -> None:
        """One durable record: write, flush, fsync."""
        fh.write(json.dumps(rec) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    # -- execution ----------------------------------------------------------

    def _context(self) -> CampaignContext:
        """The picklable execution context shipped to pool workers."""
        return CampaignContext(
            scale=self.scale,
            iterations=self.iterations,
            mode=self.mode,
            point_budget=self.point_budget,
            collect_metrics=self.collect_metrics,
            fault_plan=self.fault_plan,
            machine=self.machine,
        )

    def _experiment(self, mid: int) -> SpMVExperiment:
        key = (mid, self.scale, self.machine)
        if key not in self._experiments:
            entry = entry_by_id(mid)
            self._experiments[key] = SpMVExperiment(
                build_matrix(mid, scale=self.scale),
                name=entry.name,
                machine=self.machine,
            )
        return self._experiments[key]

    @staticmethod
    def grid(
        ids: Sequence[int],
        core_counts: Sequence[int],
        configs: Sequence[str] = ("conf0",),
        mappings: Sequence[str] = ("distance_reduction",),
        kernels: Sequence[str] = ("csr",),
        machines: Sequence[str] = ("",),
    ) -> List[CampaignPoint]:
        """The cartesian product as explicit points.

        ``machines`` adds the cross-architecture dimension: registry
        ids pin each point to a zoo machine, the default ``""`` defers
        to the campaign's machine (keeping pre-zoo keys and fixture
        bytes unchanged).
        """
        return [
            CampaignPoint(mid, n, cfg, mapping, kernel, machine)
            for mid, n, cfg, mapping, kernel, machine in product(
                ids, core_counts, configs, mappings, kernels, machines
            )
        ]

    def _run_point(self, pt: CampaignPoint) -> dict:
        """Execute one point in-process (thin wrapper for the serial path)."""
        return run_campaign_point(pt, self._context(), self._experiments)

    def _fallbacks(
        self, ctx: CampaignContext, policy: SupervisePolicy
    ) -> List[Tuple[str, Callable[[CampaignPoint], dict]]]:
        """The graceful-degradation ladder implied by ``policy.on_failure``.

        ``serial`` reruns the point in the parent process (no pool, no
        fork — rules out pool-side failures); ``model`` additionally
        retries on the analytic fast path with faults disabled, trading
        exactness for a record instead of a hole.
        """
        ladder: List[Tuple[str, Callable[[CampaignPoint], dict]]] = []
        if policy.on_failure in ("serial", "model"):
            ladder.append(
                ("serial", lambda pt: run_campaign_point(pt, ctx, self._experiments))
            )
        if policy.on_failure == "model" and ctx.mode != "model":
            model_ctx = dataclasses.replace(ctx, mode="model", fault_plan=None)
            ladder.append(
                ("model", lambda pt: run_campaign_point(pt, model_ctx, self._experiments))
            )
        return ladder

    def _quarantine_record(self, pt: CampaignPoint, outcome: TaskOutcome) -> dict:
        """The persistent record of a poison point (keeps the grid fields)."""
        rec = outcome.quarantine_record()
        rec.update(_grid_fields(pt, pt.machine or self.machine))
        return rec

    def run(
        self,
        points: Iterable[CampaignPoint],
        workers: int = 1,
        policy: Optional[SupervisePolicy] = None,
    ) -> Tuple[int, int]:
        """Execute all points not yet on disk; returns (ran, skipped).

        A point that times out or fails is recorded with its status and
        the sweep continues — one pathological point cannot take the
        campaign down.

        ``workers > 1`` shards the pending points over that many forked
        processes (:mod:`repro.core.parallel`).  Records are appended in
        submission order regardless of completion order, so a parallel
        run's file is bitwise-identical to the serial one; a worker
        crash persists the completed prefix, raises
        :class:`CampaignWorkerCrash`, and a rerun resumes the remainder
        with no duplicates or gaps.  Duplicate points in ``points``
        count as skipped, same as points already on disk.

        With a ``policy`` the sweep runs under the self-healing
        supervisor (:mod:`repro.core.supervise`): worker deaths, hangs
        (``policy.task_timeout``) and unexpected task errors are retried
        in-pool with deterministic backoff; a point failing every
        attempt walks the ``policy.on_failure`` degradation ladder and,
        if nothing rescues it, is persisted as a ``quarantined`` record
        the next ``run`` will retry.  Recovered points produce records
        byte-identical to an undisturbed run — retry bookkeeping lives
        only in quarantine records and in :attr:`last_supervise`.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        done = self.completed_keys()
        pending: List[CampaignPoint] = []
        skipped = 0
        for pt in validate_points(points, self.machine, self.mode, self.fault_plan):
            if pt.key() in done:
                skipped += 1
                continue
            done.add(pt.key())
            pending.append(pt)
        ctx = self._context()
        if policy is not None:
            return self._run_supervised(pending, skipped, ctx, workers, policy)
        if workers == 1:
            runner = ((pt, run_campaign_point(pt, ctx, self._experiments))
                      for pt in pending)
        else:
            runner = iter_ordered(partial(_point_task, ctx), pending, workers)
        ran = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for pt, rec in runner:
                rec["_key"] = pt.key()
                rec["scale"] = self.scale
                self._append(fh, rec)
                ran += 1
        return ran, skipped

    def _run_supervised(
        self,
        pending: List[CampaignPoint],
        skipped: int,
        ctx: CampaignContext,
        workers: int,
        policy: SupervisePolicy,
    ) -> Tuple[int, int]:
        """The supervised execution path of :meth:`run`."""
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        ran = 0
        try:
            with open(self.path, "a", encoding="utf-8") as fh:
                for outcome in supervised_iter_ordered(
                    partial(_supervised_point_task, ctx),
                    pending,
                    workers,
                    policy,
                    identity=_point_identity,
                    fallbacks=self._fallbacks(ctx, policy),
                    metrics=registry,
                ):
                    pt = outcome.item
                    rec = (
                        outcome.value
                        if outcome.ok
                        else self._quarantine_record(pt, outcome)
                    )
                    rec["_key"] = pt.key()
                    rec["scale"] = self.scale
                    self._append(fh, rec)
                    ran += 1
        finally:
            #: ``supervise.*`` counters of the most recent supervised run.
            self.last_supervise = registry.flat_summary()
        return ran, skipped

    # -- analysis --------------------------------------------------------------

    def summarize(self, group_by: str = "n_cores") -> Dict:
        """Mean MFLOPS/s of successful records grouped by one field.

        Timed-out and failed points are excluded (they carry no
        throughput); they still live in the file for failure analysis.
        """
        groups: Dict = {}
        for rec in self.load():
            if rec.get("status", "ok") != "ok":
                continue
            groups.setdefault(rec[group_by], []).append(rec["mflops"])
        return {k: sum(v) / len(v) for k, v in sorted(groups.items())}

    def metrics_summary(self) -> Dict[str, object]:
        """Campaign-wide merge of every record's ``"metrics"`` block.

        Only meaningful with ``collect_metrics=True``; records without a
        metrics block (failures, runs before the flag) are skipped.
        Per-worker summaries merge exactly like serial ones — the merge
        is associative — so parallel campaigns aggregate identically.
        """
        from ..obs.metrics import merge_flat_summaries

        return merge_flat_summaries(
            [rec["metrics"] for rec in self.load() if isinstance(rec.get("metrics"), dict)]
        )

    def status_counts(self) -> Dict[str, int]:
        """How many records ended in each status (ok/timeout/failed/quarantined)."""
        counts: Dict[str, int] = {}
        for rec in self.load():
            status = rec.get("status", "ok")
            counts[status] = counts.get(status, 0) + 1
        return dict(sorted(counts.items()))
