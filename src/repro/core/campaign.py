"""Experiment campaigns: grid sweeps with persistent, resumable results.

A reproduction is only useful if its numbers can be regenerated and
audited later.  :class:`Campaign` runs a cartesian grid of experiment
points — (matrix id, core count, config, mapping, kernel) — appending
one JSON record per completed point to ``<name>.jsonl``.  Reopening the
campaign skips points that are already on disk, so an interrupted sweep
resumes where it stopped, and the records feed any external analysis
without re-simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from ..scc.chip import PRESETS
from ..sparse.suite import build_matrix, entry_by_id
from .experiment import DEFAULT_ITERATIONS, ExperimentResult, SpMVExperiment

__all__ = ["result_record", "CampaignPoint", "Campaign"]


def result_record(r: ExperimentResult) -> dict:
    """Flatten an ExperimentResult into a JSON-serializable record."""
    return {
        "matrix": r.matrix_name,
        "n": r.n,
        "nnz": r.nnz,
        "n_cores": r.n_cores,
        "config": r.config_name,
        "mapping": r.mapping,
        "kernel": r.kernel,
        "iterations": r.iterations,
        "makespan_s": r.makespan,
        "mflops": r.mflops,
        "power_watts": r.power_watts,
        "mflops_per_watt": r.mflops_per_watt,
        "ws_per_core_bytes": r.ws_per_core_bytes,
    }


@dataclass(frozen=True)
class CampaignPoint:
    """One grid point (hashable: used as the resume key)."""

    mid: int
    n_cores: int
    config: str
    mapping: str
    kernel: str

    def key(self) -> str:
        """Stable string identity used for resume bookkeeping."""
        return f"{self.mid}:{self.n_cores}:{self.config}:{self.mapping}:{self.kernel}"


class Campaign:
    """A persistent sweep over the experiment grid."""

    def __init__(
        self,
        name: str,
        output_dir: Path | str,
        scale: float = 1.0,
        iterations: int = DEFAULT_ITERATIONS,
    ) -> None:
        if not name or "/" in name:
            raise ValueError(f"campaign name must be a simple identifier, got {name!r}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.name = name
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.output_dir / f"{name}.jsonl"
        self.scale = scale
        self.iterations = iterations
        self._experiments: Dict[int, SpMVExperiment] = {}

    # -- persistence ----------------------------------------------------

    def completed_keys(self) -> set:
        """Resume keys of every record already on disk."""
        done = set()
        if self.path.exists():
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    rec = json.loads(line)
                    done.add(rec["_key"])
        return done

    def load(self) -> List[dict]:
        """All completed records (without the internal resume key)."""
        records = []
        if self.path.exists():
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        rec = json.loads(line)
                        rec.pop("_key", None)
                        records.append(rec)
        return records

    # -- execution ----------------------------------------------------------

    def _experiment(self, mid: int) -> SpMVExperiment:
        if mid not in self._experiments:
            entry = entry_by_id(mid)
            self._experiments[mid] = SpMVExperiment(
                build_matrix(mid, scale=self.scale), name=entry.name
            )
        return self._experiments[mid]

    @staticmethod
    def grid(
        ids: Sequence[int],
        core_counts: Sequence[int],
        configs: Sequence[str] = ("conf0",),
        mappings: Sequence[str] = ("distance_reduction",),
        kernels: Sequence[str] = ("csr",),
    ) -> List[CampaignPoint]:
        """The cartesian product as explicit points."""
        return [
            CampaignPoint(mid, n, cfg, mapping, kernel)
            for mid, n, cfg, mapping, kernel in product(
                ids, core_counts, configs, mappings, kernels
            )
        ]

    def run(self, points: Iterable[CampaignPoint]) -> Tuple[int, int]:
        """Execute all points not yet on disk; returns (ran, skipped)."""
        done = self.completed_keys()
        ran = skipped = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for pt in points:
                if pt.key() in done:
                    skipped += 1
                    continue
                if pt.config not in PRESETS:
                    raise ValueError(
                        f"unknown config {pt.config!r}; choose from {sorted(PRESETS)}"
                    )
                exp = self._experiment(pt.mid)
                result = exp.run(
                    n_cores=pt.n_cores,
                    config=PRESETS[pt.config],
                    mapping=pt.mapping,
                    kernel=pt.kernel,
                    iterations=self.iterations,
                )
                rec = result_record(result)
                rec["_key"] = pt.key()
                rec["scale"] = self.scale
                fh.write(json.dumps(rec) + "\n")
                fh.flush()
                ran += 1
                done.add(pt.key())
        return ran, skipped

    # -- analysis --------------------------------------------------------------

    def summarize(self, group_by: str = "n_cores") -> Dict:
        """Mean MFLOPS/s of completed records grouped by one field."""
        groups: Dict = {}
        for rec in self.load():
            groups.setdefault(rec[group_by], []).append(rec["mflops"])
        return {k: sum(v) / len(v) for k, v in sorted(groups.items())}
