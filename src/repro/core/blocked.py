"""Timing model for BCSR SpMV on the SCC.

Extends the study beyond the paper: given the traffic trade of register
blocking (:mod:`repro.sparse.bcsr`), would it actually have paid off on
the SCC?  The model mirrors the CSR pipeline:

- streams: one 4 B index + ``8*r*c`` B of values per block, 4 B of
  block-ptr per block row, 8 B of ``y`` per row;
- gather: one ``c``-wide ``x`` load per block, analyzed with the same
  footprint locality model at line granularity;
- compute: the blocked kernel multiplies the *stored* cells — fill-in
  costs cycles and bandwidth, while FLOPS are credited only for the
  structural nonzeros (2 per nonzero, as the paper counts).

:func:`run_bcsr_timing` returns a result comparable with
:class:`~repro.core.experiment.ExperimentResult` on the same matrix, so
``benchmarks/test_ext_bcsr.py`` can report simulated CSR-vs-BCSR
MFLOPS/s, not just traffic ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from ..scc.chip import CONF0, SCCConfig
from ..scc.core_model import AccessSummary
from ..scc.locality import miss_ratio_curve
from ..scc.memory import MemorySystem
from ..scc.params import CACHE_LINE_BYTES, DEFAULT_TIMING, L1D_BYTES, L2_BYTES, P54CTimingParams
from ..scc.topology import SCCTopology
from ..sparse.bcsr import BCSRMatrix
from .experiment import DEFAULT_ITERATIONS
from .mapping import get_mapping
from .timing import solve_core_times
from .trace import DEFAULT_X_CAPACITY_FRACTION, _stream_lines

__all__ = ["BCSRTimingResult", "run_bcsr_timing"]


@dataclass(frozen=True)
class BCSRTimingResult:
    """Simulated execution of the blocked kernel."""

    r: int
    c: int
    n_cores: int
    iterations: int
    makespan: float
    structural_nnz: int
    stored_cells: int

    @property
    def flops(self) -> int:
        """Useful work: 2 flops per structural nonzero, as for CSR."""
        return 2 * self.structural_nnz * self.iterations

    @property
    def mflops(self) -> float:
        """Useful MFLOPS/s (structural flops over the makespan)."""
        return self.flops / self.makespan / 1e6

    @property
    def fill_ratio(self) -> float:
        """Stored cells per structural nonzero (>= 1)."""
        return self.stored_cells / self.structural_nnz if self.structural_nnz else 1.0


def _block_row_partition(b: BCSRMatrix, n_parts: int) -> List[int]:
    """Block-row bounds balancing stored blocks per part."""
    targets = (np.arange(1, n_parts) * (b.n_blocks / n_parts)).astype(np.float64)
    interior = b.block_ptr[1:-1]
    cuts = np.searchsorted(interior, targets, side="left") + 1 if b.n_block_rows > 1 else np.array([], dtype=np.int64)
    bounds = [0]
    for cut in cuts.tolist():
        bounds.append(max(min(int(cut), b.n_block_rows), bounds[-1]))
    bounds.append(b.n_block_rows)
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return bounds


def run_bcsr_timing(
    b: BCSRMatrix,
    n_cores: int = 48,
    config: SCCConfig = CONF0,
    mapping: Union[str, Sequence[int]] = "distance_reduction",
    iterations: int = DEFAULT_ITERATIONS,
    topology: SCCTopology | None = None,
    timing: P54CTimingParams = DEFAULT_TIMING,
    x_capacity_fraction: float = DEFAULT_X_CAPACITY_FRACTION,
) -> BCSRTimingResult:
    """Simulate ``iterations`` blocked SpMVs on ``n_cores`` SCC cores."""
    if iterations < 1 or n_cores < 1:
        raise ValueError("iterations and n_cores must be >= 1")
    topo = topology or SCCTopology()
    core_map = (
        get_mapping(mapping)(n_cores, topo) if isinstance(mapping, str) else list(mapping)
    )
    if len(core_map) != n_cores:
        raise ValueError(f"mapping names {len(core_map)} cores but n_cores={n_cores}")

    bounds = _block_row_partition(b, n_cores)
    line = CACHE_LINE_BYTES
    x_l1_cap = L1D_BYTES * x_capacity_fraction / line
    x_l2_cap = L2_BYTES * x_capacity_fraction / line
    cell_bytes = 8 * b.r * b.c

    summaries = []
    for k in range(n_cores):
        lo, hi = bounds[k], bounds[k + 1]
        blk_lo, blk_hi = int(b.block_ptr[lo]), int(b.block_ptr[hi])
        n_blocks = blk_hi - blk_lo
        n_brows = hi - lo
        n_rows = n_brows * b.r
        cells = n_blocks * b.r * b.c
        stream = (
            _stream_lines(4 * n_blocks, line)        # block_index
            + _stream_lines(cell_bytes * n_blocks, line)  # values
            + _stream_lines(4 * n_brows, line)       # block_ptr
            + _stream_lines(8 * n_rows, line)        # y
        )
        if n_blocks:
            x_lines = (b.block_index[blk_lo:blk_hi].astype(np.int64) * b.c * 8) // line
            mrc = miss_ratio_curve(x_lines)
            # A c-wide x load may straddle lines; charge the extra span.
            span = max(int(np.ceil(b.c * 8 / line)), 1)
            x_l1 = float(mrc.misses(x_l1_cap)) * span
            x_l2 = float(mrc.misses(x_l2_cap)) * span
            x_distinct = mrc.profile.n_lines * span
        else:
            x_l1 = x_l2 = 0.0
            x_distinct = 0
        ws = cell_bytes * n_blocks + 4 * n_blocks + 12 * n_rows + x_distinct * line

        cold = stream + x_distinct
        if config.l2_enabled and ws <= L2_BYTES:
            mem = float(cold)
            l2_hits = max((stream + x_l1) * iterations - cold, 0.0)
        elif config.l2_enabled:
            mem = (stream + x_l2) * iterations
            l2_hits = max(x_l1 - x_l2, 0.0) * iterations
        else:
            mem = (stream + x_l1) * iterations
            l2_hits = 0.0
        summaries.append(
            AccessSummary(
                nnz=cells,              # compute charges the fill-in
                rows=n_brows,           # one loop body per block row
                iterations=iterations,
                l2_hits=l2_hits,
                l2_misses=mem,
            )
        )

    mem_system = MemorySystem(topo, mem_mhz=config.mem_mhz)
    timings = solve_core_times(summaries, core_map, config, mem_system, timing)
    makespan = max(t.time for t in timings)
    return BCSRTimingResult(
        r=b.r,
        c=b.c,
        n_cores=n_cores,
        iterations=iterations,
        makespan=makespan,
        structural_nnz=b.nnz_stored,
        stored_cells=b.n_blocks * b.r * b.c,
    )
