"""Cross-architecture SpMV models for the Fig. 10 comparison.

Each competitor system is modeled with a roofline: sustained SpMV
throughput is ``min(peak_flops, sustained_bw / bytes_per_flop) *
efficiency``.  CSR SpMV moves at least 12 bytes of matrix data per two
FLOPs plus vector traffic, so ``bytes_per_flop`` defaults to 7.0
(6 B/flop matrix + ~1 B/flop x/y/ptr).  The per-machine ``efficiency``
factor absorbs what a roofline cannot see — short rows, OpenMP/CUDA
launch overheads, NUMA effects — and is calibrated once against the
ratios the paper states in Sec. IV-E (M2050 = 7.6x SCC conf0, C1060 =
2.4x Xeon = 1.7x Opteron, SCC beats only the Itanium2); the *power*
numbers are the manufacturer TDPs the paper uses, with the Opteron's
ACP converted to TDP per the paper's reference [8].

The SCC entries are **not** modeled here: the benchmark feeds in the
suite-average throughput measured on the architecture model, so Fig. 10
compares our simulated SCC against published-parameter rooflines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["ArchitectureModel", "COMPARISON_SYSTEMS", "comparison_table"]

#: average CSR SpMV memory traffic per floating-point operation.
DEFAULT_BYTES_PER_FLOP = 7.0


@dataclass(frozen=True)
class ArchitectureModel:
    """Roofline description of one comparison system."""

    name: str
    cores: int
    peak_gflops: float        #: double-precision peak, full system
    sustained_bw_gbs: float   #: achievable memory bandwidth (STREAM-like)
    efficiency: float         #: fraction of the roofline SpMV achieves
    tdp_watts: float          #: power basis used by the paper

    def __post_init__(self) -> None:
        if min(self.cores, self.peak_gflops, self.sustained_bw_gbs, self.tdp_watts) <= 0:
            raise ValueError(f"{self.name}: all physical parameters must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"{self.name}: efficiency must be in (0, 1]")

    def spmv_gflops(self, bytes_per_flop: float = DEFAULT_BYTES_PER_FLOP) -> float:
        """Suite-average SpMV throughput predicted by the roofline."""
        if bytes_per_flop <= 0:
            raise ValueError(f"bytes_per_flop must be positive, got {bytes_per_flop}")
        roofline = min(self.peak_gflops, self.sustained_bw_gbs / bytes_per_flop)
        return roofline * self.efficiency

    def mflops_per_watt(self, bytes_per_flop: float = DEFAULT_BYTES_PER_FLOP) -> float:
        """Predicted MFLOPS/s divided by the TDP the paper uses."""
        return self.spmv_gflops(bytes_per_flop) * 1000.0 / self.tdp_watts


#: The five competitor systems of Sec. IV-E with published parameters.
COMPARISON_SYSTEMS: Tuple[ArchitectureModel, ...] = (
    # 2 cores @ 1.6 GHz, 9 MB L3/core, DDR2; paper TDP 104 W.
    ArchitectureModel("Itanium2 Montvale", 2, 12.8, 8.5, 0.70, 104.0),
    # 4 cores @ 2.93 GHz, 8 MB shared L3, 3-channel DDR3; TDP 95 W.
    ArchitectureModel("Xeon X5570", 4, 46.9, 25.6, 0.42, 95.0),
    # 12 cores @ 2.2 GHz, 12 MB L3, 4-channel DDR3; 80 W ACP -> 115 W TDP.
    ArchitectureModel("Opteron 6174", 12, 105.6, 28.0, 0.55, 115.0),
    # 240 SPs, 78 GFLOPS/s DP peak, 102 GB/s; TDP 187.8 W.
    ArchitectureModel("Tesla C1060", 240, 78.0, 102.0, 0.25, 187.8),
    # Fermi: 448 cores, 515.2 GFLOPS/s DP peak, 148 GB/s; TDP 225 W.
    ArchitectureModel("Tesla M2050", 448, 515.2, 148.0, 0.374, 225.0),
)


def comparison_table(
    scc_entries: Dict[str, Tuple[float, float]],
    bytes_per_flop: float = DEFAULT_BYTES_PER_FLOP,
    source: str = "scc-model",
) -> List[dict]:
    """Fig. 10 as data.

    ``scc_entries`` maps a label (e.g. ``"SCC conf0"``) to the measured
    (average GFLOPS/s, full-system watts) of the architecture model;
    ``source`` tags those measured rows (the roofline competitors are
    always tagged ``"roofline"``).  Returns one row per system, sorted
    as in the paper's figure.
    """
    rows = [
        {
            "system": m.name,
            "gflops": m.spmv_gflops(bytes_per_flop),
            "mflops_per_watt": m.mflops_per_watt(bytes_per_flop),
            "watts": m.tdp_watts,
            "source": "roofline",
        }
        for m in COMPARISON_SYSTEMS
    ]
    for label, (gflops, watts) in scc_entries.items():
        if watts <= 0:
            raise ValueError(f"{label}: watts must be positive, got {watts}")
        rows.append(
            {
                "system": label,
                "gflops": gflops,
                "mflops_per_watt": gflops * 1000.0 / watts,
                "watts": watts,
                "source": source,
            }
        )
    return rows
