"""Schema validation for exported Chrome ``trace_event`` JSON.

:func:`validate_chrome_trace` checks the structural contract the
exporter promises (and docs/OBSERVABILITY.md documents): a JSON object
with a ``traceEvents`` list whose entries carry the required fields
with the right types, phases drawn from the supported set, and
balanced begin/end pairs per lane.  It returns a list of human-readable
problems — empty means valid — so tests and the CI trace job can print
exactly what broke instead of a bare assertion.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["SUPPORTED_PHASES", "validate_chrome_trace"]

#: phases the exporter emits: span begin/end, instant, counter, metadata.
SUPPORTED_PHASES = ("B", "E", "i", "C", "M")

_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("name", str),
    ("ph", str),
    ("pid", int),
    ("tid", int),
)


def _check_event(i: int, ev: Any, problems: List[str]) -> None:
    if not isinstance(ev, dict):
        problems.append(f"traceEvents[{i}]: not an object")
        return
    for field, ftype in _REQUIRED:
        if field not in ev:
            problems.append(f"traceEvents[{i}]: missing field {field!r}")
            return
        if not isinstance(ev[field], ftype) or isinstance(ev[field], bool):
            problems.append(
                f"traceEvents[{i}]: field {field!r} must be {ftype.__name__}, "
                f"got {type(ev[field]).__name__}"
            )
            return
    if not ev["name"]:
        problems.append(f"traceEvents[{i}]: empty event name")
    ph = ev["ph"]
    if ph not in SUPPORTED_PHASES:
        problems.append(f"traceEvents[{i}]: unsupported phase {ph!r}")
        return
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        problems.append(f"traceEvents[{i}]: ts must be a non-negative number, got {ts!r}")
    args = ev.get("args")
    if args is not None and not isinstance(args, dict):
        problems.append(f"traceEvents[{i}]: args must be an object")
        return
    if ph == "C":
        if not isinstance(args, dict) or not args:
            problems.append(f"traceEvents[{i}]: counter event needs args values")
        else:
            for k, v in args.items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    problems.append(
                        f"traceEvents[{i}]: counter value {k!r} must be numeric, got {v!r}"
                    )
    if ph == "M" and not isinstance(args, dict):
        problems.append(f"traceEvents[{i}]: metadata event needs args")


def validate_chrome_trace(obj: Any) -> List[str]:
    """Validate an exported trace object; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level: expected a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: missing 'traceEvents' list"]
    for i, ev in enumerate(events):
        _check_event(i, ev, problems)
    # Balanced spans per (pid, tid): every E closes an open B of the
    # same name; nothing is left open at the end.
    stacks: Dict[Tuple[int, int], List[str]] = {}
    last_ts: Dict[Tuple[int, int], float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or ev.get("ph") not in ("B", "E", "i", "C"):
            continue
        lane = (ev.get("pid", 0), ev.get("tid", 0))
        ts = ev.get("ts", 0)
        if isinstance(ts, (int, float)) and not isinstance(ts, bool):
            if ts < last_ts.get(lane, 0):
                problems.append(
                    f"traceEvents[{i}]: timestamp goes backwards on lane {lane}"
                )
            else:
                last_ts[lane] = float(ts)
        if ev.get("ph") == "B":
            stacks.setdefault(lane, []).append(ev.get("name", ""))
        elif ev.get("ph") == "E":
            stack = stacks.get(lane)
            if not stack:
                problems.append(
                    f"traceEvents[{i}]: end event {ev.get('name')!r} with no open span"
                )
            elif ev.get("name") not in stack:
                problems.append(
                    f"traceEvents[{i}]: end event {ev.get('name')!r} does not match "
                    f"an open span (open: {stack})"
                )
            else:
                for j in range(len(stack) - 1, -1, -1):
                    if stack[j] == ev.get("name"):
                        del stack[j]
                        break
    for lane, stack in sorted(stacks.items()):
        if stack:
            problems.append(f"lane {lane}: unclosed span(s) at end of trace: {stack}")
    return problems
