"""repro.obs — structured tracing + metrics for the SCC simulator.

The model's answers are all *explanations* of where cycles go (mesh
hops, MC queueing, L2 fits, irregular gathers); this package turns the
simulator into an instrument that can show its work:

- :mod:`repro.obs.tracer` — :class:`Tracer`: span/instant/counter
  events with simulated-time timestamps, zero-cost when disabled;
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: labelled
  counters/gauges/histograms with a deterministic JSON snapshot;
- :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON, a
  terminal per-core timeline, and campaign metric summaries;
- :mod:`repro.obs.schema` — structural validation of exported traces.

See ``docs/OBSERVABILITY.md`` for the event schema and exporter
formats, and ``repro trace`` / ``repro bench`` for the CLI surface.
"""

from .export import (
    chrome_trace_json,
    metrics_summary,
    render_timeline,
    to_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_flat_summaries
from .schema import validate_chrome_trace
from .tracer import NULL_TRACER, NullTracer, TID_SCHED, TID_SIM, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "TID_SIM",
    "TID_SCHED",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_flat_summaries",
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_timeline",
    "metrics_summary",
    "validate_chrome_trace",
]
