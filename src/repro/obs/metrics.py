"""Counters, gauges and histograms with per-core labels.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): components increment named metrics while a run is
in flight and :meth:`MetricsRegistry.snapshot` renders everything as a
deterministic JSON-serializable dict afterwards.  Three instrument
kinds cover the model's needs:

* :class:`Counter` — monotone totals (mesh flits per link, cache
  misses per level, messages delivered);
* :class:`Gauge` — last-written values (MPB occupancy, queue depth);
* :class:`Histogram` — distributions over fixed bucket bounds (MC
  wait times, effective line times).

Metrics are keyed by ``(name, labels)`` so the same instrument name can
fan out per core / per link / per level.  Snapshots sort every key, so
two identical runs produce byte-identical serializations — the same
determinism contract the tracer and the simulator itself honour.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "metric_key",
    "merge_flat_summaries",
    "summary_prefix",
]

#: default histogram bounds: decades from 1 ns to 1000 s, which brackets
#: every simulated duration the model produces.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0 ** e for e in range(-9, 4))

Labels = Tuple[Tuple[str, str], ...]
_MetricKey = Tuple[str, Labels]


def _labels_of(labels: Dict[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: memo of single-label tuples ``(("core", "3"),)`` for the series fast
#: paths: the per-run emission rebuilds the same handful of label values
#: every model run, and ``str()`` + tuple construction is a measurable
#: slice of an enabled tracer's cost on microsecond-scale runs.  Label
#: values are core/link/level ids, so the space is small and bounded;
#: the cap is a safety valve, not an LRU.
_SERIES_LABELS: Dict[Tuple[str, object], Labels] = {}
_SERIES_LABELS_CAP = 4096


def _series_label(label: str, value: object) -> Labels:
    key = (label, value)
    lt = _SERIES_LABELS.get(key)
    if lt is None:
        lt = ((label, str(value)),)
        if len(_SERIES_LABELS) < _SERIES_LABELS_CAP:
            _SERIES_LABELS[key] = lt
    return lt


def metric_key(name: str, labels: Labels) -> str:
    """Canonical flat key: ``name`` or ``name{a=1,b=2}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "labels", "value", "high_water")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self.high_water: float = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value (the high-water mark is kept too)."""
        self.value = float(value)
        if value > self.high_water:
            self.high_water = float(value)


class Histogram:
    """Fixed-bound bucketed distribution (cumulative-style buckets)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(
        self, name: str, labels: Labels, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if bounds is DEFAULT_BUCKETS:  # pre-validated module constant
            bounds_t = DEFAULT_BUCKETS
        else:
            bounds_t = tuple(float(b) for b in bounds)
            if not bounds_t or list(bounds_t) != sorted(bounds_t):
                raise ValueError(
                    f"histogram {name!r}: bounds must be non-empty and sorted"
                )
        self.name = name
        self.labels = labels
        self.bounds = bounds_t
        #: one bucket per bound (value <= bound) plus an overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(bounds_t) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: Union[int, float]) -> None:
        """Add one observation."""
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v
        # first bound >= v, or the overflow bucket — same ``v <= bound``
        # semantics as a linear scan, O(log buckets) on the hot path.
        self.bucket_counts[bisect_left(self.bounds, v)] += 1

    def observe_many(self, values: Iterable[Union[int, float]]) -> None:
        """Add a batch of observations (one attribute-lookup set for all)."""
        bounds = self.bounds
        buckets = self.bucket_counts
        for value in values:
            v = float(value)
            self.count += 1
            self.total += v
            if v < self.vmin:
                self.vmin = v
            if v > self.vmax:
                self.vmax = v
            buckets[bisect_left(bounds, v)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """Compact {count, mean, min, max} rendering (no buckets)."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
        }


class MetricsRegistry:
    """Get-or-create registry of labelled metrics.

    Re-requesting an existing ``(name, labels)`` pair returns the same
    instrument; requesting it as a *different* kind raises, so a name
    cannot silently be both a counter and a gauge.

    Get-or-create is thread-safe (the campaign server's HTTP threads
    and its scheduler share one registry).  Instrument *updates* are
    not locked — they stay free on the simulator's hot paths — so
    concurrent writers of the same instrument must serialize
    themselves, the way :mod:`repro.serve` funnels every serve.*
    mutation through its queue lock.

    The series write paths (:meth:`series_update`,
    :meth:`histogram_observe_many`) are additionally *deferred*: they
    buffer their materialized payloads and every read surface
    (:meth:`snapshot`, :meth:`flat_summary`, ``len()``, any
    get-or-create) drains the buffer in call order first, so reads see
    exactly the state eager updates would have produced.  Writers that
    are never read pay a list append per emission and stay bounded by
    an amortized drain at :attr:`_PENDING_CAP`.
    """

    #: drain ceiling for the deferred-update buffer: a tracer that is
    #: written but never read (e.g. a discarded per-run tracer) stays
    #: bounded, and the amortized inline drain stays off the common
    #: microsecond-scale path.
    _PENDING_CAP = 1024

    def __init__(self) -> None:
        self._metrics: Dict[_MetricKey, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()
        #: deferred series/histogram updates, applied on first read
        #: (:meth:`snapshot`, :meth:`flat_summary`, any get-or-create).
        self._pending: List[Tuple] = []

    def _get_locked(self, cls: type, name: str, labels: Labels, *args: object):
        """Get-or-create body; caller must hold :attr:`_lock`."""
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, *args)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {metric_key(name, labels)!r} already registered as "
                f"{type(metric).__name__}, requested as {cls.__name__}"
            )
        return metric

    def _drain_locked(self) -> None:
        """Apply every deferred update; caller must hold :attr:`_lock`.

        A single swap: updates racing in while we apply stay pending for
        the next read — no stronger guarantee exists for a concurrent
        read even with eager updates.
        """
        pending, self._pending = self._pending, []
        metrics = self._metrics
        for op in pending:
            if op[0] == "series":
                _, counter_name, gauge_name, label, rows = op
                for v, amount, reading in rows:
                    lt = _series_label(label, v)
                    ck = (counter_name, lt)
                    c = metrics.get(ck)
                    if c is None:
                        c = metrics[ck] = Counter(counter_name, lt)
                    elif type(c) is not Counter:
                        raise TypeError(
                            f"metric {metric_key(counter_name, lt)!r} already "
                            f"registered as {type(c).__name__}, requested as Counter"
                        )
                    c.value += amount
                    gk = (gauge_name, lt)
                    g = metrics.get(gk)
                    if g is None:
                        g = metrics[gk] = Gauge(gauge_name, lt)
                    elif type(g) is not Gauge:
                        raise TypeError(
                            f"metric {metric_key(gauge_name, lt)!r} already "
                            f"registered as {type(g).__name__}, requested as Gauge"
                        )
                    r = float(reading)
                    g.value = r
                    if r > g.high_water:
                        g.high_water = r
            else:  # ("hist", name, buckets, values)
                _, name, buckets, values = op
                h = self._get_locked(Histogram, name, (), buckets or DEFAULT_BUCKETS)
                h.observe_many(values)

    def _get(self, cls: type, name: str, labels: Labels, *args: object):
        with self._lock:
            if self._pending:
                self._drain_locked()
            return self._get_locked(cls, name, labels, *args)

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, _labels_of(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, _labels_of(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Get or create a histogram (``buckets`` only applies on creation)."""
        return self._get(Histogram, name, _labels_of(labels), buckets or DEFAULT_BUCKETS)

    def series_update(
        self,
        counter_name: str,
        gauge_name: str,
        label: str,
        rows: Iterable[Tuple[object, Union[int, float], Union[int, float]]],
    ) -> None:
        """Create-or-get and update a paired counter+gauge series in one
        locked pass.

        ``rows`` yields ``(label_value, counter_amount, gauge_reading)``;
        each row increments ``counter_name{label=value}`` and sets
        ``gauge_name{label=value}``.

        The update is *deferred*: the materialized rows are buffered and
        applied on the registry's next read (snapshot, flat summary, any
        get-or-create), in call order, so the observable state is
        identical to eager updates while the writer pays one list append
        — the fix for the tracer-overhead regression the bench snapshot
        caught.  The model's per-core emission fans two instrument names
        out over every core on every run; a locked get-or-create plus a
        method call per instrument dominated microsecond-scale model
        runs, and even a fused eager pass still cost most of the run.
        Never-read registries stay bounded by an amortized inline drain
        at :attr:`_PENDING_CAP` buffered updates.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        for row in rows:  # validate at the call site, not at drain time
            if row[1] < 0:
                raise ValueError(
                    f"counter {counter_name!r}: negative increment {row[1]}"
                )
        self._pending.append(("series", counter_name, gauge_name, label, rows))
        if len(self._pending) >= self._PENDING_CAP:
            with self._lock:
                self._drain_locked()

    def histogram_observe_many(
        self,
        name: str,
        values: Iterable[Union[int, float]],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Observe a batch of values, deferred like :meth:`series_update`
        (``buckets`` only applies if the histogram doesn't exist yet)."""
        values = values if isinstance(values, list) else list(values)
        self._pending.append(("hist", name, buckets, values))
        if len(self._pending) >= self._PENDING_CAP:
            with self._lock:
                self._drain_locked()

    def __len__(self) -> int:
        with self._lock:
            if self._pending:
                self._drain_locked()
            return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """Deterministic JSON-serializable dump of every metric.

        Shape::

            {"counters":   {"name{labels}": value, ...},
             "gauges":     {"name{labels}": {"value": v, "high_water": h}, ...},
             "histograms": {"name{labels}": {"count":, "mean":, "min":,
                                             "max":, "buckets": [...]}, ...}}
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict] = {}
        with self._lock:
            if self._pending:
                self._drain_locked()
            items = sorted(self._metrics.items())
        for (name, labels), metric in items:
            key = metric_key(name, labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = {"value": metric.value, "high_water": metric.high_water}
            else:
                histograms[key] = {**metric.summary(), "buckets": list(metric.bucket_counts)}
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def flat_summary(self) -> Dict[str, object]:
        """One flat dict for campaign records: counters and gauges by
        value, histograms by their compact summary."""
        out: Dict[str, object] = {}
        with self._lock:
            if self._pending:
                self._drain_locked()
            items = sorted(self._metrics.items())
        for (name, labels), metric in items:
            key = metric_key(name, labels)
            if isinstance(metric, Counter):
                out[key] = metric.value
            elif isinstance(metric, Gauge):
                out[key] = metric.value
            else:
                out[key] = metric.summary()
        return out


def merge_flat_summaries(
    summaries: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """Combine per-point :meth:`MetricsRegistry.flat_summary` dicts.

    Campaigns record one flat summary per point — whichever process ran
    it — and this folds them into one campaign-wide view: numeric values
    (counters and gauges) are summed as totals, histogram summaries are
    merged exactly (count-weighted mean, global min/max; empty summaries
    are skipped so they cannot drag min/max to zero).  Keys are sorted,
    so merging the same records always yields the same dict.
    """
    merged: Dict[str, object] = {}
    for summary in summaries:
        for key, value in summary.items():
            if isinstance(value, dict):
                if not value.get("count", 0):
                    merged.setdefault(
                        key, {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
                    )
                    continue
                cur = merged.get(key)
                if not isinstance(cur, dict) or not cur.get("count", 0):
                    merged[key] = dict(value)
                    continue
                count = cur["count"] + value["count"]
                merged[key] = {
                    "count": count,
                    "mean": (
                        cur["mean"] * cur["count"] + value["mean"] * value["count"]
                    ) / count,
                    "min": min(cur["min"], value["min"]),
                    "max": max(cur["max"], value["max"]),
                }
            else:
                merged[key] = float(merged.get(key, 0.0)) + float(value)  # type: ignore[arg-type]
    return dict(sorted(merged.items()))


def summary_prefix(
    summary: Dict[str, object], prefix: str
) -> Dict[str, object]:
    """Entries of a flat summary under one dotted namespace, prefix stripped.

    ``summary_prefix(s, "supervise")`` turns
    ``{"supervise.retries": 2.0, "mesh.flits": 9.0}`` into
    ``{"retries": 2.0}`` — the shape consumers embed in their own
    reports (``repro chaos``, the bench snapshot's supervision entry)
    without dragging along unrelated instruments.  Keys are sorted.
    """
    lead = prefix + "."
    return {
        key[len(lead):]: value
        for key, value in sorted(summary.items())
        if key.startswith(lead)
    }
