"""Structured tracing with simulated-time timestamps.

A :class:`Tracer` records *events* — span begin/end pairs, instants and
counter samples — stamped with the owning simulator's clock, plus a
:class:`~repro.obs.metrics.MetricsRegistry` for numeric aggregates.
Model components accept an optional tracer and guard every hook with a
single truthiness check::

    tr = self.tracer
    if tr:
        tr.instant("drop", tid=ue, cat="fault", tag=tag)

``None`` and the shared :data:`NULL_TRACER` are both falsy, so a
disabled tracer costs one attribute load and one branch — nothing is
formatted, allocated or appended.  That is the layer's zero-cost
contract, benchmarked by ``repro bench snapshot``.

Determinism: timestamps come from the simulated clock and events are
stored in call order, so two runs of the same seeded workload produce
byte-identical traces (the DET900 property, extended to observability).
Wall-clock time is never consulted.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, NamedTuple, Optional

from .metrics import MetricsRegistry

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER", "TID_SIM", "TID_SCHED"]

#: reserved trace lanes: simulator event dispatch and process scheduling
#: live apart from the UE lanes (tid = UE rank).
TID_SIM = 1000
TID_SCHED = 1001


def _zero_clock() -> float:
    return 0.0


def jsonable(value: Any) -> Any:
    """Best-effort conversion of an event argument to JSON-safe data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)


class TraceEvent(NamedTuple):
    """One recorded event (phases follow the Chrome ``trace_event`` names).

    ``ph`` is ``"B"`` (span begin), ``"E"`` (span end), ``"i"``
    (instant) or ``"C"`` (counter sample); ``ts`` is simulated seconds.
    A named tuple: construction happens in C, which matters because the
    recording hooks sit on the simulator's per-event hot path (the
    ``tracer_overhead_pct`` line of ``BENCH_spmv.json``).
    """

    name: str
    ph: str
    ts: float
    tid: int
    cat: str
    args: Optional[Dict[str, Any]] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceEvent {self.ph} {self.name!r} t={self.ts:.9f} tid={self.tid}>"


class Tracer:
    """Event recorder bound to a (simulated) clock.

    ``categories`` optionally restricts recording to a set of category
    strings (``{"rcce", "fault"}``); events from other categories are
    dropped at the recording site.  Counter samples use the ``"metric"``
    category.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self._clock: Callable[[], float] = clock or _zero_clock
        self.categories = frozenset(categories) if categories is not None else None
        self.events: List[TraceEvent] = []
        # Hot-path bindings: the recording hooks run once per simulator
        # event, so the list-append bound method is looked up here, not
        # per call.  ``clear()`` empties the list in place, keeping the
        # binding valid.
        self._append = self.events.append
        self.metrics = MetricsRegistry()

    def __bool__(self) -> bool:
        return self.enabled

    @property
    def now(self) -> float:
        """Current clock reading (simulated seconds)."""
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Late-bind the simulated clock (runtimes call this at boot)."""
        self._clock = clock

    def wants(self, cat: str) -> bool:
        """Whether events of this category are being recorded."""
        return self.enabled and (self.categories is None or cat in self.categories)

    def clear(self) -> None:
        """Drop all recorded events (metrics are kept)."""
        self.events.clear()

    # -- recording ---------------------------------------------------------
    #
    # begin/end/instant/counter are the per-event hot path; each inlines
    # the category filter and appends through the pre-bound
    # ``self._append`` rather than funnelling through an indirection.
    # ``args or None`` keeps empty-kwargs events from retaining a dict.

    def _record(
        self, name: str, ph: str, tid: int, cat: str, args: Optional[Dict[str, Any]]
    ) -> None:
        """Out-of-line recording entry (kept for subclasses/tools)."""
        if self.categories is not None and cat not in self.categories:
            return
        self._append(TraceEvent(name, ph, self._clock(), tid, cat, args))

    def begin(self, name: str, tid: int = 0, cat: str = "", **args: Any) -> None:
        """Open a span on lane ``tid`` (close it with :meth:`end`)."""
        cats = self.categories
        if cats is not None and cat not in cats:
            return
        self._append(TraceEvent(name, "B", self._clock(), tid, cat, args or None))

    def end(self, name: str, tid: int = 0, cat: str = "") -> None:
        """Close the innermost open span named ``name`` on lane ``tid``."""
        cats = self.categories
        if cats is not None and cat not in cats:
            return
        self._append(TraceEvent(name, "E", self._clock(), tid, cat, None))

    def instant(self, name: str, tid: int = 0, cat: str = "", **args: Any) -> None:
        """Record a point-in-time event."""
        cats = self.categories
        if cats is not None and cat not in cats:
            return
        self._append(TraceEvent(name, "i", self._clock(), tid, cat, args or None))

    def counter(self, name: str, value: float, tid: int = 0, cat: str = "metric") -> None:
        """Record a counter sample (renders as a track in Perfetto)."""
        cats = self.categories
        if cats is not None and cat not in cats:
            return
        self._append(TraceEvent(name, "C", self._clock(), tid, cat, {"value": value}))

    @contextmanager
    def span(self, name: str, tid: int = 0, cat: str = "", **args: Any) -> Iterator[None]:
        """Context manager pairing :meth:`begin`/:meth:`end`."""
        self.begin(name, tid=tid, cat=cat, **args)
        try:
            yield
        finally:
            self.end(name, tid=tid, cat=cat)


class NullTracer(Tracer):
    """The disabled tracer: falsy, and every hook is a no-op.

    Use the shared :data:`NULL_TRACER` instance where an API requires a
    tracer object; components that accept ``tracer=None`` treat both
    identically.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    # Every recording entry point is overridden (not just _record): the
    # hooks no longer funnel through one indirection, so each must be a
    # no-op in its own right.

    def _record(
        self, name: str, ph: str, tid: int, cat: str, args: Optional[Dict[str, Any]]
    ) -> None:
        pass

    def begin(self, name: str, tid: int = 0, cat: str = "", **args: Any) -> None:
        pass

    def end(self, name: str, tid: int = 0, cat: str = "") -> None:
        pass

    def instant(self, name: str, tid: int = 0, cat: str = "", **args: Any) -> None:
        pass

    def counter(self, name: str, value: float, tid: int = 0, cat: str = "metric") -> None:
        pass


NULL_TRACER = NullTracer()
