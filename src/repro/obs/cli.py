"""``repro trace`` / ``repro bench`` subcommand implementations.

``trace`` runs one traced SpMV experiment on the model and exports the
event stream — as Chrome/Perfetto ``trace_event`` JSON (load it at
``chrome://tracing`` or https://ui.perfetto.dev), as a terminal
timeline, or as a flat metric summary.  Traces are deterministic: two
runs with the same arguments produce byte-identical exports.

``bench snapshot`` records the model's throughput plus the tracer's
wall-clock overhead to ``BENCH_spmv.json`` so perf regressions in the
observability layer are visible in review; wall-clock numbers are
medians of warmed repeats so the snapshot reports overhead, not noise.
The snapshot also benchmarks the *exact replay* engines — the scalar
cache oracle against the set-parallel vectorized engine
(:mod:`repro.scc.vecreplay`) on a Table-I-scale trace — and records the
speedup plus a bitwise-equality check of their counts, and measures the
supervised executor's overhead over the bare fork pool on the same
sweep (the ``supervise_overhead`` entry).
``bench gate`` re-measures the *simulated* throughput (deterministic,
CI-stable) and fails when it regressed more than ``--max-regression``
against a committed baseline snapshot, when the vectorized replay
speedup falls below ``--min-replay-speedup`` (or stops matching the
scalar oracle bit for bit), when supervision overhead exceeds
``--max-supervise-overhead``, when the disabled-tracer path stops
being near-free (``--max-tracer-overhead``), or when the predictor
tier (``mode="predict"``, PR 10) loses its speed or accuracy edge:
``--min-predict-speedup`` bounds the wall-clock ratio of a fresh
model sweep over a fresh predict sweep of the same grid, and
``--max-predict-error`` bounds the worst per-machine median relative
makespan error of predict vs model.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path
from typing import Optional, TextIO

from ..cliutil import add_json_flag, add_output_flag, open_output
from .export import chrome_trace_json, metrics_summary, render_timeline
from .tracer import Tracer

__all__ = [
    "trace_main",
    "bench_main",
    "configure_trace_parser",
    "configure_bench_parser",
    "run_trace",
    "run_bench",
]

EXPORTS = ("chrome", "timeline", "summary")


def configure_trace_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro trace`` arguments to an existing parser."""
    p.add_argument(
        "--export",
        choices=EXPORTS,
        default="chrome",
        help="output form: Chrome trace_event JSON, terminal timeline, "
        "or flat metric summary (default: chrome)",
    )
    p.add_argument(
        "--matrix-id",
        type=int,
        default=24,
        help="Table I matrix id to run (default 24)",
    )
    p.add_argument(
        "--cores", type=int, default=4, help="units of execution (default 4)"
    )
    p.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="matrix-size scale; 1.0 = published UFL sizes (default 0.05)",
    )
    p.add_argument(
        "--iterations", type=int, default=2, help="SpMV repetitions (default 2)"
    )
    p.add_argument(
        "--mapping",
        type=str,
        default="distance_reduction",
        help="UE-to-core mapping policy (default distance_reduction)",
    )
    p.add_argument(
        "--kernel",
        choices=("csr", "no_x_miss"),
        default="csr",
        help="SpMV kernel variant (default csr)",
    )
    p.add_argument(
        "--categories",
        type=str,
        default="",
        help="comma-separated event categories to record (default: all); "
        "e.g. rcce,sim,fault",
    )
    add_json_flag(p)
    add_output_flag(p)


def build_trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one traced SpMV experiment and export the trace.",
    )
    configure_trace_parser(p)
    return p


#: experiment memo for repeated timing runs — rebuilding the matrix per
#: repeat would swamp the timed region with construction cost and turn
#: ``tracer_overhead_pct`` into scheduler noise.
_BENCH_EXPERIMENTS: dict = {}


def _traced_run(args: argparse.Namespace, tracer: Optional[Tracer]):
    from ..core.experiment import SpMVExperiment
    from ..sparse.suite import build_matrix, entry_by_id

    if args.cores < 1:
        raise SystemExit(f"--cores must be >= 1, got {args.cores}")
    if not 0 < args.scale <= 1.0:
        raise SystemExit(f"--scale must be in (0, 1], got {args.scale}")
    if args.iterations < 1:
        raise SystemExit(f"--iterations must be >= 1, got {args.iterations}")
    try:
        entry = entry_by_id(args.matrix_id)
    except KeyError as exc:
        raise SystemExit(f"repro trace: {exc}") from exc
    exp = _BENCH_EXPERIMENTS.get((args.matrix_id, args.scale))
    if exp is None:
        exp = _BENCH_EXPERIMENTS[(args.matrix_id, args.scale)] = SpMVExperiment(
            build_matrix(args.matrix_id, scale=args.scale), name=entry.name
        )
    result = exp.run(
        n_cores=args.cores,
        mapping=args.mapping,
        kernel=args.kernel,
        iterations=args.iterations,
        tracer=tracer,
        # ``repro trace`` has no --mode: trace events only exist on the
        # event-driven path, so it always runs ``sim``.
        mode=getattr(args, "mode", "sim"),
    )
    return result


def run_trace(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro trace`` from a parsed namespace."""
    cats = [c.strip() for c in args.categories.split(",") if c.strip()] or None
    tracer = Tracer(categories=cats)
    result = _traced_run(args, tracer)
    with open_output(args, out) as stream:
        if args.export == "chrome":
            stream.write(chrome_trace_json(tracer) + "\n")
        elif args.export == "timeline":
            stream.write(render_timeline(tracer) + "\n")
        else:
            summary = {
                "run": result.to_record(),
                "events": len(tracer.events),
                "metrics": metrics_summary(tracer),
            }
            stream.write(
                json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n"
            )
    return 0


def trace_main(argv=None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``repro trace``; returns a process exit code."""
    return run_trace(build_trace_parser().parse_args(argv), out=out)


def configure_bench_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro bench`` arguments to an existing parser."""
    p.add_argument(
        "action",
        choices=("snapshot", "gate"),
        help="'snapshot' measures model throughput and tracer overhead; "
        "'gate' compares a fresh measurement against --baseline and "
        "exits non-zero on regression",
    )
    p.add_argument(
        "--matrix-id",
        type=int,
        default=24,
        help="Table I matrix id to benchmark (default 24)",
    )
    p.add_argument(
        "--cores", type=int, default=4, help="units of execution (default 4)"
    )
    p.add_argument(
        "--scale", type=float, default=0.05, help="matrix-size scale (default 0.05)"
    )
    p.add_argument(
        "--iterations", type=int, default=2, help="SpMV repetitions (default 2)"
    )
    p.add_argument(
        "--mapping",
        type=str,
        default="distance_reduction",
        help="UE-to-core mapping policy (default distance_reduction)",
    )
    p.add_argument(
        "--kernel",
        choices=("csr", "no_x_miss"),
        default="csr",
        help="SpMV kernel variant (default csr)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="wall-clock reps per variant after one untimed warmup; the "
        "median is reported (default 5, min 5 enforced)",
    )
    p.add_argument(
        "--mode",
        choices=("sim", "model"),
        default="model",
        help="timing path to benchmark: the analytic fast path (model, "
        "default) or the event-driven simulator (sim)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep measurement (default 1)",
    )
    p.add_argument(
        "--baseline",
        type=str,
        default="BENCH_spmv.json",
        help="baseline snapshot for 'gate' (default BENCH_spmv.json)",
    )
    p.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="'gate' fails when model throughput drops by more than this "
        "fraction vs the baseline (default 0.30)",
    )
    p.add_argument(
        "--replay-matrix-id",
        type=int,
        default=14,
        help="Table I matrix for the exact-replay benchmark (default 14, "
        "sparsine: the locality worst case)",
    )
    p.add_argument(
        "--replay-scale",
        type=float,
        default=0.25,
        help="matrix-size scale of the replay benchmark (default 0.25, "
        "a >1M-access trace per pass)",
    )
    p.add_argument(
        "--replay-iterations",
        type=int,
        default=16,
        help="SpMV passes replayed by the vectorized engine (default 16)",
    )
    p.add_argument(
        "--min-replay-speedup",
        type=float,
        default=25.0,
        help="'gate' fails when the vectorized replay speedup over the "
        "scalar oracle drops below this, or the engines' counts stop "
        "matching bitwise; 0 skips the check (default 25)",
    )
    p.add_argument(
        "--max-supervise-overhead",
        type=float,
        default=0.5,
        help="'gate' fails when the supervised executor's wall-clock "
        "overhead over the bare pool exceeds this fraction; the bound "
        "is deliberately loose (measured overhead is a few percent) "
        "because the measurement is wall-clock; 0 skips the check "
        "(default 0.5)",
    )
    p.add_argument(
        "--max-tracer-overhead",
        type=float,
        default=0.75,
        help="'gate' fails when running with a live tracer costs more "
        "than this fraction over the untraced run; guards the "
        "zero-cost disabled path and the deferred metric emission "
        "(PR 10, measured ~20%% on a 50us model point); 0 skips the "
        "check (default 0.75)",
    )
    p.add_argument(
        "--min-predict-speedup",
        type=float,
        default=100.0,
        help="'gate' fails when a fresh mode='predict' sweep is not at "
        "least this many times faster (wall-clock) than the same "
        "sweep in mode='model'; 0 skips the predict entry entirely "
        "(default 100)",
    )
    p.add_argument(
        "--max-predict-error",
        type=float,
        default=10.0,
        help="'gate' fails when the worst per-machine median relative "
        "makespan error of predict vs model exceeds this percentage "
        "(default 10)",
    )
    add_json_flag(p)
    add_output_flag(p)


def build_bench_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark snapshots of the simulator (BENCH_spmv.json).",
    )
    configure_bench_parser(p)
    return p


#: core counts of the snapshot's sweep measurement.
BENCH_SWEEP_COUNTS = (1, 2, 4, 8)


def _time_run(args: argparse.Namespace, traced: bool) -> float:
    """Median-of-N wall-clock seconds of one experiment run.

    One untimed warmup populates every cache (matrix build, partition,
    traces, fast-path schedules) before the timed repeats, and the
    median of at least five repeats is reported — without both, the
    first-run build cost and scheduler noise used to show up as bogus
    tracer overhead in the snapshot.
    """
    repeats = max(5, args.repeats)
    t0 = time.perf_counter()
    _traced_run(args, Tracer() if traced else None)  # warmup, untimed
    warm_s = time.perf_counter() - t0
    # timeit-style batching: sub-millisecond runs are timed in batches
    # so one sample spans >= ~5 ms and scheduler jitter averages out.
    # A fresh tracer per run keeps every batched run's work identical.
    batch = max(1, min(200, int(0.005 / max(warm_s, 1e-6))))
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(batch):
            _traced_run(args, Tracer() if traced else None)
        samples.append((time.perf_counter() - t0) / batch)
    return statistics.median(samples)


def _time_sweep(args: argparse.Namespace) -> float:
    """Wall-clock seconds of a core-count sweep sharded over --workers."""
    from ..core.figures import run_suite_batch
    from ..core.parallel import parallel_map

    tasks = _sweep_tasks(args)
    parallel_map(run_suite_batch, tasks, args.workers)  # warmup
    t0 = time.perf_counter()
    parallel_map(run_suite_batch, tasks, args.workers)
    return time.perf_counter() - t0


def _sweep_tasks(args: argparse.Namespace) -> list:
    """The core-count sweep as ``run_suite_batch`` task tuples."""
    from ..sparse.suite import entry_by_id

    name = entry_by_id(args.matrix_id).name
    spec = dict(
        mapping=args.mapping,
        kernel=args.kernel,
        iterations=args.iterations,
        mode=args.mode,
    )
    return [
        (args.matrix_id, args.scale, name, [dict(spec, n_cores=n)])
        for n in BENCH_SWEEP_COUNTS
    ]


def _measure_supervise(args: argparse.Namespace) -> dict:
    """Supervised-vs-bare pool overhead (the ``supervise_overhead`` entry).

    Runs the sweep task list through the bare ``parallel_map`` pool and
    through :func:`~repro.core.supervise.supervised_parallel_map` under
    the default policy.  No faults are injected, so every task succeeds
    on attempt 1 and the wall-clock delta is pure supervision
    machinery: per-worker pipes, deadline polling, backoff bookkeeping
    and metrics accounting.  Both legs use at least two workers so each
    exercises a real fork pool, and measurements come in adjacent
    (bare, supervised) pairs with the fastest-bare pair kept — the same
    drift defense the tracer-overhead measurement uses.  The supervise
    counters of the final run ride along as evidence that nothing was
    retried or respawned during timing.
    """
    from ..core.figures import run_suite_batch
    from ..core.parallel import parallel_map
    from ..core.supervise import SupervisePolicy, supervised_parallel_map
    from .metrics import MetricsRegistry, summary_prefix

    workers = max(2, args.workers)
    tasks = _sweep_tasks(args)
    policy = SupervisePolicy()

    def identity(task: tuple) -> str:
        return f"bench:{task[0]}:{task[3][0]['n_cores']}"

    def bare() -> float:
        t0 = time.perf_counter()
        parallel_map(run_suite_batch, tasks, workers)
        return time.perf_counter() - t0

    def supervised(registry: MetricsRegistry) -> float:
        t0 = time.perf_counter()
        supervised_parallel_map(
            run_suite_batch,
            tasks,
            workers,
            policy,
            identity=identity,
            metrics=registry,
        )
        return time.perf_counter() - t0

    bare()  # warmup: populate matrix/trace caches, untimed
    supervised(MetricsRegistry())
    pairs = []
    for _ in range(3):
        registry = MetricsRegistry()
        pairs.append((bare(), supervised(registry), registry))
    bare_s, supervised_s, registry = min(pairs, key=lambda p: p[0])
    counters = {
        key: int(value)
        for key, value in summary_prefix(
            registry.flat_summary(), "supervise"
        ).items()
        if isinstance(value, (int, float))
    }
    return {
        "workers": workers,
        "tasks": len(tasks),
        "max_retries": policy.max_retries,
        "wallclock_bare_s": bare_s,
        "wallclock_supervised_s": supervised_s,
        "overhead_pct": 100.0 * (supervised_s - bare_s) / bare_s,
        "counters": counters,
    }


def _measure_replay(args: argparse.Namespace) -> dict:
    """Scalar-vs-vectorized exact-replay benchmark (the ``replay`` entry).

    The scalar oracle walks the hierarchy one address per Python
    iteration with no cross-iteration shortcut, so its cost is linear in
    the pass count: one pass is timed and scaled to the vectorized
    engine's iteration count (timing all passes would add minutes
    without changing the ratio).  The vectorized run is timed end to
    end — schedule compilation, set-parallel replay and iteration-cycle
    fast-forward included — with the disk cache off, on a fresh
    hierarchy; the best of three repeats is reported, since the run is
    short enough (sub-second) that transient machine load would
    otherwise dominate the ratio.  ``bitwise_match`` records whether
    both engines produced identical counts for the timed pass.
    """
    from ..scc.tracegen import replay_trace
    from ..sparse.suite import build_matrix, entry_by_id

    try:
        entry = entry_by_id(args.replay_matrix_id)
    except KeyError as exc:
        raise SystemExit(f"repro bench: {exc}") from exc
    if not 0 < args.replay_scale <= 1.0:
        raise SystemExit(
            f"--replay-scale must be in (0, 1], got {args.replay_scale}"
        )
    if args.replay_iterations < 1:
        raise SystemExit(
            f"--replay-iterations must be >= 1, got {args.replay_iterations}"
        )
    a = build_matrix(args.replay_matrix_id, scale=args.replay_scale)
    its = args.replay_iterations
    t0 = time.perf_counter()
    scalar_counts = replay_trace(a, iterations=1, engine="scalar")
    scalar_1iter_s = time.perf_counter() - t0
    vectorized_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        vec_counts = replay_trace(
            a, iterations=its, engine="vectorized", use_disk_cache=False
        )
        vectorized_s = min(vectorized_s, time.perf_counter() - t0)
    vec_1iter = replay_trace(
        a, iterations=1, engine="vectorized", use_disk_cache=False
    )
    scalar_est_s = scalar_1iter_s * its
    return {
        "matrix": entry.name,
        "matrix_id": args.replay_matrix_id,
        "scale": args.replay_scale,
        "iterations": its,
        "accesses_per_pass": 3 * a.n_rows + 3 * a.nnz,
        "bitwise_match": vec_1iter == scalar_counts,
        "wallclock_scalar_1iter_s": scalar_1iter_s,
        "wallclock_scalar_est_s": scalar_est_s,
        "wallclock_vectorized_s": vectorized_s,
        "speedup": scalar_est_s / vectorized_s,
        "l1_hits": vec_counts.l1_hits,
        "l2_hits": vec_counts.l2_hits,
        "mem_misses": vec_counts.mem_misses,
    }


def _measure_machines(args: argparse.Namespace) -> dict:
    """Per-machine analytic-path timings (the ``machines`` entry).

    One model-mode run per registered machine
    (:func:`repro.machine.list_machines`) on the same matrix as the
    main measurement: ``model_mflops``/``model_makespan_s`` are
    deterministic per machine (the gate compares them against the
    baseline), ``wallclock_model_s`` is a warmed median like every
    other wall-clock figure in the snapshot.
    """
    from ..core.experiment import SpMVExperiment
    from ..machine.registry import get_machine, list_machines
    from ..sparse.suite import build_matrix, entry_by_id

    entry = entry_by_id(args.matrix_id)
    repeats = max(5, args.repeats)
    out = {}
    for machine_id in list_machines():
        machine = get_machine(machine_id)
        exp = _BENCH_EXPERIMENTS.get((args.matrix_id, args.scale, machine_id))
        if exp is None:
            exp = _BENCH_EXPERIMENTS[(args.matrix_id, args.scale, machine_id)] = (
                SpMVExperiment(
                    build_matrix(args.matrix_id, scale=args.scale),
                    name=entry.name,
                    machine=machine_id,
                )
            )
        spec = dict(
            n_cores=min(args.cores, machine.topology.n_cores),
            mapping=args.mapping,
            kernel=args.kernel,
            iterations=args.iterations,
            mode="model",
        )
        t0 = time.perf_counter()
        result = exp.run(**spec)  # warmup, untimed
        warm_s = time.perf_counter() - t0
        batch = max(1, min(200, int(0.005 / max(warm_s, 1e-6))))
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(batch):
                exp.run(**spec)
            samples.append((time.perf_counter() - t0) / batch)
        out[machine_id] = {
            "n_cores": spec["n_cores"],
            "model_mflops": result.mflops,
            "model_makespan_s": result.makespan,
            "wallclock_model_s": statistics.median(samples),
        }
    return out


def _measure_serve_dedup(args: argparse.Namespace) -> dict:
    """Cold vs dedup-hit latency through the campaign server (the
    ``serve_dedup`` entry).

    An in-process :class:`repro.serve.CampaignServer` on an ephemeral
    port, private store: the same spec is submitted twice over HTTP.
    The first submission simulates every point (cold), the second must
    be answered entirely from the content store — ``repeat_simulations``
    / ``repeat_dedup_hits`` are deterministic (the gate's check), the
    wall-clock speedup is informational like every latency figure here.
    """
    import tempfile

    from ..core.parallel import fork_context
    from ..store import cache_enabled

    if fork_context() is None:  # pragma: no cover - platform-dependent
        return {"skipped": "fork start method unavailable"}
    if not cache_enabled():
        return {"skipped": "disk cache disabled (REPRO_NO_DISK_CACHE)"}

    from ..serve.client import ServeClient
    from ..serve.protocol import CampaignSpec
    from ..serve.server import CampaignServer

    spec = CampaignSpec(
        ids=(args.matrix_id,),
        core_counts=tuple(sorted({1, args.cores})),
        mappings=(args.mapping,),
        kernels=(args.kernel,),
        scale=args.scale,
        iterations=args.iterations,
        mode="model",
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        tmp_path = Path(tmp)
        server = CampaignServer(
            tmp_path / "data", workers=2, store_root=tmp_path / "cache"
        )
        server.start()
        try:
            client = ServeClient(server.url)
            t0 = time.perf_counter()
            cold = client.wait(
                str(client.submit(spec)["job_id"]), timeout=600.0, poll_s=0.01
            )
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            hit = client.wait(
                str(client.submit(spec)["job_id"]), timeout=600.0, poll_s=0.01
            )
            hit_s = time.perf_counter() - t0
        finally:
            server.stop()
    return {
        "points": cold["points"],
        "cold_wallclock_s": cold_s,
        "dedup_wallclock_s": hit_s,
        "dedup_speedup": cold_s / hit_s if hit_s else float("inf"),
        "cold_simulations": cold["simulated"],
        "repeat_simulations": hit["simulated"],
        "repeat_dedup_hits": hit["dedup_hits"],
    }


def _measure_predict(args: argparse.Namespace) -> dict:
    """Predict-vs-model differential benchmark (the ``predict`` entry).

    Delegates to :func:`repro.predict.harness.differential_report`:
    per machine-zoo member, a timed cold ``mode="model"`` sweep labels
    the grid, a predictor is trained on those labels, and a fresh
    ``mode="predict"`` sweep (feature memos cleared, so extraction is
    paid in full) answers the same grid.  The headline numbers are the
    aggregate wall-clock ratio and the *worst* per-machine median
    relative makespan error — the two quantities the gate bounds with
    ``--min-predict-speedup`` / ``--max-predict-error``.  The exact-
    trace leg is skipped here; the differential test suite covers it.
    """
    from ..predict.harness import differential_report

    if args.min_predict_speedup <= 0:
        return {"skipped": "--min-predict-speedup 0"}
    report = differential_report(include_exact=False)
    agg = report["aggregate"]
    return {
        "grid": report["grid"],
        "predict_speedup_vs_model": agg["speedup"],
        "median_rel_err_pct": agg["worst_median_rel_err_pct"],
        "wallclock_model_s": agg["t_model_s"],
        "wallclock_predict_s": agg["t_predict_s"],
        "per_machine": {
            machine_id: {
                "n_points": m["n_points"],
                "speedup": m["speedup"],
                "median_rel_err_pct": m["median_rel_err_pct"],
                "p90_rel_err_pct": m["p90_rel_err_pct"],
            }
            for machine_id, m in report["machines"].items()
        },
    }


def _measure_snapshot(args: argparse.Namespace) -> dict:
    """The full ``bench snapshot`` measurement as a dict."""
    result = _traced_run(args, None)
    # Interleaved rounds, independent minima: machine speed drifts on
    # timescales longer than one measurement, so each variant keeps its
    # own fastest window.  The earlier pair-based scheme (fastest
    # untraced pair wins) still let a slow window land on the *traced*
    # half of the winning pair and swing the overhead figure by tens of
    # percentage points on a loaded host; the per-variant minimum of
    # interleaved rounds converges on the true cost of each side.
    _time_run(args, traced=True)  # process-level warmup, untimed
    rounds = [
        (_time_run(args, traced=False), _time_run(args, traced=True))
        for _ in range(5)
    ]
    untraced_s = min(r[0] for r in rounds)
    traced_s = min(r[1] for r in rounds)
    return {
        "benchmark": "spmv_model",
        "matrix": result.matrix_name,
        "n_cores": result.n_cores,
        "iterations": result.iterations,
        "scale": args.scale,
        "mode": args.mode,
        "workers": args.workers,
        "model_makespan_s": result.makespan,
        "model_mflops": result.mflops,
        "wallclock_untraced_s": untraced_s,
        "wallclock_traced_s": traced_s,
        "tracer_overhead_pct": 100.0 * (traced_s - untraced_s) / untraced_s,
        "sweep_core_counts": list(BENCH_SWEEP_COUNTS),
        "sweep_wallclock_s": _time_sweep(args),
        "supervise_overhead": _measure_supervise(args),
        "replay": _measure_replay(args),
        "machines": _measure_machines(args),
        "serve_dedup": _measure_serve_dedup(args),
        "predict": _measure_predict(args),
    }


def _run_gate(args: argparse.Namespace, out: Optional[TextIO]) -> int:
    """``bench gate``: fail on model-throughput regression vs baseline.

    The compared quantity is ``model_mflops`` — *simulated* throughput,
    which is deterministic for fixed arguments — so the gate is immune
    to CI machine noise: it only trips when a model change shifted the
    numbers without the baseline being regenerated in the same commit.

    The replay check is different in kind: the vectorized engine's
    *speedup* is wall-clock (so the threshold is set well below the
    snapshot's measured value) while its *bitwise match* against the
    scalar oracle is deterministic — any mismatch fails the gate
    outright.
    """
    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"repro bench gate: cannot read baseline: {exc}") from exc
    snapshot = _measure_snapshot(args)
    base_mflops = float(baseline.get("model_mflops", 0.0))
    fresh_mflops = snapshot["model_mflops"]
    regression = (base_mflops - fresh_mflops) / base_mflops if base_mflops else 0.0
    replay = snapshot["replay"]
    replay_ok = args.min_replay_speedup <= 0 or (
        replay["bitwise_match"] and replay["speedup"] >= args.min_replay_speedup
    )
    supervise = snapshot["supervise_overhead"]
    supervise_ok = (
        args.max_supervise_overhead <= 0
        or supervise["overhead_pct"] <= 100.0 * args.max_supervise_overhead
    )
    # Per-machine model throughput (deterministic, like model_mflops);
    # skipped for machines the committed baseline predates.
    base_machines = baseline.get("machines", {})
    machine_regressions = {}
    machines_ok = True
    for machine_id, fresh in snapshot["machines"].items():
        base = base_machines.get(machine_id)
        if not base:
            continue
        base_m = float(base.get("model_mflops", 0.0))
        reg = (base_m - fresh["model_mflops"]) / base_m if base_m else 0.0
        machine_regressions[machine_id] = 100.0 * reg
        if reg > args.max_regression:
            machines_ok = False
    # Serve dedup (deterministic, baseline-free): resubmitting the same
    # spec must simulate nothing and answer every point from the store.
    serve = snapshot.get("serve_dedup", {})
    serve_ok = bool(serve.get("skipped")) or (
        serve.get("repeat_simulations") == 0
        and serve.get("repeat_dedup_hits") == serve.get("points")
    )
    # Tracer overhead: wall-clock like the supervise bound, so the
    # threshold sits far above the measured figure — it trips on a
    # reintroduced per-core metric hot loop, not on scheduler jitter.
    tracer_ok = (
        args.max_tracer_overhead <= 0
        or snapshot["tracer_overhead_pct"] <= 100.0 * args.max_tracer_overhead
    )
    # Predict tier: speedup is wall-clock (loose threshold), error is
    # deterministic for a fixed grid (the model labels and the fit are
    # both reproducible bit for bit).
    predict = snapshot.get("predict", {})
    predict_ok = bool(predict.get("skipped")) or (
        predict.get("predict_speedup_vs_model", 0.0) >= args.min_predict_speedup
        and predict.get("median_rel_err_pct", float("inf"))
        <= args.max_predict_error
    )
    failed = (
        regression > args.max_regression
        or not replay_ok
        or not supervise_ok
        or not machines_ok
        or not serve_ok
        or not tracer_ok
        or not predict_ok
    )
    verdict = {
        "baseline": args.baseline,
        "baseline_mflops": base_mflops,
        "measured_mflops": fresh_mflops,
        "regression_pct": 100.0 * regression,
        "max_regression_pct": 100.0 * args.max_regression,
        "replay_speedup": replay["speedup"],
        "min_replay_speedup": args.min_replay_speedup,
        "replay_bitwise_match": replay["bitwise_match"],
        "supervise_overhead_pct": supervise["overhead_pct"],
        "max_supervise_overhead_pct": 100.0 * args.max_supervise_overhead,
        "machine_regressions_pct": machine_regressions,
        "serve_dedup_ok": serve_ok,
        "serve_repeat_simulations": serve.get("repeat_simulations"),
        "serve_dedup_speedup": serve.get("dedup_speedup"),
        "tracer_overhead_pct": snapshot["tracer_overhead_pct"],
        "max_tracer_overhead_pct": 100.0 * args.max_tracer_overhead,
        "tracer_ok": tracer_ok,
        "predict_speedup_vs_model": predict.get("predict_speedup_vs_model"),
        "min_predict_speedup": args.min_predict_speedup,
        "predict_median_rel_err_pct": predict.get("median_rel_err_pct"),
        "max_predict_error_pct": args.max_predict_error,
        "predict_ok": predict_ok,
        "status": "fail" if failed else "ok",
        "snapshot": snapshot,
    }
    if not getattr(args, "output", ""):
        args.output = "BENCH_gate.json"
    with open_output(args, out) as stream:
        stream.write(json.dumps(verdict, indent=2, sort_keys=True) + "\n")
    return 1 if verdict["status"] == "fail" else 0


def run_bench(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro bench``; writes the snapshot (or gate verdict) JSON."""
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.action == "gate":
        return _run_gate(args, out)
    snapshot = _measure_snapshot(args)
    if not getattr(args, "output", ""):
        args.output = "BENCH_spmv.json"
    with open_output(args, out) as stream:
        stream.write(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return 0


def bench_main(argv=None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``repro bench``; returns a process exit code."""
    return run_bench(build_bench_parser().parse_args(argv), out=out)
