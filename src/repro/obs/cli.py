"""``repro trace`` / ``repro bench`` subcommand implementations.

``trace`` runs one traced SpMV experiment on the model and exports the
event stream — as Chrome/Perfetto ``trace_event`` JSON (load it at
``chrome://tracing`` or https://ui.perfetto.dev), as a terminal
timeline, or as a flat metric summary.  Traces are deterministic: two
runs with the same arguments produce byte-identical exports.

``bench snapshot`` records the model's throughput plus the tracer's
wall-clock overhead to ``BENCH_spmv.json`` so perf regressions in the
observability layer are visible in review.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional, TextIO

from ..cliutil import add_json_flag, add_output_flag, open_output
from .export import chrome_trace_json, metrics_summary, render_timeline
from .tracer import Tracer

__all__ = [
    "trace_main",
    "bench_main",
    "configure_trace_parser",
    "configure_bench_parser",
    "run_trace",
    "run_bench",
]

EXPORTS = ("chrome", "timeline", "summary")


def configure_trace_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro trace`` arguments to an existing parser."""
    p.add_argument(
        "--export",
        choices=EXPORTS,
        default="chrome",
        help="output form: Chrome trace_event JSON, terminal timeline, "
        "or flat metric summary (default: chrome)",
    )
    p.add_argument(
        "--matrix-id",
        type=int,
        default=24,
        help="Table I matrix id to run (default 24)",
    )
    p.add_argument(
        "--cores", type=int, default=4, help="units of execution (default 4)"
    )
    p.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="matrix-size scale; 1.0 = published UFL sizes (default 0.05)",
    )
    p.add_argument(
        "--iterations", type=int, default=2, help="SpMV repetitions (default 2)"
    )
    p.add_argument(
        "--mapping",
        type=str,
        default="distance_reduction",
        help="UE-to-core mapping policy (default distance_reduction)",
    )
    p.add_argument(
        "--kernel",
        choices=("csr", "no_x_miss"),
        default="csr",
        help="SpMV kernel variant (default csr)",
    )
    p.add_argument(
        "--categories",
        type=str,
        default="",
        help="comma-separated event categories to record (default: all); "
        "e.g. rcce,sim,fault",
    )
    add_json_flag(p)
    add_output_flag(p)


def build_trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one traced SpMV experiment and export the trace.",
    )
    configure_trace_parser(p)
    return p


def _traced_run(args: argparse.Namespace, tracer: Optional[Tracer]):
    from ..core.experiment import SpMVExperiment
    from ..sparse.suite import build_matrix, entry_by_id

    if args.cores < 1:
        raise SystemExit(f"--cores must be >= 1, got {args.cores}")
    if not 0 < args.scale <= 1.0:
        raise SystemExit(f"--scale must be in (0, 1], got {args.scale}")
    if args.iterations < 1:
        raise SystemExit(f"--iterations must be >= 1, got {args.iterations}")
    try:
        entry = entry_by_id(args.matrix_id)
    except KeyError as exc:
        raise SystemExit(f"repro trace: {exc}") from exc
    exp = SpMVExperiment(build_matrix(args.matrix_id, scale=args.scale), name=entry.name)
    result = exp.run(
        n_cores=args.cores,
        mapping=args.mapping,
        kernel=args.kernel,
        iterations=args.iterations,
        tracer=tracer,
    )
    return result


def run_trace(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro trace`` from a parsed namespace."""
    cats = [c.strip() for c in args.categories.split(",") if c.strip()] or None
    tracer = Tracer(categories=cats)
    result = _traced_run(args, tracer)
    with open_output(args, out) as stream:
        if args.export == "chrome":
            stream.write(chrome_trace_json(tracer) + "\n")
        elif args.export == "timeline":
            stream.write(render_timeline(tracer) + "\n")
        else:
            summary = {
                "run": result.to_record(),
                "events": len(tracer.events),
                "metrics": metrics_summary(tracer),
            }
            stream.write(
                json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n"
            )
    return 0


def trace_main(argv=None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``repro trace``; returns a process exit code."""
    return run_trace(build_trace_parser().parse_args(argv), out=out)


def configure_bench_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro bench`` arguments to an existing parser."""
    p.add_argument(
        "action",
        choices=("snapshot",),
        help="'snapshot' measures model throughput and tracer overhead",
    )
    p.add_argument(
        "--matrix-id",
        type=int,
        default=24,
        help="Table I matrix id to benchmark (default 24)",
    )
    p.add_argument(
        "--cores", type=int, default=4, help="units of execution (default 4)"
    )
    p.add_argument(
        "--scale", type=float, default=0.05, help="matrix-size scale (default 0.05)"
    )
    p.add_argument(
        "--iterations", type=int, default=2, help="SpMV repetitions (default 2)"
    )
    p.add_argument(
        "--mapping",
        type=str,
        default="distance_reduction",
        help="UE-to-core mapping policy (default distance_reduction)",
    )
    p.add_argument(
        "--kernel",
        choices=("csr", "no_x_miss"),
        default="csr",
        help="SpMV kernel variant (default csr)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-clock reps per variant; the minimum is reported (default 3)",
    )
    add_json_flag(p)
    add_output_flag(p)


def build_bench_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark snapshots of the simulator (BENCH_spmv.json).",
    )
    configure_bench_parser(p)
    return p


def _time_run(args: argparse.Namespace, traced: bool) -> float:
    """Best-of-N wall-clock seconds of one experiment run."""
    best = float("inf")
    for _ in range(max(1, args.repeats)):
        tracer = Tracer() if traced else None
        t0 = time.perf_counter()
        _traced_run(args, tracer)
        best = min(best, time.perf_counter() - t0)
    return best


def run_bench(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro bench``; writes the snapshot JSON."""
    result = _traced_run(args, None)
    untraced_s = _time_run(args, traced=False)
    traced_s = _time_run(args, traced=True)
    snapshot = {
        "benchmark": "spmv_model",
        "matrix": result.matrix_name,
        "n_cores": result.n_cores,
        "iterations": result.iterations,
        "scale": args.scale,
        "model_makespan_s": result.makespan,
        "model_mflops": result.mflops,
        "wallclock_untraced_s": untraced_s,
        "wallclock_traced_s": traced_s,
        "tracer_overhead_pct": 100.0 * (traced_s - untraced_s) / untraced_s,
    }
    if not getattr(args, "output", ""):
        args.output = "BENCH_spmv.json"
    with open_output(args, out) as stream:
        stream.write(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return 0


def bench_main(argv=None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``repro bench``; returns a process exit code."""
    return run_bench(build_bench_parser().parse_args(argv), out=out)
