"""Exporters: Chrome/Perfetto ``trace_event`` JSON, terminal timelines,
and compact metric summaries for campaign records.

The Chrome format is the JSON array flavour documented in the Trace
Event Format spec: open the file at https://ui.perfetto.dev or
``chrome://tracing``.  Timestamps convert from simulated seconds to the
format's microseconds; serialization sorts keys and uses fixed
separators, so a given tracer state has exactly one byte rendering —
two same-seed runs export byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .tracer import TID_SCHED, TID_SIM, Tracer, jsonable

__all__ = [
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_timeline",
    "metrics_summary",
]

_LANE_NAMES = {TID_SIM: "simulator", TID_SCHED: "scheduler"}


def _lane_name(tid: int) -> str:
    return _LANE_NAMES.get(tid, f"ue {tid}")


def to_chrome_trace(tracer: Tracer, process_name: str = "repro-sim") -> Dict[str, Any]:
    """Render the tracer as a Chrome ``trace_event`` JSON object.

    Span/instant/counter events map 1:1; thread-name metadata events
    label each lane; the metrics snapshot rides along under
    ``otherData`` (ignored by viewers, kept for tooling).
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids = sorted({ev.tid for ev in tracer.events})
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": tid,
                "args": {"name": _lane_name(tid)},
            }
        )
    for ev in tracer.events:
        rendered: Dict[str, Any] = {
            "name": ev.name,
            "ph": ev.ph,
            # trace_event wants microseconds; round to a fixed grid so
            # the rendering is a pure function of the simulated time.
            "ts": round(ev.ts * 1e6, 3),
            "pid": 0,
            "tid": ev.tid,
            "cat": ev.cat or "default",
        }
        if ev.ph == "i":
            rendered["s"] = "t"  # instant scope: thread
        if ev.args is not None:
            rendered["args"] = {k: jsonable(v) for k, v in ev.args.items()}
        events.append(rendered)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": tracer.metrics.snapshot()},
    }


def chrome_trace_json(tracer: Tracer, process_name: str = "repro-sim") -> str:
    """Canonical (byte-stable) JSON text of :func:`to_chrome_trace`."""
    return json.dumps(
        to_chrome_trace(tracer, process_name=process_name),
        sort_keys=True,
        separators=(",", ":"),
    )


def write_chrome_trace(tracer: Tracer, path: str, process_name: str = "repro-sim") -> None:
    """Write the canonical Chrome trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(tracer, process_name=process_name))
        fh.write("\n")


def _spans_by_lane(tracer: Tracer) -> Dict[int, List[Tuple[str, float, float]]]:
    """Match B/E pairs per lane into (name, t0, t1) triples."""
    spans: Dict[int, List[Tuple[str, float, float]]] = {}
    stacks: Dict[int, List[Tuple[str, float]]] = {}
    for ev in tracer.events:
        if ev.ph == "B":
            stacks.setdefault(ev.tid, []).append((ev.name, ev.ts))
        elif ev.ph == "E":
            stack = stacks.get(ev.tid)
            if not stack:
                continue
            # Close the innermost matching begin (tolerates interleaved
            # names from hand-written begin/end calls).
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][0] == ev.name:
                    name, t0 = stack.pop(i)
                    spans.setdefault(ev.tid, []).append((name, t0, ev.ts))
                    break
    return spans


def render_timeline(tracer: Tracer, width: int = 72) -> str:
    """Per-lane ASCII timeline of the recorded spans.

    Each lane is one row; spans paint the row with the first letter of
    their name (later spans overpaint earlier ones, so nested detail
    wins).  A legend maps letters back to span names.
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    spans = _spans_by_lane(tracer)
    if not spans:
        return "(no spans recorded)"
    t1 = max(t for lane in spans.values() for _n, _t0, t in lane)
    t1 = t1 or 1e-12  # all-zero-length traces still render
    lines = []
    legend: Dict[str, str] = {}
    label_w = max(len(_lane_name(tid)) for tid in spans) + 1
    for tid in sorted(spans):
        row = ["."] * width
        # Outer spans close (and thus appear) after their children; paint
        # longest-first so nested detail overpaints its enclosing span.
        ordered = sorted(spans[tid], key=lambda s: s[1] - s[2])
        for name, s0, s1 in ordered:
            glyph = name[:1] or "#"
            legend.setdefault(glyph, name)
            i0 = min(int(s0 / t1 * width), width - 1)
            i1 = min(int(s1 / t1 * width), width - 1)
            for i in range(i0, i1 + 1):
                row[i] = glyph
        lines.append(f"{_lane_name(tid):>{label_w}} |{''.join(row)}|")
    lines.append("")
    lines.append(f"span of {t1:.6g} simulated seconds; glyphs:")
    for glyph, name in sorted(legend.items()):
        lines.append(f"  {glyph} = {name}")
    return "\n".join(lines)


def metrics_summary(tracer: Tracer) -> Dict[str, Any]:
    """Flat per-point metric summary for campaign JSONL records."""
    return tracer.metrics.flat_summary()
