"""``repro.machine`` — the multi-architecture model zoo.

The abstract machine description (:mod:`repro.machine.base`) plus the
registered targets:

- ``scc-48`` — the paper's 48-core Intel SCC (sim / model /
  exact-trace), delegating to :mod:`repro.scc` with zero drift;
- ``xeonphi-61`` — 61-core Knights Corner, bidirectional ring, GDDR5
  bandwidth band (Saule, Kaya & Catalyurek, arXiv:1302.1078);
- ``ft2000plus-64`` — 64-core Phytium FT-2000+, 8 NUMA panels with
  per-panel DDR4 MCs (Chen et al., arXiv:1911.08779).

Entry point::

    from repro.machine import get_machine
    phi = get_machine("xeonphi-61")
    SpMVExperiment(a, machine=phi).run(n_cores=61, mode="model")

See docs/MACHINES.md for the interface contract and how to add a
machine.
"""

from .base import (
    DEFAULT_MACHINE,
    CacheGeometry,
    CoreTimingParams,
    InterconnectModel,
    MachineConfig,
    MachineModel,
    MachineParams,
    MemorySystemModel,
    PowerModel,
    Topology,
    UniformMachineConfig,
)
from .ft2000plus import FT2000PlusMachine
from .generic import (
    BandwidthController,
    HopInterconnect,
    TableMemorySystem,
    TableTopology,
    panel_topology,
    ring_topology,
)
from .registry import MACHINE_REGISTRY, get_machine, list_machines, register_machine
from .sccmachine import SCCMachine
from .xeonphi import XeonPhiMachine

__all__ = [
    "DEFAULT_MACHINE",
    "CacheGeometry",
    "CoreTimingParams",
    "InterconnectModel",
    "MachineConfig",
    "MachineModel",
    "MachineParams",
    "MemorySystemModel",
    "PowerModel",
    "Topology",
    "UniformMachineConfig",
    "BandwidthController",
    "HopInterconnect",
    "TableMemorySystem",
    "TableTopology",
    "panel_topology",
    "ring_topology",
    "MACHINE_REGISTRY",
    "get_machine",
    "list_machines",
    "register_machine",
    "SCCMachine",
    "XeonPhiMachine",
    "FT2000PlusMachine",
]
