"""The paper's machine — Intel SCC — as the zoo's first member.

Pure delegation to :mod:`repro.scc`: the same ``SCCTopology``,
``MemorySystem``, ``MeshNetwork``, power model, presets and timing
objects the experiment core always used, now reached through the
:class:`repro.machine.base.MachineModel` interface.  Because every
substrate is the *same object*, SCC-via-MachineModel is bitwise
identical to the pre-zoo code path (pinned by the golden campaign
fixture and the differential fastpath harness).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..scc.chip import CONF0, PRESETS, SCCConfig
from ..scc.memory import MemorySystem
from ..scc.mesh import MeshNetwork
from ..scc.params import (
    CACHE_ASSOC,
    CACHE_LINE_BYTES,
    DEFAULT_TIMING,
    L1D_BYTES,
    L2_BYTES,
    P54CTimingParams,
)
from ..scc.topology import SCCTopology
from .base import CacheGeometry, MachineModel, MachineParams

__all__ = ["SCCMachine"]

_SCC_CACHE = CacheGeometry(
    line_bytes=CACHE_LINE_BYTES,
    l1_bytes=L1D_BYTES,
    l2_bytes=L2_BYTES,
    assoc=CACHE_ASSOC,
)


class SCCMachine(MachineModel):
    """48-core Intel SCC: 6x4 tile mesh, 4 DDR3 MCs, P54C cores.

    The only zoo member with the event-driven runtime (``mode="sim"``)
    and the trace-exact replay engine (``mode="exact-trace"``) — the
    paper's own machine keeps its full fidelity ladder.
    """

    machine_id = "scc-48"
    display_name = "Intel SCC (48 x P54C, 6x4 tile mesh, 4 DDR3 MCs)"
    comparison_label = "SCC"
    source = "Pichel & Rivera, IPDPS-W 2012 (the source paper); Intel SCC EAS"
    supported_modes = ("sim", "model", "exact-trace", "predict")

    def __init__(self) -> None:
        self._topology = SCCTopology()

    @property
    def topology(self) -> SCCTopology:
        return self._topology

    @property
    def cache(self) -> CacheGeometry:
        return _SCC_CACHE

    @property
    def timing(self) -> P54CTimingParams:
        return DEFAULT_TIMING

    @property
    def presets(self) -> Mapping[str, SCCConfig]:
        return PRESETS

    @property
    def default_config(self) -> SCCConfig:
        return CONF0

    def memory_system(
        self,
        config: SCCConfig,
        topology: Optional[SCCTopology] = None,
        tracer: Optional[Any] = None,
    ) -> MemorySystem:
        return MemorySystem(
            topology or self._topology, mem_mhz=config.mem_mhz, tracer=tracer
        )

    def interconnect(
        self,
        config: SCCConfig,
        topology: Optional[SCCTopology] = None,
        tracer: Optional[Any] = None,
    ) -> MeshNetwork:
        return MeshNetwork(
            topology or self._topology, mesh_mhz=config.mesh_mhz, tracer=tracer
        )

    def chip_power(self, config: SCCConfig) -> float:
        return config.full_chip_power()

    def params(self) -> MachineParams:
        return MachineParams(
            machine_id=self.machine_id,
            display_name=self.display_name,
            n_cores=self._topology.n_cores,
            n_controllers=len(self._topology.mc_coords),
            cache=_SCC_CACHE,
            interconnect="6x4 2D mesh (XY routing), 4 quadrant MCs",
            source=self.source,
        )
