"""The abstract machine description every model substrate plugs into.

The paper's study is expressed against one hard-wired machine — the
48-core SCC — but its *method* (calibrated per-core timing + cache
characterization + interconnect/MC contention + power) generalizes to
any many-core whose memory system is the first-order effect.  This
module defines the contract a machine must satisfy for
:class:`repro.core.experiment.SpMVExperiment` to run on it:

- :class:`CacheGeometry` — the per-core cache hierarchy the stream
  characterizer (:mod:`repro.core.trace`) is parameterized by;
- :class:`Topology` — core count, per-core memory-controller
  assignment and hop distances (drives the distance-reduction mapping
  and the Eq.-1-style latency);
- :class:`MemorySystemModel` — per-MC bandwidth plus the three latency
  coefficients of the paper's Eq. 1 form
  ``lat_core/f_core + lat_mesh_per_hop*hops/f_mesh + lat_mem/f_mem``;
- :class:`InterconnectModel` — point-to-point message timing, enough
  for the analytic barrier recurrence
  (:func:`repro.core.timing.barrier_exit_times`);
- :class:`MachineConfig` — a bootable configuration (clocks, L2
  switch, full-chip power);
- :class:`MachineModel` — the factory tying them together, registered
  under a stable id in :mod:`repro.machine.registry`.

This module is deliberately free of imports from the rest of the
package: concrete machines (:mod:`repro.machine.sccmachine`,
:mod:`repro.machine.xeonphi`, :mod:`repro.machine.ft2000plus`) depend
on it, never the other way around.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Protocol, Sequence, Tuple, runtime_checkable

__all__ = [
    "DEFAULT_MACHINE",
    "CacheGeometry",
    "CoreTimingParams",
    "MachineConfig",
    "UniformMachineConfig",
    "Topology",
    "MemorySystemModel",
    "InterconnectModel",
    "PowerModel",
    "MachineParams",
    "MachineModel",
]

#: registry id of the machine every default resolves to (the paper's).
DEFAULT_MACHINE = "scc-48"


@dataclass(frozen=True)
class CacheGeometry:
    """Per-core cache hierarchy the analytic stream model sees.

    ``l2_bytes`` is the capacity *available to one core* — for machines
    whose L2 is shared by a cluster (FT-2000+: 2 MB per 4 cores) it is
    the per-core share, which is what the HOTL working-set model needs.
    """

    line_bytes: int
    l1_bytes: int
    l2_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        for name in ("line_bytes", "l1_bytes", "l2_bytes", "assoc"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")


@dataclass(frozen=True)
class CoreTimingParams:
    """Per-element SpMV cycle costs of one core (generic machines).

    Field-compatible with :class:`repro.scc.params.P54CTimingParams` —
    the timing composition (:func:`repro.scc.core_model.core_time`,
    :func:`repro.sparse.fastpath.base_compute_times`) duck-types over
    exactly these four fields, so any machine can supply its own.
    """

    base_cycles_per_nnz: float
    row_overhead_cycles: float
    l2_hit_cycles: float
    call_overhead_cycles: float

    def __post_init__(self) -> None:
        for name in (
            "base_cycles_per_nnz",
            "row_overhead_cycles",
            "l2_hit_cycles",
            "call_overhead_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@runtime_checkable
class MachineConfig(Protocol):
    """Structural type of a bootable machine configuration.

    The SCC's :class:`~repro.scc.chip.SCCConfig` (per-tile frequency
    vector) and the generic :class:`UniformMachineConfig` both satisfy
    it; generic code paths (:mod:`repro.core.experiment`,
    :mod:`repro.core.timing`) annotate against this name rather than
    the SCC-specific one.
    """

    name: str
    mesh_mhz: float
    mem_mhz: float
    l2_enabled: bool

    def core_mhz_of_core(self, core: int) -> float: ...

    def full_chip_power(self) -> float: ...


@dataclass(frozen=True)
class UniformMachineConfig:
    """A configuration whose cores all run one clock (non-SCC machines).

    ``power_watts`` is the calibrated full-chip power of this operating
    point (source papers publish chip/TDP-class figures, not a per-rail
    model like the SCC's); ``full_chip_power`` simply reports it so the
    MFLOPS/W metrics compose identically across the zoo.
    """

    name: str
    core_mhz: float
    mesh_mhz: float
    mem_mhz: float
    l2_enabled: bool = True
    power_watts: float = 0.0

    def __post_init__(self) -> None:
        for name in ("core_mhz", "mesh_mhz", "mem_mhz"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.power_watts < 0:
            raise ValueError(f"power_watts must be >= 0, got {self.power_watts}")

    def core_mhz_of_core(self, core: int) -> float:
        """Core clock (MHz); uniform across the chip."""
        return self.core_mhz

    @property
    def is_uniform(self) -> bool:
        return True

    @property
    def core_mhz_value(self) -> float:
        return self.core_mhz

    def full_chip_power(self) -> float:
        """Calibrated full-chip watts of this operating point."""
        return self.power_watts

    def with_l2(self, enabled: bool) -> "UniformMachineConfig":
        """Copy of this config with the L2 caches toggled."""
        suffix = "" if enabled else "+noL2"
        return replace(self, name=self.name + suffix, l2_enabled=enabled)


@runtime_checkable
class Topology(Protocol):
    """Chip layout surface the mapping and memory layers consume."""

    @property
    def n_cores(self) -> int: ...

    def mc_index_of_core(self, core: int) -> int: ...

    def hops_to_mc(self, core: int) -> int: ...

    def cores_by_distance(self) -> Tuple[int, ...]: ...

    def cores_at_distance(self, hops: int) -> Tuple[int, ...]: ...

    def distance_histogram(self) -> Dict[int, int]: ...


class MemorySystemModel(Protocol):
    """Memory-side surface of a machine at one configuration.

    Must expose ``mem_mhz``, ``line_bytes``, ``topology``,
    ``controllers`` (objects with a ``bandwidth`` in bytes/s — the MC
    contention solver divides by ``line_bytes`` for line capacity), the
    three Eq.-1-form latency coefficients (``lat_core_cycles``,
    ``lat_mesh_cycles_per_hop``, ``lat_mem_cycles``) and
    ``latency_for_core``.
    """

    mem_mhz: float
    line_bytes: int
    lat_core_cycles: float
    lat_mesh_cycles_per_hop: float
    lat_mem_cycles: float

    def latency_for_core(self, core: int, core_mhz: float, mesh_mhz: float) -> float: ...


class InterconnectModel(Protocol):
    """Point-to-point message timing (barrier tokens, MPB transfers)."""

    mesh_mhz: float

    def core_message_time(self, src_core: int, dst_core: int, size_bytes: int) -> float: ...


class PowerModel(Protocol):
    """Full-chip power of one configuration."""

    def chip_power(self, config: MachineConfig) -> float: ...


@dataclass(frozen=True)
class MachineParams:
    """Headline structural facts of one machine (provenance record)."""

    machine_id: str
    display_name: str
    n_cores: int
    n_controllers: int
    cache: CacheGeometry
    interconnect: str          #: e.g. "6x4 2D mesh", "bidirectional ring"
    source: str                #: citation the calibration traces back to


class MachineModel(ABC):
    """One many-core target of the study, behind a stable id.

    Subclasses provide the substrates; :mod:`repro.core.experiment`
    composes them exactly as it always composed the SCC's — the SCC
    itself is just the first registered machine
    (:class:`repro.machine.sccmachine.SCCMachine`), re-expressed with
    zero behavioral drift.
    """

    #: stable registry id, e.g. ``"scc-48"``.
    machine_id: str = ""
    #: human-readable name for tables and docs.
    display_name: str = ""
    #: short label used in cross-architecture comparison rows.
    comparison_label: str = ""
    #: citation of the source paper the model is calibrated against.
    source: str = ""
    #: run modes this machine supports; only the SCC carries the
    #: event-driven runtime and the trace-exact replay engine.
    supported_modes: Tuple[str, ...] = ("model", "predict")

    # -- substrates ------------------------------------------------------

    @property
    @abstractmethod
    def topology(self) -> Topology:
        """The machine's (stateless, shareable) topology."""

    @property
    @abstractmethod
    def cache(self) -> CacheGeometry:
        """Per-core cache geometry."""

    @property
    @abstractmethod
    def timing(self) -> Any:
        """Per-element core timing params (four duck-typed cycle fields)."""

    @property
    @abstractmethod
    def presets(self) -> Mapping[str, MachineConfig]:
        """Named bootable configurations, ``"conf0"`` first."""

    @property
    def default_config(self) -> MachineConfig:
        """The configuration experiments run on unless told otherwise."""
        return self.presets["conf0"]

    @abstractmethod
    def memory_system(
        self,
        config: MachineConfig,
        topology: Optional[Topology] = None,
        tracer: Optional[Any] = None,
    ) -> Any:
        """A :class:`MemorySystemModel` at this configuration."""

    @abstractmethod
    def interconnect(
        self,
        config: MachineConfig,
        topology: Optional[Topology] = None,
        tracer: Optional[Any] = None,
    ) -> Any:
        """An :class:`InterconnectModel` at this configuration."""

    def chip_power(self, config: MachineConfig) -> float:
        """Full-chip watts of ``config`` (default: ask the config)."""
        return config.full_chip_power()

    # -- identity --------------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Total cores of the machine."""
        return self.topology.n_cores

    def cache_key(self) -> str:
        """Stable token mixed into content-store addresses.

        Two machines must never share a key (the same matrix replayed
        or modeled on different machines is a different artifact).  A
        *structural* change to an existing machine must be accompanied
        by a schema-version bump at the consuming store namespace —
        exactly the rule the SCC constants already follow.
        """
        return self.machine_id

    @abstractmethod
    def params(self) -> MachineParams:
        """The provenance record of this machine."""

    def supports_mode(self, mode: str) -> bool:
        """Whether this machine can run the given experiment mode."""
        return mode in self.supported_modes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.machine_id!r}: {self.display_name}>"


Sequence  # noqa: B018 — re-exported via typing for subclasses' hints
