"""Phytium FT-2000+ (64 ARMv8 cores, NUMA panels) machine model.

Calibrated against Chen et al., "Characterizing Scalability of Sparse
Matrix-Vector Multiplications on Phytium FT-2000+"
(arXiv:1911.08779): 64 FTC662 ARMv8 cores at 2.2-2.4 GHz organised as
8 panels of 8 cores, each panel with its own routing cells, L2 slice
and DDR4 memory controller, panels joined by a NUMA mesh.  Their
headline findings: SpMV scales well while a panel's local MC serves
its cores, NUMA-remote traffic costs roughly 1.5-2x local latency,
and the sustained per-panel DDR4 bandwidth (~2/3 of the 19.2 GB/s
DDR4-2400 peak) bounds throughput for large matrices.

Modeling choices:

- **Panels as MC domains.** One DDR4-2400 controller per panel
  (~12.8 GB/s sustained each, ~102 GB/s aggregate); a core's SpMV
  working set lives on its own panel (the paper's NUMA-local
  placement), so ``hops_to_mc`` covers the intra-panel spine only
  (slots pair up: 0-3 hops).
- **NUMA mesh hop costs.** Crossing panels costs Manhattan distance on
  the 4x2 panel grid at ``INTER_PANEL_HOP_COST`` spine-hops per mesh
  hop; :meth:`FT2000PlusMachine.panel_locality_ratio` exposes the
  resulting remote/local latency ratio, pinned by the anchor test to
  the paper's measured 1.3-2.2x band.
- **Cache.** 2 MB L2 per 4-core cluster -> 512 KB per-core share; the
  cluster sharing shows up as a higher L2 hit cost (~30 cycles).
- **Power.** Chen et al. quote a ~96 W chip under load at 2.2 GHz;
  the 2.4 GHz preset scales to ~110 W.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .base import (
    CacheGeometry,
    CoreTimingParams,
    MachineModel,
    MachineParams,
    UniformMachineConfig,
)
from .generic import HopInterconnect, TableMemorySystem, TableTopology, panel_topology

__all__ = ["FT2000PlusMachine"]

N_PANELS = 8
CORES_PER_PANEL = 8
N_CORES = N_PANELS * CORES_PER_PANEL
PANEL_GRID_X = 4
#: spine-hops one NUMA mesh hop is worth (remote accesses are wider/slower).
INTER_PANEL_HOP_COST = 2

#: sustained bandwidth of one DDR4-2400 controller (2/3 of 19.2 GB/s peak).
MC_BANDWIDTH_BYTES_PER_SEC_AT_1200 = 12.8e9
CALIBRATION_MEM_MHZ = 1200.0

#: Eq.-1-form latency coefficients: ~27 ns core-side + ~10 ns/spine-hop
#: + ~83 ns DRAM -> ~110-160 ns local fills, matching the paper's
#: measured local-access latency class.
LAT_CORE_CYCLES = 60.0
LAT_MESH_CYCLES_PER_HOP = 20.0
LAT_MEM_CYCLES = 100.0

#: interconnect (routing-cell spine + NUMA mesh) clock and link width.
MESH_HOP_CYCLES = 3.0
MESH_LINK_BYTES_PER_CYCLE = 32.0

_CACHE = CacheGeometry(
    line_bytes=64, l1_bytes=32 * 1024, l2_bytes=512 * 1024, assoc=16
)

#: FTC662 is a modest out-of-order 3-wide core: ~2.5 cycles/nnz effective.
FT_TIMING = CoreTimingParams(
    base_cycles_per_nnz=2.5,
    row_overhead_cycles=8.0,
    l2_hit_cycles=30.0,
    call_overhead_cycles=3000.0,
)

#: production part: 2.2 GHz cores, 2.0 GHz mesh, DDR4-2400.
FT_CONF0 = UniformMachineConfig(
    name="conf0", core_mhz=2200.0, mesh_mhz=2000.0, mem_mhz=1200.0, power_watts=96.0
)
#: binned 2.4 GHz part, same memory system.
FT_CONF1 = UniformMachineConfig(
    name="conf1", core_mhz=2400.0, mesh_mhz=2000.0, mem_mhz=1200.0, power_watts=110.0
)

FT_PRESETS = {"conf0": FT_CONF0, "conf1": FT_CONF1}


class FT2000PlusMachine(MachineModel):
    """64-core Phytium FT-2000+: 8 NUMA panels x 8 cores, DDR4 MCs."""

    machine_id = "ft2000plus-64"
    display_name = "Phytium FT-2000+ (64 ARMv8 cores, 8 NUMA panels, DDR4)"
    comparison_label = "FT-2000+"
    source = "Chen et al., arXiv:1911.08779"
    supported_modes = ("model", "predict")

    def __init__(self, inter_panel_hop_cost: int = INTER_PANEL_HOP_COST) -> None:
        #: mesh hops charged per panel-grid step; the ablation knob the
        #: locality sensitivity test turns (registry instances keep the
        #: calibrated default).
        self.inter_panel_hop_cost = inter_panel_hop_cost
        self._topology = panel_topology(
            N_PANELS, CORES_PER_PANEL, PANEL_GRID_X, inter_panel_hop_cost
        )

    @property
    def topology(self) -> TableTopology:
        return self._topology

    @property
    def cache(self) -> CacheGeometry:
        return _CACHE

    @property
    def timing(self) -> CoreTimingParams:
        return FT_TIMING

    @property
    def presets(self) -> Mapping[str, UniformMachineConfig]:
        return FT_PRESETS

    def memory_system(
        self,
        config: UniformMachineConfig,
        topology: Optional[TableTopology] = None,
        tracer: Optional[Any] = None,
    ) -> TableMemorySystem:
        return TableMemorySystem(
            topology or self._topology,
            mem_mhz=config.mem_mhz,
            line_bytes=_CACHE.line_bytes,
            bandwidth_per_mc=MC_BANDWIDTH_BYTES_PER_SEC_AT_1200,
            calibration_mem_mhz=CALIBRATION_MEM_MHZ,
            lat_core_cycles=LAT_CORE_CYCLES,
            lat_mesh_cycles_per_hop=LAT_MESH_CYCLES_PER_HOP,
            lat_mem_cycles=LAT_MEM_CYCLES,
            machine_id=self.machine_id,
        )

    def interconnect(
        self,
        config: UniformMachineConfig,
        topology: Optional[TableTopology] = None,
        tracer: Optional[Any] = None,
    ) -> HopInterconnect:
        return HopInterconnect(
            topology or self._topology,
            mesh_mhz=config.mesh_mhz,
            hop_cycles=MESH_HOP_CYCLES,
            link_bytes_per_cycle=MESH_LINK_BYTES_PER_CYCLE,
        )

    def panel_locality_ratio(self, config: Optional[UniformMachineConfig] = None) -> float:
        """Remote-panel / local-panel memory latency ratio.

        Local: the mean uncontended fill latency over one panel's slots
        (hops 0-3 on the spine).  Remote: the same fill issued against
        the farthest panel's controller, crossing the NUMA mesh.  Chen
        et al. measure this class of penalty at roughly 1.5-2x; the
        anchor test pins the model inside [1.3, 2.2].
        """
        cfg = config or self.default_config
        mem = self.memory_system(cfg)
        core_mhz = cfg.core_mhz_of_core(0)
        panel_slots = range(CORES_PER_PANEL)
        local = sum(
            mem.latency_for_core(q, core_mhz, cfg.mesh_mhz) for q in panel_slots
        ) / CORES_PER_PANEL
        # farthest panel on the 4x2 grid from panel 0 is panel 7: (3, 1).
        max_mesh_hops = (PANEL_GRID_X - 1) + (N_PANELS // PANEL_GRID_X - 1)
        remote_extra_hops = max_mesh_hops * self.inter_panel_hop_cost
        remote = local + (
            LAT_MESH_CYCLES_PER_HOP * remote_extra_hops / (cfg.mesh_mhz * 1e6)
        )
        return remote / local

    def params(self) -> MachineParams:
        return MachineParams(
            machine_id=self.machine_id,
            display_name=self.display_name,
            n_cores=N_CORES,
            n_controllers=N_PANELS,
            cache=_CACHE,
            interconnect="8 NUMA panels (4x2 mesh), per-panel DDR4 MC",
            source=self.source,
        )
