"""The machine registry: stable ids -> lazily built singletons.

``get_machine("scc-48")`` is the one public entry point the rest of
the package (experiments, campaigns, figures, CLI, chaos harness)
resolves machines through.  Typo'd ids raise ``KeyError`` with
closest-match suggestions so ``--machine xeonphi61`` fails usefully.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Tuple, Union

from .base import DEFAULT_MACHINE, MachineModel
from .ft2000plus import FT2000PlusMachine
from .sccmachine import SCCMachine
from .xeonphi import XeonPhiMachine

__all__ = [
    "MACHINE_REGISTRY",
    "get_machine",
    "list_machines",
    "register_machine",
]

#: id -> factory.  Mutated only through :func:`register_machine`.
MACHINE_REGISTRY: Dict[str, Callable[[], MachineModel]] = {
    "scc-48": SCCMachine,
    "xeonphi-61": XeonPhiMachine,
    "ft2000plus-64": FT2000PlusMachine,
}

_INSTANCES: Dict[str, MachineModel] = {}


def get_machine(machine: Union[str, MachineModel] = DEFAULT_MACHINE) -> MachineModel:
    """Resolve a machine id (or pass a model through) to its singleton.

    Raises ``KeyError`` naming the registered machines — and the
    closest matches to what was typed — for unknown ids.
    """
    if isinstance(machine, MachineModel):
        return machine
    try:
        factory = MACHINE_REGISTRY[machine]
    except KeyError:
        close = difflib.get_close_matches(str(machine), MACHINE_REGISTRY, n=3, cutoff=0.4)
        hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
        raise KeyError(
            f"unknown machine {machine!r}; registered machines: "
            f"{sorted(MACHINE_REGISTRY)}{hint}"
        ) from None
    inst = _INSTANCES.get(machine)
    if inst is None:
        inst = _INSTANCES[machine] = factory()
        if inst.machine_id != machine:
            raise ValueError(
                f"machine registered as {machine!r} reports "
                f"machine_id={inst.machine_id!r}"
            )
    return inst


def list_machines() -> Tuple[str, ...]:
    """Registered machine ids, default first, then sorted."""
    rest = sorted(m for m in MACHINE_REGISTRY if m != DEFAULT_MACHINE)
    return (DEFAULT_MACHINE, *rest) if DEFAULT_MACHINE in MACHINE_REGISTRY else tuple(rest)


def register_machine(machine_id: str, factory: Callable[[], MachineModel]) -> None:
    """Register an out-of-tree machine (see docs/MACHINES.md)."""
    if machine_id in MACHINE_REGISTRY:
        raise ValueError(f"machine {machine_id!r} is already registered")
    MACHINE_REGISTRY[machine_id] = factory
