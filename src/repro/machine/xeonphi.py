"""Intel Xeon Phi (Knights Corner, 61 cores) machine model.

Calibrated against Saule, Kaya & Catalyurek, "Performance Evaluation of
Sparse Matrix Multiplication Kernels on Intel Xeon Phi"
(arXiv:1302.1078): 61 in-order cores at ~1.1 GHz on a bidirectional
ring, 512 KB L2 per core, 8 GDDR5 memory controllers interleaved
around the ring, 4-way SMT needed to fill the pipelines.  Their
headline result: SpMV is bandwidth-bound — with enough threads the
best kernels saturate at roughly 15-22 GFLOPS (double precision),
far below the compute peak, tracking the ~150-170 GB/s sustainable
read bandwidth.

Modeling choices:

- **Ring + interleaved MCs.** Cores sit on ring stops; each is served
  by its nearest of 8 controllers (GDDR5 interleaving makes distance a
  second-order effect, so hop counts are small: 0-4).
- **SMT occupancy folded into timing.** The model keeps one UE per
  core (the paper's framework), so the 4-way SMT that hides the
  in-order pipeline's latency appears as an *effective* per-nnz cycle
  cost: ~12 issue cycles/nnz per thread divided by ~4 resident threads
  -> ``base_cycles_per_nnz = 3.0`` at full occupancy
  (``SMT_OCCUPANCY = 4``).
- **GDDR5 bandwidth band.** 8 MCs x ~19 GB/s sustained = ~152 GB/s
  aggregate, the middle of the paper's measured STREAM-like band;
  scaling with ``mem_mhz`` around the 2750 MHz (5.5 GT/s) calibration
  point.
- **Power.** KNC cards publish board-level figures, not per-rail
  models: ~245 W under load for the SE10P-class part, ~300 W for the
  7120-class turbo preset.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .base import (
    CacheGeometry,
    CoreTimingParams,
    MachineModel,
    MachineParams,
    UniformMachineConfig,
)
from .generic import HopInterconnect, TableMemorySystem, TableTopology, ring_topology

__all__ = ["XeonPhiMachine"]

N_CORES = 61
N_MCS = 8
#: hardware threads per core the effective timing already accounts for.
SMT_OCCUPANCY = 4

#: sustained bandwidth of one GDDR5 controller at the calibration clock.
MC_BANDWIDTH_BYTES_PER_SEC_AT_2750 = 19.0e9
CALIBRATION_MEM_MHZ = 2750.0

#: Eq.-1-form latency coefficients (~250-300 ns uncontended line fill,
#: the KNC L2-miss-to-GDDR5 latency class).
LAT_CORE_CYCLES = 130.0
LAT_MESH_CYCLES_PER_HOP = 6.0
LAT_MEM_CYCLES = 275.0

#: ring router cost and link width (64-byte-wide data ring).
RING_HOP_CYCLES = 2.0
RING_LINK_BYTES_PER_CYCLE = 64.0

_CACHE = CacheGeometry(line_bytes=64, l1_bytes=32 * 1024, l2_bytes=512 * 1024, assoc=8)

#: effective per-core timing at full 4-way SMT occupancy (see module doc).
PHI_TIMING = CoreTimingParams(
    base_cycles_per_nnz=3.0,
    row_overhead_cycles=6.0,
    l2_hit_cycles=24.0,
    call_overhead_cycles=5000.0,
)

#: SE10P-class base part: 61 cores @ 1100 MHz, GDDR5 5.5 GT/s.
PHI_CONF0 = UniformMachineConfig(
    name="conf0", core_mhz=1100.0, mesh_mhz=1100.0, mem_mhz=2750.0, power_watts=245.0
)
#: 7120-class turbo part: 1238 MHz cores, same memory clock.
PHI_CONF1 = UniformMachineConfig(
    name="conf1", core_mhz=1238.0, mesh_mhz=1238.0, mem_mhz=2750.0, power_watts=300.0
)

PHI_PRESETS = {"conf0": PHI_CONF0, "conf1": PHI_CONF1}


def _mc_stops() -> tuple:
    return tuple(round(N_CORES * k / N_MCS) for k in range(N_MCS))


class XeonPhiMachine(MachineModel):
    """61-core Knights Corner: bidirectional ring, 8 GDDR5 MCs."""

    machine_id = "xeonphi-61"
    display_name = "Intel Xeon Phi KNC (61 cores, bidirectional ring, 8 GDDR5 MCs)"
    comparison_label = "Xeon Phi"
    source = "Saule, Kaya & Catalyurek, arXiv:1302.1078"
    supported_modes = ("model", "predict")

    def __init__(self) -> None:
        self._topology = ring_topology(N_CORES, _mc_stops())

    @property
    def topology(self) -> TableTopology:
        return self._topology

    @property
    def cache(self) -> CacheGeometry:
        return _CACHE

    @property
    def timing(self) -> CoreTimingParams:
        return PHI_TIMING

    @property
    def presets(self) -> Mapping[str, UniformMachineConfig]:
        return PHI_PRESETS

    def memory_system(
        self,
        config: UniformMachineConfig,
        topology: Optional[TableTopology] = None,
        tracer: Optional[Any] = None,
    ) -> TableMemorySystem:
        return TableMemorySystem(
            topology or self._topology,
            mem_mhz=config.mem_mhz,
            line_bytes=_CACHE.line_bytes,
            bandwidth_per_mc=MC_BANDWIDTH_BYTES_PER_SEC_AT_2750,
            calibration_mem_mhz=CALIBRATION_MEM_MHZ,
            lat_core_cycles=LAT_CORE_CYCLES,
            lat_mesh_cycles_per_hop=LAT_MESH_CYCLES_PER_HOP,
            lat_mem_cycles=LAT_MEM_CYCLES,
            machine_id=self.machine_id,
        )

    def interconnect(
        self,
        config: UniformMachineConfig,
        topology: Optional[TableTopology] = None,
        tracer: Optional[Any] = None,
    ) -> HopInterconnect:
        return HopInterconnect(
            topology or self._topology,
            mesh_mhz=config.mesh_mhz,
            hop_cycles=RING_HOP_CYCLES,
            link_bytes_per_cycle=RING_LINK_BYTES_PER_CYCLE,
        )

    def aggregate_bandwidth(self, config: UniformMachineConfig) -> float:
        """Aggregate sustained memory bandwidth (bytes/s) at ``config``."""
        mem = self.memory_system(config)
        return sum(mc.bandwidth for mc in mem.controllers)

    def params(self) -> MachineParams:
        return MachineParams(
            machine_id=self.machine_id,
            display_name=self.display_name,
            n_cores=N_CORES,
            n_controllers=N_MCS,
            cache=_CACHE,
            interconnect="bidirectional ring, 8 interleaved GDDR5 MCs",
            source=self.source,
        )
