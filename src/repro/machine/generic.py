"""Reusable concrete substrates for non-SCC machines.

The SCC implementation (:mod:`repro.scc`) keeps its bespoke classes —
they carry the event-driven runtime hooks the other machines don't
need.  The machines added on top of it (Xeon Phi ring, FT-2000+ NUMA
panels) share these table-driven building blocks instead:

- :class:`TableTopology` — topology defined by per-core (MC index,
  hops-to-MC) tables plus a core-to-core hop function;
- :func:`ring_topology` / :func:`panel_topology` — builders for the
  two interconnect shapes in the zoo;
- :class:`TableMemorySystem` — per-MC bandwidth + the Eq.-1-form
  latency coefficients, satisfying the same duck surface as
  :class:`repro.scc.memory.MemorySystem`;
- :class:`HopInterconnect` — point-to-point message timing from the
  hop function (enough for the analytic barrier recurrence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TableTopology",
    "ring_topology",
    "panel_topology",
    "BandwidthController",
    "TableMemorySystem",
    "HopInterconnect",
]


class TableTopology:
    """A chip layout captured as per-core lookup tables.

    Exposes the :class:`repro.machine.base.Topology` surface — MC
    assignment, hop distances, distance-sorted core order — without
    committing to any physical coordinate system.  Instances are
    stateless and safely shared across experiments.
    """

    def __init__(
        self,
        n_cores: int,
        mc_index: Sequence[int],
        hops_to_mc: Sequence[int],
        core_hops: Callable[[int, int], int],
        n_controllers: Optional[int] = None,
    ) -> None:
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        if len(mc_index) != n_cores or len(hops_to_mc) != n_cores:
            raise ValueError("mc_index and hops_to_mc must have one entry per core")
        self._n_cores = n_cores
        self._mc_index = tuple(int(i) for i in mc_index)
        self._hops = tuple(int(h) for h in hops_to_mc)
        self._core_hops = core_hops
        self._n_controllers = (
            n_controllers if n_controllers is not None else max(self._mc_index) + 1
        )
        # stable distance order: (hops to MC, core id) — same tie-break
        # rule as SCCTopology.cores_by_distance.
        self._by_distance = tuple(
            sorted(range(n_cores), key=lambda c: (self._hops[c], c))
        )

    @property
    def n_cores(self) -> int:
        return self._n_cores

    @property
    def n_controllers(self) -> int:
        return self._n_controllers

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self._n_cores:
            raise ValueError(f"core must be in [0, {self._n_cores}), got {core}")

    def mc_index_of_core(self, core: int) -> int:
        """Index of the memory controller serving ``core``."""
        self._check_core(core)
        return self._mc_index[core]

    def hops_to_mc(self, core: int) -> int:
        """Interconnect hops from ``core`` to its memory controller."""
        self._check_core(core)
        return self._hops[core]

    def hops_between_cores(self, a: int, b: int) -> int:
        """Interconnect hops between two cores."""
        self._check_core(a)
        self._check_core(b)
        return self._core_hops(a, b)

    def cores_by_distance(self) -> Tuple[int, ...]:
        """All cores sorted by (hops to MC, core id)."""
        return self._by_distance

    def cores_at_distance(self, hops: int) -> Tuple[int, ...]:
        """Cores exactly ``hops`` from their memory controller."""
        return tuple(c for c in range(self._n_cores) if self._hops[c] == hops)

    def cores_of_controller(self, mc_index: int) -> Tuple[int, ...]:
        """Cores served by controller ``mc_index``."""
        return tuple(c for c in range(self._n_cores) if self._mc_index[c] == mc_index)

    def distance_histogram(self) -> Dict[int, int]:
        """Map hop distance -> number of cores at that distance."""
        hist: Dict[int, int] = {}
        for h in self._hops:
            hist[h] = hist.get(h, 0) + 1
        return dict(sorted(hist.items()))


def ring_topology(n_cores: int, mc_stops: Sequence[int]) -> TableTopology:
    """Cores on a bidirectional ring with MCs at given ring stops.

    Each core is served by its nearest controller (ties to the lower
    MC index), the Xeon Phi's interleaved-GDDR5 first-order behavior.
    Hop distance is the shorter way around the ring.
    """

    stops = tuple(int(s) for s in mc_stops)
    if not stops:
        raise ValueError("need at least one MC stop")

    def ring_dist(a: int, b: int) -> int:
        d = abs(a - b) % n_cores
        return min(d, n_cores - d)

    mc_index: List[int] = []
    hops: List[int] = []
    for core in range(n_cores):
        dist, idx = min((ring_dist(core, stop), i) for i, stop in enumerate(stops))
        mc_index.append(idx)
        hops.append(dist)
    return TableTopology(n_cores, mc_index, hops, ring_dist, n_controllers=len(stops))


def panel_topology(
    n_panels: int,
    cores_per_panel: int,
    panel_grid_x: int,
    inter_panel_hop_cost: int = 2,
) -> TableTopology:
    """NUMA-panel layout: panels on a 2D grid, one MC per panel.

    Within a panel, core slots pair up along a short local spine, so a
    slot ``q`` sits ``q // 2`` hops from the panel's controller (the
    FT-2000+ routing cells).  Crossing panels costs the Manhattan
    distance between panel grid coordinates times
    ``inter_panel_hop_cost`` (NUMA mesh hops are wider/slower than the
    intra-panel spine).
    """

    n_cores = n_panels * cores_per_panel
    if n_panels % panel_grid_x != 0:
        raise ValueError("n_panels must tile the panel grid exactly")

    def panel_coord(panel: int) -> Tuple[int, int]:
        return panel % panel_grid_x, panel // panel_grid_x

    def core_hops(a: int, b: int) -> int:
        pa, qa = divmod(a, cores_per_panel)
        pb, qb = divmod(b, cores_per_panel)
        intra = abs(qa // 2 - qb // 2)
        if pa == pb:
            return intra
        (xa, ya), (xb, yb) = panel_coord(pa), panel_coord(pb)
        manhattan = abs(xa - xb) + abs(ya - yb)
        return qa // 2 + qb // 2 + manhattan * inter_panel_hop_cost

    mc_index = [core // cores_per_panel for core in range(n_cores)]
    hops = [(core % cores_per_panel) // 2 for core in range(n_cores)]
    return TableTopology(n_cores, mc_index, hops, core_hops, n_controllers=n_panels)


@dataclass(frozen=True)
class BandwidthController:
    """One memory controller: sustained bandwidth at the current clock."""

    index: int
    bandwidth: float  #: bytes/second

    @property
    def line_service_time(self) -> float:  # pragma: no cover - debug aid
        return 1.0 / self.bandwidth


class TableMemorySystem:
    """Memory system of a generic machine at one configuration.

    Same duck surface the solvers consume from
    :class:`repro.scc.memory.MemorySystem`: ``mem_mhz``, ``line_bytes``,
    ``topology``, ``controllers`` (with ``.bandwidth``), the three
    Eq.-1-form latency coefficients, and ``latency_for_core``.
    Bandwidth scales linearly with the memory clock around the
    calibration point, mirroring the SCC controller model.
    """

    def __init__(
        self,
        topology: TableTopology,
        mem_mhz: float,
        line_bytes: int,
        bandwidth_per_mc: float,
        calibration_mem_mhz: float,
        lat_core_cycles: float,
        lat_mesh_cycles_per_hop: float,
        lat_mem_cycles: float,
        machine_id: str = "",
    ) -> None:
        self.topology = topology
        self.mem_mhz = float(mem_mhz)
        self.line_bytes = int(line_bytes)
        self.lat_core_cycles = float(lat_core_cycles)
        self.lat_mesh_cycles_per_hop = float(lat_mesh_cycles_per_hop)
        self.lat_mem_cycles = float(lat_mem_cycles)
        self.machine_id = machine_id
        scale = self.mem_mhz / float(calibration_mem_mhz)
        self.controllers = tuple(
            BandwidthController(i, bandwidth_per_mc * scale)
            for i in range(topology.n_controllers)
        )

    def controller_of_core(self, core: int) -> BandwidthController:
        """The controller serving ``core``."""
        return self.controllers[self.topology.mc_index_of_core(core)]

    def latency_for_core(self, core: int, core_mhz: float, mesh_mhz: float) -> float:
        """Uncontended line-fill latency seen by ``core`` (seconds)."""
        hops = self.topology.hops_to_mc(core)
        return (
            self.lat_core_cycles / (core_mhz * 1e6)
            + self.lat_mesh_cycles_per_hop * hops / (mesh_mhz * 1e6)
            + self.lat_mem_cycles / (self.mem_mhz * 1e6)
        )

    def group_cores_by_controller(
        self, cores: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Partition ``cores`` by serving controller index."""
        groups: Dict[int, List[int]] = {}
        for c in cores:
            groups.setdefault(self.topology.mc_index_of_core(c), []).append(c)
        return groups


class HopInterconnect:
    """Point-to-point message timing over a hop-distance function.

    ``core_message_time`` mirrors the SCC mesh form: per-hop router
    cycles plus serialization at the link width, all at the
    interconnect clock.  Enough surface for
    :func:`repro.core.timing.resolve_barrier_schedule`.
    """

    def __init__(
        self,
        topology: TableTopology,
        mesh_mhz: float,
        hop_cycles: float,
        link_bytes_per_cycle: float,
    ) -> None:
        self.topology = topology
        self.mesh_mhz = float(mesh_mhz)
        self.hop_cycles = float(hop_cycles)
        self.link_bytes_per_cycle = float(link_bytes_per_cycle)

    @property
    def cycle_time(self) -> float:
        return 1.0 / (self.mesh_mhz * 1e6)

    @property
    def link_bandwidth(self) -> float:
        """Bytes/second through one link."""
        return self.link_bytes_per_cycle * self.mesh_mhz * 1e6

    def core_message_time(self, src_core: int, dst_core: int, size_bytes: int) -> float:
        """Seconds to move ``size_bytes`` between two cores."""
        hops = max(1, self.topology.hops_between_cores(src_core, dst_core))
        return hops * self.hop_cycles * self.cycle_time + size_bytes / self.link_bandwidth
