"""The campaign server: HTTP front end, journal, sharded scheduler.

``repro serve`` turns the simulation pipeline into a long-running
service.  One :class:`CampaignServer` owns four cooperating pieces:

* a :class:`~repro.serve.queue.PointQueue` holding the dedup/claim
  invariants (see that module's docstring);
* a **scheduler thread** that drains the queue in batches and shards
  each batch across a supervised fork pool
  (:func:`repro.core.supervise.supervised_iter_ordered`) — the same
  timeouts, seeded-backoff retries, degradation ladder and quarantine
  semantics campaign sweeps get, so a SIGKILLed worker or a poison
  point never takes the service down;
* a **journal** (``jobs.jsonl``, append + fsync per event) from which
  a restarted server resubmits every journaled job: finished points
  answer from the content store instantly, interrupted ones re-run,
  quarantined ones retry — crash recovery is just dedup replayed;
* a threaded **HTTP server** (stdlib ``http.server``) exposing the
  ``/api/v1`` surface documented in :mod:`repro.serve.protocol`.

Observability: every ``serve.*`` counter mutation is funnelled through
the queue lock (the :class:`~repro.obs.metrics.MetricsRegistry`
serialization contract), and the worker-health board aggregates
:meth:`~repro.core.supervise.TaskOutcome.failure_kinds` per outcome —
the same only-observed-failures semantics as the simulated
:class:`repro.faults.reliable.FailureDetector`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.campaign import CampaignContext, CampaignPoint
from ..core.experiment import SpMVExperiment
from ..core.supervise import SupervisePolicy, supervised_iter_ordered
from ..obs.metrics import MetricsRegistry, summary_prefix
from ..store import ContentStore
from .protocol import API_ROOT, CampaignSpec, SpecError, execute_point
from .queue import Job, PointQueue

__all__ = ["CampaignServer", "STORE_NAMESPACE"]

#: content-store namespace (directory) holding served point records.
STORE_NAMESPACE = "serve-points"

#: scheduler poll period: how long a claim waits before re-checking the
#: shutdown flag when the queue is idle.
_IDLE_WAIT_S = 0.2


#: per-worker-process experiment memo (inherited empty at fork, filled
#: as the forked worker sees matrices — the `_WORKER_EXPERIMENTS`
#: pattern of :mod:`repro.core.campaign`).
_SERVE_EXPERIMENTS: Dict = {}


def _serve_task(item: Tuple[CampaignPoint, CampaignContext]) -> dict:
    """Pool-worker task: one point against the per-process memo."""
    pt, ctx = item
    return execute_point(pt, ctx, _SERVE_EXPERIMENTS)


def _serve_identity(item: Tuple[CampaignPoint, CampaignContext]) -> str:
    """Supervision identity = the campaign resume key, so chaos
    schedules and quarantine records name points the same way
    ``repro chaos`` and campaign files do."""
    return item[0].key()


class CampaignServer:
    """Simulation-as-a-service over one content store and worker pool."""

    def __init__(
        self,
        data_dir: Path | str,
        workers: int = 2,
        policy: Optional[SupervisePolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        store_root: Optional[Path] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.data_dir / "jobs.jsonl"
        self.workers = workers
        self.policy = policy if policy is not None else SupervisePolicy(on_failure="serial")
        self.store = ContentStore(root=store_root, namespace=STORE_NAMESPACE)
        self.metrics = MetricsRegistry()
        self.queue = PointQueue(self.store)
        self._wire_counters()
        #: parent-process experiment memo for serial fallbacks.
        self._experiments: Dict = {}
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._scheduler_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._journal_enabled = True
        self._journal_lock = threading.Lock()
        self._health_lock = threading.Lock()
        self._health: Dict[str, object] = {
            "batches": 0,
            "tasks": 0,
            "failures": {},
            "rescued": {},
            "quarantined": 0,
        }

    # -- metrics wiring (every serve.* mutation under the queue lock) ----

    def _wire_counters(self) -> None:
        count = lambda name: self.metrics.counter(name)  # noqa: E731
        # Pre-register the headline counters so /metrics always carries
        # them (an idle or freshly-recovered server reports 0, not
        # absence — dashboards and the dedup assertions key off these).
        for name in (
            "serve.jobs_submitted",
            "serve.jobs_done",
            "serve.dedup_hits",
            "serve.points_enqueued",
            "serve.simulations",
            "serve.quarantines",
            "serve.predictions",
        ):
            count(name)
        self.queue.on_submit = lambda job: count("serve.jobs_submitted").inc()
        self.queue.on_dedup_hit = lambda: count("serve.dedup_hits").inc()
        self.queue.on_enqueue = lambda: count("serve.points_enqueued").inc()
        self.queue.on_predict = lambda: count("serve.predictions").inc()

        def on_complete(quarantined: bool) -> None:
            if quarantined:
                count("serve.quarantines").inc()
            else:
                count("serve.simulations").inc()

        self.queue.on_complete = on_complete

        def on_job_done(job: Job) -> None:
            count("serve.jobs_done").inc()
            self._journal({"event": "done", "job_id": job.job_id, **job.counts()})

        self.queue.on_job_done = on_job_done

    # -- journal ---------------------------------------------------------

    def _journal(self, event: Dict[str, object]) -> None:
        """One durable journal line (write, flush, fsync)."""
        if not self._journal_enabled:
            return
        with self._journal_lock:
            with open(self.journal_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def _recover(self) -> int:
        """Resubmit every journaled job; returns how many were recovered.

        Completed jobs replay entirely as store hits (their records are
        sealed on disk), interrupted jobs resume from their first
        missing point, and quarantined points retry — the same
        store-first admission path as a live submission, so recovery
        needs no special cases.  A truncated trailing line (fsync cut
        by the crash) is skipped, like campaign files tolerate.
        """
        if not self.journal_path.exists():
            return 0
        specs: Dict[str, CampaignSpec] = {}
        with open(self.journal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing write
                if not isinstance(event, dict):
                    continue
                if event.get("event") == "submit":
                    try:
                        specs[str(event["job_id"])] = CampaignSpec.from_wire(
                            event.get("spec")
                        )
                    except (KeyError, SpecError):
                        continue  # journaled under an older schema
        self._journal_enabled = False
        try:
            for job_id, spec in specs.items():
                self.queue.submit(spec, job_id=job_id)
        finally:
            self._journal_enabled = True
        return len(specs)

    # -- submission ------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> Job:
        """Journal then admit one spec (the POST /jobs implementation)."""
        job = self.queue.submit(spec)
        self._journal(
            {"event": "submit", "job_id": job.job_id, "spec": spec.to_wire()}
        )
        return job

    # -- scheduler -------------------------------------------------------

    def _fallbacks(self):
        """The graceful-degradation ladder of :meth:`Campaign._fallbacks`,
        itemized: each rung receives the ``(point, context)`` pair so one
        pool can shard points of different jobs (different contexts)."""
        ladder = []
        if self.policy.on_failure in ("serial", "model"):
            ladder.append(
                (
                    "serial",
                    lambda item: execute_point(item[0], item[1], self._experiments),
                )
            )
        if self.policy.on_failure == "model":

            def model_rung(item):
                pt, ctx = item
                if ctx.mode != "model":
                    ctx = dataclasses.replace(ctx, mode="model", fault_plan=None)
                return execute_point(pt, ctx, self._experiments)

            ladder.append(("model", model_rung))
        return ladder

    def _run_batch(
        self, batch: List[Tuple[str, CampaignPoint, CampaignContext]]
    ) -> None:
        """Shard one claimed batch across the supervised pool.

        Outcome handling mirrors :meth:`Campaign._run_supervised`: a
        successful value completes its key (persisting unless a
        model-mode fallback changed the record's meaning), an exhausted
        task completes as a quarantine record — fanned out to waiters
        but never stored, so the point stays retryable.
        """
        items = [(pt, ctx) for _key, pt, ctx in batch]
        keys = [key for key, _pt, _ctx in batch]
        # The board is updated per outcome *before* the key completes:
        # once a job's last point resolves (unblocking waiting clients),
        # every failure behind it is already visible at /metrics.
        with self._health_lock:
            self._health["batches"] = int(self._health["batches"]) + 1
            self._health["tasks"] = int(self._health["tasks"]) + len(batch)
        try:
            for key, (pt, _ctx), outcome in zip(
                keys,
                items,
                supervised_iter_ordered(
                    _serve_task,
                    items,
                    self.workers,
                    self.policy,
                    identity=_serve_identity,
                    fallbacks=self._fallbacks(),
                    metrics=self.metrics,
                ),
            ):
                with self._health_lock:
                    failures: Dict[str, int] = self._health["failures"]  # type: ignore[assignment]
                    for kind, n in outcome.failure_kinds().items():
                        failures[kind] = failures.get(kind, 0) + n
                    if outcome.ok and outcome.fallback:
                        rescued: Dict[str, int] = self._health["rescued"]  # type: ignore[assignment]
                        rescued[outcome.fallback] = rescued.get(outcome.fallback, 0) + 1
                    if not outcome.ok:
                        self._health["quarantined"] = (
                            int(self._health["quarantined"]) + 1
                        )
                if outcome.ok:
                    self.queue.complete(
                        key,
                        outcome.value,
                        persist=outcome.fallback != "model",
                    )
                else:
                    rec = outcome.quarantine_record()
                    rec.update(
                        {
                            "matrix_id": pt.mid,
                            "n_cores": pt.n_cores,
                            "config": pt.config,
                            "mapping": pt.mapping,
                            "kernel": pt.kernel,
                        }
                    )
                    self.queue.complete(key, rec, quarantined=True)
        finally:
            # Keys a dying pool left claimed go back to pending so the
            # next scheduler pass retries them (no point is ever lost).
            for key in keys:
                self.queue.release(key)

    def _scheduler(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.claim_batch(timeout=_IDLE_WAIT_S)
            if not batch:
                continue
            self._run_batch(batch)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Recover the journal, bind the port, start both threads."""
        self._recover()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._scheduler_thread = threading.Thread(
            target=self._scheduler, name="serve-scheduler", daemon=True
        )
        self._http_thread.start()
        self._scheduler_thread.start()

    def stop(self) -> None:
        """Stop accepting work and wait for both threads to exit.

        In-flight batch work finishes (the scheduler checks the stop
        flag between batches, never mid-batch), so completed records
        are persisted and journaled before the process exits.
        """
        self._stop.set()
        self.queue.wake()
        if self._scheduler_thread is not None:
            self._scheduler_thread.join()
            self._scheduler_thread = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join()
            self._http_thread = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    # -- read-side views (HTTP handlers call these) ----------------------

    def healthz(self) -> Dict[str, object]:
        return {
            "ok": True,
            **self.queue.depth(),
            "workers": self.workers,
            "store_entries": self.store.entry_count(),
            "store_corrupt": self.store.corrupt_count(),
        }

    def metrics_view(self) -> Dict[str, object]:
        flat = self.metrics.flat_summary()
        with self._health_lock:
            health = json.loads(json.dumps(self._health))
        return {
            "serve": summary_prefix(flat, "serve"),
            "supervise": summary_prefix(flat, "supervise"),
            "worker_health": health,
        }


# -- the HTTP layer --------------------------------------------------------


def _make_handler(server: CampaignServer):
    """A request handler class bound to one :class:`CampaignServer`."""

    class Handler(BaseHTTPRequestHandler):
        # Route table lives in do_GET/do_POST below; every response is
        # JSON, every error is ``{"error": ...}`` with a proper status.
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # the service speaks through /metrics, not stderr

        def _reply(self, status: int, body: Dict[str, object]) -> None:
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _job_or_404(self, job_id: str) -> Optional[Job]:
            job = server.queue.job(job_id)
            if job is None:
                self._reply(404, {"error": f"unknown job {job_id!r}"})
            return job

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            path = self.path.rstrip("/")
            if path == f"{API_ROOT}/healthz":
                self._reply(200, server.healthz())
            elif path == f"{API_ROOT}/metrics":
                self._reply(200, server.metrics_view())
            elif path == f"{API_ROOT}/jobs":
                self._reply(
                    200, {"jobs": [job.summary() for job in server.queue.jobs()]}
                )
            elif path.startswith(f"{API_ROOT}/jobs/"):
                rest = path[len(f"{API_ROOT}/jobs/"):]
                if rest.endswith("/result"):
                    job = self._job_or_404(rest[: -len("/result")])
                    if job is None:
                        return
                    if not job.done.is_set():
                        self._reply(
                            409,
                            {
                                "error": f"job {job.job_id!r} is {job.state}",
                                **job.summary(),
                            },
                        )
                        return
                    self._reply(
                        200,
                        {
                            **job.summary(),
                            "records": job.records,
                            "origins": job.origins,
                        },
                    )
                else:
                    job = self._job_or_404(rest)
                    if job is not None:
                        self._reply(200, job.summary())
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            if self.path.rstrip("/") != f"{API_ROOT}/jobs":
                self._reply(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, json.JSONDecodeError):
                self._reply(400, {"error": "request body must be JSON"})
                return
            if not isinstance(body, dict) or "spec" not in body:
                self._reply(400, {"error": 'request body must be {"spec": {...}}'})
                return
            try:
                spec = CampaignSpec.from_wire(body["spec"])
            except SpecError as exc:
                self._reply(400, {"error": str(exc)})
                return
            job = server.submit(spec)
            self._reply(200, job.summary())

    return Handler
