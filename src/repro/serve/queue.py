"""Dedup-aware job queue: the exactly-once heart of the campaign server.

One :class:`PointQueue` instance owns every invariant the service test
suite (``tests/test_serve_e2e.py``, ``tests/test_serve_concurrent.py``)
pins down:

* **store-first dedup** — a submitted point whose store key already has
  a sealed record is answered immediately, no simulation;
* **in-flight coalescing** — a point another job is already computing
  is *joined*, not re-enqueued: N concurrent jobs over overlapping
  grids cause each unique key to be simulated exactly once;
* **claim atomicity** — :meth:`claim_batch` transfers pending points to
  the claimed set under one lock, so no two scheduler passes (or racing
  threads in the claim-atomicity test) ever execute the same key;
* **completion ordering** — :meth:`complete` stores the record *before*
  dropping the key from the in-flight table (both under the lock), so a
  duplicate submission arriving mid-completion either joins the flight
  or hits the store — there is no window where it would re-simulate.

Quarantined outcomes are deliberately **not** stored: like campaign
files (PR 7 ladder), a quarantine documents a transient failure, not a
result, and the next submission of the same point retries it.

Everything here is synchronous and in-memory; durability lives in the
server's journal and the content store, both of which survive restarts.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from ..core.campaign import CampaignContext, CampaignPoint
from ..store import ContentStore
from .protocol import POINT_ORIGINS, CampaignSpec, execute_point, point_store_key

__all__ = ["Job", "PointQueue"]


class Job:
    """One submission's lifecycle: points, per-point records, counters.

    Created (and every record attached) only while the owning queue's
    lock is held; readers go through :meth:`PointQueue.job_status` /
    :meth:`PointQueue.job_result`, which take the same lock, so no
    partially-updated state is ever observable.
    """

    def __init__(self, job_id: str, spec: CampaignSpec, ctx: CampaignContext) -> None:
        self.job_id = job_id
        self.spec = spec
        self.ctx = ctx
        self.points: List[CampaignPoint] = spec.points()
        self.keys: List[str] = [point_store_key(pt, ctx) for pt in self.points]
        #: per-point record, filled as results arrive (grid order kept).
        self.records: List[Optional[dict]] = [None] * len(self.points)
        #: per-point origin (``store``/``shared``/``simulated``/``quarantined``).
        self.origins: List[Optional[str]] = [None] * len(self.points)
        self.done = threading.Event()
        if not self.points:
            self.done.set()

    # -- mutation (queue-lock-only) --------------------------------------

    def attach(self, index: int, record: dict, origin: str) -> None:
        """Fill one point's slot; marks the job done on the last slot."""
        if self.records[index] is None:
            self.records[index] = record
            self.origins[index] = origin
        if all(r is not None for r in self.records):
            self.done.set()

    # -- read-side views -------------------------------------------------

    @property
    def state(self) -> str:
        if self.done.is_set():
            return "done"
        if any(r is not None for r in self.records):
            return "running"
        return "queued"

    def counts(self) -> Dict[str, int]:
        """Points by origin plus the headline dedup/simulation totals."""
        by_origin = {origin: 0 for origin in POINT_ORIGINS}
        for origin in self.origins:
            if origin is not None:
                by_origin[origin] += 1
        return {
            "points": len(self.points),
            "completed": sum(r is not None for r in self.records),
            "dedup_hits": by_origin["store"] + by_origin["shared"],
            "simulated": by_origin["simulated"],
            "quarantined": by_origin["quarantined"],
            "predicted": by_origin["predicted"],
            **{f"origin_{k}": v for k, v in by_origin.items()},
        }

    def summary(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "machine": self.spec.machine,
            "mode": self.spec.mode,
            **self.counts(),
        }


class PointQueue:
    """Pending/claimed point table with store-backed dedup.

    The table maps store key -> list of ``(job, point_index)`` waiters.
    A key lives in exactly one of three places: ``_pending`` (enqueued,
    unclaimed), ``_claimed`` (handed to the scheduler's current batch),
    or nowhere (its record is in the store, or it was never submitted).
    """

    def __init__(self, store: ContentStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._has_pending = threading.Condition(self._lock)
        #: key -> the point to run (first submitter's instance).
        self._points: Dict[str, Tuple[CampaignPoint, CampaignContext]] = {}
        #: key -> jobs waiting on it (pending *or* claimed keys).
        self._waiters: Dict[str, List[Tuple[Job, int]]] = {}
        self._pending: List[str] = []
        self._claimed: set = set()
        self._jobs: Dict[str, Job] = {}
        self._job_seq = 0
        #: callbacks the server wires up for the serve.* counters; called
        #: under the queue lock, so counter updates are serialized (the
        #: contract :class:`repro.obs.metrics.MetricsRegistry` documents).
        self.on_submit: Callable[[Job], None] = lambda job: None
        self.on_dedup_hit: Callable[[], None] = lambda: None
        self.on_enqueue: Callable[[], None] = lambda: None
        self.on_complete: Callable[[bool], None] = lambda quarantined: None
        self.on_job_done: Callable[[Job], None] = lambda job: None
        self.on_predict: Callable[[], None] = lambda: None
        #: predict fast path state: its own lock + experiment memo, so
        #: feature extraction never runs under the queue lock.
        self._predict_lock = threading.Lock()
        self._predict_experiments: Dict = {}

    # -- submission ------------------------------------------------------

    def submit(self, spec: CampaignSpec, job_id: Optional[str] = None) -> Job:
        """Admit one spec: store hits answered now, the rest enqueued.

        Every decision for the whole grid happens under one lock
        acquisition, so a concurrent identical submission sees either
        all of this job's keys in flight or none — never half.

        ``mode="predict"`` jobs take the admission fast path: every
        point is answered from the machine's trained predictor before
        the queue lock is even taken, attached with
        ``origin="predicted"``, and **never persisted** — the content
        store only ever holds records the model/sim tiers computed, so
        resubmitting the same grid in ``mode="model"`` still simulates.
        """
        ctx = spec.context()
        if ctx.mode == "predict":
            return self._submit_predict(spec, job_id, ctx)
        with self._lock:
            job_id = self._assign_job_id(job_id)
            job = Job(job_id, spec, ctx)
            self._jobs[job_id] = job
            self.on_submit(job)
            fresh = False
            for index, (pt, key) in enumerate(zip(job.points, job.keys)):
                if key in self._waiters:
                    # Another job (or an earlier duplicate point of this
                    # one) is already computing this key: join the flight.
                    self._waiters[key].append((job, index))
                    self.on_dedup_hit()
                    continue
                cached = self.store.get_json(key)
                if cached is not None:
                    self.on_dedup_hit()
                    job.attach(index, cached, "store")
                    continue
                self._points[key] = (pt, ctx)
                self._waiters[key] = [(job, index)]
                self._pending.append(key)
                self.on_enqueue()
                fresh = True
            if job.done.is_set():
                self.on_job_done(job)
            if fresh:
                self._has_pending.notify_all()
            return job

    def _assign_job_id(self, job_id: Optional[str]) -> str:
        """Mint or adopt a job id; caller must hold :attr:`_lock`."""
        if job_id is None:
            self._job_seq += 1
            return f"job-{self._job_seq:06d}"
        # Recovered ids must not collide with future fresh ones.
        tail = job_id.rsplit("-", 1)[-1]
        if tail.isdigit():
            self._job_seq = max(self._job_seq, int(tail))
        return job_id

    def _submit_predict(
        self, spec: CampaignSpec, job_id: Optional[str], ctx: CampaignContext
    ) -> Job:
        """Admission fast path: predict every point, no queue, no store.

        Records are computed under a dedicated lock (serializing only
        concurrent predict submissions against each other and sharing
        one experiment memo), then attached under the queue lock — the
        whole job resolves before :meth:`submit` returns, exactly like
        a grid of store hits.  Quarantine cannot happen here: a failed
        run maps to a structured failure record, same as campaigns.
        """
        points = spec.points()
        with self._predict_lock:
            records = [
                execute_point(pt, ctx, self._predict_experiments) for pt in points
            ]
        with self._lock:
            job = Job(self._assign_job_id(job_id), spec, ctx)
            self._jobs[job.job_id] = job
            self.on_submit(job)
            for index, rec in enumerate(records):
                self.on_predict()
                job.attach(index, rec, "predicted")
            if job.done.is_set():
                self.on_job_done(job)
            return job

    # -- scheduler side --------------------------------------------------

    def claim_batch(
        self, timeout: Optional[float] = None
    ) -> List[Tuple[str, CampaignPoint, CampaignContext]]:
        """Atomically move every pending key to the claimed set.

        Blocks up to ``timeout`` seconds for work (None = forever);
        returns ``[]`` on timeout or shutdown wake-up.  A key returned
        here is owned by the caller until :meth:`complete` /
        :meth:`release` gives it back — concurrent claimers can never
        receive the same key.
        """
        with self._lock:
            if not self._pending:
                self._has_pending.wait(timeout)
            batch = []
            for key in self._pending:
                self._claimed.add(key)
                pt, ctx = self._points[key]
                batch.append((key, pt, ctx))
            self._pending.clear()
            return batch

    def complete(
        self,
        key: str,
        record: dict,
        quarantined: bool = False,
        persist: Optional[bool] = None,
    ) -> None:
        """Finish one claimed key: persist, fan out to waiters, retire.

        The store write happens *inside* the lock, before the key leaves
        the waiter table — the order that makes dedup airtight (see
        module docstring).  Quarantined records fan out but are never
        persisted, keeping the point retryable; ``persist=False`` skips
        the store write for an otherwise-successful record whose bytes
        are not a pure function of the key (a model-fallback rescue of
        an exact-mode point must not poison the exact-mode address).
        """
        if persist is None:
            persist = not quarantined
        with self._lock:
            if key not in self._claimed:
                raise KeyError(f"completing unclaimed key {key[:12]}...")
            if persist and not quarantined:
                self.store.put_json(key, record)
            first = True
            finished: List[Job] = []
            for job, index in self._waiters.pop(key, []):
                origin = (
                    "quarantined"
                    if quarantined
                    else ("simulated" if first else "shared")
                )
                job.attach(index, record, origin)
                first = False
                if job.done.is_set():
                    finished.append(job)
            self._claimed.discard(key)
            self._points.pop(key, None)
            self.on_complete(quarantined)
            for job in finished:
                self.on_job_done(job)

    def release(self, key: str) -> None:
        """Return a claimed key to pending (scheduler crash recovery)."""
        with self._lock:
            if key in self._claimed:
                self._claimed.discard(key)
                self._pending.append(key)
                self._has_pending.notify_all()

    def wake(self) -> None:
        """Wake a blocked :meth:`claim_batch` (used at shutdown)."""
        with self._lock:
            self._has_pending.notify_all()

    # -- read side -------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def depth(self) -> Dict[str, int]:
        """Queue gauges: pending, claimed (running), live jobs."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "claimed": len(self._claimed),
                "jobs": len(self._jobs),
                "jobs_done": sum(1 for j in self._jobs.values() if j.done.is_set()),
            }
