"""CLI front end of the campaign service.

Four subcommands of ``python -m repro`` live here:

* ``repro serve`` — run a :class:`~repro.serve.server.CampaignServer`
  in the foreground until interrupted;
* ``repro submit`` — POST a campaign spec, optionally wait for it;
* ``repro status`` — one job's state, or the whole job table;
* ``repro result`` — a finished job's records.

The default port (8750) and the ``REPRO_SERVE_URL`` environment
variable keep the three client commands pointed at the same server
without repeating ``--server`` everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import threading
from typing import List, Optional

from ..cliutil import add_json_flag, add_output_flag, add_supervise_flags, open_output, policy_from_args

__all__ = [
    "DEFAULT_PORT",
    "SERVE_URL_ENV",
    "configure_serve_parser",
    "configure_submit_parser",
    "configure_status_parser",
    "configure_result_parser",
    "run_serve",
    "run_submit",
    "run_status",
    "run_result",
]

DEFAULT_PORT = 8750
SERVE_URL_ENV = "REPRO_SERVE_URL"


def _default_url() -> str:
    return os.environ.get(SERVE_URL_ENV, f"http://127.0.0.1:{DEFAULT_PORT}")


def _add_server_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--server",
        type=str,
        default=_default_url(),
        metavar="URL",
        help=f"campaign server address (default ${SERVE_URL_ENV} or "
        f"http://127.0.0.1:{DEFAULT_PORT})",
    )


# -- repro serve -----------------------------------------------------------


def configure_serve_parser(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--data-dir",
        type=str,
        default="serve-data",
        metavar="DIR",
        help="journal directory; a restarted server resumes every "
        "journaled job from here (default %(default)s)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="supervised worker processes sharding each batch (default 2)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"listen port; 0 picks an ephemeral one (default {DEFAULT_PORT})",
    )
    add_supervise_flags(p)
    add_output_flag(p)


def run_serve(args: argparse.Namespace, out=None) -> int:
    """Run the server until SIGINT/SIGTERM (Ctrl-C in the foreground)."""
    from .server import CampaignServer

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    server = CampaignServer(
        data_dir=args.data_dir,
        workers=args.workers,
        policy=policy_from_args(args) or None,
        host=args.host,
        port=args.port,
    )
    server.start()
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001
        stop.set()

    # Signal handlers only bind on the main thread (tests drive the
    # server object directly instead of through this loop).
    try:
        signal.signal(signal.SIGINT, _on_signal)
        signal.signal(signal.SIGTERM, _on_signal)
    except ValueError:
        pass
    with open_output(args, out) as stream:
        print(
            f"repro serve: listening on {server.url} "
            f"(journal {server.journal_path}, {args.workers} workers)",
            file=stream,
        )
        if stream is not None:
            stream.flush()
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        print("repro serve: stopped", file=stream)
    return 0


# -- repro submit ----------------------------------------------------------


def _parse_int_list(raw: str, flag: str) -> List[int]:
    try:
        return [int(tok) for tok in raw.split(",") if tok.strip()]
    except ValueError as exc:
        raise SystemExit(f"{flag} must be comma-separated integers: {exc}") from exc


def _parse_str_list(raw: str) -> List[str]:
    return [tok.strip() for tok in raw.split(",") if tok.strip()]


def configure_submit_parser(p: argparse.ArgumentParser) -> None:
    from ..core.experiment import DEFAULT_ITERATIONS, KERNELS, MODES
    from ..core.mapping import MAPPINGS
    from ..machine.base import DEFAULT_MACHINE
    from ..machine.registry import list_machines

    _add_server_flag(p)
    p.add_argument(
        "--ids",
        type=str,
        required=True,
        help="comma-separated Table I matrix ids of the campaign grid",
    )
    p.add_argument(
        "--cores",
        type=str,
        required=True,
        help="comma-separated core counts of the grid",
    )
    p.add_argument(
        "--configs", type=str, default="conf0",
        help="comma-separated chip config presets (default conf0)",
    )
    p.add_argument(
        "--mappings", type=str, default="distance_reduction",
        help=f"comma-separated mappings from {sorted(MAPPINGS)} "
        "(default distance_reduction)",
    )
    p.add_argument(
        "--kernels", type=str, default="csr",
        help=f"comma-separated kernels from {KERNELS} (default csr)",
    )
    p.add_argument(
        "--machines", type=str, default="",
        help="comma-separated machine ids to cross the grid over "
        "(default: just --machine)",
    )
    p.add_argument(
        "--machine",
        choices=list_machines(),
        default=DEFAULT_MACHINE,
        help="machine of points that don't pin one (default %(default)s)",
    )
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--iterations", type=int, default=DEFAULT_ITERATIONS)
    p.add_argument(
        "--mode", choices=MODES, default="model",
        help="timing mode (default model; every zoo machine runs it)",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its result summary",
    )
    p.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait limit in seconds (default 600)",
    )
    add_json_flag(p)
    add_output_flag(p)


def _spec_from_args(args: argparse.Namespace):
    from .protocol import CampaignSpec, SpecError

    machines = _parse_str_list(args.machines) or [""]
    try:
        return CampaignSpec(
            ids=tuple(_parse_int_list(args.ids, "--ids")),
            core_counts=tuple(_parse_int_list(args.cores, "--cores")),
            configs=tuple(_parse_str_list(args.configs) or ["conf0"]),
            mappings=tuple(_parse_str_list(args.mappings) or ["distance_reduction"]),
            kernels=tuple(_parse_str_list(args.kernels) or ["csr"]),
            machines=tuple(machines),
            machine=args.machine,
            scale=args.scale,
            iterations=args.iterations,
            mode=args.mode,
        )
    except SpecError as exc:
        raise SystemExit(f"repro submit: {exc}") from exc


def run_submit(args: argparse.Namespace, out=None) -> int:
    from .client import ServeClient, ServeError

    spec = _spec_from_args(args)
    client = ServeClient(args.server)
    try:
        summary = client.submit(spec)
        if args.wait:
            summary = client.wait(str(summary["job_id"]), timeout=args.timeout)
    except ServeError as exc:
        raise SystemExit(f"repro submit: {exc}") from exc
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"repro submit: cannot reach {args.server} ({exc}); "
            f"is `repro serve` running?"
        ) from exc
    with open_output(args, out) as stream:
        if getattr(args, "json", False):
            print(json.dumps(summary, indent=2, sort_keys=True), file=stream)
        else:
            print(_summary_line(summary), file=stream)
    return 0


def _summary_line(summary: dict) -> str:
    parts = [
        f"job {summary.get('job_id')}",
        f"state={summary.get('state')}",
        f"points={summary.get('points')}",
        f"dedup_hits={summary.get('dedup_hits')}",
        f"simulated={summary.get('simulated')}",
    ]
    if summary.get("quarantined"):
        parts.append(f"quarantined={summary['quarantined']}")
    return "  ".join(str(p) for p in parts)


# -- repro status ----------------------------------------------------------


def configure_status_parser(p: argparse.ArgumentParser) -> None:
    _add_server_flag(p)
    p.add_argument(
        "job_id", nargs="?", default="",
        help="job to inspect (omit for the whole job table)",
    )
    add_json_flag(p)
    add_output_flag(p)


def run_status(args: argparse.Namespace, out=None) -> int:
    from .client import ServeClient, ServeError

    client = ServeClient(args.server)
    try:
        if args.job_id:
            payload: object = client.status(args.job_id)
            rows = [payload]
        else:
            rows = client.jobs()
            payload = {"jobs": rows}
    except ServeError as exc:
        raise SystemExit(f"repro status: {exc}") from exc
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"repro status: cannot reach {args.server} ({exc})"
        ) from exc
    with open_output(args, out) as stream:
        if getattr(args, "json", False):
            print(json.dumps(payload, indent=2, sort_keys=True), file=stream)
        elif not rows:
            print("no jobs", file=stream)
        else:
            for row in rows:
                print(_summary_line(row), file=stream)
    return 0


# -- repro result ----------------------------------------------------------


def configure_result_parser(p: argparse.ArgumentParser) -> None:
    _add_server_flag(p)
    p.add_argument("job_id", help="finished job whose records to fetch")
    add_json_flag(p)
    add_output_flag(p)


def run_result(args: argparse.Namespace, out=None) -> int:
    from ..core.report import format_table
    from .client import ServeClient, ServeError

    client = ServeClient(args.server)
    try:
        result = client.result(args.job_id)
    except ServeError as exc:
        raise SystemExit(f"repro result: {exc}") from exc
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"repro result: cannot reach {args.server} ({exc})"
        ) from exc
    with open_output(args, out) as stream:
        if getattr(args, "json", False):
            print(json.dumps(result, indent=2, sort_keys=True), file=stream)
            return 0
        records = result.get("records") or []
        ok_rows = [r for r in records if r.get("status", "ok") == "ok"]
        if ok_rows:
            cols = ["matrix", "n_cores", "config", "mapping", "kernel", "mflops"]
            if any("machine" in r for r in ok_rows):
                cols.insert(1, "machine")
                for r in ok_rows:
                    r.setdefault("machine", "")
            print(format_table(ok_rows, cols), file=stream)
        bad = len(records) - len(ok_rows)
        print(_summary_line(result), file=stream)
        if bad:
            print(f"{bad} record(s) not ok (see --json for details)", file=stream)
    return 0
