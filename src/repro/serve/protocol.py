"""Wire protocol of the campaign server: specs, store keys, job states.

A *campaign spec* names a grid of simulation points — suite matrix ids
crossed with core counts, chip configs, mappings, kernels and machines
— plus the execution knobs that change a point's *result* (scale,
iterations, timing mode).  The server canonicalizes every point of a
spec to a content-store address (:func:`point_store_key`): two
submissions that would compute the same record share the same key, so
the second is answered straight from :mod:`repro.store` without
simulating (the dedup contract ``tests/test_serve_e2e.py`` pins down
bit for bit).

Keying rules follow ``docs/MODEL.md``: the key digests a namespace and
schema version, the machine's
:meth:`~repro.machine.base.MachineModel.cache_key`, the full point
identity and every result-affecting context knob.  Records that are
*not* pure functions of the spec — quarantined points, metrics-carrying
records, fault-plan runs — are never stored under these keys;
:class:`CampaignSpec` rejects the latter two shapes at validation.

The HTTP surface (all JSON, rooted at ``/api/v1``) is:

=======  ==========================  =======================================
method   path                        meaning
=======  ==========================  =======================================
GET      ``/api/v1/healthz``         liveness + job counts
GET      ``/api/v1/metrics``         serve.* / supervise.* metrics snapshot
POST     ``/api/v1/jobs``            submit ``{"spec": {...}}`` -> job id
GET      ``/api/v1/jobs``            job summaries
GET      ``/api/v1/jobs/<id>``       one job's status and counts
GET      ``/api/v1/jobs/<id>/result``  the records, in grid order
=======  ==========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Sequence, Tuple

from ..core.campaign import (
    CampaignContext,
    CampaignPoint,
    Campaign,
    run_campaign_point,
    validate_points,
)
from ..core.experiment import DEFAULT_ITERATIONS, KERNELS, MODES
from ..core.mapping import MAPPINGS
from ..machine.base import DEFAULT_MACHINE
from ..machine.registry import get_machine
from ..sparse.suite import entry_by_id
from ..store import digest_parts

__all__ = [
    "API_ROOT",
    "JOB_STATES",
    "POINT_ORIGINS",
    "SERVE_POINT_SCHEMA_VERSION",
    "SpecError",
    "CampaignSpec",
    "point_store_key",
    "execute_point",
]

#: URL prefix every endpoint lives under; bump on breaking changes.
API_ROOT = "/api/v1"

#: lifecycle of a job: accepted -> executing -> finished.
JOB_STATES = ("queued", "running", "done")

#: how a job's point got its record: ``store`` (dedup hit at submit),
#: ``shared`` (another job was already computing it), ``simulated``
#: (this job caused the execution), ``quarantined`` (every attempt and
#: fallback failed; retryable on resubmission, never cached),
#: ``predicted`` (a ``mode="predict"`` job answered at admission from
#: the trained predictor; never persisted — mode purity, see
#: docs/PREDICTOR.md).
POINT_ORIGINS = ("store", "shared", "simulated", "quarantined", "predicted")

#: version prefix of every point store key; bump whenever the record
#: shape or any upstream model constant changes meaning, orphaning old
#: entries instead of serving stale answers (docs/MODEL.md rules).
SERVE_POINT_SCHEMA_VERSION = 1


class SpecError(ValueError):
    """A submitted campaign spec is malformed; maps to HTTP 400."""


def point_store_key(pt: CampaignPoint, ctx: CampaignContext) -> str:
    """The content-store address of one campaign point's record.

    A pure function of everything that determines the record's bytes:
    the point identity, the resolved machine's cache key, and the
    context knobs (scale, iterations, mode).  ``pt.machine == ""``
    resolves to the context's default machine first, so a point pinned
    to the campaign machine and the same point spelled explicitly share
    one address.
    """
    machine = get_machine(pt.machine or ctx.machine)
    return digest_parts(
        "serve-point",
        SERVE_POINT_SCHEMA_VERSION,
        machine.cache_key(),
        pt.mid,
        pt.n_cores,
        pt.config,
        pt.mapping,
        pt.kernel,
        ctx.scale,
        ctx.iterations,
        ctx.mode,
    )


def execute_point(pt: CampaignPoint, ctx: CampaignContext, cache: Dict) -> dict:
    """Run one point and finalize its record exactly like a campaign.

    Delegates to :func:`repro.core.campaign.run_campaign_point` and
    appends the ``scale`` field :meth:`Campaign.run` appends, so a
    record served from the store is bitwise-identical (canonical JSON)
    to the record a direct serial ``Campaign.run`` of the same spec
    writes — minus the campaign-file-internal ``_key``.
    """
    rec = run_campaign_point(pt, ctx, cache)
    rec["scale"] = ctx.scale
    return rec


def _tuple_of(value: Any, name: str, kind: type) -> Tuple:
    """Normalize a wire list to a deduped tuple of ``kind`` values."""
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise SpecError(f"spec field {name!r} must be a list, got {value!r}")
    out: List = []
    for item in value:
        if kind is int and isinstance(item, bool) or not isinstance(item, kind):
            raise SpecError(
                f"spec field {name!r} must hold {kind.__name__} values, "
                f"got {item!r}"
            )
        if item not in out:
            out.append(item)
    if not out:
        raise SpecError(f"spec field {name!r} selects nothing")
    return tuple(out)


@dataclass(frozen=True)
class CampaignSpec:
    """One submission: a validated, canonicalized campaign grid."""

    ids: Tuple[int, ...]
    core_counts: Tuple[int, ...]
    configs: Tuple[str, ...] = ("conf0",)
    mappings: Tuple[str, ...] = ("distance_reduction",)
    kernels: Tuple[str, ...] = ("csr",)
    #: per-point machine dimension; ``""`` defers to :attr:`machine`.
    machines: Tuple[str, ...] = ("",)
    #: default machine of points that don't pin one.
    machine: str = DEFAULT_MACHINE
    scale: float = 0.25
    iterations: int = DEFAULT_ITERATIONS
    mode: str = "model"

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SpecError` on anything the grid cannot run."""
        if not self.ids or not self.core_counts:
            raise SpecError("spec needs at least one matrix id and core count")
        for mid in self.ids:
            try:
                entry_by_id(mid)
            except KeyError as exc:
                raise SpecError(str(exc)) from exc
        if not 0 < self.scale <= 1.0:
            raise SpecError(f"scale must be in (0, 1], got {self.scale}")
        if self.iterations < 1:
            raise SpecError(f"iterations must be >= 1, got {self.iterations}")
        if self.mode not in MODES:
            raise SpecError(f"mode must be one of {MODES}, got {self.mode!r}")
        for mapping in self.mappings:
            if mapping not in MAPPINGS:
                raise SpecError(
                    f"unknown mapping {mapping!r}; choose from {sorted(MAPPINGS)}"
                )
        for kernel in self.kernels:
            if kernel not in KERNELS:
                raise SpecError(
                    f"unknown kernel {kernel!r}; choose from {KERNELS}"
                )
        try:
            get_machine(self.machine)
            for machine_id in self.machines:
                if machine_id:
                    get_machine(machine_id)
        except KeyError as exc:
            raise SpecError(str(exc).strip('"')) from exc
        try:
            validate_points(self.points(), self.machine, self.mode)
        except ValueError as exc:
            raise SpecError(str(exc)) from exc
        for n in self.core_counts:
            if n < 1:
                raise SpecError(f"core counts must be >= 1, got {n}")
            for machine_id in self.machines:
                m = get_machine(machine_id or self.machine)
                if n > m.n_cores:
                    raise SpecError(
                        f"core count {n} exceeds machine "
                        f"{m.machine_id!r} ({m.n_cores} cores)"
                    )

    # -- canonical views -------------------------------------------------

    def points(self) -> List[CampaignPoint]:
        """The grid in canonical (cartesian-product) order."""
        return Campaign.grid(
            self.ids,
            self.core_counts,
            configs=self.configs,
            mappings=self.mappings,
            kernels=self.kernels,
            machines=self.machines,
        )

    def context(self) -> CampaignContext:
        """The execution context every point of this spec runs under."""
        return CampaignContext(
            scale=self.scale,
            iterations=self.iterations,
            mode=self.mode,
            machine=self.machine,
        )

    # -- wire format -----------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """The JSON body shape of a submission."""
        return {
            "ids": list(self.ids),
            "core_counts": list(self.core_counts),
            "configs": list(self.configs),
            "mappings": list(self.mappings),
            "kernels": list(self.kernels),
            "machines": list(self.machines),
            "machine": self.machine,
            "scale": self.scale,
            "iterations": self.iterations,
            "mode": self.mode,
        }

    @classmethod
    def from_wire(cls, body: Any) -> "CampaignSpec":
        """Parse and validate a submission body; raises :class:`SpecError`."""
        if not isinstance(body, dict):
            raise SpecError(f"spec must be a JSON object, got {type(body).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(unknown)}")
        if "ids" not in body or "core_counts" not in body:
            raise SpecError("spec requires 'ids' and 'core_counts'")
        kwargs: Dict[str, Any] = {
            "ids": _tuple_of(body["ids"], "ids", int),
            "core_counts": _tuple_of(body["core_counts"], "core_counts", int),
        }
        for name in ("configs", "mappings", "kernels", "machines"):
            if name in body:
                kwargs[name] = _tuple_of(body[name], name, str)
        if "machine" in body:
            if not isinstance(body["machine"], str):
                raise SpecError("spec field 'machine' must be a string")
            kwargs["machine"] = body["machine"]
        if "scale" in body:
            if isinstance(body["scale"], bool) or not isinstance(
                body["scale"], (int, float)
            ):
                raise SpecError("spec field 'scale' must be a number")
            kwargs["scale"] = float(body["scale"])
        if "iterations" in body:
            if isinstance(body["iterations"], bool) or not isinstance(
                body["iterations"], int
            ):
                raise SpecError("spec field 'iterations' must be an integer")
            kwargs["iterations"] = body["iterations"]
        if "mode" in body:
            if not isinstance(body["mode"], str):
                raise SpecError("spec field 'mode' must be a string")
            kwargs["mode"] = body["mode"]
        return cls(**kwargs)
