"""Simulation-as-a-service: the sharded, dedup'ing campaign server.

``repro serve`` exposes the whole simulation pipeline behind a small
HTTP API: clients submit *campaign specs* (suite ids × core counts ×
configs × mappings × kernels × machines, plus scale/iterations/mode),
the server canonicalizes every grid point to its machine-keyed content
store address, answers already-computed points straight from
:mod:`repro.store` (a dedup hit costs no simulation), and shards the
rest across a supervised fork pool with the PR 7 retry/quarantine
ladder.  See ``docs/SERVING.md`` for the architecture and
``tests/test_serve_e2e.py`` for the black-box contract.

Layering: ``protocol`` (specs, store keys, HTTP shapes) ← ``queue``
(dedup/claim invariants) ← ``server`` (threads, journal, HTTP) ∥
``client`` (stdlib HTTP client) ← ``cli`` (the four subcommands).
"""

from .client import ServeClient, ServeError
from .protocol import CampaignSpec, SpecError, point_store_key
from .queue import Job, PointQueue
from .server import CampaignServer

__all__ = [
    "CampaignServer",
    "CampaignSpec",
    "Job",
    "PointQueue",
    "ServeClient",
    "ServeError",
    "SpecError",
    "point_store_key",
]
