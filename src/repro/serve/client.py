"""Thin stdlib HTTP client for the campaign server.

``repro submit`` / ``repro status`` / ``repro result`` and the service
test suite all speak to a running server through this class, so the
tests exercise exactly the code path a user does (black-box testing —
nothing reaches into server internals).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from .protocol import API_ROOT, CampaignSpec

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """A non-2xx response from the server (carries status and body)."""

    def __init__(self, status: int, body: Dict[str, object]) -> None:
        self.status = status
        self.body = body
        super().__init__(f"HTTP {status}: {body.get('error', body)}")


class ServeClient:
    """One server address; a fresh connection per request (thread-safe)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http") or not parts.hostname:
            raise ValueError(f"unsupported server url {url!r} (need http://host:port)")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict[str, object]]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {"error": data.decode(errors="replace")}
            return resp.status, decoded
        finally:
            conn.close()

    def _ok(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        status, decoded = self._request(method, path, body)
        if status != 200:
            raise ServeError(status, decoded)
        return decoded

    # -- API surface -----------------------------------------------------

    def submit(self, spec: CampaignSpec) -> Dict[str, object]:
        """POST the spec; returns the job summary (raises on a 400)."""
        return self._ok("POST", f"{API_ROOT}/jobs", {"spec": spec.to_wire()})

    def jobs(self) -> List[Dict[str, object]]:
        return self._ok("GET", f"{API_ROOT}/jobs")["jobs"]  # type: ignore[return-value]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._ok("GET", f"{API_ROOT}/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        """The finished job's records; raises :class:`ServeError` 409
        while the job is still queued or running."""
        return self._ok("GET", f"{API_ROOT}/jobs/{job_id}/result")

    def metrics(self) -> Dict[str, object]:
        return self._ok("GET", f"{API_ROOT}/metrics")

    def healthz(self) -> Dict[str, object]:
        return self._ok("GET", f"{API_ROOT}/healthz")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05
    ) -> Dict[str, object]:
        """Poll until the job is done; returns its result body."""
        deadline = time.monotonic() + timeout
        while True:
            status, decoded = self._request("GET", f"{API_ROOT}/jobs/{job_id}/result")
            if status == 200:
                return decoded
            if status != 409:
                raise ServeError(status, decoded)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} not done after {timeout}s: {decoded}"
                )
            time.sleep(poll_s)
