"""``repro predict`` — train, evaluate and inspect performance predictors.

Actions::

    repro predict train --machines scc-48,xeonphi-61 --ids 2,7,14
    repro predict eval --ids 2,7,14 --cores 1,2,4,8,16,32
    repro predict info

``train`` sweeps the labelled grid in ``mode="model"`` (or
``exact-trace``) per machine, fits the regressor and seals the
artifact into the ``predict-models`` store namespace.  ``eval`` runs
the differential harness (fresh model sweep vs fresh predict sweep)
and prints per-machine speedup/error.  ``info`` shows what artifacts
exist and their training provenance.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Sequence

from ..cliutil import add_output_flag, open_output
from ..machine.registry import get_machine, list_machines

__all__ = ["configure_predict_parser", "run_predict"]

_DEFAULT_MACHINES = "scc-48,xeonphi-61,ft2000plus-64"


def _csv(raw: str) -> List[str]:
    return [tok.strip() for tok in raw.split(",") if tok.strip()]


def _csv_int(raw: str, flag: str) -> List[int]:
    try:
        return [int(tok) for tok in _csv(raw)]
    except ValueError as exc:
        raise SystemExit(f"{flag} must be comma-separated integers: {exc}") from exc


def configure_predict_parser(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "action",
        choices=("train", "eval", "info"),
        help="train and seal per-machine predictors; evaluate predict-vs-"
        "model speed and error; or inspect stored artifacts",
    )
    p.add_argument(
        "--machines",
        default=_DEFAULT_MACHINES,
        help=f"comma-separated machine ids (default {_DEFAULT_MACHINES}; "
        f"known: {', '.join(list_machines())})",
    )
    p.add_argument(
        "--ids", default="2,7,14,24",
        help="comma-separated Table I matrix ids for the training/eval grid",
    )
    p.add_argument(
        "--cores", default="1,2,4,8,16,32",
        help="comma-separated core counts of the grid (counts above a "
        "machine's size are skipped on that machine)",
    )
    p.add_argument(
        "--configs", default="conf0",
        help="comma-separated machine config presets (train only)",
    )
    p.add_argument(
        "--mappings", default="distance_reduction",
        help="comma-separated mapping policies (train only)",
    )
    p.add_argument(
        "--kernels", default="csr",
        help="comma-separated kernels (train only)",
    )
    p.add_argument("--scale", type=float, default=0.05, help="matrix scale (default 0.05)")
    p.add_argument("--iterations", type=int, default=4, help="SpMV iterations per point")
    p.add_argument(
        "--label-mode", choices=("model", "exact-trace"), default="model",
        help="which tier labels the training grid (default model)",
    )
    p.add_argument("--rounds", type=int, default=300, help="boosting rounds (default 300)")
    p.add_argument("--tag", default="default", help="artifact tag (default 'default')")
    p.add_argument(
        "--no-store", action="store_true",
        help="train only in-process: skip the labelled-row cache and do "
        "not write the model artifact",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the raw report as JSON"
    )
    add_output_flag(p)


def _machines_of(args) -> List:
    machines = []
    for mid in _csv(args.machines):
        try:
            machines.append(get_machine(mid))
        except KeyError as exc:
            raise SystemExit(
                f"unknown machine {mid!r}; known: {', '.join(list_machines())}"
            ) from exc
    if not machines:
        raise SystemExit("--machines named no machines")
    return machines


def _run_train(args, out) -> int:
    from .train import train_predictor
    from .artifact import model_store_key

    ids = _csv_int(args.ids, "--ids")
    cores = _csv_int(args.cores, "--cores")
    report = {}
    for machine in _machines_of(args):
        model, stats = train_predictor(
            machine,
            ids,
            core_counts=cores,
            configs=_csv(args.configs),
            mappings=_csv(args.mappings),
            kernels=_csv(args.kernels),
            scale=args.scale,
            iterations=args.iterations,
            mode=args.label_mode,
            n_rounds=args.rounds,
            tag=args.tag,
            save=not args.no_store,
            use_store=not args.no_store,
        )
        entry = {"rows": model.train_rows, **stats}
        if not args.no_store:
            entry["key"] = model_store_key(machine.cache_key(), args.tag)
        report[machine.machine_id] = entry
        if not args.json:
            print(
                f"{machine.machine_id}: {model.train_rows} rows, "
                f"median err {stats['median_rel_err_pct']:.2f}%, "
                f"p90 {stats['p90_rel_err_pct']:.2f}%"
                + ("" if args.no_store else f", sealed as {entry['key'][:16]}…"),
                file=out,
            )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    return 0


def _run_eval(args, out) -> int:
    from .harness import differential_report

    report = differential_report(
        machine_ids=[m.machine_id for m in _machines_of(args)],
        ids=_csv_int(args.ids, "--ids"),
        core_counts=_csv_int(args.cores, "--cores"),
        scale=args.scale,
        iterations=args.iterations,
        n_rounds=args.rounds,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
        return 0
    for mid, m in report["machines"].items():
        line = (
            f"{mid}: {m['n_points']} points, speedup {m['speedup']:.0f}x, "
            f"median err {m['median_rel_err_pct']:.2f}% "
            f"(p90 {m['p90_rel_err_pct']:.2f}%, max {m['max_rel_err_pct']:.2f}%)"
        )
        if "exact" in m:
            line += f"; vs exact-trace median {m['exact']['median_rel_err_pct']:.2f}%"
        print(line, file=out)
    agg = report["aggregate"]
    print(
        f"aggregate: {agg['speedup']:.0f}x "
        f"({agg['t_model_s']:.2f}s model vs {agg['t_predict_s']:.3f}s predict), "
        f"worst median err {agg['worst_median_rel_err_pct']:.2f}%",
        file=out,
    )
    return 0


def _run_info(args, out) -> int:
    from .artifact import load_meta, model_store_key

    report = {}
    for machine in _machines_of(args):
        meta = load_meta(machine, tag=args.tag)
        key = model_store_key(machine.cache_key(), args.tag)
        if meta is None:
            report[machine.machine_id] = None
            if not args.json:
                print(f"{machine.machine_id}: no artifact (key {key[:16]}…)", file=out)
            continue
        report[machine.machine_id] = meta
        if not args.json:
            stats = meta.get("train_stats", {})
            grid = meta.get("train_grid", {})
            print(
                f"{machine.machine_id}: schema v{meta['schema_version']}, "
                f"{meta.get('train_rows', '?')} rows "
                f"(ids {grid.get('ids', '?')}, cores {grid.get('core_counts', '?')}), "
                f"median err {stats.get('median_rel_err_pct', float('nan')):.2f}%, "
                f"key {key[:16]}…",
                file=out,
            )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    return 0


def run_predict(args: argparse.Namespace, out=None) -> int:
    """Handler of ``repro predict``."""
    if args.scale <= 0 or args.scale > 1.0:
        raise SystemExit(f"--scale must be in (0, 1], got {args.scale}")
    if args.iterations < 1:
        raise SystemExit(f"--iterations must be >= 1, got {args.iterations}")
    with open_output(args, out) as stream:
        if args.action == "train":
            return _run_train(args, stream)
        if args.action == "eval":
            return _run_eval(args, stream)
        return _run_info(args, stream)
