"""``repro.predict``: the microsecond answer tier.

A trained :class:`~repro.predict.regressor.PerfRegressor` maps the
structural feature vector of a campaign point
(:mod:`repro.sparse.features`) to ``log(makespan / (nnz * iterations))``
— a bounded seconds-per-nonzero-per-iteration quantity — so
``SpMVExperiment(mode="predict")`` can answer a point without touching
the cache characterization at all.  Labelled training rows are minted
from our own ``mode="model"`` (or ``exact-trace``) runs
(:mod:`repro.predict.dataset`), models are sha256-sealed store
artifacts (:mod:`repro.predict.artifact`), and the differential
harness (:mod:`repro.predict.harness`) quantifies per-machine error
and speedup against the analytic model — the numbers behind
``docs/PREDICTOR.md`` and the bench gate.
"""

from .artifact import (
    MODEL_NAMESPACE,
    PREDICT_MODEL_SCHEMA_VERSION,
    TRAIN_NAMESPACE,
    PredictFallbackWarning,
    clear_predictor_cache,
    get_predictor,
    install_predictor,
    load_predictor,
    model_store_key,
    save_predictor,
)
from .dataset import labelled_rows
from .regressor import PerfRegressor, fit_perf_regressor
from .train import train_predictor

__all__ = [
    "MODEL_NAMESPACE",
    "TRAIN_NAMESPACE",
    "PREDICT_MODEL_SCHEMA_VERSION",
    "PredictFallbackWarning",
    "PerfRegressor",
    "fit_perf_regressor",
    "labelled_rows",
    "train_predictor",
    "model_store_key",
    "save_predictor",
    "load_predictor",
    "get_predictor",
    "install_predictor",
    "clear_predictor_cache",
]
