"""Training recipe: grid sweep -> labelled rows -> sealed artifact."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..machine.base import MachineModel
from ..sparse.features import FEATURE_NAMES
from ..store import ContentStore
from .artifact import save_predictor
from .dataset import DEFAULT_TRAIN_CORE_COUNTS, labelled_rows
from .regressor import PerfRegressor, fit_perf_regressor

__all__ = ["train_predictor"]


def train_predictor(
    machine: MachineModel,
    ids: Sequence[int],
    core_counts: Sequence[int] = DEFAULT_TRAIN_CORE_COUNTS,
    configs: Sequence[str] = ("conf0",),
    mappings: Sequence[str] = ("distance_reduction",),
    kernels: Sequence[str] = ("csr",),
    scale: float = 0.05,
    iterations: int = 4,
    mode: str = "model",
    n_rounds: int = 300,
    learning_rate: float = 0.1,
    l2: float = 1e-2,
    tag: str = "default",
    save: bool = True,
    use_store: bool = True,
    store: Optional[ContentStore] = None,
    experiments: Optional[Dict] = None,
) -> Tuple[PerfRegressor, Dict[str, float]]:
    """Train one machine's predictor and (by default) persist it.

    Returns ``(model, stats)`` where ``stats`` is the in-sample error
    summary the fit computed (median/p90/max relative makespan error in
    percent, plus the stump count).  ``save=True`` writes the sealed
    artifact under the deterministic model key and seeds the process
    memo, so a subsequent ``mode="predict"`` run picks it up with no
    disk round-trip.
    """
    x, y = labelled_rows(
        machine,
        ids,
        core_counts=core_counts,
        configs=configs,
        mappings=mappings,
        kernels=kernels,
        scale=scale,
        iterations=iterations,
        mode=mode,
        use_store=use_store,
        experiments=experiments,
    )
    model = fit_perf_regressor(
        x, y, list(FEATURE_NAMES),
        n_rounds=n_rounds, learning_rate=learning_rate, l2=l2,
    )
    if save:
        save_predictor(
            machine,
            model,
            tag=tag,
            store=store,
            extra_meta={
                "train_grid": {
                    "ids": list(ids),
                    "core_counts": [int(n) for n in core_counts],
                    "configs": list(configs),
                    "mappings": list(mappings),
                    "kernels": list(kernels),
                    "scale": scale,
                    "iterations": iterations,
                    "mode": mode,
                },
                "fit": {
                    "n_rounds": n_rounds,
                    "learning_rate": learning_rate,
                    "l2": l2,
                },
            },
        )
    return model, dict(model.train_stats)
