"""Training-set generation: mint labelled rows from our own model runs.

Unlike feature-based SpMV predictors trained on hardware measurements,
we own the oracle: any (matrix, machine, core count, mapping, config,
kernel) point can be labelled by running ``mode="model"`` (or the
trace-exact path on the SCC), so training data is unlimited and
deterministic.  :func:`labelled_rows` sweeps a campaign grid, extracts
the feature vector of every point through the *same*
:meth:`~repro.core.experiment.SpMVExperiment.point_feature_vector`
code path that serves predictions (no train/serve skew), and caches
the resulting ``(X, y)`` arrays in the store under the
``predict-train`` namespace keyed by the full grid identity.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.campaign import Campaign, CampaignContext, run_campaign_point
from ..machine.base import MachineModel
from ..sparse.features import FEATURE_SCHEMA_VERSION
from ..store import ContentStore, cache_enabled, digest_parts
from .artifact import PREDICT_MODEL_SCHEMA_VERSION, TRAIN_NAMESPACE

__all__ = ["DEFAULT_TRAIN_CORE_COUNTS", "labelled_rows", "training_set_key"]

#: default core-count sweep of a training grid; spans the contention
#: regimes (single core, half tile, saturated mesh) on every machine.
DEFAULT_TRAIN_CORE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def training_set_key(
    machine_key: str,
    ids: Sequence[int],
    core_counts: Sequence[int],
    configs: Sequence[str],
    mappings: Sequence[str],
    kernels: Sequence[str],
    scale: float,
    iterations: int,
    mode: str,
) -> str:
    """Content address of one grid's labelled rows."""
    return digest_parts(
        "predict-train",
        PREDICT_MODEL_SCHEMA_VERSION,
        FEATURE_SCHEMA_VERSION,
        machine_key,
        tuple(ids),
        tuple(core_counts),
        tuple(configs),
        tuple(mappings),
        tuple(kernels),
        scale,
        iterations,
        mode,
    )


def labelled_rows(
    machine: MachineModel,
    ids: Sequence[int],
    core_counts: Sequence[int] = DEFAULT_TRAIN_CORE_COUNTS,
    configs: Sequence[str] = ("conf0",),
    mappings: Sequence[str] = ("distance_reduction",),
    kernels: Sequence[str] = ("csr",),
    scale: float = 0.05,
    iterations: int = 4,
    mode: str = "model",
    use_store: bool = True,
    store: Optional[ContentStore] = None,
    experiments: Optional[Dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sweep the grid in ``mode`` and return ``(X, y)`` training arrays.

    ``y`` is the regression target ``log(makespan / (nnz * iterations))``
    per point; points whose run fails (timeout/failure records) are
    skipped.  Core counts exceeding the machine are clamped out of the
    grid rather than erroring, so one grid spec serves the whole zoo.
    ``use_store`` round-trips the arrays through the ``predict-train``
    namespace; pass ``False`` to force a fresh sweep (the differential
    harness does, so its model-path wallclock is honest).
    ``experiments`` shares an experiment cache with the caller — the
    harness reuses it for feature extraction.
    """
    counts = tuple(n for n in core_counts if 1 <= n <= machine.n_cores)
    if not counts:
        raise ValueError(
            f"no valid core counts for machine {machine.machine_id!r} "
            f"in {tuple(core_counts)}"
        )
    key = training_set_key(
        machine.cache_key(), ids, counts, configs, mappings, kernels,
        scale, iterations, mode,
    )
    train_store = store if store is not None else ContentStore(namespace=TRAIN_NAMESPACE)
    if use_store and cache_enabled():
        cached = train_store.get_arrays(key)
        if cached is not None:
            return cached["X"], cached["y"]

    points = Campaign.grid(ids, counts, configs=configs, mappings=mappings, kernels=kernels)
    ctx = CampaignContext(
        scale=scale, iterations=iterations, mode=mode, machine=machine.machine_id
    )
    cache: Dict = experiments if experiments is not None else {}
    xs, ys = [], []
    for pt in points:
        rec = run_campaign_point(pt, ctx, cache)
        if rec.get("status") != "ok":
            continue
        exp = cache[(pt.mid, scale, machine.machine_id)]
        config = exp.machine.presets[pt.config]
        core_map = list(exp._resolve_mapping(pt.mapping, pt.n_cores))
        xs.append(
            exp.point_feature_vector(pt.n_cores, core_map, config, pt.kernel, iterations)
        )
        ys.append(
            np.log(rec["makespan_s"] / (max(rec["nnz"], 1) * max(iterations, 1)))
        )
    if not xs:
        raise ValueError("training sweep produced no usable rows")
    x_arr = np.vstack(xs)
    y_arr = np.asarray(ys, dtype=np.float64)
    if use_store and cache_enabled():
        train_store.put_arrays(key, X=x_arr, y=y_arr)
    return x_arr, y_arr
