"""A small dependency-free regressor: ridge + gradient-boosted stumps.

Everything is plain NumPy and fully deterministic: the ridge solve is a
closed-form ``np.linalg.solve`` on standardized features, and the
boosting stage fits depth-1 stumps on quantile-binned features with
ties broken by lowest (feature, bin) index — no RNG anywhere, so the
same training rows always produce bit-identical models and therefore
bit-identical predictions (the artifact round-trip contract in
``tests/test_predict_model.py``).

The two stages split the work the way the target demands: the ridge
captures the smooth log-linear trends (throughput vs. clocks, nnz,
core count), the stumps mop up the thresholdy remainder (working set
crossing a cache level, an MC saturating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["PerfRegressor", "fit_perf_regressor"]

#: quantile bins per feature for the stump threshold search; 32 keeps
#: the search O(rounds * features * (rows + 32)) while resolving every
#: split a few-hundred-row training set can support.
N_BINS = 32


@dataclass(frozen=True)
class PerfRegressor:
    """Ridge + boosted-stump ensemble over one machine's feature space.

    ``predict`` returns the target ``log(makespan / (nnz * iterations))``;
    :meth:`predict_makespan` undoes the normalization.  All state is a
    handful of flat arrays, so (de)serialization is a plain npz bundle.
    """

    feature_names: List[str]
    #: training envelope: inference features are clipped into
    #: [x_min, x_max] per feature, so an out-of-distribution query
    #: degrades to the nearest training regime instead of letting the
    #: linear stage extrapolate (a matrix far outside the training set
    #: used to standardize to huge z-scores and blow the prediction up
    #: by orders of magnitude; stumps already clamp by construction).
    x_min: np.ndarray
    x_max: np.ndarray
    #: standardization of the ridge stage (stumps threshold raw values).
    mean: np.ndarray
    scale: np.ndarray
    coef: np.ndarray
    intercept: float
    #: stump ensemble, parallel arrays (possibly empty).
    stump_feature: np.ndarray  # int32[k]
    stump_threshold: np.ndarray  # float64[k]
    stump_left: np.ndarray  # float64[k], value when x[f] <= threshold
    stump_right: np.ndarray  # float64[k]
    train_rows: int = 0
    train_stats: Dict[str, float] = field(default_factory=dict)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Target values for a (rows, features) matrix or a single row."""
        x2 = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x2.shape[1] != len(self.feature_names):
            raise ValueError(
                f"feature width {x2.shape[1]} != model width {len(self.feature_names)}"
            )
        x2 = np.clip(x2, self.x_min, self.x_max)
        xs = (x2 - self.mean) / self.scale
        pred = xs @ self.coef + self.intercept
        if self.stump_feature.size:
            cond = x2[:, self.stump_feature] <= self.stump_threshold[None, :]
            pred = pred + self.stump_right.sum() + cond @ (self.stump_left - self.stump_right)
        return pred

    def predict_makespan(self, x: np.ndarray, nnz: int, iterations: int) -> float:
        """Seconds for one point: ``exp(target) * nnz * iterations``."""
        return float(np.exp(self.predict(x)[0])) * max(nnz, 1) * max(iterations, 1)

    # -- flat-array (de)serialization ------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The model as named arrays (the npz artifact payload)."""
        return {
            "x_min": self.x_min,
            "x_max": self.x_max,
            "mean": self.mean,
            "scale": self.scale,
            "coef": self.coef,
            "intercept": np.array([self.intercept]),
            "stump_feature": self.stump_feature.astype(np.int32),
            "stump_threshold": self.stump_threshold,
            "stump_left": self.stump_left,
            "stump_right": self.stump_right,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        feature_names: List[str],
        train_rows: int = 0,
        train_stats: Dict[str, float] | None = None,
    ) -> "PerfRegressor":
        return cls(
            feature_names=list(feature_names),
            x_min=np.asarray(arrays["x_min"], dtype=np.float64),
            x_max=np.asarray(arrays["x_max"], dtype=np.float64),
            mean=np.asarray(arrays["mean"], dtype=np.float64),
            scale=np.asarray(arrays["scale"], dtype=np.float64),
            coef=np.asarray(arrays["coef"], dtype=np.float64),
            intercept=float(np.asarray(arrays["intercept"]).ravel()[0]),
            stump_feature=np.asarray(arrays["stump_feature"], dtype=np.int32),
            stump_threshold=np.asarray(arrays["stump_threshold"], dtype=np.float64),
            stump_left=np.asarray(arrays["stump_left"], dtype=np.float64),
            stump_right=np.asarray(arrays["stump_right"], dtype=np.float64),
            train_rows=train_rows,
            train_stats=dict(train_stats or {}),
        )


def _fit_ridge(xs: np.ndarray, y: np.ndarray, l2: float) -> tuple:
    """Closed-form ridge on standardized features (intercept unpenalized)."""
    n, d = xs.shape
    xa = np.hstack([xs, np.ones((n, 1))])
    gram = xa.T @ xa
    reg = np.eye(d + 1) * l2
    reg[d, d] = 0.0
    beta = np.linalg.solve(gram + reg, xa.T @ y)
    return beta[:d], float(beta[d])


def fit_perf_regressor(
    x: np.ndarray,
    y: np.ndarray,
    feature_names: List[str],
    n_rounds: int = 300,
    learning_rate: float = 0.1,
    l2: float = 1e-2,
) -> PerfRegressor:
    """Fit the two-stage model on (rows, features) / target arrays.

    The stump stage bins every feature into at most :data:`N_BINS`
    quantile buckets once, then each boosting round scans every
    feature's per-bin residual sums (prefix sums of two ``bincount``
    calls) for the split with the largest SSE reduction.  Left/right
    leaf values are the shrunken mean residuals.  Rounds that cannot
    improve any split stop the loop early.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] != y.shape[0]:
        raise ValueError(f"bad training shapes x{x.shape} y{y.shape}")
    n, d = x.shape
    if n < 2:
        raise ValueError(f"need at least 2 training rows, got {n}")
    if d != len(feature_names):
        raise ValueError(f"x has {d} features, names list {len(feature_names)}")

    mean = x.mean(axis=0)
    std = x.std(axis=0)
    scale = np.where(std > 1e-12, std, 1.0)
    xs = (x - mean) / scale
    coef, intercept = _fit_ridge(xs, y, l2)
    residual = y - (xs @ coef + intercept)

    # -- quantile binning (once) -----------------------------------------
    qs = np.linspace(0.0, 1.0, N_BINS + 1)[1:-1]
    bins = np.zeros((n, d), dtype=np.int64)
    edges: List[np.ndarray] = []
    for j in range(d):
        cuts = np.unique(np.quantile(x[:, j], qs))
        edges.append(cuts)
        if cuts.size:
            # side="left" makes bin(b) <= k exactly the predict-time
            # condition x <= cuts[k] (ties go left in both places).
            bins[:, j] = np.searchsorted(cuts, x[:, j], side="left")
    counts = [np.bincount(bins[:, j], minlength=edges[j].size + 1) for j in range(d)]
    cum_counts = [np.cumsum(c[:-1]) for c in counts]  # rows on the left of each cut

    s_feature: List[int] = []
    s_threshold: List[float] = []
    s_left: List[float] = []
    s_right: List[float] = []
    for _ in range(max(0, n_rounds)):
        total = residual.sum()
        best_gain = 1e-15
        best = None
        for j in range(d):
            cuts = edges[j]
            if not cuts.size:
                continue
            sums = np.bincount(bins[:, j], weights=residual, minlength=cuts.size + 1)
            left_sum = np.cumsum(sums[:-1])
            left_n = cum_counts[j]
            right_n = n - left_n
            valid = (left_n > 0) & (right_n > 0)
            if not valid.any():
                continue
            right_sum = total - left_sum
            gain = np.where(
                valid, left_sum**2 / np.maximum(left_n, 1) + right_sum**2 / np.maximum(right_n, 1), -np.inf
            )
            k = int(np.argmax(gain))
            g = gain[k] - total**2 / n
            if g > best_gain:
                best_gain = g
                best = (j, k, left_sum[k] / left_n[k], right_sum[k] / right_n[k])
        if best is None:
            break
        j, k, lmean, rmean = best
        s_feature.append(j)
        s_threshold.append(float(edges[j][k]))
        s_left.append(learning_rate * lmean)
        s_right.append(learning_rate * rmean)
        side = x[:, j] <= edges[j][k]
        residual = residual - np.where(side, s_left[-1], s_right[-1])

    model = PerfRegressor(
        feature_names=list(feature_names),
        x_min=x.min(axis=0),
        x_max=x.max(axis=0),
        mean=mean,
        scale=scale,
        coef=coef,
        intercept=intercept,
        stump_feature=np.asarray(s_feature, dtype=np.int32),
        stump_threshold=np.asarray(s_threshold, dtype=np.float64),
        stump_left=np.asarray(s_left, dtype=np.float64),
        stump_right=np.asarray(s_right, dtype=np.float64),
        train_rows=n,
    )
    pred = model.predict(x)
    rel = 100.0 * np.abs(np.expm1(pred - y))
    model.train_stats.update(
        {
            "median_rel_err_pct": float(np.median(rel)),
            "p90_rel_err_pct": float(np.percentile(rel, 90)),
            "max_rel_err_pct": float(rel.max()),
            "stumps": float(len(s_feature)),
        }
    )
    return model
