"""Differential harness: predict-vs-model (and -vs-exact) per machine.

One honest experiment per machine:

1. **Model leg** — a fresh, cold sweep of ``suite x core counts`` in
   ``mode="model"``, wallclock-timed.  Its records double as training
   labels, so the predictor is graded on exactly the grid the model
   leg paid for.
2. **Train** — fit a :class:`~repro.predict.regressor.PerfRegressor`
   on those labels and seed the process memo
   (:func:`~repro.predict.artifact.install_predictor`); the disk
   round-trip is covered by the artifact tests, not timed here.
3. **Predict leg** — the same sweep re-run in ``mode="predict"`` with
   fresh experiments.  The process-level feature memos are cleared
   once, before the *first* machine's predict leg: the timed predict
   total therefore pays the full O(nnz) extraction exactly once, which
   is what a fresh predict-only client sweeping the zoo would pay —
   matrix and partition features are machine-independent and shared
   across machines by design (see :mod:`repro.sparse.features`).
   Consequently the first machine's per-machine speedup is the cold
   figure and later machines' are warm; the gate bounds the aggregate.
4. **Error** — per-point relative makespan error of predict against
   the model leg's ground truth, summarized per machine; optionally a
   predict-vs-exact leg against ``mode="exact-trace"`` on machines
   that support it (the SCC).

``repro bench`` gates on the aggregate speedup and per-machine median
error this report computes; ``tests/test_predict_differential.py``
asserts the same bounds on a smaller grid.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.experiment import SpMVExperiment
from ..machine import get_machine
from ..sparse import features as _features
from ..sparse.suite import build_matrix, entry_by_id
from .artifact import install_predictor
from .regressor import fit_perf_regressor

__all__ = ["DEFAULT_BENCH_CORE_COUNTS", "DEFAULT_BENCH_IDS", "differential_report"]

#: bench defaults: a few structurally distinct suite matrices swept
#: over enough core counts that per-point costs dominate both legs.
DEFAULT_BENCH_IDS: Tuple[int, ...] = (2, 7, 14, 24)
DEFAULT_BENCH_CORE_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40, 48)


def _pct(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


def _sweep(
    exps: Dict[int, SpMVExperiment],
    counts: Sequence[int],
    mode: str,
    iterations: int,
) -> Tuple[float, Dict[Tuple[int, int], float]]:
    """Run every (matrix, core count) point; returns (seconds, makespans)."""
    out: Dict[Tuple[int, int], float] = {}
    t0 = time.perf_counter()
    for mid, exp in exps.items():
        for n in counts:
            res = exp.run(n_cores=n, mode=mode, iterations=iterations)
            out[(mid, n)] = res.makespan
    return time.perf_counter() - t0, out


def differential_report(
    machine_ids: Sequence[str] = ("scc-48", "xeonphi-61", "ft2000plus-64"),
    ids: Sequence[int] = DEFAULT_BENCH_IDS,
    core_counts: Sequence[int] = DEFAULT_BENCH_CORE_COUNTS,
    scale: float = 0.05,
    iterations: int = 4,
    n_rounds: int = 150,
    include_exact: bool = True,
    exact_ids: Sequence[int] = (2,),
    exact_core_counts: Sequence[int] = (2, 8),
) -> Dict:
    """Quantify predict-vs-model speed and error across the zoo.

    Matrices are built once and shared across machines (the features
    they yield are machine-independent); everything machine-specific —
    model sweep, training, predict sweep — runs per machine.  Returns
    a JSON-serializable report; see the module docstring for the legs.
    """
    mats = {mid: build_matrix(mid, scale=scale) for mid in ids}
    names = {mid: entry_by_id(mid).name for mid in ids}
    report: Dict = {"machines": {}, "grid": {
        "ids": [int(i) for i in ids],
        "matrices": [names[i] for i in ids],
        "core_counts": [int(n) for n in core_counts],
        "scale": scale,
        "iterations": iterations,
    }}
    total_model_s = 0.0
    total_predict_s = 0.0
    cold = True

    for machine_id in machine_ids:
        machine = get_machine(machine_id)
        counts = [n for n in core_counts if 1 <= n <= machine.n_cores]

        # -- model leg (cold experiments; wallclock is the baseline) ----
        model_exps = {
            mid: SpMVExperiment(a, name=names[mid], machine=machine)
            for mid, a in mats.items()
        }
        t_model, truth = _sweep(model_exps, counts, "model", iterations)

        # -- training on the model leg's own records (not timed) --------
        xs, ys = [], []
        for mid, exp in model_exps.items():
            for n in counts:
                core_map = list(exp._resolve_mapping("distance_reduction", n))
                xs.append(
                    exp.point_feature_vector(
                        n, core_map, machine.default_config, "csr", iterations
                    )
                )
                ys.append(
                    np.log(truth[(mid, n)] / (max(exp.a.nnz, 1) * max(iterations, 1)))
                )
        model = fit_perf_regressor(
            np.vstack(xs), np.asarray(ys), list(_features.FEATURE_NAMES),
            n_rounds=n_rounds,
        )
        install_predictor(machine, model)

        # -- predict leg: fresh experiments; feature memos go cold once,
        # before the first machine, so the aggregate timing pays the
        # full O(nnz) extraction exactly once (the production reuse
        # pattern — later machines share the machine-independent part) -
        if cold:
            _features._MF_MEMO.clear()
            _features._PF_MEMO.clear()
            cold = False
        pred_exps = {
            mid: SpMVExperiment(a, name=names[mid], machine=machine)
            for mid, a in mats.items()
        }
        t_pred, predicted = _sweep(pred_exps, counts, "predict", iterations)

        errs = [
            abs(predicted[k] - truth[k]) / truth[k] * 100.0
            for k in truth
            if truth[k] > 0
        ]
        entry = {
            "n_points": len(truth),
            "t_model_s": t_model,
            "t_predict_s": t_pred,
            "speedup": t_model / t_pred if t_pred > 0 else float("inf"),
            "median_rel_err_pct": _pct(errs, 50),
            "p90_rel_err_pct": _pct(errs, 90),
            "max_rel_err_pct": _pct(errs, 100),
            "train_stats": dict(model.train_stats),
        }

        if include_exact and machine.supports_mode("exact-trace"):
            exact_errs = []
            e_counts = [n for n in exact_core_counts if 1 <= n <= machine.n_cores]
            for mid in exact_ids:
                if mid not in mats:
                    continue
                exp = pred_exps[mid]
                for n in e_counts:
                    exact = exp.run(n_cores=n, mode="exact-trace", iterations=iterations)
                    pred = exp.run(n_cores=n, mode="predict", iterations=iterations)
                    if exact.makespan > 0:
                        exact_errs.append(
                            abs(pred.makespan - exact.makespan) / exact.makespan * 100.0
                        )
            entry["exact"] = {
                "n_points": len(exact_errs),
                "median_rel_err_pct": _pct(exact_errs, 50),
                "max_rel_err_pct": _pct(exact_errs, 100),
            }

        report["machines"][machine_id] = entry
        total_model_s += t_model
        total_predict_s += t_pred

    med_errs = [m["median_rel_err_pct"] for m in report["machines"].values()]
    report["aggregate"] = {
        "t_model_s": total_model_s,
        "t_predict_s": total_predict_s,
        "speedup": total_model_s / total_predict_s if total_predict_s > 0 else float("inf"),
        "worst_median_rel_err_pct": max(med_errs) if med_errs else 0.0,
    }
    return report
