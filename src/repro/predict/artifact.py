"""Versioned, sha256-sealed predictor artifacts in the content store.

A trained model is one npz bundle in the ``predict-models`` namespace:
the regressor's flat arrays plus a ``__meta__`` member holding the
canonical-JSON metadata (schema versions, machine, feature catalogue,
training grid, in-sample error) encoded as a uint8 array so the whole
artifact rides the store's existing npz seal.  Keys are pure functions
of ``(schema version, feature schema version, machine cache key, tag)``
— retraining overwrites in place, schema bumps orphan.

Lookup is fail-soft by design: a missing, corrupt (seal-mismatched) or
schema-incompatible artifact makes :func:`get_predictor` return
``None`` after emitting **one** structured
:class:`PredictFallbackWarning` per (machine, tag) per process, and
``mode="predict"`` falls back to ``mode="model"`` — a degraded answer
beats no answer, the same ladder philosophy as :mod:`repro.core.supervise`.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..machine.base import MachineModel
from ..sparse.features import FEATURE_NAMES, FEATURE_SCHEMA_VERSION
from ..store import ContentStore, digest_parts
from .regressor import PerfRegressor

__all__ = [
    "PREDICT_MODEL_SCHEMA_VERSION",
    "MODEL_NAMESPACE",
    "TRAIN_NAMESPACE",
    "PredictFallbackWarning",
    "model_store_key",
    "save_predictor",
    "load_predictor",
    "get_predictor",
    "install_predictor",
    "clear_predictor_cache",
]

#: bump on any change to the artifact layout or the target definition.
PREDICT_MODEL_SCHEMA_VERSION = 2  # v2: training-envelope clipping (x_min/x_max)

#: store namespaces: trained models and cached labelled training rows.
MODEL_NAMESPACE = "predict-models"
TRAIN_NAMESPACE = "predict-train"

#: npz member carrying the canonical-JSON metadata as uint8 bytes.
_META_NAME = "__meta__"


class PredictFallbackWarning(RuntimeWarning):
    """``mode="predict"`` fell back to ``mode="model"`` (no usable model)."""


#: process-wide predictor memo: (machine cache key, tag) -> model.
_PREDICTORS: Dict[Tuple[str, str], Optional[PerfRegressor]] = {}
#: (machine cache key, tag) pairs that already warned about fallback.
_WARNED: Set[Tuple[str, str]] = set()


def model_store_key(machine_key: str, tag: str = "default") -> str:
    """Content address of one machine's trained model artifact."""
    return digest_parts(
        "predict-model",
        PREDICT_MODEL_SCHEMA_VERSION,
        FEATURE_SCHEMA_VERSION,
        machine_key,
        tag,
    )


def _model_store(store: Optional[ContentStore]) -> ContentStore:
    return store if store is not None else ContentStore(namespace=MODEL_NAMESPACE)


def save_predictor(
    machine: MachineModel,
    model: PerfRegressor,
    tag: str = "default",
    store: Optional[ContentStore] = None,
    extra_meta: Optional[Dict] = None,
) -> str:
    """Serialize one machine's model into the store; returns the key."""
    meta = {
        "schema_version": PREDICT_MODEL_SCHEMA_VERSION,
        "feature_schema_version": FEATURE_SCHEMA_VERSION,
        "machine": machine.machine_id,
        "machine_key": machine.cache_key(),
        "tag": tag,
        "target": "log_makespan_per_nnz_iter",
        "feature_names": list(model.feature_names),
        "train_rows": model.train_rows,
        "train_stats": dict(model.train_stats),
        **(extra_meta or {}),
    }
    payload = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
    arrays = model.to_arrays()
    arrays[_META_NAME] = np.frombuffer(payload, dtype=np.uint8)
    key = model_store_key(machine.cache_key(), tag)
    _model_store(store).put_arrays(key, **arrays)
    # A fresh save supersedes whatever the memo held (including a
    # cached miss) and clears the warn-once latch for this pair.
    memo_key = (machine.cache_key(), tag)
    _PREDICTORS[memo_key] = model
    _WARNED.discard(memo_key)
    return key


def load_meta(
    machine: MachineModel, tag: str = "default", store: Optional[ContentStore] = None
) -> Optional[Dict]:
    """The artifact's metadata dict, or None when absent/corrupt."""
    loaded = _load(machine, tag, store)
    return loaded[1] if loaded is not None else None


def _load(
    machine: MachineModel, tag: str, store: Optional[ContentStore]
) -> Optional[Tuple[PerfRegressor, Dict]]:
    key = model_store_key(machine.cache_key(), tag)
    arrays = _model_store(store).get_arrays(key)
    if arrays is None:
        return None
    try:
        meta = json.loads(bytes(arrays.pop(_META_NAME).tobytes()).decode("utf-8"))
        if (
            meta.get("schema_version") != PREDICT_MODEL_SCHEMA_VERSION
            or meta.get("feature_schema_version") != FEATURE_SCHEMA_VERSION
            or list(meta.get("feature_names", ())) != list(FEATURE_NAMES)
        ):
            return None
        model = PerfRegressor.from_arrays(
            arrays,
            meta["feature_names"],
            train_rows=int(meta.get("train_rows", 0)),
            train_stats=meta.get("train_stats", {}),
        )
    except (KeyError, ValueError, json.JSONDecodeError):
        return None
    return model, meta


def load_predictor(
    machine: MachineModel, tag: str = "default", store: Optional[ContentStore] = None
) -> Optional[PerfRegressor]:
    """Load + verify one machine's model from disk (no memo, no warning).

    Returns ``None`` when the artifact is absent, fails the store's
    sha256 seal (the store quarantines it), or carries an incompatible
    schema / feature catalogue.
    """
    loaded = _load(machine, tag, store)
    return loaded[0] if loaded is not None else None


def get_predictor(
    machine: MachineModel, tag: str = "default"
) -> Optional[PerfRegressor]:
    """The process-cached predictor for one machine, or ``None``.

    On the first miss per (machine, tag) a single structured
    :class:`PredictFallbackWarning` is emitted; subsequent calls stay
    silent and keep returning ``None`` until :func:`save_predictor` /
    :func:`install_predictor` supplies a model or
    :func:`clear_predictor_cache` resets the memo.
    """
    memo_key = (machine.cache_key(), tag)
    if memo_key in _PREDICTORS:
        return _PREDICTORS[memo_key]
    model = load_predictor(machine, tag)
    _PREDICTORS[memo_key] = model
    if model is None and memo_key not in _WARNED:
        _WARNED.add(memo_key)
        warnings.warn(
            f"no usable predictor artifact for machine "
            f"{machine.machine_id!r} (tag {tag!r}): falling back to "
            f"mode='model'; train one with 'repro predict train'",
            PredictFallbackWarning,
            stacklevel=3,
        )
    return model


def install_predictor(
    machine: MachineModel, model: PerfRegressor, tag: str = "default"
) -> None:
    """Seed the process memo directly (harness/tests; no disk write)."""
    memo_key = (machine.cache_key(), tag)
    _PREDICTORS[memo_key] = model
    _WARNED.discard(memo_key)


def clear_predictor_cache() -> None:
    """Drop every memoized predictor and warn-once latch (test isolation)."""
    _PREDICTORS.clear()
    _WARNED.clear()
