"""Content-addressed on-disk artifact store.

Expensive, deterministic artifacts — suite matrix builds
(:mod:`repro.sparse.suite`) and exact cache-replay results
(:mod:`repro.scc.tracegen`) — are pure functions of their inputs.  This
module gives them a shared disk cache keyed by a SHA-256 digest of
those inputs, so parallel campaign workers and repeated differential
runs never recompute the same artifact twice.

Keying rules (the invalidation contract, see ``docs/MODEL.md``):

- every key starts with a *namespace* and a *schema version*; bumping
  the producer's version constant orphans all old entries rather than
  risking a stale read;
- array inputs are digested over dtype, shape and raw bytes
  (:func:`digest_arrays`), scalar inputs over their repr — two inputs
  collide only if they are byte-identical;
- entries are written atomically (temp file + ``os.replace``), so
  concurrent writers — fork-pool campaign workers — race benignly: the
  last rename wins and every reader sees a complete file.

The store lives under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``); set ``REPRO_NO_DISK_CACHE=1`` to disable it
entirely (every ``get`` misses, every ``put`` is dropped).  A corrupt
or truncated entry is treated as a miss and deleted, never raised.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "cache_enabled",
    "default_cache_dir",
    "digest_arrays",
    "digest_parts",
    "ContentStore",
]


def cache_enabled() -> bool:
    """False when ``REPRO_NO_DISK_CACHE`` is set to a non-empty value."""
    return not os.environ.get("REPRO_NO_DISK_CACHE")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def digest_arrays(*arrays: np.ndarray, extra: str = "") -> str:
    """SHA-256 over the dtype, shape and bytes of each array (plus ``extra``)."""
    h = hashlib.sha256()
    h.update(extra.encode())
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def digest_parts(*parts: Any) -> str:
    """SHA-256 over the reprs of scalar key parts, ``/``-joined.

    Use for (namespace, version, ints, floats, bools, strings) key
    tuples; floats are digested via ``repr`` so distinct values never
    alias.
    """
    h = hashlib.sha256()
    h.update("/".join(repr(p) for p in parts).encode())
    return h.hexdigest()


class ContentStore:
    """A flat directory of content-addressed JSON / array-bundle entries."""

    def __init__(self, root: Optional[Path] = None, namespace: str = "store") -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.namespace = namespace
        self._dir = self.root / namespace

    def path_for(self, key: str, ext: str) -> Path:
        """On-disk path of an entry (two-level fan-out keeps dirs small)."""
        return self._dir / key[:2] / f"{key}.{ext}"

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _drop(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- JSON entries ------------------------------------------------------

    def get_json(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored dict, or None on miss/corruption (corrupt files die)."""
        if not cache_enabled():
            return None
        path = self.path_for(key, "json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                obj = json.load(fh)
        except (OSError, json.JSONDecodeError):
            if path.exists():
                self._drop(path)
            return None
        return obj if isinstance(obj, dict) else None

    def put_json(self, key: str, obj: Dict[str, Any]) -> None:
        """Store a JSON-serializable dict atomically (no-op when disabled)."""
        if not cache_enabled():
            return
        payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
        self._write_atomic(self.path_for(key, "json"), payload)

    # -- array-bundle entries ----------------------------------------------

    def get_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The stored array bundle, or None on miss/corruption."""
        if not cache_enabled():
            return None
        path = self.path_for(key, "npz")
        try:
            with np.load(path) as npz:
                return {name: npz[name] for name in npz.files}
        except (OSError, ValueError, EOFError, KeyError):
            if path.exists():
                self._drop(path)
            return None

    def put_arrays(self, key: str, **arrays: np.ndarray) -> None:
        """Store named arrays atomically as one uncompressed ``.npz``."""
        if not cache_enabled():
            return
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        self._write_atomic(self.path_for(key, "npz"), buf.getvalue())
