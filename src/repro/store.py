"""Content-addressed on-disk artifact store.

Expensive, deterministic artifacts — suite matrix builds
(:mod:`repro.sparse.suite`) and exact cache-replay results
(:mod:`repro.scc.tracegen`) — are pure functions of their inputs.  This
module gives them a shared disk cache keyed by a SHA-256 digest of
those inputs, so parallel campaign workers and repeated differential
runs never recompute the same artifact twice.

Keying rules (the invalidation contract, see ``docs/MODEL.md``):

- every key starts with a *namespace* and a *schema version*; bumping
  the producer's version constant orphans all old entries rather than
  risking a stale read;
- array inputs are digested over dtype, shape and raw bytes
  (:func:`digest_arrays`), scalar inputs over their repr — two inputs
  collide only if they are byte-identical;
- entries are written atomically (temp file + ``os.replace``), so
  concurrent writers — fork-pool campaign workers — race benignly: the
  last rename wins and every reader sees a complete file.

Every entry carries a SHA-256 integrity seal over its own contents
(JSON entries are framed as ``{"sha256": ..., "payload": ...}``; array
bundles embed a reserved ``__sha256__`` member), verified on every
read.  An entry that fails verification — truncated, bit-flipped,
unparseable, or written by a pre-integrity version — is treated as a
miss and *quarantined* to a ``corrupt/`` subdirectory of the
namespace, never silently deleted: the evidence stays on disk for
post-mortems while the caller transparently recomputes.  Failed writes
(most commonly ENOSPC) drop the entry and warn once per process per
error type instead of failing the run.

The store lives under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``); set ``REPRO_NO_DISK_CACHE=1`` to disable it
entirely (every ``get`` misses, every ``put`` is dropped).
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import os
import tempfile
import warnings
import zipfile
from pathlib import Path
from typing import Any, Dict, Optional, Set

import numpy as np

__all__ = [
    "STORE_ENOSPC_ENV",
    "cache_enabled",
    "default_cache_dir",
    "digest_arrays",
    "digest_parts",
    "ContentStore",
]

#: fault-injection hook: when set to a non-empty value, every store
#: write fails with an injected ENOSPC ``OSError`` inside the atomic
#: write path — exactly the surface a full disk hits.  Used by
#: ``repro chaos`` and the store tests; harmless in production.
STORE_ENOSPC_ENV = "REPRO_FAULT_STORE_ENOSPC"

#: reserved array-bundle member holding the integrity seal.
_SEAL_NAME = "__sha256__"

#: errnos already warned about by failed writes (once per process each).
_WARNED_ERRNOS: Set[int] = set()


def cache_enabled() -> bool:
    """False when ``REPRO_NO_DISK_CACHE`` is set to a non-empty value."""
    return not os.environ.get("REPRO_NO_DISK_CACHE")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def digest_arrays(*arrays: np.ndarray, extra: str = "") -> str:
    """SHA-256 over the dtype, shape and bytes of each array (plus ``extra``)."""
    h = hashlib.sha256()
    h.update(extra.encode())
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def digest_parts(*parts: Any) -> str:
    """SHA-256 over the reprs of scalar key parts, ``/``-joined.

    Use for (namespace, version, ints, floats, bools, strings) key
    tuples; floats are digested via ``repr`` so distinct values never
    alias.
    """
    h = hashlib.sha256()
    h.update("/".join(repr(p) for p in parts).encode())
    return h.hexdigest()


def _canonical_json(obj: Dict[str, Any]) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def _bundle_digest(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over an array bundle: sorted names, dtypes, shapes, bytes."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _warn_write_failure(exc: OSError, path: Path) -> None:
    """Warn about a dropped store write, once per process per errno."""
    code = exc.errno if exc.errno is not None else -1
    if code in _WARNED_ERRNOS:
        return
    _WARNED_ERRNOS.add(code)
    if code == errno.ENOSPC:
        message = (
            f"no space left on device while writing cache entry "
            f"{path.name!r}; store writes are being dropped and results "
            f"recomputed (shown once per process)"
        )
    else:
        message = (
            f"cache write of {path.name!r} failed ({exc}); entry dropped "
            f"(shown once per process per error type)"
        )
    warnings.warn(message, RuntimeWarning, stacklevel=4)


class ContentStore:
    """A flat directory of content-addressed JSON / array-bundle entries."""

    def __init__(self, root: Optional[Path] = None, namespace: str = "store") -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.namespace = namespace
        self._dir = self.root / namespace

    def path_for(self, key: str, ext: str) -> Path:
        """On-disk path of an entry (two-level fan-out keeps dirs small)."""
        return self._dir / key[:2] / f"{key}.{ext}"

    @property
    def corrupt_dir(self) -> Path:
        """Where entries failing integrity verification are quarantined."""
        return self._dir / "corrupt"

    def _write_atomic(self, path: Path, payload: bytes) -> bool:
        """Write-then-rename; on failure clean up, warn once, return False."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError as exc:
            _warn_write_failure(exc, path)
            return False
        fh = None
        try:
            if os.environ.get(STORE_ENOSPC_ENV):
                raise OSError(
                    errno.ENOSPC,
                    f"injected by {STORE_ENOSPC_ENV}: no space left on device",
                )
            fh = os.fdopen(fd, "wb")
            fh.write(payload)
            fh.close()
            os.replace(tmp, path)
            return True
        except OSError as exc:
            # Close the fd exactly once: os.fdopen only takes ownership
            # when it succeeds; a file object tolerates double close.
            if fh is None:
                try:
                    os.close(fd)
                except OSError:
                    pass
            else:
                try:
                    fh.close()
                except OSError:
                    pass
            try:
                os.unlink(tmp)
            except OSError:
                pass
            _warn_write_failure(exc, path)
            return False

    def entry_count(self) -> int:
        """Live entries in this namespace (corrupt/ quarantine excluded).

        A cheap directory walk for dashboards and the ``/metrics``
        endpoint of the campaign server — not part of any hot path.
        """
        if not self._dir.is_dir():
            return 0
        return sum(
            1
            for fanout in self._dir.iterdir()
            if fanout.is_dir() and fanout.name != "corrupt"
            for entry in fanout.iterdir()
            if entry.suffix in (".json", ".npz")
        )

    def corrupt_count(self) -> int:
        """Entries quarantined to ``corrupt/`` so far."""
        if not self.corrupt_dir.is_dir():
            return 0
        return sum(1 for _ in self.corrupt_dir.iterdir())

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a corrupt entry into ``corrupt/`` (kept, not deleted)."""
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            dest = self.corrupt_dir / path.name
            os.replace(path, dest)
            return dest
        except OSError:
            return None

    # -- JSON entries ------------------------------------------------------

    def get_json(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored dict, or None on miss; corrupt entries are quarantined.

        Integrity is verified on every read: the entry's recorded
        ``sha256`` must match a fresh digest of its payload.  Anything
        else — truncation, bit flips, a legacy unsealed entry — is a
        miss, with the bad file moved to :attr:`corrupt_dir`.
        """
        if not cache_enabled():
            return None
        path = self.path_for(key, "json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                frame = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if (
            not isinstance(frame, dict)
            or not isinstance(frame.get("payload"), dict)
            or not isinstance(frame.get("sha256"), str)
        ):
            self._quarantine(path)
            return None
        payload = frame["payload"]
        if hashlib.sha256(_canonical_json(payload)).hexdigest() != frame["sha256"]:
            self._quarantine(path)
            return None
        return payload

    def put_json(self, key: str, obj: Dict[str, Any]) -> None:
        """Store a JSON-serializable dict atomically with an integrity seal."""
        if not cache_enabled():
            return
        digest = hashlib.sha256(_canonical_json(obj)).hexdigest()
        frame = _canonical_json({"sha256": digest, "payload": obj})
        self._write_atomic(self.path_for(key, "json"), frame)

    # -- array-bundle entries ----------------------------------------------

    def get_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The stored array bundle, or None on miss; corrupt ones quarantined."""
        if not cache_enabled():
            return None
        path = self.path_for(key, "npz")
        try:
            with np.load(path) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except FileNotFoundError:
            return None
        except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile):
            self._quarantine(path)
            return None
        seal = arrays.pop(_SEAL_NAME, None)
        if (
            seal is None
            or seal.dtype != np.uint8
            or seal.shape != (32,)
            or seal.tobytes().hex() != _bundle_digest(arrays)
        ):
            self._quarantine(path)
            return None
        return arrays

    def put_arrays(self, key: str, **arrays: np.ndarray) -> None:
        """Store named arrays atomically as one sealed uncompressed ``.npz``."""
        if _SEAL_NAME in arrays:
            raise ValueError(f"array name {_SEAL_NAME!r} is reserved for the seal")
        if not cache_enabled():
            return
        seal = np.frombuffer(bytes.fromhex(_bundle_digest(arrays)), dtype=np.uint8)
        buf = io.BytesIO()
        np.savez(buf, **arrays, **{_SEAL_NAME: seal})
        self._write_atomic(self.path_for(key, "npz"), buf.getvalue())
